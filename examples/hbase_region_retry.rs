//! The §8.3.1 case study: the HBase region-assignment retry cycle.
//!
//! No single workload satisfies all the conditions (many assignments /
//! 3-node favored cluster / long favored workload); CSnake stitches one
//! causal edge from each of three tests:
//!
//! 1. `test_create_many_tables`   — delay(deploy_loop) → assign_ioe
//! 2. `test_rs_fault_tolerance`   — assign_ioe → can_place_favored
//! 3. `test_favored_balancer`     — can_place_favored → S+(deploy_loop)
//!
//! ```sh
//! cargo run --release --example hbase_region_retry
//! ```

use std::collections::BTreeSet;

use csnake::core::{detect, DetectConfig, DriverConfig, EdgeKind, TargetSystem};
use csnake::targets::MiniHBase;

fn main() {
    let target = MiniHBase::new();
    // The paper's driver settings: 5 reps per run set, full 7-point
    // 100ms–8s delay sweep (§4.2 — the sweep maximizes discovery).
    let mut cfg = DetectConfig {
        driver: DriverConfig::paper(),
        ..Default::default()
    };
    cfg.alloc.budget_per_fault = 12;

    println!("Running CSnake on mini-HBase (paper driver settings)...");
    let detection = detect(&target, &cfg);
    let reg = target.registry();
    let db = &detection.alloc.db;

    // Show the three stitched relationships and the tests they came from.
    println!("\nCausal edges touching the region-retry cycle:");
    let interesting: BTreeSet<&str> = ["deploy_loop", "assign_ioe", "can_place_favored"]
        .into_iter()
        .collect();
    let tests = target.tests();
    for e in db.edges() {
        let c = reg.point(e.cause).label;
        let f = reg.point(e.effect).label;
        if interesting.contains(c) && interesting.contains(f) && e.kind != EdgeKind::Icfg {
            println!(
                "  {c} --{}--> {f}   observed in {}",
                e.kind, tests[e.test.0 as usize].name
            );
        }
    }

    let m = detection
        .report
        .matches
        .iter()
        .find(|m| m.bug.id == "hbase-region-retry")
        .expect("the region-retry cycle must be detected");
    println!(
        "\nDetected {} [{}]: {}\n  cycle composition: {} (paper: 1D | 1E | 1N)",
        m.bug.id, m.bug.jira, m.bug.summary, m.composition
    );

    // The paper's point: the three propagation steps come from different
    // workloads. Verify that the matched cycle's edges span >1 test.
    let cycle = &detection.report.cycles[m.cycle_idx];
    let tests_used: BTreeSet<u32> = cycle.edges.iter().map(|&i| db.edge(i).test.0).collect();
    println!(
        "  edges stitched from {} different workload(s): {:?}",
        tests_used.len(),
        tests_used
            .iter()
            .map(|t| tests[*t as usize].name)
            .collect::<Vec<_>>()
    );
}
