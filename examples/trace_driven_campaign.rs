//! Trace-driven campaign: open-loop traffic from arrival spec to
//! detection report.
//!
//! The shipped targets drive *closed* workloads — a fixed job list,
//! submitted and drained. Real services face *open-loop* traffic: the
//! source keeps firing whether or not the server keeps up, which is what
//! lets a cascade feed itself. `csnake-workload` compiles that traffic
//! shape into an ordinary `TargetSystem`, so the whole pipeline — driver,
//! staged session, telemetry — runs on it unchanged. This example walks
//! the full path:
//!
//! 1. describe traffic as an arrival process (and as a recorded trace),
//! 2. run it standalone and read the latency percentiles,
//! 3. run a real detection campaign against the Poisson pseudo-target and
//!    watch the injected drain-loop delay surface as a windowed-p99
//!    inflection in the telemetry digest, next to the detected cascade.
//!
//! ```sh
//! cargo run --release --example trace_driven_campaign
//! ```

use std::sync::Arc;

use csnake::core::{CampaignObserver, DetectConfig, Session, TargetSystem, ThreePhase};
use csnake::inject::TestId;
use csnake::sim::VirtualTime;
use csnake::telemetry::{FlightRecorder, MetricsDigest};
use csnake::workload::{Arrival, ArrivalSource, RecordedTrace, WorkloadSpec, WorkloadSystem};

fn main() {
    // ── 1. Describe the traffic ─────────────────────────────────────────
    // A Poisson process: exponential inter-arrival gaps sampled from the
    // run's seed, so the stream is deterministic per seed. 2k req/s for
    // 10k requests ≈ five virtual seconds of offered load.
    let spec = WorkloadSpec {
        source: ArrivalSource::Process {
            arrival: Arrival::Poisson {
                rate_per_sec: 2_000.0,
            },
            offered: 10_000,
        },
        service: VirtualTime::from_micros(50),
        ..WorkloadSpec::default()
    };

    // ── 2. Run it standalone and read the latency ───────────────────────
    // `with_spec` compiles the spec into a TargetSystem; a run pre-
    // schedules every arrival as a pending simulator timer (the load shape
    // the event-wheel scheduler exists for) and folds per-request latency
    // into a WorkloadSummary.
    let sys = WorkloadSystem::with_spec("workload:example", spec);
    sys.run(TestId(0), None, 42);
    // The server drains its queue on a periodic tick, so quiet-system
    // latency is dominated by time-to-next-tick, not the 50 µs service.
    let summary = sys.drain_workload_summaries().pop().expect("one summary");
    println!(
        "Poisson, uninjected: {}/{} completed — p50 {}µs p90 {}µs p99 {}µs max {}µs",
        summary.completed,
        summary.offered,
        summary.p50_us,
        summary.p90_us,
        summary.p99_us,
        summary.max_us
    );
    assert_eq!(summary.completed, summary.offered);
    assert_eq!(
        summary.p99_inflection_milli(),
        None,
        "no fault, so the windowed p99 stays flat"
    );

    // The same engine replays recorded traffic: one `timestamp class` line
    // per request, exact times instead of a sampled process.
    let trace = RecordedTrace::parse("0us browse\n700us browse\n1500us checkout\n2ms browse\n")
        .expect("trace parses");
    let replay = WorkloadSystem::with_spec(
        "workload:example-replay",
        WorkloadSpec {
            source: ArrivalSource::Trace(trace),
            horizon: VirtualTime::from_secs(2),
            ..WorkloadSpec::default()
        },
    );
    replay.run(TestId(0), None, 42);
    let replayed = replay
        .drain_workload_summaries()
        .pop()
        .expect("one summary");
    println!(
        "Replayed trace: {}/{} completed — p99 {}µs",
        replayed.completed, replayed.offered, replayed.p99_us
    );

    // ── 3. Detect on it ─────────────────────────────────────────────────
    // The workload system plants the paper-shaped cascade
    // `delay(drain_loop) → req_timeout → delay(drain_loop)`: slow the
    // drain loop and the open-loop queue backs up until deadlines fire,
    // and every timeout re-enqueues speculative retries that keep the
    // loop slow. The feedback needs the retry amplifier, so campaign on
    // the standard four-workload system (its `test_bursty_retry` workload
    // retries with fanout 5); the pseudo-targets resolve by name, exactly
    // like scenario targets.
    let target = csnake::workload::by_name("workload:open-loop").expect("pseudo-target");

    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg.driver.retry.backoff_base_ms = 1;

    // The flight recorder rides along as a campaign observer; the driver
    // streams every experiment's WorkloadSummary through it.
    let recorder = Arc::new(FlightRecorder::builder().build().expect("recorder"));
    let mut session = Session::builder(target.as_ref())
        .config(cfg)
        .observer(recorder.clone() as Arc<dyn CampaignObserver>)
        .build()
        .expect("session builds");
    println!("\nRunning the detection campaign on workload:open-loop ...");
    let report = session
        .run_to_report(&ThreePhase::default())
        .expect("campaign completes");
    recorder.finish().expect("recorder finish");

    println!(
        "Report: {} experiments, {} causal edges, {} cycles, {} seeded bugs matched.",
        report.experiments_run,
        report.edge_count,
        report.cycles.len(),
        report.matches.len()
    );
    assert!(
        !report.matches.is_empty(),
        "the planted retry amplification must be detected"
    );

    // The digest folds the streamed summaries: under the injected delay
    // the windowed p99 inflects — the latency-visible onset of the
    // cascade, timestamped in virtual milliseconds.
    let digest = MetricsDigest::from_records(&recorder.records());
    println!(
        "Telemetry: {} workload summaries, {} p99 inflections, first at {} ms, peak p99 {} µs.",
        digest.workload_summaries,
        digest.workload_inflections,
        digest.workload_first_inflection_ms.unwrap_or(0),
        digest.workload_peak_p99_us
    );
    assert!(digest.workload_inflections > 0, "cascade must inflect p99");
}
