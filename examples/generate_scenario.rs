//! Generate a scenario from a seed, inspect its planted ground truth,
//! and detect the planted cycle end-to-end.
//!
//! ```sh
//! cargo run --release --example generate_scenario [seed]
//! ```
//!
//! The synthesizer (`csnake-gen`) expands the seed into a random
//! component graph with one planted self-sustaining cycle and a decoy
//! inventory, emits it through the canonical pretty-printer, and the
//! example then compiles the *text* and runs the staged detection
//! pipeline against it — the same print → parse → compile contract the
//! `gen_eval` harness scores recall over.

use csnake::core::{DetectConfig, Session, ThreePhase};
use csnake_gen::{generate, GenConfig};
use csnake_scenario::{compile, parse_str, print};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(42);

    // 1. Expand the seed. With `shape: None` the family cycles with the
    //    seed, so consecutive seeds sweep all four families.
    let g = generate(seed, &GenConfig::default());
    println!("# gen:{seed} — {} family", g.shape);
    for planted in &g.truth {
        println!(
            "# planted: {} (labels {:?})",
            planted.bug_id, planted.labels
        );
    }

    // 2. The canonical text is the artifact: print, reparse, compile.
    let text = print(&g.spec);
    println!("{text}");
    let spec = parse_str(&text).expect("generated specs always parse");
    assert_eq!(spec, g.spec, "print → parse is the identity");
    let system = compile(&spec).expect("generated specs always compile");

    // 3. Detect the planted cycle with a reduced staged campaign.
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    let mut session = Session::builder(&system)
        .config(cfg.clone())
        .build()
        .expect("generated targets are drivable");
    let report = session
        .run_to_report(&ThreePhase::new(cfg.alloc.clone()))
        .expect("staged pipeline runs");
    println!(
        "# detected {} of {} planted cycle(s) in {} experiments",
        report.matches.len(),
        report.matches.len() + report.undetected.len(),
        report.experiments_run
    );
    for m in &report.matches {
        println!("# match: {} via cluster {}", m.bug.id, m.cluster_idx);
    }
}
