//! The §8.3.2 case study: HDFS 2's bypassed IBR throttling.
//!
//! A failed incremental block report is retried at the very next heartbeat,
//! ignoring the configured report interval. The two causal edges live in
//! two different workloads:
//!
//! * `test_balancer_many_blocks` (unthrottled, high volume): delaying IBR
//!   processing times out report RPCs — but the report *cadence* does not
//!   change, so no iteration-count interference is observable there;
//! * `test_ibr_interval_config` (throttled, 8 blocks): injecting the report
//!   RPC exception makes the failed report reappear at the next heartbeat —
//!   a statistically significant increase against the throttled cadence.
//!
//! ```sh
//! cargo run --release --example hdfs_ibr_throttle
//! ```

use csnake::core::driver::seed_for;
use csnake::core::stats::welch_one_sided_p;
use csnake::core::{DriverConfig, TargetSystem};
use csnake::inject::{InjectionPlan, TestId};
use csnake::targets::MiniHdfs2;

fn counts(
    target: &MiniHdfs2,
    cfg: &DriverConfig,
    test: TestId,
    plan: Option<InjectionPlan>,
    loop_id: csnake::inject::FaultId,
) -> Vec<f64> {
    (0..cfg.reps)
        .map(|rep| {
            target
                .run(test, plan, seed_for(0xCA5E, test, rep))
                .loop_count(loop_id) as f64
        })
        .collect()
}

fn main() {
    let target = MiniHdfs2::new();
    // The paper preset: 5 repetitions per run set (the exception probe here
    // needs no delay sweep, but the preset carries the full 7-point one).
    let cfg = DriverConfig::paper();
    let ids = target.ids();
    let throttled = TestId(7); // test_ibr_interval_config
    let unthrottled = TestId(6); // test_balancer_many_blocks
    let plan = Some(InjectionPlan::throw(ids.tp_ibr_ioe));

    println!("Injecting the IBR RPC exception into both workloads:\n");
    for (name, test) in [
        ("throttled (8 blocks, 6s interval)", throttled),
        ("unthrottled (volume test)", unthrottled),
    ] {
        let prof = counts(&target, &cfg, test, None, ids.l_ibr_send);
        let inj = counts(&target, &cfg, test, plan, ids.l_ibr_send);
        let p = welch_one_sided_p(&prof, &inj);
        println!("  {name}:");
        println!("    profile  report-send counts: {prof:?}");
        println!("    injected report-send counts: {inj:?}");
        println!(
            "    one-sided Welch p = {p:.4} → {}",
            if p < 0.1 {
                "S+ interference (throttle bypass visible)"
            } else {
                "no interference (reports already sent at every heartbeat)"
            }
        );
        println!();
    }

    println!(
        "The paper's observation reproduced: the retry-storm back-edge is\n\
         only observable in the throttled workload, while the forward edge\n\
         (processing delay → RPC exception) needs the high-volume one —\n\
         causal stitching links them into the cycle."
    );
}
