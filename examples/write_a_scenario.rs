//! Write your own scenario: a fault-injection target as a text file.
//!
//! Every bundled target is also expressible in the `csnake-scenario`
//! language (see `scenarios/*.csnake-scn` for the corpus, including a
//! port of the toy target proven field-identical to the Rust version).
//! This example builds a miniature system *from a string*, compiles it
//! into a `TargetSystem`, and drives the full detection pipeline — no
//! Rust target code involved.
//!
//! The spec walks through all five sections of a scenario:
//!
//! 1. **name + components** — `scenario`, `component`/`queue`;
//! 2. **instrumentation** — `fn`, `loop`/`constloop`/`throw`/`negation`/
//!    `branchpoint` with the metadata the static filters need;
//! 3. **handlers** — the event-driven behaviour, instrumented through
//!    `guard`/`throwif`/`check`/`branch` hooks, with faults propagating
//!    to the nearest `try`;
//! 4. **workloads** — per-test cluster configs (`let`), horizon and
//!    initial schedule;
//! 5. **ground truth** — `bug` labels, used only for evaluation.
//!
//! ```sh
//! cargo run --example write_a_scenario
//! ```

use csnake::core::{detect, DetectConfig};
use csnake::scenario::{compile, parse_str, print};

const SPEC: &str = r#"
scenario demo-batcher

component Batcher { queue requests }

fn tick = "Batcher.tick"
fn process = "Batcher.process"
fn client = "Client.send"

loop batch_loop at tick:10 io
constloop warmup at tick:5 bound 2
throw deadline_ioe at process:22 class "IOException" category system
negation backlog_ok at tick:8 error_when false source detector

handler Send in Batcher fn client {
  submit requests every $interval
}

handler Tick in Batcher fn tick {
  constloop warmup { }
  check backlog_ok ok len(requests) < 300 onerr { flag "backlog" }
  loop batch_loop drain requests {
    try {
      frame process {
        advance 2ms
        guard deadline_ioe
        throwif deadline_ioe age(item) > 12s
      }
    } onerr {
      if ($retry_fanout > 0) and (retries(item) < 2) {
        repeat $retry_fanout { requeue requests }
      }
    }
  }
  if (submitted(requests) < $requests) or (not empty(requests)) {
    sched Tick after 100ms
  } else {
    sched Tick after 1s
  }
}

workload volume "many requests, no retries" {
  let requests = 120
  let interval = 20ms
  let retry_fanout = 0
  horizon 600s
  spawn Send count $requests every $interval
  sched Tick after 100ms
}

workload retry "few requests, speculative fanout" {
  let requests = 20
  let interval = 50ms
  let retry_fanout = 5
  horizon 600s
  spawn Send count $requests every $interval
  sched Tick after 100ms
}

bug demo-deadline-storm jira "DEMO-1" summary "slow batching times out requests whose retries re-load the batch loop" labels [batch_loop, deadline_ioe]
"#;

fn main() {
    // Parse (line/column errors on malformed input), then compile
    // (registry validation, name resolution, type checking).
    let spec = parse_str(SPEC).expect("spec parses");
    let system = compile(&spec).expect("spec compiles");

    // The canonical form is stable: print -> parse is the identity.
    assert_eq!(parse_str(&print(&spec)).unwrap(), spec);

    // A compiled scenario is a TargetSystem like any hand-coded one.
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    let detection = detect(&system, &cfg);

    println!(
        "{}: {} causal edges, {} cycles",
        spec.name,
        detection.alloc.db.len(),
        detection.report.cycles.len()
    );
    for m in &detection.report.matches {
        println!(
            "detected {} [{}]: {} — composition {}",
            m.bug.id, m.bug.jira, m.bug.summary, m.composition
        );
    }
    assert!(
        detection.report.undetected.is_empty(),
        "the seeded cycle must be detected: {:?}",
        detection.report.undetected
    );
}
