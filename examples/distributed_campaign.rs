//! Distributed campaign: shard one detection campaign across a worker
//! fleet and prove the result is bit-identical to running it alone.
//!
//! The `csnake-daemon` crate splits the staged `Session` pipeline into a
//! **coordinator** (owns the session, the 3PA plan, and the merge order)
//! and stateless **workers** (re-profile deterministically, run whatever
//! shards they are assigned, stream results back over a length-prefixed,
//! checksummed frame protocol built on the same `Persist` trait as
//! `.csnake` snapshots). Because 3PA plans every phase's batch up front
//! and experiment outcomes are pure in `(test, plan, seed)`, sharding is
//! result-invariant: any worker count, any shard interleaving, any
//! crash/reassign history lands on the same `DetectionReport`.
//!
//! This example drives everything in one process — the workers live on
//! threads behind in-memory channel transports, exchanging the exact
//! bytes real sockets would carry. The same campaign distributed over
//! worker *processes* is one command:
//!
//! ```sh
//! cargo run -p csnake-daemon --bin csnake-daemon -- run --target toy -j 4 --fast
//! ```
//!
//! (or `serve`/`work --connect` to split coordinator and workers across
//! machines over TCP).
//!
//! ```sh
//! cargo run --example distributed_campaign
//! ```

use std::sync::Arc;

use csnake::core::{DetectConfig, ProgressCollector, Session, ThreePhase};
use csnake_daemon::{run_distributed, DaemonConfig, RunOptions};

fn demo_config() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg
}

fn main() {
    // Baseline: the plain single-process pipeline on the bundled toy
    // target (the quickstart example, condensed).
    let target = csnake_gen::by_name("toy").expect("bundled target");
    let mut session = Session::builder(target.as_ref())
        .config(demo_config())
        .build()
        .expect("session builds");
    let baseline = session
        .run_to_report(&ThreePhase::default())
        .expect("single-process campaign")
        .clone();
    println!(
        "single process: {} cycles, {} matches, {} runs",
        baseline.cycles.len(),
        baseline.matches.len(),
        session.runs_executed()
    );

    // The same campaign, sharded across three workers. The observer
    // additionally sees the fleet lifecycle: worker_connected,
    // shard_assigned, (on failure) worker_lost / shard_reassigned.
    let progress = Arc::new(ProgressCollector::new());
    let opts = RunOptions {
        daemon: DaemonConfig {
            shard_jobs: 2, // small shards so every worker participates
            ..DaemonConfig::default()
        },
        observer: Some(progress.clone()),
        ..RunOptions::default()
    };
    let run = run_distributed("toy", demo_config(), 3, opts).expect("distributed campaign");
    let snap = progress.snapshot();
    println!(
        "distributed:    {} cycles, {} matches, {} runs across {} workers ({} shards)",
        run.report.cycles.len(),
        run.report.matches.len(),
        run.outcome.runs_executed,
        snap.workers_connected,
        snap.shards_assigned,
    );

    // The headline contract: not "similar" — identical, bit for bit.
    assert_eq!(
        format!("{baseline:?}"),
        format!("{:?}", run.report),
        "a distributed campaign must be indistinguishable from a local one"
    );
    assert_eq!(run.outcome.runs_executed, session.runs_executed());
    println!("reports are Debug-identical — distribution is invisible in results");
}
