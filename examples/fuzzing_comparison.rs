//! §8.2.1 in miniature: black-box fuzzing finds none of the seeded
//! self-sustaining cascading failures that CSnake detects.
//!
//! ```sh
//! cargo run --release --example fuzzing_comparison
//! ```

use csnake::baselines::{run_blackbox_campaign, BlackboxConfig};
use csnake::core::{detect, DetectConfig, TargetSystem};
use csnake::targets::MiniOzone;

fn main() {
    let target = MiniOzone::new();

    println!("Black-box fuzzing campaign (Blockade-style) on mini-Ozone...");
    let fuzz = run_blackbox_campaign(&target, &BlackboxConfig::default());
    println!(
        "  {} rounds, {} flagged runs, bugs attributed: {}",
        fuzz.rounds,
        fuzz.flagged_runs,
        fuzz.bugs_found.len()
    );

    println!("\nCSnake campaign on the same system...");
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800, 3200];
    cfg.alloc.budget_per_fault = 12;
    let det = detect(&target, &cfg);
    println!(
        "  {} experiments, {} edges, {} cycles",
        det.alloc.experiments_run,
        det.alloc.db.len(),
        det.report.cycles.len()
    );
    for m in &det.report.matches {
        println!(
            "  detected {} [{}] — {}",
            m.bug.id, m.bug.jira, m.composition
        );
    }

    assert!(fuzz.bugs_found.is_empty());
    assert!(!det.report.matches.is_empty());
    println!(
        "\nResult: fuzzer 0 / CSnake {} of {} seeded bugs — matching §8.2.1.",
        det.report.matches.len(),
        target.known_bugs().len()
    );
}
