//! Quickstart: drive the staged CSnake `Session` against the bundled toy
//! system and print the detected self-sustaining cascading failure.
//!
//! The session exposes the paper's pipeline stages one by one — each
//! returns a serializable artifact, and an observer streams events (phase
//! boundaries, experiments, new causal edges, cycles) while it runs:
//!
//! | call | paper stage | artifact |
//! |---|---|---|
//! | `profile()` | profile runs + static filtering | `Profiled` |
//! | `allocate(&strategy)` | 3PA fault injection with FCA | `CampaignOutcome` |
//! | `stitch()` | causal beam search + cycle clustering | `StitchedCycles` |
//! | `report()` | ground-truth matching, TP/FP verdicts | `DetectionReport` |
//!
//! Between any two stages the session can be checkpointed to a versioned
//! `.csnake` file and resumed later (`Session::checkpoint` /
//! `Session::resume`) — resumed campaigns are bit-identical to
//! uninterrupted ones.
//!
//! # Write your own scenario
//!
//! Targets don't have to be Rust modules: the `csnake-scenario` language
//! turns a text file into a runnable `TargetSystem` (components, queues,
//! instrumented handlers, per-workload cluster configs, ground-truth
//! labels). The bundled corpus lives under `scenarios/` — including a
//! port of this example's toy target proven field-identical to the Rust
//! version — and the `write_a_scenario` example walks through building
//! one from scratch:
//!
//! ```sh
//! cargo run --example write_a_scenario
//! cargo run -p csnake-bench --bin table4 -- --target kafka-isr
//! ```
//!
//! See the `csnake_scenario` crate docs for the full language walkthrough.
//!
//! # Drive real traffic
//!
//! Shipped targets run *closed* workloads — a fixed job list. The
//! `csnake-workload` crate supplies *open-loop* traffic: deterministic
//! arrival processes (Poisson, bursty on/off, diurnal) and recorded
//! request traces compile into ordinary `TargetSystem`s, pre-scheduling
//! millions of pending request timers per experiment (the load shape the
//! simulator's event-wheel scheduler exists for) and folding per-request
//! latency into windowed percentile summaries that stream through
//! campaign observers into the telemetry digest. The pseudo-targets
//! resolve everywhere a name does — `workload:open-loop`,
//! `workload:poisson`, `workload:bursty`, `workload:diurnal`,
//! `workload:replay` — and the `trace_driven_campaign` example walks a
//! Poisson campaign from arrival spec to detected cascade:
//!
//! ```sh
//! cargo run --release --example trace_driven_campaign
//! cargo run -p csnake-bench --bin table4 -- --target workload:open-loop
//! ```
//!
//! # Distribute the campaign
//!
//! The same pipeline shards across worker processes without changing its
//! results — `csnake-daemon run -j N` spawns a local N-worker fleet and
//! produces a report bit-identical to this example's single-process run
//! (the `distributed_campaign` example proves the equality in-process):
//!
//! ```sh
//! cargo run -p csnake-daemon --bin csnake-daemon -- run --target toy -j 4 --fast
//! cargo run --example distributed_campaign
//! ```
//!
//! # Watch a campaign
//!
//! Observers are fan-out-able, so the counting collector above can ride
//! next to a `csnake_telemetry::FlightRecorder` that journals every event
//! with timestamps and span durations (this example attaches one). From a
//! recorded campaign you get:
//!
//! * a JSONL journal you can `tail -f` while the campaign runs, plus a
//!   checksummed binary twin that rejects truncation like a snapshot;
//! * a `chrome://tracing` / Perfetto-loadable trace
//!   (`write_chrome_trace`) of the stage/phase spans;
//! * a `MetricsDigest` with per-stage wall times and experiment-latency
//!   percentiles — the numbers printed at the end of this example.
//!
//! Long-running fleet campaigns render live instead: `csnake-daemon run
//! --progress` repaints per-worker shard/lease/budget state every second
//! (`--journal BASE` writes all four artifacts above), and the `table4` /
//! `gen_eval` bins accept the same `--progress` flag.
//!
//! ```sh
//! cargo run -p csnake-daemon --bin csnake-daemon -- \
//!     run --target toy -j 2 --fast --progress --journal /tmp/toy
//! ```
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use csnake::core::{
    CampaignObserver, DetectConfig, FanoutObserver, ProgressCollector, Session, TargetSystem,
    ThreePhase,
};
use csnake::targets::ToySystem;
use csnake::telemetry::{FlightRecorder, MetricsDigest};

fn main() {
    let target = ToySystem::new();

    // Fast settings for a demo: 3 repetitions per run set and a short
    // delay sweep (use `DriverConfig::paper()` for the paper's 5 reps and
    // full 7-point 100ms–8s sweep).
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];

    // The bundled observer counts events; custom observers implement any
    // subset of `CampaignObserver` (stage/phase boundaries, experiments,
    // edges, cycles, budget). A fanout delivers the same stream to many
    // sinks — here a counting collector plus the flight recorder that
    // produces the timing digest printed at the end.
    let progress = Arc::new(ProgressCollector::new());
    let recorder = Arc::new(
        FlightRecorder::builder()
            .build()
            .expect("in-memory recorder"),
    );
    let observer = Arc::new(FanoutObserver::new(vec![
        progress.clone() as Arc<dyn CampaignObserver>,
        recorder.clone() as Arc<dyn CampaignObserver>,
    ]));
    let mut session = Session::builder(&target)
        .config(cfg.clone())
        .observer(observer)
        .build()
        .expect("the toy target is drivable");

    println!("Profiling workloads and applying the static filters...");
    let profiled = session.profile().expect("profile stage");
    println!(
        "  {} workloads, {} profile runs, {} fault points injectable \
         ({} filtered).",
        profiled.tests, profiled.profile_runs, profiled.injectable_faults, profiled.filtered_faults
    );

    println!("Running the 3PA fault-injection campaign...");
    let outcome = session
        .allocate(&ThreePhase::new(cfg.alloc.clone()))
        .expect("allocation stage");
    println!(
        "  strategy {:?}: {} of {} budgeted experiments, {} causal edges.",
        outcome.strategy, outcome.experiments_run, outcome.budget, outcome.edges
    );

    println!("Stitching causal cycles...");
    session.stitch().expect("stitch stage");
    let report = session.report().expect("report stage").clone();

    let reg = target.registry();
    let alloc = session.allocation().expect("campaign ran");
    println!("\nCausal relationships:");
    for e in alloc.db.edges() {
        println!("  {}", e.describe(&reg));
    }

    println!("\nSelf-sustaining cascading failures:");
    for (i, cycle) in report.cycles.iter().enumerate().take(5) {
        let labels: Vec<&str> = cycle
            .edges
            .iter()
            .map(|&ei| reg.point(alloc.db.edge(ei).cause).label)
            .collect();
        println!("  #{i}: {} (score {:.3})", labels.join(" -> "), cycle.score);
    }

    for m in &report.matches {
        println!(
            "\nMatched seeded bug {} [{}]: {} — composition {}",
            m.bug.id, m.bug.jira, m.bug.summary, m.composition
        );
    }

    let seen = progress.snapshot();
    println!(
        "\nObserver saw: {} phases, {} experiments, {} edges, {} cycles.",
        seen.phases_finished, seen.experiments, seen.edges, seen.cycles
    );
    assert_eq!(seen.edges, alloc.db.len());

    // The recorder saw the same stream with timestamps: its digest is the
    // campaign's timing story (per-stage wall, latency percentiles).
    let digest = MetricsDigest::from_records(&recorder.records());
    print!("Recorder timing:");
    for (stage, micros) in &digest.stage_wall_micros {
        print!(" {stage} {:.1}ms", *micros as f64 / 1e3);
    }
    println!(
        " — experiment latency p50 {}µs p99 {}µs.",
        digest.experiment_latency.p50_micros, digest.experiment_latency.p99_micros
    );
    assert_eq!(digest.experiments, seen.experiments);
    assert!(
        !report.matches.is_empty(),
        "the toy retry storm must be detected"
    );
}
