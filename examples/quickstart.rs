//! Quickstart: run the complete CSnake pipeline against the bundled toy
//! system and print the detected self-sustaining cascading failure.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use csnake::core::TargetSystem;
use csnake::core::{detect, DetectConfig};
use csnake::targets::ToySystem;

fn main() {
    let target = ToySystem::new();

    // Fast settings for a demo: 3 repetitions per run set and a short
    // delay sweep (the paper uses 5 reps and a 7-point 100ms–8s sweep).
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];

    println!("Profiling workloads, filtering fault points, running 3PA...");
    let detection = detect(&target, &cfg);

    println!(
        "\n{} fault points injectable after static filtering; \
         {} experiments run; {} causal edges discovered.",
        detection.analysis.injectable.len(),
        detection.alloc.experiments_run,
        detection.alloc.db.len(),
    );

    let reg = target.registry();
    println!("\nCausal relationships:");
    for e in detection.alloc.db.edges() {
        println!("  {}", e.describe(&reg));
    }

    println!("\nSelf-sustaining cascading failures:");
    for (i, cycle) in detection.report.cycles.iter().enumerate().take(5) {
        let labels: Vec<&str> = cycle
            .edges
            .iter()
            .map(|&ei| reg.point(detection.alloc.db.edge(ei).cause).label)
            .collect();
        println!("  #{i}: {} (score {:.3})", labels.join(" -> "), cycle.score);
    }

    for m in &detection.report.matches {
        println!(
            "\nMatched seeded bug {} [{}]: {} — composition {}",
            m.bug.id, m.bug.jira, m.bug.summary, m.composition
        );
    }
    assert!(
        !detection.report.matches.is_empty(),
        "the toy retry storm must be detected"
    );
}
