//! Quickstart: drive the staged CSnake `Session` against the bundled toy
//! system and print the detected self-sustaining cascading failure.
//!
//! The session exposes the paper's pipeline stages one by one — each
//! returns a serializable artifact, and an observer streams events (phase
//! boundaries, experiments, new causal edges, cycles) while it runs:
//!
//! | call | paper stage | artifact |
//! |---|---|---|
//! | `profile()` | profile runs + static filtering | `Profiled` |
//! | `allocate(&strategy)` | 3PA fault injection with FCA | `CampaignOutcome` |
//! | `stitch()` | causal beam search + cycle clustering | `StitchedCycles` |
//! | `report()` | ground-truth matching, TP/FP verdicts | `DetectionReport` |
//!
//! Between any two stages the session can be checkpointed to a versioned
//! `.csnake` file and resumed later (`Session::checkpoint` /
//! `Session::resume`) — resumed campaigns are bit-identical to
//! uninterrupted ones.
//!
//! # Write your own scenario
//!
//! Targets don't have to be Rust modules: the `csnake-scenario` language
//! turns a text file into a runnable `TargetSystem` (components, queues,
//! instrumented handlers, per-workload cluster configs, ground-truth
//! labels). The bundled corpus lives under `scenarios/` — including a
//! port of this example's toy target proven field-identical to the Rust
//! version — and the `write_a_scenario` example walks through building
//! one from scratch:
//!
//! ```sh
//! cargo run --example write_a_scenario
//! cargo run -p csnake-bench --bin table4 -- --target kafka-isr
//! ```
//!
//! See the `csnake_scenario` crate docs for the full language walkthrough.
//!
//! # Distribute the campaign
//!
//! The same pipeline shards across worker processes without changing its
//! results — `csnake-daemon run -j N` spawns a local N-worker fleet and
//! produces a report bit-identical to this example's single-process run
//! (the `distributed_campaign` example proves the equality in-process):
//!
//! ```sh
//! cargo run -p csnake-daemon --bin csnake-daemon -- run --target toy -j 4 --fast
//! cargo run --example distributed_campaign
//! ```
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use csnake::core::{DetectConfig, ProgressCollector, Session, TargetSystem, ThreePhase};
use csnake::targets::ToySystem;

fn main() {
    let target = ToySystem::new();

    // Fast settings for a demo: 3 repetitions per run set and a short
    // delay sweep (use `DriverConfig::paper()` for the paper's 5 reps and
    // full 7-point 100ms–8s sweep).
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];

    // The bundled observer counts events; custom observers implement any
    // subset of `CampaignObserver` (stage/phase boundaries, experiments,
    // edges, cycles, budget).
    let progress = Arc::new(ProgressCollector::new());
    let mut session = Session::builder(&target)
        .config(cfg.clone())
        .observer(progress.clone())
        .build()
        .expect("the toy target is drivable");

    println!("Profiling workloads and applying the static filters...");
    let profiled = session.profile().expect("profile stage");
    println!(
        "  {} workloads, {} profile runs, {} fault points injectable \
         ({} filtered).",
        profiled.tests, profiled.profile_runs, profiled.injectable_faults, profiled.filtered_faults
    );

    println!("Running the 3PA fault-injection campaign...");
    let outcome = session
        .allocate(&ThreePhase::new(cfg.alloc.clone()))
        .expect("allocation stage");
    println!(
        "  strategy {:?}: {} of {} budgeted experiments, {} causal edges.",
        outcome.strategy, outcome.experiments_run, outcome.budget, outcome.edges
    );

    println!("Stitching causal cycles...");
    session.stitch().expect("stitch stage");
    let report = session.report().expect("report stage").clone();

    let reg = target.registry();
    let alloc = session.allocation().expect("campaign ran");
    println!("\nCausal relationships:");
    for e in alloc.db.edges() {
        println!("  {}", e.describe(&reg));
    }

    println!("\nSelf-sustaining cascading failures:");
    for (i, cycle) in report.cycles.iter().enumerate().take(5) {
        let labels: Vec<&str> = cycle
            .edges
            .iter()
            .map(|&ei| reg.point(alloc.db.edge(ei).cause).label)
            .collect();
        println!("  #{i}: {} (score {:.3})", labels.join(" -> "), cycle.score);
    }

    for m in &report.matches {
        println!(
            "\nMatched seeded bug {} [{}]: {} — composition {}",
            m.bug.id, m.bug.jira, m.bug.summary, m.composition
        );
    }

    let seen = progress.snapshot();
    println!(
        "\nObserver saw: {} phases, {} experiments, {} edges, {} cycles.",
        seen.phases_finished, seen.experiments, seen.edges, seen.cycles
    );
    assert_eq!(seen.edges, alloc.db.len());
    assert!(
        !report.matches.is_empty(),
        "the toy retry storm must be detected"
    );
}
