//! How to put *your own* system under CSnake: implement [`TargetSystem`].
//!
//! This example builds a minimal two-component system from scratch — a
//! cache in front of a backing store, where cache-miss storms overload the
//! store and store timeouts invalidate cache entries — and runs detection
//! on it.
//!
//! ```sh
//! cargo run --release --example custom_target
//! ```

use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;

use csnake::core::{DetectConfig, KnownBug, Session, TargetSystem, TestCase, ThreePhase};
use csnake::inject::{
    Agent, ExceptionCategory, FaultId, InjectionPlan, Registry, RegistryBuilder, RunTrace, TestId,
};
use csnake::sim::{Clock, Sim, VirtualTime, World};

struct CacheStore {
    registry: Arc<Registry>,
    l_store: FaultId,
    tp_store_timeout: FaultId,
    fn_store: csnake::inject::FnId,
}

enum Ev {
    Get,
    StoreTick,
}

struct CacheWorld {
    agent: Rc<Agent>,
    ids: (FaultId, FaultId, csnake::inject::FnId),
    invalidate_on_timeout: bool,
    store_queue: VecDeque<VirtualTime>,
    gets: u32,
    cached_fraction: u32, // percent served from cache
}

impl World for CacheWorld {
    type Event = Ev;
    fn handle(&mut self, sim: &mut Sim<Ev>, ev: Ev) {
        let (l_store, tp_timeout, fn_store) = self.ids;
        match ev {
            Ev::Get => {
                let intended = VirtualTime::from_millis(30) * (self.gets as u64 + 1);
                self.gets += 1;
                // Cache miss goes to the store (miss rate = 100 - cached%).
                if self.gets % 10 >= self.cached_fraction / 10 {
                    self.store_queue.push_back(intended);
                }
            }
            Ev::StoreTick => {
                let _f = self.agent.frame(fn_store);
                let lg = self.agent.loop_enter(l_store);
                let n = self.store_queue.len().min(16);
                for _ in 0..n {
                    lg.iter(sim);
                    sim.advance(VirtualTime::from_millis(1));
                    let req = self.store_queue.pop_front().expect("sized");
                    if self.agent.throw_guard(tp_timeout).is_some()
                        || sim.now().saturating_sub(req) > VirtualTime::from_secs(10)
                    {
                        if sim.now().saturating_sub(req) > VirtualTime::from_secs(10) {
                            let _ = self.agent.throw_fired(tp_timeout);
                        }
                        // Timeout invalidates cache entries → more misses.
                        if self.invalidate_on_timeout {
                            for k in 0..4u64 {
                                self.store_queue
                                    .push_back(sim.now() + VirtualTime::from_millis(k));
                            }
                        }
                    }
                }
                drop(lg);
                sim.schedule(VirtualTime::from_millis(100), Ev::StoreTick);
            }
        }
    }
}

impl CacheStore {
    fn new() -> Self {
        let mut b = RegistryBuilder::new("cache-store");
        let fn_store = b.func("Store.serve");
        let l_store = b.workload_loop(fn_store, 10, true, "store_loop");
        let tp_store_timeout = b.throw_point(
            fn_store,
            14,
            "TimeoutException",
            ExceptionCategory::SystemSpecific,
            "store_timeout",
        );
        CacheStore {
            registry: Arc::new(b.build()),
            l_store,
            tp_store_timeout,
            fn_store,
        }
    }
}

impl TargetSystem for CacheStore {
    fn name(&self) -> &'static str {
        "cache-store"
    }
    fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }
    fn tests(&self) -> Vec<TestCase> {
        vec![
            TestCase {
                id: TestId(0),
                name: "test_miss_storm",
                description: "60% miss rate, no invalidation reaction",
            },
            TestCase {
                id: TestId(1),
                name: "test_invalidation",
                description: "warm cache with invalidate-on-timeout",
            },
        ]
    }
    fn run(&self, test: TestId, plan: Option<InjectionPlan>, seed: u64) -> RunTrace {
        let ids = (self.l_store, self.tp_store_timeout, self.fn_store);
        csnake::targets::common::run_world(
            &self.registry,
            plan,
            seed,
            VirtualTime::from_secs(600),
            |agent, sim| {
                let (gets, cached, invalidate) = match test.0 {
                    0 => (200, 40, false),
                    _ => (60, 80, true),
                };
                for i in 0..gets {
                    sim.schedule_at(VirtualTime::from_millis(30) * (i + 1), Ev::Get);
                }
                sim.schedule(VirtualTime::from_millis(100), Ev::StoreTick);
                CacheWorld {
                    agent,
                    ids,
                    invalidate_on_timeout: invalidate,
                    store_queue: VecDeque::new(),
                    gets: 0,
                    cached_fraction: cached,
                }
            },
        )
    }
    fn known_bugs(&self) -> Vec<KnownBug> {
        vec![KnownBug {
            id: "cache-invalidation-storm",
            jira: "EXAMPLE-1",
            summary: "store timeouts invalidate cache entries whose misses re-load the store",
            labels: vec!["store_loop", "store_timeout"],
        }]
    }
}

fn main() {
    let target = CacheStore::new();
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];

    // Drive the staged session directly: custom targets get the same typed
    // construction errors, stage artifacts and checkpointing as the
    // bundled ones.
    let mut session = Session::builder(&target)
        .config(cfg.clone())
        .build()
        .expect("the cache/store target is drivable");
    session.profile().expect("profile stage");
    session
        .allocate(&ThreePhase::new(cfg.alloc.clone()))
        .expect("allocation stage");
    session.stitch().expect("stitch stage");
    let report = session.report().expect("report stage");

    println!(
        "edges: {}  cycles: {}",
        report.edge_count,
        report.cycles.len()
    );
    for m in &report.matches {
        println!("detected {}: {}", m.bug.id, m.composition);
    }
    assert!(
        !report.matches.is_empty(),
        "the invalidation storm must be found"
    );
}
