//! Miniature distributed systems with instrumented fault handling.
//!
//! The paper evaluates CSnake on five real Java systems (HDFS 2.10.2,
//! HDFS 3.4.1, HBase 2.6.0, Flink 1.20.0, Ozone 1.4.0). This crate provides
//! the reproduction's substitutes: for each system, a miniature Rust
//! reimplementation of its *fault-handling architecture* — heartbeats, block
//! reports, write pipelines, region assignment, balancers, WAL replay,
//! checkpoint barriers, container-report queues, replication commands — with
//! the retry/recovery logic that forms the paper's Table 3 self-sustaining
//! cascading failures seeded as genuine logic flaws.
//!
//! Every mini-system:
//!
//! * runs on the deterministic discrete-event simulator (`csnake-sim`);
//! * declares its instrumentation inventory in a `csnake-inject` registry
//!   (throw points, negation points, workload loops, branch monitor points,
//!   plus deliberately filterable points so the static analyzer has work);
//! * ships a suite of *integration-test workloads* with distinct cluster
//!   configurations — no single workload satisfies all the conditions of any
//!   seeded cycle, which is exactly the situation causal stitching exists
//!   for;
//! * exposes its seeded bugs as ground truth (labels only — the detector
//!   never sees them).

pub mod common;
pub mod flink;
pub mod hbase;
pub mod hdfs2;
pub mod hdfs3;
pub mod ozone;
pub mod toy;

pub use flink::MiniFlink;
pub use hbase::MiniHBase;
pub use hdfs2::MiniHdfs2;
pub use hdfs3::MiniHdfs3;
pub use ozone::MiniOzone;
pub use toy::ToySystem;

use csnake_core::{CsnakeError, TargetSystem};

/// All five paper targets, in Table 2 order.
pub fn all_paper_targets() -> Vec<Box<dyn TargetSystem>> {
    vec![
        Box::new(MiniHdfs2::new()),
        Box::new(MiniHdfs3::new()),
        Box::new(MiniHBase::new()),
        Box::new(MiniFlink::new()),
        Box::new(MiniOzone::new()),
    ]
}

/// Names of every hand-coded target this crate bundles, in `by_name`
/// resolution order.
pub fn builtin_names() -> Vec<&'static str> {
    let mut names = vec!["toy"];
    names.extend(all_paper_targets().iter().map(|t| t.name()));
    names
}

/// Resolves a bundled target by its [`TargetSystem::name`] — the name
/// recorded in `.csnake` session snapshots and accepted by the evaluation
/// binaries' `--target` flag. Covers the five paper targets plus `"toy"`.
///
/// Unknown names are a typed [`CsnakeError::InvalidTarget`] listing every
/// known name, never a panic — `csnake_scenario::by_name` layers the
/// scenario-file corpus on top of this resolver.
pub fn by_name(name: &str) -> Result<Box<dyn TargetSystem>, CsnakeError> {
    if name == "toy" {
        return Ok(Box::new(ToySystem::new()));
    }
    all_paper_targets()
        .into_iter()
        .find(|t| t.name() == name)
        .ok_or_else(|| {
            CsnakeError::InvalidTarget(format!(
                "unknown target {name:?}; known targets: {}",
                builtin_names().join(", ")
            ))
        })
}
