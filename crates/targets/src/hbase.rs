//! Mini-HBase: region assignment, FavoredStochasticBalancer and WAL replay.
//!
//! Reproduces the two HBase rows of Table 3:
//!
//! * **WAL** (1D|0E|1N, HBASE-29600): a delayed WAL sync loop lets the
//!   reader hit a premature end-of-file; replay re-appends entries into the
//!   same sync loop.
//! * **Region assignment** (1D|1E|1N, HBASE-29006 — the §8.3.1 case study):
//!   a delayed region-deployment loop times out assignment RPCs; an
//!   assignment IOE excludes the RegionServer from the
//!   FavoredStochasticBalancer, which needs ≥ 3 live servers; the failing
//!   balancer blindly re-enqueues every pending assignment, further loading
//!   the deployment loop. The three propagation steps require three
//!   *different* workloads (many assignments / 3-node favored cluster /
//!   long favored workload) — exactly the situation causal stitching exists
//!   for.

use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;

use csnake_core::{KnownBug, TargetSystem, TestCase};
use csnake_inject::{
    Agent, BoolSource, BranchId, ExceptionCategory, FaultId, FnId, InjectionPlan, Registry,
    RegistryBuilder, RunTrace, TestId,
};
use csnake_sim::{Clock, Sim, VirtualTime, World};

use crate::common::{run_world, timeouts};

/// Instrumentation ids of mini-HBase.
#[derive(Debug, Clone, Copy)]
pub struct HBaseIds {
    fn_assign: FnId,
    fn_balancer: FnId,
    fn_rs_open: FnId,
    fn_wal: FnId,
    fn_client: FnId,
    /// Master assignment-manager loop.
    pub l_assign: FaultId,
    /// RegionServer region-deployment loop.
    pub l_deploy: FaultId,
    /// WAL sync loop.
    pub l_wal_sync: FaultId,
    /// Client put loop.
    pub l_client_put: FaultId,
    /// Constant-bound loop (filtered).
    pub l_const: FaultId,
    /// Assignment RPC IOE on the RegionServer.
    pub tp_assign_ioe: FaultId,
    /// Library call site in the WAL writer.
    pub tp_wal_sock: FaultId,
    /// `FavoredStochasticBalancer.canPlaceFavoredNodes` (error when `false`).
    pub np_can_place: FaultId,
    /// WAL reader integrity detector — premature EOF (error when `false`).
    pub np_wal_intact: FaultId,
    /// JDK utility decoy (filtered).
    pub np_contains: FaultId,
    br_favored: BranchId,
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
struct HBaseCfg {
    region_servers: usize,
    /// Region assignments issued by table creations (open-loop).
    assignments: u32,
    assign_interval_ms: u64,
    puts: u32,
    favored_balancer: bool,
    /// WAL replay on premature EOF (the seeded WAL bug's amplifier).
    wal_replay: bool,
    horizon_s: u64,
}

impl Default for HBaseCfg {
    fn default() -> Self {
        HBaseCfg {
            region_servers: 5,
            assignments: 10,
            assign_interval_ms: 300,
            puts: 20,
            favored_balancer: false,
            wal_replay: true,
            horizon_s: 45,
        }
    }
}

const TICK: VirtualTime = VirtualTime::from_millis(250);

#[derive(Debug, Clone, Copy)]
enum Ev {
    AssignStart,
    Put,
    AssignTick,
    DeployTick,
    WalTick,
    RsRejoin(usize),
}

#[derive(Debug, Clone, Copy)]
struct AssignReq {
    issued: VirtualTime,
    attempts: u8,
}

#[derive(Debug, Clone, Copy)]
struct DeployReq {
    sent: VirtualTime,
    rs: usize,
}

struct HBaseWorld {
    agent: Rc<Agent>,
    ids: HBaseIds,
    cfg: HBaseCfg,
    assign_queue: VecDeque<AssignReq>,
    deploy_queue: VecDeque<DeployReq>,
    rs_excluded: Vec<bool>,
    wal_pending: u64,
    wal_last_tick: VirtualTime,
    wal_replays: u32,
    assigns_issued: u32,
    puts_done: u32,
    regions_online: u32,
}

impl HBaseWorld {
    fn assign_tick(&mut self, sim: &mut Sim<Ev>) {
        let _f = self.agent.frame(self.ids.fn_assign);
        let lg = self.agent.loop_enter(self.ids.l_assign);
        let n = self.assign_queue.len().min(12);
        let mut retry_all = false;
        for _ in 0..n {
            lg.iter(sim);
            sim.advance(VirtualTime::from_micros(300));
            let req = self.assign_queue.pop_front().expect("sized loop");
            // Balancer placement check.
            let placed = {
                let _b = self.agent.frame(self.ids.fn_balancer);
                self.agent
                    .branch(self.ids.br_favored, self.cfg.favored_balancer);
                if self.cfg.favored_balancer {
                    let live = self.rs_excluded.iter().filter(|x| !**x).count();
                    // The favored balancer needs at least three live servers.
                    self.agent.negation_point(self.ids.np_can_place, live >= 3)
                } else {
                    true
                }
            };
            if placed {
                let rs = (self.assigns_issued as usize + self.regions_online as usize)
                    % self.cfg.region_servers;
                self.deploy_queue.push_back(DeployReq {
                    sent: req.issued,
                    rs,
                });
            } else if req.attempts < 3 {
                // Seeded bug: the failing balancer blindly re-enqueues the
                // assignment (and stirs every pending one) instead of
                // backing off.
                retry_all = true;
                self.assign_queue.push_back(AssignReq {
                    issued: sim.now(),
                    attempts: req.attempts + 1,
                });
            }
        }
        drop(lg);
        if retry_all {
            // Blind retry storm: every pending assignment is re-dispatched
            // to the RegionServers as a fresh deployment probe.
            let pending: Vec<AssignReq> = self.assign_queue.iter().copied().collect();
            for (i, _req) in pending.iter().enumerate() {
                let rs = i % self.cfg.region_servers;
                self.deploy_queue.push_back(DeployReq {
                    sent: sim.now(),
                    rs,
                });
            }
        }
        sim.schedule(TICK, Ev::AssignTick);
    }

    fn deploy_tick(&mut self, sim: &mut Sim<Ev>) {
        let _f = self.agent.frame(self.ids.fn_rs_open);
        let lg = self.agent.loop_enter(self.ids.l_deploy);
        let n = self.deploy_queue.len().min(16);
        for _ in 0..n {
            lg.iter(sim);
            sim.advance(VirtualTime::from_millis(1));
            let req = self.deploy_queue.pop_front().expect("sized loop");
            if self.agent.throw_guard(self.ids.tp_assign_ioe).is_some() {
                self.on_assign_failure(sim, req);
                continue;
            }
            if sim.now().saturating_sub(req.sent) > timeouts::RPC {
                let _ = self.agent.throw_fired(self.ids.tp_assign_ioe);
                self.on_assign_failure(sim, req);
                continue;
            }
            self.regions_online += 1;
        }
        drop(lg);
        sim.schedule(TICK, Ev::DeployTick);
    }

    /// An assignment RPC threw: exclude the RS from the balancer's live set
    /// and re-queue the assignment.
    fn on_assign_failure(&mut self, sim: &mut Sim<Ev>, req: DeployReq) {
        if !self.rs_excluded[req.rs] {
            self.rs_excluded[req.rs] = true;
            sim.schedule(VirtualTime::from_secs(10), Ev::RsRejoin(req.rs));
        }
        self.assign_queue.push_back(AssignReq {
            issued: sim.now(),
            attempts: 1,
        });
    }

    fn wal_tick(&mut self, sim: &mut Sim<Ev>) {
        let _f = self.agent.frame(self.ids.fn_wal);
        if self.agent.throw_guard(self.ids.tp_wal_sock).is_some() {
            sim.schedule(TICK, Ev::WalTick);
            return;
        }
        // Constant-bound header verification (analyzer-filtered decoy).
        {
            let lg = self.agent.loop_enter(self.ids.l_const);
            for _ in 0..2 {
                lg.iter(sim);
            }
        }
        let lg = self.agent.loop_enter(self.ids.l_wal_sync);
        let n = self.wal_pending.min(16);
        self.wal_pending -= n;
        for _ in 0..n {
            lg.iter(sim);
            sim.advance(VirtualTime::from_micros(400));
        }
        drop(lg);
        // Reader integrity check: a sync loop running far behind its cadence
        // leaves a truncated tail — premature end-of-file.
        let intact = sim.now().saturating_sub(self.wal_last_tick) <= timeouts::RPC
            || self.wal_last_tick.is_zero();
        let ok = self.agent.negation_point(self.ids.np_wal_intact, intact);
        let _ = self
            .agent
            .negation_point(self.ids.np_contains, self.wal_pending == 0);
        if !ok && self.cfg.wal_replay && self.wal_replays < 40 {
            // Replay: re-append the trailing edits.
            self.wal_replays += 1;
            self.wal_pending += 24;
        }
        self.wal_last_tick = sim.now();
        sim.schedule(TICK, Ev::WalTick);
    }
}

impl World for HBaseWorld {
    type Event = Ev;

    fn handle(&mut self, sim: &mut Sim<Ev>, ev: Ev) {
        match ev {
            Ev::AssignStart => {
                let intended = VirtualTime::from_millis(self.cfg.assign_interval_ms)
                    * (self.assigns_issued as u64 + 1);
                self.assigns_issued += 1;
                self.assign_queue.push_back(AssignReq {
                    issued: intended,
                    attempts: 0,
                });
            }
            Ev::Put => {
                let _f = self.agent.frame(self.ids.fn_client);
                let lg = self.agent.loop_enter(self.ids.l_client_put);
                lg.iter(sim);
                drop(lg);
                self.puts_done += 1;
                self.wal_pending += 2;
            }
            Ev::AssignTick => self.assign_tick(sim),
            Ev::DeployTick => self.deploy_tick(sim),
            Ev::WalTick => self.wal_tick(sim),
            Ev::RsRejoin(rs) => {
                self.rs_excluded[rs] = false;
            }
        }
    }
}

/// The mini-HBase target.
pub struct MiniHBase {
    registry: Arc<Registry>,
    ids: HBaseIds,
}

impl Default for MiniHBase {
    fn default() -> Self {
        Self::new()
    }
}

impl MiniHBase {
    /// Builds the system and registry.
    pub fn new() -> Self {
        let mut b = RegistryBuilder::new("mini-hbase");
        let fn_assign = b.func("AssignmentManager.processAssignQueue");
        let fn_balancer = b.func("FavoredStochasticBalancer.balance");
        let fn_rs_open = b.func("RSRpcServices.openRegion");
        let fn_wal = b.func("FSHLog.sync");
        let fn_client = b.func("HTable.put");
        let l_assign = b.workload_loop(fn_assign, 210, false, "assign_loop");
        let l_deploy = b.workload_loop(fn_rs_open, 540, true, "deploy_loop");
        let l_wal_sync = b.workload_loop(fn_wal, 310, true, "wal_sync_loop");
        let l_client_put = b.workload_loop(fn_client, 95, true, "client_put_loop");
        let l_const = b.const_loop(fn_wal, 300, 2, "wal_header_check");
        let tp_assign_ioe = b.throw_point(
            fn_rs_open,
            557,
            "IOException",
            ExceptionCategory::SystemSpecific,
            "assign_ioe",
        );
        let tp_wal_sock = b.lib_call(fn_wal, 305, "SocketTimeoutException", "wal_sock");
        let np_can_place = b.negation_point(
            fn_balancer,
            101,
            false,
            BoolSource::ErrorDetector,
            "can_place_favored",
        );
        let np_wal_intact =
            b.negation_point(fn_wal, 330, false, BoolSource::ErrorDetector, "wal_intact");
        let np_contains = b.negation_point(fn_wal, 335, true, BoolSource::JdkUtility, "contains");
        let br_favored = b.branch(fn_balancer, 99);
        let ids = HBaseIds {
            fn_assign,
            fn_balancer,
            fn_rs_open,
            fn_wal,
            fn_client,
            l_assign,
            l_deploy,
            l_wal_sync,
            l_client_put,
            l_const,
            tp_assign_ioe,
            tp_wal_sock,
            np_can_place,
            np_wal_intact,
            np_contains,
            br_favored,
        };
        MiniHBase {
            registry: Arc::new(b.build()),
            ids,
        }
    }

    /// Instrumentation ids.
    pub fn ids(&self) -> HBaseIds {
        self.ids
    }

    fn cfg_for(test: TestId) -> HBaseCfg {
        let d = HBaseCfg::default();
        match test.0 {
            // t0: broad coverage, favored balancer on a roomy cluster.
            0 => HBaseCfg {
                favored_balancer: true,
                assignments: 14,
                puts: 24,
                ..d
            },
            // t1: many table creations (the case study's t1).
            1 => HBaseCfg {
                assignments: 80,
                assign_interval_ms: 80,
                puts: 10,
                ..d
            },
            // t2: RS fault tolerance on a 3-node favored cluster (t2).
            2 => HBaseCfg {
                region_servers: 3,
                favored_balancer: true,
                assignments: 12,
                ..d
            },
            // t3: favored balancer, long workload on 5 nodes (t3).
            3 => HBaseCfg {
                favored_balancer: true,
                assignments: 40,
                assign_interval_ms: 200,
                horizon_s: 70,
                ..d
            },
            // t4: WAL-heavy workload.
            4 => HBaseCfg {
                puts: 70,
                assignments: 4,
                ..d
            },
            // t5: WAL with replay disabled.
            5 => HBaseCfg {
                puts: 40,
                assignments: 4,
                wal_replay: false,
                ..d
            },
            // t6: light mixed smoke test.
            _ => HBaseCfg {
                assignments: 6,
                puts: 8,
                ..d
            },
        }
    }
}

impl TargetSystem for MiniHBase {
    fn name(&self) -> &'static str {
        "mini-hbase"
    }

    fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    fn tests(&self) -> Vec<TestCase> {
        let names: [(&'static str, &'static str); 7] = [
            ("test_basic_ops", "favored balancer, mixed ops, 5 RS"),
            ("test_create_many_tables", "80 assignments at 80ms"),
            ("test_rs_fault_tolerance", "3-RS favored cluster"),
            ("test_favored_balancer", "long favored workload, 5 RS"),
            ("test_wal_recovery", "70 puts with WAL replay"),
            ("test_wal_no_replay", "40 puts, replay disabled"),
            ("test_smoke", "light mixed workload"),
        ];
        names
            .iter()
            .enumerate()
            .map(|(i, (name, description))| TestCase {
                id: TestId(i as u32),
                name,
                description,
            })
            .collect()
    }

    fn run(&self, test: TestId, plan: Option<InjectionPlan>, seed: u64) -> RunTrace {
        let cfg = Self::cfg_for(test);
        let ids = self.ids;
        let horizon = VirtualTime::from_secs(cfg.horizon_s) + VirtualTime::from_secs(600);
        run_world(&self.registry, plan, seed, horizon, |agent, sim| {
            for i in 0..cfg.assignments {
                sim.schedule_at(
                    VirtualTime::from_millis(cfg.assign_interval_ms) * (i as u64 + 1),
                    Ev::AssignStart,
                );
            }
            for i in 0..cfg.puts {
                sim.schedule_at(VirtualTime::from_millis(120) * (i as u64 + 1), Ev::Put);
            }
            sim.schedule(TICK, Ev::AssignTick);
            sim.schedule(TICK, Ev::DeployTick);
            sim.schedule(TICK, Ev::WalTick);
            HBaseWorld {
                agent,
                ids,
                cfg,
                assign_queue: VecDeque::new(),
                deploy_queue: VecDeque::new(),
                rs_excluded: vec![false; cfg.region_servers],
                wal_pending: 0,
                wal_last_tick: VirtualTime::ZERO,
                wal_replays: 0,
                assigns_issued: 0,
                puts_done: 0,
                regions_online: 0,
            }
        })
    }

    fn known_bugs(&self) -> Vec<KnownBug> {
        vec![
            KnownBug {
                id: "hbase-wal-replay",
                jira: "HBASE-29600",
                summary: "WAL sync delay trips the premature-EOF detector; replay re-appends edits into the sync loop",
                labels: vec!["wal_sync_loop", "wal_intact"],
            },
            KnownBug {
                id: "hbase-region-retry",
                jira: "HBASE-29006",
                summary: "deployment delay times out assignment RPCs; the excluded RS starves the favored balancer whose blind retry re-loads deployment",
                labels: vec!["deploy_loop", "assign_ioe", "can_place_favored"],
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MiniHBase {
        MiniHBase::new()
    }

    #[test]
    fn profiles_are_clean() {
        let s = sys();
        let ids = s.ids();
        for t in 0..7 {
            let trace = s.run(TestId(t), None, 5 + t as u64);
            assert!(!trace.occurred(ids.tp_assign_ioe), "t{t} assign_ioe");
            assert!(!trace.occurred(ids.np_can_place), "t{t} can_place");
            assert!(!trace.occurred(ids.np_wal_intact), "t{t} wal_intact");
        }
    }

    #[test]
    fn deploy_delay_times_out_assignments() {
        let s = sys();
        let ids = s.ids();
        let plan = InjectionPlan::delay(ids.l_deploy, VirtualTime::from_millis(3200));
        let t = s.run(TestId(1), Some(plan), 3);
        assert!(t.occurred(ids.tp_assign_ioe));
    }

    #[test]
    fn assign_ioe_starves_favored_balancer_only_on_small_cluster() {
        let s = sys();
        let ids = s.ids();
        // 3-RS favored cluster: exclusion drops live below 3.
        let t2 = s.run(TestId(2), Some(InjectionPlan::throw(ids.tp_assign_ioe)), 3);
        assert!(t2.occurred(ids.np_can_place), "3-node cluster must starve");
        // 5-RS favored cluster: still enough live servers.
        let t3 = s.run(TestId(3), Some(InjectionPlan::throw(ids.tp_assign_ioe)), 3);
        assert!(!t3.occurred(ids.np_can_place), "5-node cluster must not");
    }

    #[test]
    fn balancer_negation_reloads_deployment() {
        let s = sys();
        let ids = s.ids();
        let base = s.run(TestId(3), None, 3).loop_count(ids.l_deploy);
        let t = s.run(TestId(3), Some(InjectionPlan::negate(ids.np_can_place)), 3);
        assert!(
            t.loop_count(ids.l_deploy) > base,
            "blind retry must re-load deployment: {} vs {base}",
            t.loop_count(ids.l_deploy)
        );
    }

    #[test]
    fn wal_delay_trips_eof_and_replay_amplifies() {
        let s = sys();
        let ids = s.ids();
        let base = s.run(TestId(4), None, 3).loop_count(ids.l_wal_sync);
        let plan = InjectionPlan::delay(ids.l_wal_sync, VirtualTime::from_millis(3200));
        let t = s.run(TestId(4), Some(plan), 3);
        assert!(t.occurred(ids.np_wal_intact), "premature EOF must fire");
        assert!(
            t.loop_count(ids.l_wal_sync) > base,
            "replay must amplify: {} vs {base}",
            t.loop_count(ids.l_wal_sync)
        );
    }

    #[test]
    fn wal_negation_without_replay_does_not_amplify() {
        let s = sys();
        let ids = s.ids();
        let base = s.run(TestId(5), None, 3).loop_count(ids.l_wal_sync);
        let t = s.run(TestId(5), Some(InjectionPlan::negate(ids.np_wal_intact)), 3);
        assert_eq!(t.loop_count(ids.l_wal_sync), base);
    }
}
