//! A deliberately tiny target system for quickstarts and pipeline tests.
//!
//! `ToySystem` is a single-server job service with a retry amplifier — the
//! smallest system that exhibits a genuine self-sustaining cascading failure
//! of the paper's shape:
//!
//! * **work loop delay → job timeout IOE** — observable in the high-volume
//!   workload (`test_many_jobs`), where retries are disabled;
//! * **job timeout IOE → work-loop iteration increase** — observable in the
//!   retry-enabled workload (`test_retry_small`), where a failed job is
//!   speculatively re-submitted with a fanout.
//!
//! No single workload exhibits both propagations; stitching the two edges
//! closes the cycle `delay(work_loop) → job_ioe → delay(work_loop)`.

use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;

use csnake_core::{KnownBug, TargetSystem, TestCase};
use csnake_inject::{
    Agent, BoolSource, BranchId, ExceptionCategory, Fault, FaultId, FnId, InjectionPlan, Registry,
    RegistryBuilder, RunTrace, TestId,
};
use csnake_sim::{Clock, Sim, VirtualTime, World};

use crate::common::{run_world, timeouts};

/// Instrumentation ids of the toy system.
#[derive(Debug, Clone, Copy)]
pub struct ToyIds {
    fn_server: FnId,
    fn_process: FnId,
    fn_client: FnId,
    fn_health: FnId,
    /// Server work loop (delay-injection candidate).
    pub l_work: FaultId,
    /// Constant-bound warmup loop (filtered by the analyzer).
    pub l_warmup: FaultId,
    /// Job timeout IOException.
    pub tp_job_ioe: FaultId,
    /// Queue health detector (error when unhealthy = `false` return).
    pub np_queue_healthy: FaultId,
    /// JDK-utility boolean (filtered by the analyzer).
    pub np_contains: FaultId,
    br_batch_nonempty: BranchId,
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
struct ToyCfg {
    jobs: u32,
    submit_interval: VirtualTime,
    retry_fanout: u32,
    max_retries: u8,
    horizon: VirtualTime,
}

/// The toy target system.
pub struct ToySystem {
    registry: Arc<Registry>,
    ids: ToyIds,
}

impl Default for ToySystem {
    fn default() -> Self {
        Self::new()
    }
}

impl ToySystem {
    /// Builds the system and its registry.
    pub fn new() -> Self {
        let mut b = RegistryBuilder::new("toy");
        let fn_server = b.func("JobServer.tick");
        let fn_process = b.func("JobServer.processJob");
        let fn_client = b.func("Client.submit");
        let fn_health = b.func("HealthMonitor.check");
        let l_work = b.workload_loop(fn_server, 20, true, "work_loop");
        let l_warmup = b.const_loop(fn_server, 10, 3, "warmup");
        let tp_job_ioe = b.throw_point(
            fn_process,
            42,
            "IOException",
            ExceptionCategory::SystemSpecific,
            "job_ioe",
        );
        let np_queue_healthy = b.negation_point(
            fn_health,
            7,
            false,
            BoolSource::ErrorDetector,
            "queue_healthy",
        );
        let np_contains = b.negation_point(fn_health, 9, true, BoolSource::JdkUtility, "contains");
        let br_batch_nonempty = b.branch(fn_server, 21);
        let ids = ToyIds {
            fn_server,
            fn_process,
            fn_client,
            fn_health,
            l_work,
            l_warmup,
            tp_job_ioe,
            np_queue_healthy,
            np_contains,
            br_batch_nonempty,
        };
        ToySystem {
            registry: Arc::new(b.build()),
            ids,
        }
    }

    /// The instrumentation ids (used by examples and tests).
    pub fn ids(&self) -> ToyIds {
        self.ids
    }

    fn cfg_for(test: TestId) -> ToyCfg {
        match test.0 {
            // High volume, no retries: delay injection trips job timeouts.
            0 => ToyCfg {
                jobs: 150,
                submit_interval: VirtualTime::from_millis(20),
                retry_fanout: 0,
                max_retries: 0,
                horizon: VirtualTime::from_secs(900),
            },
            // Small volume, speculative retry fanout enabled: a failed job
            // amplifies the work loop.
            1 => ToyCfg {
                jobs: 25,
                submit_interval: VirtualTime::from_millis(50),
                retry_fanout: 6,
                max_retries: 2,
                horizon: VirtualTime::from_secs(900),
            },
            // Near-idle: health checks dominate (low coverage).
            _ => ToyCfg {
                jobs: 5,
                submit_interval: VirtualTime::from_millis(200),
                retry_fanout: 0,
                max_retries: 0,
                horizon: VirtualTime::from_secs(60),
            },
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Job {
    submitted: VirtualTime,
    retries: u8,
}

enum Ev {
    Submit,
    Tick,
    Health,
}

struct ToyWorld {
    agent: Rc<Agent>,
    ids: ToyIds,
    cfg: ToyCfg,
    queue: VecDeque<Job>,
    submitted: u32,
    completed: u32,
    failed: u32,
}

impl ToyWorld {
    fn process_job(&self, sim: &mut Sim<Ev>, job: Job) -> Result<(), Fault> {
        let _f = self.agent.frame(self.ids.fn_process);
        sim.advance(VirtualTime::from_millis(2)); // nominal work cost
        if let Some(e) = self.agent.throw_guard(self.ids.tp_job_ioe) {
            return Err(e);
        }
        if sim.now().saturating_sub(job.submitted) > timeouts::OPERATION {
            return Err(self.agent.throw_fired(self.ids.tp_job_ioe));
        }
        Ok(())
    }
}

impl World for ToyWorld {
    type Event = Ev;

    fn handle(&mut self, sim: &mut Sim<Ev>, ev: Ev) {
        match ev {
            Ev::Submit => {
                let _f = self.agent.frame(self.ids.fn_client);
                // Open-loop arrival: the job's latency clock starts at its
                // *intended* submission time, even if the submit event runs
                // late behind a backed-up server.
                let intended = self.cfg.submit_interval * self.submitted as u64;
                self.queue.push_back(Job {
                    submitted: intended,
                    retries: 0,
                });
                self.submitted += 1;
            }
            Ev::Tick => {
                let _f = self.agent.frame(self.ids.fn_server);
                // Constant-bound warmup loop: analyzer-filtered, never hot.
                {
                    let warm = self.agent.loop_enter(self.ids.l_warmup);
                    for _ in 0..3 {
                        warm.iter(sim);
                    }
                }
                self.agent
                    .branch(self.ids.br_batch_nonempty, !self.queue.is_empty());
                let batch: Vec<Job> = self.queue.drain(..).collect();
                {
                    let work = self.agent.loop_enter(self.ids.l_work);
                    for job in batch {
                        work.iter(sim);
                        match self.process_job(sim, job) {
                            Ok(()) => self.completed += 1,
                            Err(_e) => {
                                self.failed += 1;
                                // Speculative re-execution: the retry storm
                                // amplifier at the heart of the seeded bug.
                                if self.cfg.retry_fanout > 0 && job.retries < self.cfg.max_retries {
                                    for _ in 0..self.cfg.retry_fanout {
                                        self.queue.push_back(Job {
                                            submitted: sim.now(),
                                            retries: job.retries + 1,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
                if self.submitted < self.cfg.jobs || !self.queue.is_empty() {
                    sim.schedule(VirtualTime::from_millis(100), Ev::Tick);
                } else {
                    // Idle poll, coarser.
                    sim.schedule(VirtualTime::from_secs(1), Ev::Tick);
                }
            }
            Ev::Health => {
                let _f = self.agent.frame(self.ids.fn_health);
                let healthy = self
                    .agent
                    .negation_point(self.ids.np_queue_healthy, self.queue.len() < 500);
                if !healthy {
                    self.agent.mark_flag("queue_unhealthy");
                }
                let _ = self
                    .agent
                    .negation_point(self.ids.np_contains, self.queue.is_empty());
                sim.schedule(VirtualTime::from_secs(1), Ev::Health);
            }
        }
    }
}

impl TargetSystem for ToySystem {
    fn name(&self) -> &'static str {
        "toy"
    }

    fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    fn tests(&self) -> Vec<TestCase> {
        vec![
            TestCase {
                id: TestId(0),
                name: "test_many_jobs",
                description: "150 jobs, retries disabled — volume workload",
            },
            TestCase {
                id: TestId(1),
                name: "test_retry_small",
                description: "25 jobs with speculative retry fanout 6",
            },
            TestCase {
                id: TestId(2),
                name: "test_idle_health",
                description: "near-idle workload dominated by health checks",
            },
        ]
    }

    fn run(&self, test: TestId, plan: Option<InjectionPlan>, seed: u64) -> RunTrace {
        let cfg = Self::cfg_for(test);
        let ids = self.ids;
        run_world(&self.registry, plan, seed, cfg.horizon, |agent, sim| {
            for i in 0..cfg.jobs {
                sim.schedule_at(cfg.submit_interval * i as u64, Ev::Submit);
            }
            sim.schedule(VirtualTime::from_millis(100), Ev::Tick);
            sim.schedule(VirtualTime::from_secs(1), Ev::Health);
            ToyWorld {
                agent,
                ids,
                cfg,
                queue: VecDeque::new(),
                submitted: 0,
                completed: 0,
                failed: 0,
            }
        })
    }

    fn known_bugs(&self) -> Vec<KnownBug> {
        vec![KnownBug {
            id: "toy-retry-storm",
            jira: "TOY-1",
            summary:
                "work-loop delay times out jobs whose speculative retries re-load the work loop",
            labels: vec!["work_loop", "job_ioe"],
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csnake_core::driver::seed_for;

    fn profile(test: u32) -> RunTrace {
        ToySystem::new().run(TestId(test), None, seed_for(1, TestId(test), 0))
    }

    #[test]
    fn profile_runs_complete_all_jobs() {
        let t = profile(0);
        assert_eq!(t.loop_count(ToySystem::new().ids().l_work), 150);
        assert!(
            !t.occurred(ToySystem::new().ids().tp_job_ioe),
            "no natural timeouts"
        );
    }

    #[test]
    fn profile_is_deterministic_per_seed() {
        let sys = ToySystem::new();
        let a = sys.run(TestId(0), None, 7);
        let b = sys.run(TestId(0), None, 7);
        assert_eq!(a.loop_counts, b.loop_counts);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn delay_injection_times_out_jobs_in_volume_test() {
        let sys = ToySystem::new();
        let ids = sys.ids();
        let plan = InjectionPlan::delay(ids.l_work, VirtualTime::from_millis(800));
        let t = sys.run(TestId(0), Some(plan), 3);
        assert!(t.injected.is_some());
        assert!(t.occurred(ids.tp_job_ioe), "delay must trip job timeouts");
    }

    #[test]
    fn throw_injection_amplifies_work_loop_in_retry_test() {
        let sys = ToySystem::new();
        let ids = sys.ids();
        let base = sys.run(TestId(1), None, 3).loop_count(ids.l_work);
        let t = sys.run(TestId(1), Some(InjectionPlan::throw(ids.tp_job_ioe)), 3);
        assert!(t.injected.is_some());
        let inj = t.loop_count(ids.l_work);
        assert!(
            inj >= base + 6,
            "retry fanout must amplify the loop: {inj} vs {base}"
        );
    }

    #[test]
    fn throw_injection_without_retries_does_not_amplify() {
        let sys = ToySystem::new();
        let ids = sys.ids();
        let base = sys.run(TestId(0), None, 3).loop_count(ids.l_work);
        let t = sys.run(TestId(0), Some(InjectionPlan::throw(ids.tp_job_ioe)), 3);
        assert_eq!(t.loop_count(ids.l_work), base);
    }

    #[test]
    fn health_detector_is_quiet_in_profile() {
        let sys = ToySystem::new();
        let ids = sys.ids();
        let t = profile(2);
        assert!(t.coverage.contains(&ids.np_queue_healthy));
        assert!(!t.occurred(ids.np_queue_healthy));
    }

    #[test]
    fn negation_injection_flags_unhealthy_queue() {
        let sys = ToySystem::new();
        let ids = sys.ids();
        let t = sys.run(
            TestId(2),
            Some(InjectionPlan::negate(ids.np_queue_healthy)),
            3,
        );
        assert!(t.occurred(ids.np_queue_healthy));
        assert!(t.flags.contains("queue_unhealthy"));
    }

    #[test]
    fn warmup_loop_count_is_constant_multiple() {
        let t = profile(2);
        let ids = ToySystem::new().ids();
        let c = t.loop_count(ids.l_warmup);
        assert!(c > 0 && c.is_multiple_of(3), "{c}");
    }
}
