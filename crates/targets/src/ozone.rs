//! Mini-Ozone: SCM container reports, pipelines, and replication commands.
//!
//! Reproduces the three Ozone rows of Table 3:
//!
//! * **Container report queue** (1D|0E|1N, HDDS-13020): a delayed dispatch
//!   loop overflows the bounded event queue; the dispatch-failure handler
//!   re-enqueues the reports into the same loop.
//! * **Heartbeat handling** (1D|1E|1N, HDDS-11856): delayed heartbeat
//!   command processing times out pipeline creation; the failed pipeline is
//!   marked unhealthy; close/recreate commands flow back through heartbeat
//!   handling.
//! * **Replication command handling** (1D|2E, HDDS-11856): a delayed
//!   replication handler times out replication ops; failed replication
//!   needs a new pipeline whose creation fails under pressure; the failed
//!   creation re-queues replication commands.

use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;

use csnake_core::{KnownBug, TargetSystem, TestCase};
use csnake_inject::{
    Agent, BoolSource, BranchId, ExceptionCategory, FaultId, FnId, InjectionPlan, Registry,
    RegistryBuilder, RunTrace, TestId,
};
use csnake_sim::{BoundedQueue, Clock, Sim, VirtualTime, World};

use crate::common::{run_world, timeouts};

/// Instrumentation ids of mini-Ozone.
#[derive(Debug, Clone, Copy)]
pub struct OzoneIds {
    fn_dispatch: FnId,
    fn_hb: FnId,
    fn_repl: FnId,
    fn_pipeline: FnId,
    /// SCM container-report dispatch loop.
    pub l_report_dispatch: FaultId,
    /// SCM heartbeat command-processing loop.
    pub l_hb_handler: FaultId,
    /// Datanode replication command-handling loop.
    pub l_repl_cmd: FaultId,
    /// Constant-bound loop (filtered).
    pub l_const: FaultId,
    /// Pipeline creation IOE.
    pub tp_pipeline_create_ioe: FaultId,
    /// Replication operation IOE.
    pub tp_repl_ioe: FaultId,
    /// Event-queue capacity detector (error when `false`).
    pub np_queue_ok: FaultId,
    /// Pipeline health detector (error when `false`).
    pub np_pipeline_healthy: FaultId,
    /// Final-config decoy (filtered).
    pub np_is_ratis: FaultId,
    br_queue_pressure: BranchId,
}

#[derive(Debug, Clone, Copy)]
struct OzoneCfg {
    datanodes: usize,
    reports: u32,
    report_interval_ms: u64,
    replications: u32,
    /// Dispatch failures re-enqueue reports (seeded bug 1's amplifier).
    requeue_on_dispatch_failure: bool,
    /// Unhealthy pipelines are closed and recreated via heartbeat commands.
    recreate_unhealthy: bool,
    /// Failed replication allocates a fresh pipeline.
    pipeline_on_repl_failure: bool,
    queue_capacity: usize,
    horizon_s: u64,
}

impl Default for OzoneCfg {
    fn default() -> Self {
        OzoneCfg {
            datanodes: 5,
            reports: 30,
            report_interval_ms: 150,
            replications: 8,
            requeue_on_dispatch_failure: false,
            recreate_unhealthy: false,
            pipeline_on_repl_failure: false,
            queue_capacity: 24,
            horizon_s: 40,
        }
    }
}

const TICK: VirtualTime = VirtualTime::from_millis(250);

#[derive(Debug, Clone, Copy)]
enum Ev {
    Report,
    ReplicationStart,
    DispatchTick,
    HbTick,
    ReplTick,
}

#[derive(Debug, Clone, Copy)]
struct Report {
    /// Arrival timestamp (kept for queue-age diagnostics).
    #[allow(dead_code)]
    arrived: VirtualTime,
}

#[derive(Debug, Clone, Copy)]
struct ReplOp {
    issued: VirtualTime,
    attempts: u8,
}

struct OzoneWorld {
    agent: Rc<Agent>,
    ids: OzoneIds,
    cfg: OzoneCfg,
    event_queue: BoundedQueue<Report>,
    reports_arrived: u32,
    hb_cmds: u64,
    repl_queue: VecDeque<ReplOp>,
    pipeline_unhealthy: bool,
    dispatched: u64,
    hb_last: VirtualTime,
}

impl OzoneWorld {
    fn dispatch_tick(&mut self, sim: &mut Sim<Ev>) {
        let _f = self.agent.frame(self.ids.fn_dispatch);
        // Capacity detector: the dispatcher refuses new work when the queue
        // saturates.
        let ok = self
            .agent
            .negation_point(self.ids.np_queue_ok, !self.event_queue.is_full());
        self.agent.branch(
            self.ids.br_queue_pressure,
            self.event_queue.len() > self.cfg.queue_capacity / 2,
        );
        if !ok && self.cfg.requeue_on_dispatch_failure {
            // Seeded bug: the failure handler re-enqueues a recovery rescan
            // of recent reports instead of shedding load.
            for _ in 0..6 {
                let _ = self.event_queue.push(Report { arrived: sim.now() });
            }
        }
        let lg = self.agent.loop_enter(self.ids.l_report_dispatch);
        let n = self.event_queue.len().min(12);
        for _ in 0..n {
            lg.iter(sim);
            sim.advance(VirtualTime::from_micros(600));
            let _r = self.event_queue.pop().expect("sized loop");
            self.dispatched += 1;
        }
        drop(lg);
        sim.schedule(TICK, Ev::DispatchTick);
    }

    fn hb_tick(&mut self, sim: &mut Sim<Ev>) {
        let _f = self.agent.frame(self.ids.fn_hb);
        // Constant-bound protocol version check (filtered decoy).
        {
            let lg = self.agent.loop_enter(self.ids.l_const);
            for _ in 0..2 {
                lg.iter(sim);
            }
        }
        let _ = self.agent.negation_point(self.ids.np_is_ratis, true);
        let hb_anchor = self.hb_last;
        let lg = self.agent.loop_enter(self.ids.l_hb_handler);
        // One iteration per datanode heartbeat plus queued commands.
        let n = (self.cfg.datanodes as u64 + self.hb_cmds).min(12);
        self.hb_cmds -= (n.saturating_sub(self.cfg.datanodes as u64)).min(self.hb_cmds);
        let mut create_failed = false;
        for _ in 0..n {
            lg.iter(sim);
            sim.advance(VirtualTime::from_micros(700));
            // Pipeline creation rides on heartbeat command processing; a
            // handler running far behind its cadence has already timed out
            // the creation RPC.
            if self
                .agent
                .throw_guard(self.ids.tp_pipeline_create_ioe)
                .is_some()
            {
                create_failed = true;
                continue;
            }
            let behind =
                !hb_anchor.is_zero() && sim.now().saturating_sub(hb_anchor) > timeouts::RPC;
            if behind && !create_failed {
                let _ = self.agent.throw_fired(self.ids.tp_pipeline_create_ioe);
                create_failed = true;
            }
        }
        drop(lg);
        if create_failed {
            self.on_pipeline_create_failure(sim);
        }
        // Pipeline health detector.
        let healthy = self
            .agent
            .negation_point(self.ids.np_pipeline_healthy, !self.pipeline_unhealthy);
        if !healthy && self.cfg.recreate_unhealthy {
            // Close-and-recreate commands flow through heartbeat handling.
            self.hb_cmds += 8;
            self.pipeline_unhealthy = false;
        }
        self.hb_last = sim.now();
        sim.schedule(TICK * 2, Ev::HbTick);
    }

    fn on_pipeline_create_failure(&mut self, sim: &mut Sim<Ev>) {
        self.pipeline_unhealthy = true;
        let _ = sim;
        // Containers headed for the failed pipeline need re-replication.
        for _ in 0..4 {
            self.repl_queue.push_back(ReplOp {
                issued: VirtualTime::MAX, // filled at the next repl tick
                attempts: 1,
            });
        }
    }

    fn repl_tick(&mut self, sim: &mut Sim<Ev>) {
        let _f = self.agent.frame(self.ids.fn_repl);
        let lg = self.agent.loop_enter(self.ids.l_repl_cmd);
        let n = self.repl_queue.len().min(8);
        for _ in 0..n {
            lg.iter(sim);
            sim.advance(VirtualTime::from_millis(1));
            let mut op = self.repl_queue.pop_front().expect("sized loop");
            if op.issued == VirtualTime::MAX {
                op.issued = sim.now();
            }
            if self.agent.throw_guard(self.ids.tp_repl_ioe).is_some() {
                self.on_repl_failure(sim, op);
                continue;
            }
            if sim.now().saturating_sub(op.issued) > timeouts::OPERATION {
                let _ = self.agent.throw_fired(self.ids.tp_repl_ioe);
                self.on_repl_failure(sim, op);
                continue;
            }
        }
        drop(lg);
        sim.schedule(TICK * 2, Ev::ReplTick);
    }

    fn on_repl_failure(&mut self, sim: &mut Sim<Ev>, op: ReplOp) {
        if self.cfg.pipeline_on_repl_failure {
            // A fresh pipeline is needed; under pressure its creation fails
            // at the next heartbeat, re-queueing more replication work.
            let _pf = self.agent.frame(self.ids.fn_pipeline);
            let live = self.cfg.datanodes;
            if live < 4 {
                let _ = self.agent.throw_fired(self.ids.tp_pipeline_create_ioe);
                self.on_pipeline_create_failure(sim);
            }
        }
        if op.attempts < 3 {
            self.repl_queue.push_back(ReplOp {
                issued: sim.now(),
                attempts: op.attempts + 1,
            });
        }
    }
}

impl World for OzoneWorld {
    type Event = Ev;

    fn handle(&mut self, sim: &mut Sim<Ev>, ev: Ev) {
        match ev {
            Ev::Report => {
                let intended = VirtualTime::from_millis(self.cfg.report_interval_ms)
                    * (self.reports_arrived as u64 + 1);
                self.reports_arrived += 1;
                let _ = self.event_queue.push(Report { arrived: intended });
            }
            Ev::ReplicationStart => {
                self.repl_queue.push_back(ReplOp {
                    issued: sim.now(),
                    attempts: 0,
                });
            }
            Ev::DispatchTick => self.dispatch_tick(sim),
            Ev::HbTick => self.hb_tick(sim),
            Ev::ReplTick => self.repl_tick(sim),
        }
    }
}

/// The mini-Ozone target.
pub struct MiniOzone {
    registry: Arc<Registry>,
    ids: OzoneIds,
}

impl Default for MiniOzone {
    fn default() -> Self {
        Self::new()
    }
}

impl MiniOzone {
    /// Builds the system and registry.
    pub fn new() -> Self {
        let mut b = RegistryBuilder::new("mini-ozone");
        let fn_dispatch = b.func("SCMDatanodeHeartbeatDispatcher.dispatch");
        let fn_hb = b.func("SCMHeartbeatProcessor.process");
        let fn_repl = b.func("ReplicationSupervisor.runTask");
        let fn_pipeline = b.func("PipelineManager.createPipeline");
        let l_report_dispatch = b.workload_loop(fn_dispatch, 180, false, "report_dispatch_loop");
        let l_hb_handler = b.workload_loop(fn_hb, 260, true, "hb_handler_loop");
        let l_repl_cmd = b.workload_loop(fn_repl, 340, true, "repl_cmd_loop");
        let l_const = b.const_loop(fn_hb, 250, 2, "proto_version_check");
        let tp_pipeline_create_ioe = b.throw_point(
            fn_hb,
            271,
            "IOException",
            ExceptionCategory::SystemSpecific,
            "pipeline_create_ioe",
        );
        let tp_repl_ioe = b.throw_point(
            fn_repl,
            355,
            "IOException",
            ExceptionCategory::SystemSpecific,
            "ozone_repl_ioe",
        );
        let np_queue_ok = b.negation_point(
            fn_dispatch,
            171,
            false,
            BoolSource::ErrorDetector,
            "event_queue_ok",
        );
        let np_pipeline_healthy = b.negation_point(
            fn_hb,
            290,
            false,
            BoolSource::ErrorDetector,
            "pipeline_healthy",
        );
        let np_is_ratis = b.negation_point(
            fn_hb,
            255,
            true,
            BoolSource::FinalConfigOnly,
            "is_ratis_enabled",
        );
        let br_queue_pressure = b.branch(fn_dispatch, 175);
        let ids = OzoneIds {
            fn_dispatch,
            fn_hb,
            fn_repl,
            fn_pipeline,
            l_report_dispatch,
            l_hb_handler,
            l_repl_cmd,
            l_const,
            tp_pipeline_create_ioe,
            tp_repl_ioe,
            np_queue_ok,
            np_pipeline_healthy,
            np_is_ratis,
            br_queue_pressure,
        };
        MiniOzone {
            registry: Arc::new(b.build()),
            ids,
        }
    }

    /// Instrumentation ids.
    pub fn ids(&self) -> OzoneIds {
        self.ids
    }

    fn cfg_for(test: TestId) -> OzoneCfg {
        let d = OzoneCfg::default();
        match test.0 {
            // t0: broad coverage; the heartbeat bug's conditions co-located
            // (it is the Table 3 row with "Alt.? = yes").
            0 => OzoneCfg {
                reports: 40,
                replications: 10,
                recreate_unhealthy: true,
                requeue_on_dispatch_failure: false,
                ..d
            },
            // t1: report storm against a small queue.
            1 => OzoneCfg {
                reports: 120,
                report_interval_ms: 40,
                queue_capacity: 16,
                ..d
            },
            // t2: dispatch-failure requeue handling.
            2 => OzoneCfg {
                reports: 60,
                report_interval_ms: 60,
                queue_capacity: 16,
                requeue_on_dispatch_failure: true,
                ..d
            },
            // t3: pipeline recreation churn.
            3 => OzoneCfg {
                replications: 12,
                recreate_unhealthy: true,
                ..d
            },
            // t4: replication pressure with pipeline allocation on a small
            // cluster (creation fails when fewer than four DNs are free).
            4 => OzoneCfg {
                datanodes: 3,
                replications: 24,
                pipeline_on_repl_failure: true,
                ..d
            },
            // t5: light smoke test.
            _ => OzoneCfg {
                reports: 10,
                replications: 3,
                ..d
            },
        }
    }
}

impl TargetSystem for MiniOzone {
    fn name(&self) -> &'static str {
        "mini-ozone"
    }

    fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    fn tests(&self) -> Vec<TestCase> {
        let names: [(&'static str, &'static str); 6] = [
            (
                "test_basic_cluster",
                "mixed reports + replication, recreate on",
            ),
            ("test_report_storm", "120 reports against a 16-slot queue"),
            (
                "test_dispatch_requeue",
                "requeue-on-dispatch-failure handling",
            ),
            ("test_pipeline_churn", "unhealthy-pipeline recreation"),
            (
                "test_replication_pressure",
                "24 replications, pipeline alloc",
            ),
            ("test_smoke", "light workload"),
        ];
        names
            .iter()
            .enumerate()
            .map(|(i, (name, description))| TestCase {
                id: TestId(i as u32),
                name,
                description,
            })
            .collect()
    }

    fn run(&self, test: TestId, plan: Option<InjectionPlan>, seed: u64) -> RunTrace {
        let cfg = Self::cfg_for(test);
        let ids = self.ids;
        let horizon = VirtualTime::from_secs(cfg.horizon_s) + VirtualTime::from_secs(600);
        run_world(&self.registry, plan, seed, horizon, |agent, sim| {
            for i in 0..cfg.reports {
                sim.schedule_at(
                    VirtualTime::from_millis(cfg.report_interval_ms) * (i as u64 + 1),
                    Ev::Report,
                );
            }
            for i in 0..cfg.replications {
                sim.schedule_at(
                    VirtualTime::from_millis(500) * (i as u64 + 1),
                    Ev::ReplicationStart,
                );
            }
            sim.schedule(TICK, Ev::DispatchTick);
            sim.schedule(TICK * 2, Ev::HbTick);
            sim.schedule(TICK * 2, Ev::ReplTick);
            OzoneWorld {
                agent,
                ids,
                cfg,
                event_queue: BoundedQueue::new(cfg.queue_capacity),
                reports_arrived: 0,
                hb_cmds: 0,
                repl_queue: VecDeque::new(),
                pipeline_unhealthy: false,
                dispatched: 0,
                hb_last: VirtualTime::ZERO,
            }
        })
    }

    fn known_bugs(&self) -> Vec<KnownBug> {
        vec![
            KnownBug {
                id: "ozone-report-queue",
                jira: "HDDS-13020",
                summary: "dispatch delay overflows the event queue; the failure handler re-enqueues reports into the dispatch loop",
                labels: vec!["report_dispatch_loop", "event_queue_ok"],
            },
            KnownBug {
                id: "ozone-heartbeat-pipeline",
                jira: "HDDS-11856",
                summary: "heartbeat delay fails pipeline creation; unhealthy pipelines are recreated via more heartbeat commands",
                labels: vec!["hb_handler_loop", "pipeline_create_ioe", "pipeline_healthy"],
            },
            KnownBug {
                id: "ozone-replication-cmd",
                jira: "HDDS-11856-2",
                summary: "replication delay times out ops; failed replication allocates pipelines whose failure re-queues replication",
                labels: vec!["repl_cmd_loop", "ozone_repl_ioe", "pipeline_create_ioe"],
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MiniOzone {
        MiniOzone::new()
    }

    #[test]
    fn profiles_are_clean() {
        let s = sys();
        let ids = s.ids();
        for t in 0..6 {
            let trace = s.run(TestId(t), None, 21 + t as u64);
            assert!(!trace.occurred(ids.tp_pipeline_create_ioe), "t{t}");
            assert!(!trace.occurred(ids.tp_repl_ioe), "t{t}");
            assert!(!trace.occurred(ids.np_queue_ok), "t{t}");
            assert!(!trace.occurred(ids.np_pipeline_healthy), "t{t}");
        }
    }

    #[test]
    fn dispatch_delay_overflows_queue() {
        let s = sys();
        let ids = s.ids();
        let plan = InjectionPlan::delay(ids.l_report_dispatch, VirtualTime::from_millis(3200));
        let t = s.run(TestId(1), Some(plan), 3);
        assert!(t.occurred(ids.np_queue_ok), "queue must saturate");
    }

    #[test]
    fn queue_failure_requeues_reports_when_configured() {
        let s = sys();
        let ids = s.ids();
        let base = s.run(TestId(2), None, 3).loop_count(ids.l_report_dispatch);
        let t = s.run(TestId(2), Some(InjectionPlan::negate(ids.np_queue_ok)), 3);
        assert!(
            t.loop_count(ids.l_report_dispatch) > base,
            "requeue must grow dispatch: {} vs {base}",
            t.loop_count(ids.l_report_dispatch)
        );
    }

    #[test]
    fn heartbeat_delay_fails_pipeline_creation() {
        let s = sys();
        let ids = s.ids();
        let plan = InjectionPlan::delay(ids.l_hb_handler, VirtualTime::from_millis(3200));
        let t = s.run(TestId(0), Some(plan), 3);
        assert!(t.occurred(ids.tp_pipeline_create_ioe));
    }

    #[test]
    fn creation_failure_marks_pipeline_unhealthy() {
        let s = sys();
        let ids = s.ids();
        let t = s.run(
            TestId(3),
            Some(InjectionPlan::throw(ids.tp_pipeline_create_ioe)),
            3,
        );
        assert!(t.occurred(ids.np_pipeline_healthy));
    }

    #[test]
    fn unhealthy_negation_grows_heartbeat_commands() {
        let s = sys();
        let ids = s.ids();
        let base = s.run(TestId(3), None, 3).loop_count(ids.l_hb_handler);
        let t = s.run(
            TestId(3),
            Some(InjectionPlan::negate(ids.np_pipeline_healthy)),
            3,
        );
        assert!(
            t.loop_count(ids.l_hb_handler) > base,
            "recreate commands must grow hb handling: {} vs {base}",
            t.loop_count(ids.l_hb_handler)
        );
    }

    #[test]
    fn repl_delay_times_out_ops() {
        let s = sys();
        let ids = s.ids();
        let plan = InjectionPlan::delay(ids.l_repl_cmd, VirtualTime::from_millis(3200));
        let t = s.run(TestId(4), Some(plan), 3);
        assert!(t.occurred(ids.tp_repl_ioe));
    }

    #[test]
    fn repl_failure_requeues_via_pipeline_failure() {
        let s = sys();
        let ids = s.ids();
        let base = s.run(TestId(4), None, 3).loop_count(ids.l_repl_cmd);
        let t = s.run(TestId(4), Some(InjectionPlan::throw(ids.tp_repl_ioe)), 3);
        assert!(t.occurred(ids.tp_pipeline_create_ioe), "creation must fail");
        assert!(
            t.loop_count(ids.l_repl_cmd) > base,
            "repl queue must grow: {} vs {base}",
            t.loop_count(ids.l_repl_cmd)
        );
    }
}
