//! Mini-Flink: streaming job execution with checkpoint barriers and a
//! restart strategy.
//!
//! Reproduces the two Flink rows of Table 3:
//!
//! * **Task worker** (1D|2E, FLINK-38367): a delayed task-worker loop
//!   times out the head task; the head failure cancels the sink task; the
//!   restart strategy redeploys the job and re-feeds every record through
//!   the worker loop.
//! * **Aggregation task** (1D|2E, FLINK-38368): a delayed aggregation loop
//!   times out a task state transition; the failed transition breaks the
//!   checkpoint barrier; the aborted checkpoint replays records into the
//!   aggregation loop.

use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;

use csnake_core::{KnownBug, TargetSystem, TestCase};
use csnake_inject::{
    Agent, BoolSource, BranchId, ExceptionCategory, FaultId, FnId, InjectionPlan, Registry,
    RegistryBuilder, RunTrace, TestId,
};
use csnake_sim::{Clock, Sim, VirtualTime, World};

use crate::common::{run_world, timeouts};

/// Instrumentation ids of mini-Flink.
#[derive(Debug, Clone, Copy)]
pub struct FlinkIds {
    fn_worker: FnId,
    fn_agg: FnId,
    fn_jm: FnId,
    fn_ckpt: FnId,
    /// Head task worker record loop.
    pub l_task_worker: FaultId,
    /// Aggregation record loop.
    pub l_agg: FaultId,
    /// JobManager redeploy loop.
    pub l_deploy_tasks: FaultId,
    /// Barrier alignment loop.
    pub l_barrier: FaultId,
    /// Constant-bound loop (filtered).
    pub l_const: FaultId,
    /// Head task failure exception.
    pub tp_head_fail: FaultId,
    /// Sink task cancellation exception.
    pub tp_sink_cancel: FaultId,
    /// Task state transition failure.
    pub tp_state_trans: FaultId,
    /// Checkpoint barrier failure.
    pub tp_barrier_fail: FaultId,
    /// Slot-table detector (error when `false`).
    pub np_slot_ok: FaultId,
    /// JDK decoy (filtered).
    pub np_is_empty: FaultId,
    br_has_barrier: BranchId,
}

#[derive(Debug, Clone, Copy)]
struct FlinkCfg {
    records: u32,
    record_interval_ms: u64,
    /// Head failure cancels the downstream sink.
    cancel_downstream: bool,
    /// Job restarts (full redeploy + source replay) after a sink cancel.
    restart_strategy: bool,
    /// Strict alignment: a failed transition fails the in-flight barrier.
    strict_alignment: bool,
    /// Aborted checkpoints replay records since the last checkpoint.
    replay_on_abort: bool,
    horizon_s: u64,
}

impl Default for FlinkCfg {
    fn default() -> Self {
        FlinkCfg {
            records: 40,
            record_interval_ms: 80,
            cancel_downstream: false,
            restart_strategy: false,
            strict_alignment: false,
            replay_on_abort: false,
            horizon_s: 40,
        }
    }
}

const TICK: VirtualTime = VirtualTime::from_millis(200);
const BARRIER_EVERY: VirtualTime = VirtualTime::from_secs(2);

#[derive(Debug, Clone, Copy)]
enum Ev {
    Record,
    WorkerTick,
    AggTick,
    Barrier,
    CkptCheck,
}

#[derive(Debug, Clone, Copy)]
struct Rec {
    arrived: VirtualTime,
}

#[derive(Debug, Clone, Copy)]
struct Barrier {
    issued: VirtualTime,
}

struct FlinkWorld {
    agent: Rc<Agent>,
    ids: FlinkIds,
    cfg: FlinkCfg,
    head_queue: VecDeque<Rec>,
    agg_queue: VecDeque<Rec>,
    barriers: VecDeque<Barrier>,
    barrier_seq: u64,
    records_arrived: u32,
    head_processed: u32,
    records_since_ckpt: u32,
    sink_done: u32,
    restarts: u32,
    transition_failed: bool,
    head_failed: bool,
}

impl FlinkWorld {
    fn worker_tick(&mut self, sim: &mut Sim<Ev>) {
        let _f = self.agent.frame(self.ids.fn_worker);
        let lg = self.agent.loop_enter(self.ids.l_task_worker);
        let n = self.head_queue.len().min(24);
        for _ in 0..n {
            lg.iter(sim);
            sim.advance(VirtualTime::from_micros(500));
            let rec = self.head_queue.pop_front().expect("sized loop");
            if self.agent.throw_guard(self.ids.tp_head_fail).is_some() {
                self.on_head_failure(sim);
                continue;
            }
            if self.agent.throw_guard(self.ids.tp_sink_cancel).is_some() {
                self.on_sink_cancel(sim);
                continue;
            }
            if sim.now().saturating_sub(rec.arrived) > timeouts::OPERATION {
                let _ = self.agent.throw_fired(self.ids.tp_head_fail);
                self.on_head_failure(sim);
                continue;
            }
            self.head_processed += 1;
            self.agg_queue.push_back(rec);
        }
        drop(lg);
        sim.schedule(TICK, Ev::WorkerTick);
    }

    /// Head task failed: optionally cancel the sink, optionally restart.
    fn on_head_failure(&mut self, sim: &mut Sim<Ev>) {
        if self.head_failed {
            return;
        }
        self.head_failed = true;
        if self.cfg.cancel_downstream {
            let _ = self.agent.throw_fired(self.ids.tp_sink_cancel);
            self.on_sink_cancel(sim);
        }
    }

    fn on_sink_cancel(&mut self, sim: &mut Sim<Ev>) {
        if self.cfg.restart_strategy && self.restarts < 3 {
            self.restarts += 1;
            self.restart_job(sim);
        }
    }

    /// Full redeploy: every task is re-deployed and the source replays.
    fn restart_job(&mut self, sim: &mut Sim<Ev>) {
        let _f = self.agent.frame(self.ids.fn_jm);
        let slots_ok = self.restarts < 4;
        let _ = self.agent.negation_point(self.ids.np_slot_ok, slots_ok);
        let lg = self.agent.loop_enter(self.ids.l_deploy_tasks);
        for _ in 0..3 {
            lg.iter(sim);
            sim.advance(VirtualTime::from_millis(2));
        }
        drop(lg);
        self.head_failed = false;
        // Source replay re-feeds the records processed since the last
        // completed checkpoint.
        let replay = self.head_processed.clamp(8, 64);
        for _ in 0..replay {
            self.head_queue.push_back(Rec { arrived: sim.now() });
        }
    }

    fn agg_tick(&mut self, sim: &mut Sim<Ev>) {
        let _f = self.agent.frame(self.ids.fn_agg);
        // Constant-bound operator-chain verification (filtered decoy).
        {
            let lg = self.agent.loop_enter(self.ids.l_const);
            for _ in 0..2 {
                lg.iter(sim);
            }
        }
        let lg = self.agent.loop_enter(self.ids.l_agg);
        let n = self.agg_queue.len().min(24);
        for _ in 0..n {
            lg.iter(sim);
            sim.advance(VirtualTime::from_micros(600));
            let _rec = self.agg_queue.pop_front().expect("sized loop");
            self.sink_done += 1;
            self.records_since_ckpt += 1;
        }
        drop(lg);
        sim.schedule(TICK, Ev::AggTick);
    }

    fn ckpt_check(&mut self, sim: &mut Sim<Ev>) {
        let _f = self.agent.frame(self.ids.fn_ckpt);
        self.agent
            .branch(self.ids.br_has_barrier, !self.barriers.is_empty());
        let _ = self
            .agent
            .negation_point(self.ids.np_is_empty, self.barriers.is_empty());
        let lg = self.agent.loop_enter(self.ids.l_barrier);
        let n = self.barriers.len();
        for _ in 0..n {
            lg.iter(sim);
            sim.advance(VirtualTime::from_micros(300));
            let b = self.barriers.pop_front().expect("sized loop");
            // State transition: every task must acknowledge in time.
            if self.agent.throw_guard(self.ids.tp_state_trans).is_some() {
                self.transition_failed = true;
                continue;
            }
            if sim.now().saturating_sub(b.issued) > timeouts::RPC {
                let _ = self.agent.throw_fired(self.ids.tp_state_trans);
                self.transition_failed = true;
                continue;
            }
            // Barrier completion under strict alignment.
            if self.agent.throw_guard(self.ids.tp_barrier_fail).is_some() {
                self.abort_checkpoint(sim);
                continue;
            }
            if self.transition_failed && self.cfg.strict_alignment {
                let _ = self.agent.throw_fired(self.ids.tp_barrier_fail);
                self.abort_checkpoint(sim);
                continue;
            }
            // Checkpoint complete.
            self.records_since_ckpt = 0;
            self.transition_failed = false;
        }
        drop(lg);
        sim.schedule(TICK * 2, Ev::CkptCheck);
    }

    fn abort_checkpoint(&mut self, sim: &mut Sim<Ev>) {
        self.transition_failed = false;
        if self.cfg.replay_on_abort {
            // Replay from the last completed checkpoint into aggregation.
            for _ in 0..self.records_since_ckpt.min(64) {
                self.agg_queue.push_back(Rec { arrived: sim.now() });
            }
        }
    }
}

impl World for FlinkWorld {
    type Event = Ev;

    fn handle(&mut self, sim: &mut Sim<Ev>, ev: Ev) {
        match ev {
            Ev::Record => {
                let intended = VirtualTime::from_millis(self.cfg.record_interval_ms)
                    * (self.records_arrived as u64 + 1);
                self.records_arrived += 1;
                self.head_queue.push_back(Rec { arrived: intended });
            }
            Ev::WorkerTick => self.worker_tick(sim),
            Ev::AggTick => self.agg_tick(sim),
            Ev::Barrier => {
                // Cadence-anchored: the coordinator is its own node, so a
                // busy task manager does not stretch barrier issue times.
                self.barrier_seq += 1;
                let intended = BARRIER_EVERY * self.barrier_seq;
                self.barriers.push_back(Barrier { issued: intended });
                sim.schedule_at(intended + BARRIER_EVERY, Ev::Barrier);
            }
            Ev::CkptCheck => self.ckpt_check(sim),
        }
    }
}

/// The mini-Flink target.
pub struct MiniFlink {
    registry: Arc<Registry>,
    ids: FlinkIds,
}

impl Default for MiniFlink {
    fn default() -> Self {
        Self::new()
    }
}

impl MiniFlink {
    /// Builds the system and registry.
    pub fn new() -> Self {
        let mut b = RegistryBuilder::new("mini-flink");
        let fn_worker = b.func("StreamTask.processInput");
        let fn_agg = b.func("WindowOperator.processElement");
        let fn_jm = b.func("JobMaster.restartTasks");
        let fn_ckpt = b.func("CheckpointCoordinator.receiveAck");
        let l_task_worker = b.workload_loop(fn_worker, 120, true, "task_worker_loop");
        let l_agg = b.workload_loop(fn_agg, 220, false, "agg_loop");
        let l_deploy_tasks = b.workload_loop(fn_jm, 330, true, "deploy_tasks_loop");
        let l_barrier = b.workload_loop(fn_ckpt, 410, false, "barrier_loop");
        let l_const = b.const_loop(fn_agg, 210, 2, "chain_verify");
        let tp_head_fail = b.throw_point(
            fn_worker,
            133,
            "TaskException",
            ExceptionCategory::SystemSpecific,
            "head_task_fail",
        );
        let tp_sink_cancel = b.throw_point(
            fn_worker,
            140,
            "CancelTaskException",
            ExceptionCategory::ExplicitRuntime,
            "sink_cancel",
        );
        let tp_state_trans = b.throw_point(
            fn_ckpt,
            421,
            "IllegalStateException",
            ExceptionCategory::ExplicitRuntime,
            "state_transition_fail",
        );
        let tp_barrier_fail = b.throw_point(
            fn_ckpt,
            432,
            "CheckpointException",
            ExceptionCategory::SystemSpecific,
            "barrier_fail",
        );
        let np_slot_ok = b.negation_point(
            fn_jm,
            325,
            false,
            BoolSource::ErrorDetector,
            "slots_available",
        );
        let np_is_empty = b.negation_point(fn_ckpt, 405, true, BoolSource::JdkUtility, "is_empty");
        let br_has_barrier = b.branch(fn_ckpt, 402);
        let ids = FlinkIds {
            fn_worker,
            fn_agg,
            fn_jm,
            fn_ckpt,
            l_task_worker,
            l_agg,
            l_deploy_tasks,
            l_barrier,
            l_const,
            tp_head_fail,
            tp_sink_cancel,
            tp_state_trans,
            tp_barrier_fail,
            np_slot_ok,
            np_is_empty,
            br_has_barrier,
        };
        MiniFlink {
            registry: Arc::new(b.build()),
            ids,
        }
    }

    /// Instrumentation ids.
    pub fn ids(&self) -> FlinkIds {
        self.ids
    }

    fn cfg_for(test: TestId) -> FlinkCfg {
        let d = FlinkCfg::default();
        match test.0 {
            // t0: broad coverage with every recovery feature on.
            0 => FlinkCfg {
                records: 50,
                cancel_downstream: true,
                restart_strategy: true,
                strict_alignment: true,
                replay_on_abort: true,
                ..d
            },
            // t1: high-volume stream (head-failure conditions).
            1 => FlinkCfg {
                records: 120,
                record_interval_ms: 30,
                ..d
            },
            // t2: multi-stage pipeline with downstream cancellation.
            2 => FlinkCfg {
                records: 40,
                cancel_downstream: true,
                ..d
            },
            // t3: restart strategy enabled.
            3 => FlinkCfg {
                records: 40,
                cancel_downstream: true,
                restart_strategy: true,
                ..d
            },
            // t4: checkpoint-heavy aggregation.
            4 => FlinkCfg {
                records: 80,
                record_interval_ms: 40,
                strict_alignment: false,
                ..d
            },
            // t5: strict barrier alignment.
            5 => FlinkCfg {
                records: 40,
                strict_alignment: true,
                ..d
            },
            // t6: checkpoint replay after abort.
            _ => FlinkCfg {
                records: 50,
                strict_alignment: true,
                replay_on_abort: true,
                horizon_s: 60,
                ..d
            },
        }
    }
}

impl TargetSystem for MiniFlink {
    fn name(&self) -> &'static str {
        "mini-flink"
    }

    fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    fn tests(&self) -> Vec<TestCase> {
        let names: [(&'static str, &'static str); 7] = [
            ("test_full_recovery_stack", "all recovery features enabled"),
            ("test_stream_volume", "120 records at 30ms"),
            ("test_pipeline_cancel", "downstream cancellation on failure"),
            (
                "test_restart_strategy",
                "restart strategy redeploys the job",
            ),
            ("test_checkpoint_heavy", "barrier-dense aggregation"),
            ("test_strict_alignment", "strict barrier alignment"),
            ("test_replay_on_abort", "checkpoint replay after abort"),
        ];
        names
            .iter()
            .enumerate()
            .map(|(i, (name, description))| TestCase {
                id: TestId(i as u32),
                name,
                description,
            })
            .collect()
    }

    fn run(&self, test: TestId, plan: Option<InjectionPlan>, seed: u64) -> RunTrace {
        let cfg = Self::cfg_for(test);
        let ids = self.ids;
        let horizon = VirtualTime::from_secs(cfg.horizon_s) + VirtualTime::from_secs(600);
        run_world(&self.registry, plan, seed, horizon, |agent, sim| {
            for i in 0..cfg.records {
                sim.schedule_at(
                    VirtualTime::from_millis(cfg.record_interval_ms) * (i as u64 + 1),
                    Ev::Record,
                );
            }
            sim.schedule(TICK, Ev::WorkerTick);
            sim.schedule(TICK, Ev::AggTick);
            sim.schedule(BARRIER_EVERY, Ev::Barrier);
            sim.schedule(TICK * 2, Ev::CkptCheck);
            FlinkWorld {
                agent,
                ids,
                cfg,
                head_queue: VecDeque::new(),
                agg_queue: VecDeque::new(),
                barriers: VecDeque::new(),
                barrier_seq: 0,
                records_arrived: 0,
                head_processed: 0,
                records_since_ckpt: 0,
                sink_done: 0,
                restarts: 0,
                transition_failed: false,
                head_failed: false,
            }
        })
    }

    fn known_bugs(&self) -> Vec<KnownBug> {
        vec![
            KnownBug {
                id: "flink-task-worker",
                jira: "FLINK-38367",
                summary: "worker delay fails the head task; sink cancellation triggers a restart that replays records through the worker",
                labels: vec!["task_worker_loop", "head_task_fail", "sink_cancel"],
            },
            KnownBug {
                id: "flink-aggregation",
                jira: "FLINK-38368",
                summary: "aggregation delay fails a state transition; the broken barrier aborts the checkpoint whose replay re-loads aggregation",
                labels: vec!["agg_loop", "state_transition_fail", "barrier_fail"],
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MiniFlink {
        MiniFlink::new()
    }

    #[test]
    fn profiles_are_clean() {
        let s = sys();
        let ids = s.ids();
        for t in 0..7 {
            let trace = s.run(TestId(t), None, 11 + t as u64);
            for p in [
                ids.tp_head_fail,
                ids.tp_sink_cancel,
                ids.tp_state_trans,
                ids.tp_barrier_fail,
            ] {
                assert!(!trace.occurred(p), "t{t}: {p} fired in profile");
            }
        }
    }

    #[test]
    fn worker_delay_fails_head_task() {
        let s = sys();
        let ids = s.ids();
        let plan = InjectionPlan::delay(ids.l_task_worker, VirtualTime::from_millis(3200));
        let t = s.run(TestId(1), Some(plan), 3);
        assert!(t.occurred(ids.tp_head_fail));
    }

    #[test]
    fn head_failure_cancels_sink_only_with_cancellation() {
        let s = sys();
        let ids = s.ids();
        let t2 = s.run(TestId(2), Some(InjectionPlan::throw(ids.tp_head_fail)), 3);
        assert!(t2.occurred(ids.tp_sink_cancel));
        let t1 = s.run(TestId(1), Some(InjectionPlan::throw(ids.tp_head_fail)), 3);
        assert!(!t1.occurred(ids.tp_sink_cancel));
    }

    #[test]
    fn sink_cancel_restart_replays_records() {
        let s = sys();
        let ids = s.ids();
        let base = s.run(TestId(3), None, 3).loop_count(ids.l_task_worker);
        let t = s.run(TestId(3), Some(InjectionPlan::throw(ids.tp_sink_cancel)), 3);
        assert!(
            t.loop_count(ids.l_task_worker) > base,
            "restart must replay records: {} vs {base}",
            t.loop_count(ids.l_task_worker)
        );
    }

    #[test]
    fn agg_delay_fails_state_transition() {
        let s = sys();
        let ids = s.ids();
        let plan = InjectionPlan::delay(ids.l_agg, VirtualTime::from_millis(3200));
        let t = s.run(TestId(4), Some(plan), 3);
        assert!(t.occurred(ids.tp_state_trans));
    }

    #[test]
    fn transition_failure_breaks_barrier_under_strict_alignment() {
        let s = sys();
        let ids = s.ids();
        let t5 = s.run(TestId(5), Some(InjectionPlan::throw(ids.tp_state_trans)), 3);
        assert!(t5.occurred(ids.tp_barrier_fail));
        let t4 = s.run(TestId(4), Some(InjectionPlan::throw(ids.tp_state_trans)), 3);
        assert!(!t4.occurred(ids.tp_barrier_fail));
    }

    #[test]
    fn barrier_failure_replays_into_aggregation() {
        let s = sys();
        let ids = s.ids();
        let base = s.run(TestId(6), None, 3).loop_count(ids.l_agg);
        let t = s.run(
            TestId(6),
            Some(InjectionPlan::throw(ids.tp_barrier_fail)),
            3,
        );
        assert!(
            t.loop_count(ids.l_agg) > base,
            "abort must replay into aggregation: {} vs {base}",
            t.loop_count(ids.l_agg)
        );
    }
}
