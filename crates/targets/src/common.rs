//! Shared harness utilities for the mini-systems.

use std::rc::Rc;
use std::sync::Arc;

use csnake_inject::{Agent, InjectionPlan, Registry, RunTrace};
use csnake_sim::{Sim, VirtualTime, World};

/// Runs one workload to completion and extracts its trace.
///
/// Constructs the simulator and agent, lets `setup` build the world and seed
/// the initial events, runs until `horizon`, and finalizes the trace.
pub fn run_world<E, W, F>(
    registry: &Arc<Registry>,
    plan: Option<InjectionPlan>,
    seed: u64,
    horizon: VirtualTime,
    setup: F,
) -> RunTrace
where
    W: World<Event = E>,
    F: FnOnce(Rc<Agent>, &mut Sim<E>) -> W,
{
    let agent = Rc::new(Agent::new(Arc::clone(registry), plan));
    agent.set_tracing(csnake_inject::tracing_switch::get());
    let mut sim = Sim::new(seed);
    let mut world = setup(Rc::clone(&agent), &mut sim);
    sim.run(&mut world, horizon);
    agent.finish(sim.now(), sim.events_executed())
}

/// Standard reduced-timeout defaults shared by the mini-systems.
///
/// The paper lowers system timeout configurations into a 10–20 s band so
/// that injected delays (100 ms – 8 s per loop iteration) can trip them
/// while normal operation — including every shipped integration test — is
/// unaffected (§4.2).
pub mod timeouts {
    use csnake_sim::VirtualTime;

    /// Generic RPC timeout (10 s).
    pub const RPC: VirtualTime = VirtualTime::from_secs(10);
    /// Node staleness threshold (15 s).
    pub const STALE: VirtualTime = VirtualTime::from_secs(15);
    /// Pipeline/operation timeout (12 s).
    pub const OPERATION: VirtualTime = VirtualTime::from_secs(12);
}

#[cfg(test)]
mod tests {
    use super::*;
    use csnake_inject::RegistryBuilder;

    struct Nop;
    impl World for Nop {
        type Event = ();
        fn handle(&mut self, _sim: &mut Sim<()>, _ev: ()) {}
    }

    #[test]
    fn run_world_produces_a_finalized_trace() {
        let reg = Arc::new(RegistryBuilder::new("t").build());
        let trace = run_world(&reg, None, 1, VirtualTime::from_secs(1), |_agent, sim| {
            sim.schedule(VirtualTime::from_millis(10), ());
            Nop
        });
        assert_eq!(trace.events, 1);
        assert!(trace.end_time >= VirtualTime::from_millis(10));
    }

    #[test]
    fn timeout_constants_are_in_paper_band() {
        assert!(timeouts::RPC >= VirtualTime::from_secs(10));
        assert!(timeouts::STALE <= VirtualTime::from_secs(20));
        assert!(timeouts::OPERATION <= VirtualTime::from_secs(20));
    }
}
