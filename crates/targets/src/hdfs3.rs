//! Mini-HDFS 3: the HDFS 2 codebase plus erasure-coding reconstruction and
//! the asynchronous block-deletion service.
//!
//! HDFS 3.4.1 shares most of its fault-handling architecture with HDFS 2
//! (which is why the paper re-detects two HDFS 2 bugs on HDFS 3); this
//! target therefore reuses the `hdfs2` world with the V3 services enabled
//! and adds the two HDFS 3 rows of Table 3:
//!
//! * **block deletion** (1D|1E|1N): a delayed async deleter fails writes
//!   whose block-pool restarts go stale; stale-node replica invalidation
//!   re-loads the deleter.
//! * **block reconstruction + IBR** (2D|1E|1N): a delayed reconstruction
//!   worker stalls its DataNode into staleness; re-replication inflates IBR
//!   traffic; delayed IBR processing times out replication commands whose
//!   failure queues more reconstruction work.

use std::sync::Arc;

use csnake_core::{KnownBug, TargetSystem, TestCase};
use csnake_inject::{InjectionPlan, Registry, RunTrace, TestId};

use crate::hdfs2::{build_registry, run_hdfs, HdfsCfg, HdfsIds, HdfsVersion, MiniHdfs2};

/// The mini-HDFS3 target.
pub struct MiniHdfs3 {
    registry: Arc<Registry>,
    ids: HdfsIds,
}

impl Default for MiniHdfs3 {
    fn default() -> Self {
        Self::new()
    }
}

impl MiniHdfs3 {
    /// Builds the system and registry.
    pub fn new() -> Self {
        let (reg, ids) = build_registry(HdfsVersion::V3);
        MiniHdfs3 {
            registry: Arc::new(reg),
            ids,
        }
    }

    /// Instrumentation ids (shared layout with mini-HDFS2).
    pub fn ids(&self) -> HdfsIds {
        self.ids
    }

    fn cfg_for(test: TestId) -> HdfsCfg {
        match test.0 {
            // V3-specific workloads first, then the shared HDFS2 suite.
            // t0: async deletion heavy (bug hdfs3-1).
            0 => HdfsCfg {
                deletions: 40,
                writes: 24,
                restart_on_pipeline_failure: true,
                ..HdfsCfg::default()
            },
            // t1: erasure-coding reconstruction (bug hdfs3-2).
            1 => HdfsCfg {
                recon_tasks: 36,
                blocks_per_dn: 600,
                writes: 16,
                ..HdfsCfg::default()
            },
            // t2: reconstruction + replication under churn.
            2 => HdfsCfg {
                recon_tasks: 20,
                blocks_per_dn: 900,
                recoveries: 8,
                writes: 20,
                ..HdfsCfg::default()
            },
            // t3+: the shared HDFS2 workloads (same configs, V3 services on).
            n => {
                let mut cfg = MiniHdfs2::cfg_for(TestId(n - 3));
                cfg.deletions = cfg.deletions.max(6);
                cfg.recon_tasks = cfg.recon_tasks.max(4);
                cfg
            }
        }
    }
}

impl TargetSystem for MiniHdfs3 {
    fn name(&self) -> &'static str {
        "mini-hdfs3"
    }

    fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    fn tests(&self) -> Vec<TestCase> {
        let mut tests = vec![
            TestCase {
                id: TestId(0),
                name: "test_async_deletion",
                description: "40 async deletions plus writes, restart-on-failure",
            },
            TestCase {
                id: TestId(1),
                name: "test_ec_reconstruction",
                description: "36 erasure-coding reconstruction tasks",
            },
            TestCase {
                id: TestId(2),
                name: "test_reconstruction_churn",
                description: "reconstruction with recoveries and 900 blocks/DN",
            },
        ];
        for (i, t) in MiniHdfs2::new().tests().into_iter().enumerate() {
            tests.push(TestCase {
                id: TestId(i as u32 + 3),
                name: t.name,
                description: t.description,
            });
        }
        tests
    }

    fn run(&self, test: TestId, plan: Option<InjectionPlan>, seed: u64) -> RunTrace {
        run_hdfs(
            &self.registry,
            self.ids,
            HdfsVersion::V3,
            Self::cfg_for(test),
            plan,
            seed,
        )
    }

    fn known_bugs(&self) -> Vec<KnownBug> {
        let mut bugs = vec![
            KnownBug {
                id: "hdfs3-block-deletion",
                jira: "HDFS-17838",
                summary: "async deleter delay fails writes; stale block-pool restarts queue replica invalidations back onto the deleter",
                labels: vec!["deleter_loop", "write_pipeline_ioe", "dn_stale"],
            },
            KnownBug {
                id: "hdfs3-reconstruction-ibr",
                jira: "HDFS-17782",
                summary: "reconstruction delay stalls the DN into staleness; re-replication inflates IBR; delayed IBR times out replication whose failure re-queues reconstruction",
                labels: vec!["recon_loop", "dn_stale", "ibr_process_loop", "repl_ioe"],
            },
        ];
        // The two HDFS2 bugs the paper re-detects on HDFS3 (same codebase).
        for b in crate::hdfs2::hdfs2_bugs() {
            if b.id == "hdfs2-block-recovery" || b.id == "hdfs2-ibr-throttle" {
                bugs.push(b);
            }
        }
        bugs
    }

    fn expected_contention_labels(&self) -> Vec<&'static str> {
        vec!["client_read_loop", "client_write_loop"]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csnake_sim::VirtualTime;

    fn sys() -> MiniHdfs3 {
        MiniHdfs3::new()
    }

    #[test]
    fn v3_profiles_cover_v3_services() {
        let s = sys();
        let ids = s.ids();
        let t = s.run(TestId(0), None, 7);
        assert!(t.coverage.contains(&ids.l_deleter), "deleter loop covered");
        let t1 = s.run(TestId(1), None, 7);
        assert!(t1.coverage.contains(&ids.l_recon), "recon loop covered");
        assert!(!t.occurred(ids.tp_repl_ioe));
        assert!(!t1.occurred(ids.np_dn_stale));
    }

    #[test]
    fn deleter_delay_fails_writes() {
        let s = sys();
        let ids = s.ids();
        let plan = InjectionPlan::delay(ids.l_deleter, VirtualTime::from_millis(3200));
        let t = s.run(TestId(0), Some(plan), 7);
        assert!(t.occurred(ids.tp_pipeline_ioe));
    }

    #[test]
    fn stale_injection_grows_deletion_queue() {
        let s = sys();
        let ids = s.ids();
        let base = s.run(TestId(0), None, 7).loop_count(ids.l_deleter);
        let t = s.run(TestId(0), Some(InjectionPlan::negate(ids.np_dn_stale)), 7);
        assert!(
            t.loop_count(ids.l_deleter) > base,
            "replica invalidation must load the deleter: {} vs {base}",
            t.loop_count(ids.l_deleter)
        );
    }

    #[test]
    fn recon_delay_stalls_node_to_staleness() {
        let s = sys();
        let ids = s.ids();
        let plan = InjectionPlan::delay(ids.l_recon, VirtualTime::from_millis(3200));
        let t = s.run(TestId(1), Some(plan), 7);
        assert!(
            t.occurred(ids.np_dn_stale) || t.occurred(ids.tp_repl_ioe),
            "reconstruction stall must surface as staleness or repl failure"
        );
    }

    #[test]
    fn repl_failure_requeues_reconstruction() {
        let s = sys();
        let ids = s.ids();
        let base = s.run(TestId(1), None, 7).loop_count(ids.l_recon);
        let t = s.run(TestId(1), Some(InjectionPlan::throw(ids.tp_repl_ioe)), 7);
        assert!(
            t.loop_count(ids.l_recon) > base,
            "failed replication must queue reconstruction: {} vs {base}",
            t.loop_count(ids.l_recon)
        );
    }

    #[test]
    fn shared_hdfs2_suite_is_present() {
        let s = sys();
        assert_eq!(s.tests().len(), 18);
        assert!(s.known_bugs().iter().any(|b| b.id == "hdfs2-ibr-throttle"));
    }
}
