//! Mini-HDFS 2: a miniature reproduction of HDFS 2.10.2's fault-handling
//! architecture.
//!
//! Components (all on one deterministic simulated cluster):
//!
//! * **NameNode** — datanode monitor (staleness detector), lease manager,
//!   edit-log sync, cache replication monitor, replication monitor,
//!   incremental-block-report (IBR) processing, optional active/standby
//!   failover;
//! * **DataNodes** — heartbeat/offer service (with command-processing and
//!   IBR-send sub-loops, giving the Table 1 `ICFG`/`CFG` structure), write
//!   pipeline (packet receive + ack), block recovery worker;
//! * **Clients** — open-loop write/read workloads with status checks,
//!   pipeline rebuild and lease recovery on failure.
//!
//! The six seeded self-sustaining cascading failures mirror the HDFS 2 rows
//! of the paper's Table 3 (lease recovery, edit-log flushing, block
//! recovery, write pipeline, block cache, IBR throttle bypass — the §8.3.2
//! case study). Each is a genuine logic flaw; the detector discovers them
//! from traces.

use std::collections::VecDeque;
use std::rc::Rc;
use std::sync::Arc;

use csnake_core::{KnownBug, TargetSystem, TestCase};
use csnake_inject::{
    Agent, BoolSource, BranchId, ExceptionCategory, Fault, FaultId, FnId, InjectionPlan, Registry,
    RegistryBuilder, RunTrace, TestId,
};
use csnake_sim::{Clock, Sim, VirtualTime, World};

use crate::common::{run_world, timeouts};

/// Which HDFS lineage a world simulates; HDFS 3 adds erasure-coding
/// reconstruction and an async deletion service on the same codebase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HdfsVersion {
    V2,
    V3,
}

/// Instrumentation ids shared by mini-HDFS2 and mini-HDFS3.
#[derive(Debug, Clone, Copy)]
pub struct HdfsIds {
    // Functions.
    pub(crate) fn_monitor: FnId,
    pub(crate) fn_lease: FnId,
    pub(crate) fn_editlog: FnId,
    pub(crate) fn_cache: FnId,
    pub(crate) fn_repl: FnId,
    pub(crate) fn_ibr_proc: FnId,
    pub(crate) fn_offer: FnId,
    pub(crate) fn_pipeline: FnId,
    pub(crate) fn_write_check: FnId,
    pub(crate) fn_blockrec: FnId,
    pub(crate) fn_client: FnId,
    pub(crate) fn_recon: FnId,
    pub(crate) fn_deleter: FnId,
    // Loops.
    /// NameNode lease-manager loop.
    pub l_lease: FaultId,
    /// NameNode edit-log sync loop.
    pub l_editlog: FaultId,
    /// DataNode block-recovery worker loop.
    pub l_blockrec: FaultId,
    /// DataNode pipeline packet/ack processing loop.
    pub l_pipeline_ack: FaultId,
    /// NameNode cache replication monitor rescan loop.
    pub l_cache: FaultId,
    /// NameNode IBR processing loop (per report).
    pub l_ibr_process: FaultId,
    /// DataNode IBR send loop (per report).
    pub l_ibr_send: FaultId,
    /// NameNode datanode monitor loop.
    pub l_dn_monitor: FaultId,
    /// NameNode replication monitor loop.
    pub l_repl_monitor: FaultId,
    /// DataNode offer-service outer loop (one iteration per heartbeat).
    pub l_offer: FaultId,
    /// DataNode command-processing loop (child of `l_offer`).
    pub l_cmd_proc: FaultId,
    /// Client read chunk loop (expected contention).
    pub l_client_read: FaultId,
    /// Client write chunk loop (expected contention).
    pub l_client_write: FaultId,
    /// Constant-bound retry loop (analyzer-filtered).
    pub l_retry_const: FaultId,
    /// HDFS3 only: erasure-coding reconstruction loop.
    pub l_recon: FaultId,
    /// HDFS3 only: async block deletion loop.
    pub l_deleter: FaultId,
    // Throw points.
    /// Write pipeline IOE (status check).
    pub tp_pipeline_ioe: FaultId,
    /// IBR RPC IOE (NameNode processing timeout).
    pub tp_ibr_ioe: FaultId,
    /// IBR IOE during standby catch-up (failover window).
    pub tp_ibr_standby_ioe: FaultId,
    /// Block recovery IOE (timeout or insufficient replicas).
    pub tp_blockrec_ioe: FaultId,
    /// HDFS3 only: replication command IOE.
    pub tp_repl_ioe: FaultId,
    /// Library-call site (socket read in pipeline).
    pub tp_sock_read: FaultId,
    /// Reflection exception (analyzer-filtered).
    pub tp_reflect: FaultId,
    /// Security exception (analyzer-filtered).
    pub tp_security: FaultId,
    /// Test-only throw (analyzer-filtered).
    pub tp_test_only: FaultId,
    // Negation points.
    /// `DatanodeManager.isStale` (error when `true`).
    pub np_dn_stale: FaultId,
    /// JDK utility boolean (analyzer-filtered).
    pub np_contains: FaultId,
    /// Final-config-only boolean (analyzer-filtered).
    pub np_is_ha: FaultId,
    /// Primitive utility boolean (analyzer-filtered).
    pub np_is_sorted: FaultId,
    // Branches.
    pub(crate) br_has_pending_ibr: BranchId,
    pub(crate) br_queue_nonempty: BranchId,
    pub(crate) br_is_client_op: BranchId,
}

pub(crate) fn build_registry(version: HdfsVersion) -> (Registry, HdfsIds) {
    let name = match version {
        HdfsVersion::V2 => "mini-hdfs2",
        HdfsVersion::V3 => "mini-hdfs3",
    };
    let mut b = RegistryBuilder::new(name);
    let fn_monitor = b.func("DatanodeManager.heartbeatCheck");
    let fn_lease = b.func("LeaseManager.checkLeases");
    let fn_editlog = b.func("FSEditLog.logSync");
    let fn_cache = b.func("CacheReplicationMonitor.rescan");
    let fn_repl = b.func("ReplicationMonitor.computeWork");
    let fn_ibr_proc = b.func("BlockManager.processIncrementalBlockReport");
    let fn_offer = b.func("BPServiceActor.offerService");
    let fn_pipeline = b.func("BlockReceiver.receivePacket");
    let fn_write_check = b.func("DataStreamer.checkStatus");
    let fn_blockrec = b.func("DataNode.recoverBlocks");
    let fn_client = b.func("DFSClient.transfer");
    let fn_recon = b.func("ErasureCodingWorker.reconstruct");
    let fn_deleter = b.func("FsDatasetAsyncDiskService.deleteAsync");

    let l_lease = b.workload_loop(fn_lease, 310, false, "lease_loop");
    let l_editlog = b.workload_loop(fn_editlog, 620, true, "editlog_loop");
    let l_blockrec = b.workload_loop(fn_blockrec, 2710, true, "blockrec_loop");
    let l_pipeline_ack = b.workload_loop(fn_pipeline, 901, true, "pipeline_ack_loop");
    let l_cache = b.workload_loop(fn_cache, 404, false, "cache_loop");
    let l_ibr_process = b.workload_loop(fn_ibr_proc, 2433, true, "ibr_process_loop");
    let l_offer = b.workload_loop(fn_offer, 711, true, "offer_loop");
    let l_cmd_proc = b.workload_loop(fn_offer, 724, false, "cmd_proc_loop");
    let l_ibr_send = b.workload_loop(fn_offer, 760, true, "ibr_send_loop");
    b.set_parent(l_cmd_proc, l_offer);
    b.set_parent(l_ibr_send, l_offer);
    b.set_sibling(l_cmd_proc, l_ibr_send);
    let l_dn_monitor = b.workload_loop(fn_monitor, 150, false, "dn_monitor_loop");
    let l_repl_monitor = b.workload_loop(fn_repl, 530, false, "repl_monitor_loop");
    let l_client_read = b.workload_loop(fn_client, 88, true, "client_read_loop");
    let l_client_write = b.workload_loop(fn_client, 95, true, "client_write_loop");
    let l_retry_const = b.const_loop(fn_client, 99, 3, "retry3");
    let l_recon = b.workload_loop(fn_recon, 211, true, "recon_loop");
    let l_deleter = b.workload_loop(fn_deleter, 77, true, "deleter_loop");

    let tp_pipeline_ioe = b.throw_point(
        fn_write_check,
        933,
        "IOException",
        ExceptionCategory::SystemSpecific,
        "write_pipeline_ioe",
    );
    let tp_ibr_ioe = b.throw_point(
        fn_ibr_proc,
        2440,
        "IOException",
        ExceptionCategory::SystemSpecific,
        "ibr_rpc_ioe",
    );
    let tp_ibr_standby_ioe = b.throw_point(
        fn_ibr_proc,
        2461,
        "StandbyException",
        ExceptionCategory::SystemSpecific,
        "ibr_standby_ioe",
    );
    let tp_blockrec_ioe = b.throw_point(
        fn_blockrec,
        2733,
        "IOException",
        ExceptionCategory::SystemSpecific,
        "blockrec_ioe",
    );
    let tp_repl_ioe = b.throw_point(
        fn_repl,
        560,
        "IOException",
        ExceptionCategory::SystemSpecific,
        "repl_ioe",
    );
    let tp_sock_read = b.lib_call(fn_pipeline, 905, "SocketTimeoutException", "sock_read");
    let tp_reflect = b.throw_point(
        fn_client,
        12,
        "ReflectiveOperationException",
        ExceptionCategory::Reflection,
        "reflect",
    );
    let tp_security = b.throw_point(
        fn_client,
        14,
        "AccessControlException",
        ExceptionCategory::Security,
        "security",
    );
    let tp_test_only = b.test_only_throw(fn_client, 16, "AssertionError", "test_only");

    let np_dn_stale =
        b.negation_point(fn_monitor, 161, true, BoolSource::ErrorDetector, "dn_stale");
    let np_contains = b.negation_point(fn_monitor, 170, true, BoolSource::JdkUtility, "contains");
    let np_is_ha = b.negation_point(fn_editlog, 600, true, BoolSource::FinalConfigOnly, "is_ha");
    let np_is_sorted = b.negation_point(
        fn_repl,
        522,
        true,
        BoolSource::PrimitiveUtility,
        "is_sorted",
    );

    let br_has_pending_ibr = b.branch(fn_offer, 755);
    let br_queue_nonempty = b.branch(fn_blockrec, 2712);
    let br_is_client_op = b.branch(fn_client, 90);

    let ids = HdfsIds {
        fn_monitor,
        fn_lease,
        fn_editlog,
        fn_cache,
        fn_repl,
        fn_ibr_proc,
        fn_offer,
        fn_pipeline,
        fn_write_check,
        fn_blockrec,
        fn_client,
        fn_recon,
        fn_deleter,
        l_lease,
        l_editlog,
        l_blockrec,
        l_pipeline_ack,
        l_cache,
        l_ibr_process,
        l_ibr_send,
        l_dn_monitor,
        l_repl_monitor,
        l_offer,
        l_cmd_proc,
        l_client_read,
        l_client_write,
        l_retry_const,
        l_recon,
        l_deleter,
        tp_pipeline_ioe,
        tp_ibr_ioe,
        tp_ibr_standby_ioe,
        tp_blockrec_ioe,
        tp_repl_ioe,
        tp_sock_read,
        tp_reflect,
        tp_security,
        tp_test_only,
        np_dn_stale,
        np_contains,
        np_is_ha,
        np_is_sorted,
        br_has_pending_ibr,
        br_queue_nonempty,
        br_is_client_op,
    };
    (b.build(), ids)
}

/// Per-test cluster configuration.
#[derive(Debug, Clone)]
pub(crate) struct HdfsCfg {
    pub dns: usize,
    pub blocks_per_dn: u32,
    pub writes: u32,
    pub write_interval_ms: u64,
    pub read_chunks: u32,
    pub lease_load: u32,
    pub recoveries: u32,
    pub cache_directives: u32,
    pub failover_enabled: bool,
    /// Proper (journal-syncing) IBR retry path — bug 2's back edge.
    pub ibr_retry_journal: bool,
    /// IBR throttle interval; 0 = send with every heartbeat.
    pub ibr_throttle_ms: u64,
    /// Retry timed-out block recoveries (bug 3's amplifier).
    pub recovery_retry: bool,
    /// Resend pending packets when a write stays uncommitted (bug 4's
    /// amplifier).
    pub pipeline_retry: bool,
    /// Queue a lease recovery when a write fails (bug 1's amplifier).
    pub lease_recovery_on_failure: bool,
    /// Ask all DNs for a block re-sync when a recovery fails (bug 4's
    /// middle edge).
    pub resync_on_recovery_failure: bool,
    /// DataNode restarts its block-pool service (pausing heartbeats) on a
    /// fatal pipeline error (bug 5's middle edge).
    pub restart_on_pipeline_failure: bool,
    /// Queue a block recovery when a pipeline fails.
    pub recovery_on_pipeline_failure: bool,
    /// Strict commit checking: a block whose IBR failed is rejected as
    /// corrupt instead of silently waiting for the retry (bug 1's and
    /// bug 4's middle edges).
    pub corrupt_on_ibr_failure: bool,
    /// Routine metadata-churn reports sent by DNs independent of client
    /// writes (off in the IBR-cadence tests to keep their counts exact).
    pub background_reports: bool,
    /// HDFS3: erasure-coding reconstruction tasks.
    pub recon_tasks: u32,
    /// HDFS3: async deletion requests.
    pub deletions: u32,
    pub horizon_s: u64,
}

impl Default for HdfsCfg {
    fn default() -> Self {
        HdfsCfg {
            dns: 3,
            blocks_per_dn: 120,
            writes: 15,
            write_interval_ms: 400,
            read_chunks: 0,
            lease_load: 6,
            recoveries: 4,
            cache_directives: 6,
            failover_enabled: false,
            ibr_retry_journal: false,
            ibr_throttle_ms: 0,
            recovery_retry: false,
            pipeline_retry: false,
            lease_recovery_on_failure: false,
            resync_on_recovery_failure: false,
            restart_on_pipeline_failure: false,
            recovery_on_pipeline_failure: false,
            corrupt_on_ibr_failure: false,
            background_reports: true,
            recon_tasks: 0,
            deletions: 0,
            horizon_s: 45,
        }
    }
}

const HB_INTERVAL: VirtualTime = VirtualTime::from_millis(500);
const MONITOR_INTERVAL: VirtualTime = VirtualTime::from_millis(1000);
const TICK: VirtualTime = VirtualTime::from_millis(250);
const WRITE_PACKETS: u32 = 3;
/// Client chunk re-request threshold (expected read/write contention).
const CHUNK_SLOW: VirtualTime = VirtualTime::from_secs(6);

#[derive(Debug, Clone, Copy)]
pub(crate) enum Ev {
    Heartbeat(usize),
    Monitor,
    LeaseTick,
    EditTick,
    CacheTick,
    ReplTick,
    RecTick,
    PipeTick,
    ClientTick,
    WriteStart(u32),
    WriteCheck(u32),
    ReadStart,
    RecoveryStart,
    LeaseStart,
    NnIbr {
        dn: usize,
        sent_us: u64,
        entries: u32,
        journal: bool,
    },
    IbrProcTick,
    ReconTick,
    DeleteTick,
    DeleteStart,
}

#[derive(Debug, Clone, Copy)]
struct WriteOp {
    started: VirtualTime,
    packets_left: u32,
    committed: bool,
    failed: bool,
    /// The NameNode rejected the block commit after an IBR failure
    /// (strict-commit configurations).
    commit_rejected: bool,
    dn: usize,
}

#[derive(Debug, Clone, Copy)]
struct RecoveryItem {
    created: VirtualTime,
    attempts: u8,
}

#[derive(Debug, Clone, Copy)]
struct Chunk {
    created: VirtualTime,
    attempts: u8,
    is_read: bool,
}

pub(crate) struct HdfsWorld {
    agent: Rc<Agent>,
    ids: HdfsIds,
    cfg: HdfsCfg,
    version: HdfsVersion,
    // NameNode state.
    dn_last_hb: Vec<VirtualTime>,
    dn_excluded: Vec<bool>,
    dn_suspect: Vec<bool>,
    dn_hb_paused_until: Vec<VirtualTime>,
    last_edit_tick: VirtualTime,
    last_repl_tick: VirtualTime,
    standby_until: VirtualTime,
    lease_queue: VecDeque<VirtualTime>,
    pending_edits: u64,
    cache_queue: u64,
    under_replicated: u64,
    standby_active: bool,
    failed_over: bool,
    // NameNode IBR inbox: reports wait here for the processing tick, so
    // they age realistically across any clock advance.
    ibr_inbox: VecDeque<(usize, VirtualTime, u32, bool)>,
    // DataNode state.
    ibr_pending: Vec<u32>,
    /// Failed reports queued for next-heartbeat retransmission — the
    /// throttle-bypass bug (§8.3.2) in code form.
    ibr_retry_reports: Vec<Vec<u32>>,
    last_ibr_sent: Vec<VirtualTime>,
    last_routine_report: Vec<VirtualTime>,
    /// Cadence-anchored next heartbeat time per DN: the DN is its own node,
    /// so its timers do not stretch when the (single-threaded) NameNode is
    /// busy; late heartbeats pop in a burst with *old* send timestamps.
    hb_intended: Vec<VirtualTime>,
    dn_cmd_queue: Vec<u32>,
    packet_queue: VecDeque<u32>,
    recovery_queue: VecDeque<RecoveryItem>,
    // Client state.
    writes: Vec<WriteOp>,
    chunk_queue: VecDeque<Chunk>,
    reads_issued: u32,
    // HDFS3 services.
    recon_queue: u64,
    delete_queue: u64,
    writes_started: u32,
}

impl HdfsWorld {
    pub(crate) fn new(agent: Rc<Agent>, ids: HdfsIds, cfg: HdfsCfg, version: HdfsVersion) -> Self {
        let dns = cfg.dns;
        HdfsWorld {
            agent,
            ids,
            version,
            dn_last_hb: vec![VirtualTime::ZERO; dns],
            dn_excluded: vec![false; dns],
            dn_suspect: vec![false; dns],
            dn_hb_paused_until: vec![VirtualTime::ZERO; dns],
            last_edit_tick: VirtualTime::ZERO,
            last_repl_tick: VirtualTime::ZERO,
            standby_until: VirtualTime::ZERO,
            lease_queue: VecDeque::new(),
            pending_edits: 0,
            cache_queue: 0,
            under_replicated: 0,
            standby_active: false,
            failed_over: false,
            ibr_inbox: VecDeque::new(),
            ibr_pending: vec![0; dns],
            ibr_retry_reports: vec![Vec::new(); dns],
            last_ibr_sent: vec![VirtualTime::ZERO; dns],
            last_routine_report: vec![VirtualTime::ZERO; dns],
            hb_intended: (0..dns)
                .map(|dn| HB_INTERVAL + VirtualTime::from_millis(17 * dn as u64))
                .collect(),
            dn_cmd_queue: vec![0; dns],
            packet_queue: VecDeque::new(),
            recovery_queue: VecDeque::new(),
            writes: Vec::new(),
            chunk_queue: VecDeque::new(),
            reads_issued: 0,
            recon_queue: 0,
            delete_queue: 0,
            writes_started: 0,
            cfg,
        }
    }

    pub(crate) fn bootstrap(cfg: &HdfsCfg, sim: &mut Sim<Ev>) {
        for i in 0..cfg.writes {
            sim.schedule_at(
                VirtualTime::from_millis(cfg.write_interval_ms) * (i as u64 + 1),
                Ev::WriteStart(i),
            );
        }
        for i in 0..cfg.read_chunks {
            sim.schedule_at(
                VirtualTime::from_millis(150) * (i as u64 + 1),
                Ev::ReadStart,
            );
        }
        for i in 0..cfg.recoveries {
            sim.schedule_at(
                VirtualTime::from_millis(800) * (i as u64 + 1),
                Ev::RecoveryStart,
            );
        }
        for i in 0..cfg.lease_load {
            sim.schedule_at(
                VirtualTime::from_millis(150) * (i as u64 + 1),
                Ev::LeaseStart,
            );
        }
        for i in 0..cfg.deletions {
            sim.schedule_at(
                VirtualTime::from_millis(300) * (i as u64 + 1),
                Ev::DeleteStart,
            );
        }
        for dn in 0..cfg.dns {
            sim.schedule_at(
                HB_INTERVAL + VirtualTime::from_millis(17 * dn as u64),
                Ev::Heartbeat(dn),
            );
        }
        sim.schedule(MONITOR_INTERVAL, Ev::Monitor);
        sim.schedule(TICK, Ev::LeaseTick);
        sim.schedule(TICK, Ev::EditTick);
        sim.schedule(TICK * 2, Ev::CacheTick);
        sim.schedule(TICK * 2, Ev::ReplTick);
        sim.schedule(TICK * 2, Ev::RecTick);
        sim.schedule(TICK / 2, Ev::PipeTick);
        sim.schedule(VirtualTime::from_millis(100), Ev::IbrProcTick);
        sim.schedule(TICK, Ev::ClientTick);
        sim.schedule(TICK * 3, Ev::ReconTick);
        sim.schedule(TICK * 3, Ev::DeleteTick);
    }

    /// A write failed fatally: run the configured recovery reactions.
    fn on_write_failure(&mut self, sim: &mut Sim<Ev>, wid: u32) {
        let dn = self.writes[wid as usize].dn;
        self.writes[wid as usize].failed = true;
        // Recovery must avoid the DN that just failed the pipeline.
        self.dn_suspect[dn] = true;
        if self.cfg.lease_recovery_on_failure {
            // The file stays under construction; the lease manager must
            // recover it (bug 1's amplifier).
            for _ in 0..4 {
                self.lease_queue.push_back(sim.now());
            }
        }
        if self.cfg.recovery_on_pipeline_failure {
            self.recovery_queue.push_back(RecoveryItem {
                created: sim.now(),
                attempts: 0,
            });
        }
        if self.cfg.restart_on_pipeline_failure {
            // Fatal pipeline error: the DN restarts its block-pool service
            // and misses heartbeats (bug 5's middle edge).
            self.dn_hb_paused_until[dn] = sim.now() + timeouts::STALE + VirtualTime::from_secs(6);
        }
    }

    fn exclude_dn(&mut self, dn: usize) {
        if !self.dn_excluded[dn] {
            self.dn_excluded[dn] = true;
            // Re-replication of the node's blocks.
            self.under_replicated += (self.cfg.blocks_per_dn / 10).max(4) as u64;
            // Cached blocks on the node must be re-placed (bug 5's back edge).
            self.cache_queue += (self.cfg.cache_directives * 3) as u64;
            // HDFS3: replicas on a stale node are invalidated asynchronously
            // (bug hdfs3-1's back edge).
            if self.version == HdfsVersion::V3 {
                self.delete_queue += (self.cfg.blocks_per_dn / 8).max(6) as u64;
            }
        }
    }

    fn handle_ibr_failure(&mut self, sim: &mut Sim<Ev>, dn: usize, entries: u32, journal: bool) {
        // Seeded bug: the whole failed report is queued for immediate
        // retransmission at the next heartbeat, ignoring the configured
        // report interval.
        self.ibr_retry_reports[dn].push(entries);
        if journal || self.cfg.ibr_retry_journal {
            // Proper retry path: re-journal the report (bug 2's back edge).
            self.pending_edits += (entries as u64 * 2).max(8);
        }
        if self.cfg.corrupt_on_ibr_failure || self.cfg.pipeline_retry {
            // Strict mode treats the reported replicas as corrupt (their
            // writes fail the status check); otherwise pipeline-retry mode
            // re-streams the affected blocks through the pipeline.
            let mut left = entries;
            let mut restream: Vec<u32> = Vec::new();
            for (wid, w) in self.writes.iter_mut().enumerate() {
                if left == 0 {
                    break;
                }
                if w.dn == dn && w.packets_left == 0 && !w.committed && !w.failed {
                    left -= 1;
                    if self.cfg.corrupt_on_ibr_failure {
                        w.commit_rejected = true;
                    } else {
                        w.packets_left = WRITE_PACKETS;
                        restream.push(wid as u32);
                    }
                }
            }
            for wid in restream {
                for _ in 0..WRITE_PACKETS {
                    self.packet_queue.push_back(wid);
                }
            }
        }
        let _ = sim;
    }

    fn schedule_next_heartbeat(&mut self, sim: &mut Sim<Ev>, dn: usize) {
        let step = sim.rng().jitter(HB_INTERVAL, 0.1);
        self.hb_intended[dn] += step;
        sim.schedule_at(self.hb_intended[dn], Ev::Heartbeat(dn));
    }

    fn heartbeat(&mut self, sim: &mut Sim<Ev>, dn: usize) {
        let intended = self.hb_intended[dn];
        self.schedule_next_heartbeat(sim, dn);
        if intended < self.dn_hb_paused_until[dn] {
            // Block-pool service restarting: skip this beat.
            return;
        }
        let _f = self.agent.frame(self.ids.fn_offer);
        let offer = self.agent.loop_enter(self.ids.l_offer);
        offer.iter(sim);
        self.dn_last_hb[dn] = sim.now();
        if self.dn_excluded[dn] {
            // Re-registration after exclusion: full report follows.
            self.dn_excluded[dn] = false;
            self.ibr_pending[dn] += (self.cfg.blocks_per_dn / 20).max(4);
        }
        // Command processing (child loop; replication commands from the NN).
        {
            let cmds = self.dn_cmd_queue[dn];
            self.dn_cmd_queue[dn] = 0;
            let lg = self.agent.loop_enter(self.ids.l_cmd_proc);
            for _ in 0..cmds {
                lg.iter(sim);
                sim.advance(VirtualTime::from_micros(400));
            }
        }
        // IBR send (consecutive sibling loop). The throttle-bypass bug:
        // a failed IBR is retried at the *next heartbeat*, ignoring the
        // configured interval (seeded bug 6, §8.3.2).
        // Routine metadata churn: blocks finalize, replicas verify, and the
        // DN reports it — IBR traffic exists even without client writes.
        if self.cfg.background_reports
            && intended.saturating_sub(self.last_routine_report[dn]) >= VirtualTime::from_secs(2)
        {
            self.last_routine_report[dn] = intended;
            self.ibr_pending[dn] += (self.cfg.blocks_per_dn / 100).max(1);
        }
        let throttle = VirtualTime::from_millis(self.cfg.ibr_throttle_ms);
        let due = intended.saturating_sub(self.last_ibr_sent[dn]) >= throttle;
        let has_pending = self.ibr_pending[dn] > 0;
        let retries = std::mem::take(&mut self.ibr_retry_reports[dn]);
        self.agent.branch(
            self.ids.br_has_pending_ibr,
            has_pending || !retries.is_empty(),
        );
        if has_pending && due || !retries.is_empty() {
            let lg = self.agent.loop_enter(self.ids.l_ibr_send);
            // Retransmit failed reports first — the seeded throttle bypass.
            for entries in retries {
                lg.iter(sim);
                sim.advance(VirtualTime::from_micros(200));
                let sent_us = intended.as_micros();
                sim.send(
                    VirtualTime::from_millis(2),
                    0.5,
                    Ev::NnIbr {
                        dn,
                        sent_us,
                        entries,
                        journal: false,
                    },
                );
            }
            if has_pending && due {
                // One report per volume-ish batch; the iteration count is
                // per *report*, matching the case study's observable.
                let entries = self.ibr_pending[dn];
                self.ibr_pending[dn] = 0;
                self.last_ibr_sent[dn] = intended;
                let per_report = 4u32;
                let mut left = entries;
                while left > 0 {
                    lg.iter(sim);
                    let batch = left.min(per_report);
                    left -= batch;
                    sim.advance(VirtualTime::from_micros(200));
                    let sent_us = intended.as_micros();
                    sim.send(
                        VirtualTime::from_millis(2),
                        0.5,
                        Ev::NnIbr {
                            dn,
                            sent_us,
                            entries: batch,
                            journal: false,
                        },
                    );
                }
            }
        }
    }

    fn ibr_proc_tick(&mut self, sim: &mut Sim<Ev>) {
        let _f = self.agent.frame(self.ids.fn_ibr_proc);
        self.standby_active = sim.now() < self.standby_until;
        let lg = self.agent.loop_enter(self.ids.l_ibr_process);
        let n = self.ibr_inbox.len().min(32);
        for _ in 0..n {
            lg.iter(sim);
            let (dn, sent, entries, journal) = self.ibr_inbox.pop_front().expect("sized loop");
            sim.advance(VirtualTime::from_millis(2 * entries as u64));
            // Standby window: reports during failover catch-up are rejected.
            if self
                .agent
                .throw_guard(self.ids.tp_ibr_standby_ioe)
                .is_some()
            {
                self.handle_ibr_failure(sim, dn, entries, true);
                continue;
            }
            if self.standby_active {
                let _ = self.agent.throw_fired(self.ids.tp_ibr_standby_ioe);
                self.handle_ibr_failure(sim, dn, entries, true);
                continue;
            }
            // RPC-level timeout: the sender has already given up waiting.
            if self.agent.throw_guard(self.ids.tp_ibr_ioe).is_some() {
                self.handle_ibr_failure(sim, dn, entries, journal);
                continue;
            }
            if sim.now().saturating_sub(sent) > timeouts::RPC {
                let _ = self.agent.throw_fired(self.ids.tp_ibr_ioe);
                self.handle_ibr_failure(sim, dn, entries, journal);
                continue;
            }
            // Committing blocks completes waiting writes and journals edits.
            self.pending_edits += 1;
            let mut to_commit = entries;
            for w in self.writes.iter_mut() {
                if to_commit == 0 {
                    break;
                }
                if w.dn == dn
                    && w.packets_left == 0
                    && !w.committed
                    && !w.failed
                    && !w.commit_rejected
                {
                    w.committed = true;
                    to_commit -= 1;
                }
            }
        }
        drop(lg);
        sim.schedule(VirtualTime::from_millis(100), Ev::IbrProcTick);
    }

    fn monitor(&mut self, sim: &mut Sim<Ev>) {
        let _f = self.agent.frame(self.ids.fn_monitor);
        let lg = self.agent.loop_enter(self.ids.l_dn_monitor);
        for dn in 0..self.cfg.dns {
            lg.iter(sim);
            let raw_stale = sim.now().saturating_sub(self.dn_last_hb[dn]) > timeouts::STALE;
            let stale = self.agent.negation_point(self.ids.np_dn_stale, raw_stale);
            let _ = self
                .agent
                .negation_point(self.ids.np_contains, self.dn_excluded[dn]);
            if stale {
                self.exclude_dn(dn);
            }
        }
        drop(lg);
        sim.schedule(MONITOR_INTERVAL, Ev::Monitor);
    }

    fn lease_tick(&mut self, sim: &mut Sim<Ev>) {
        let _f = self.agent.frame(self.ids.fn_lease);
        let lg = self.agent.loop_enter(self.ids.l_lease);
        let n = self.lease_queue.len().min(8);
        for _ in 0..n {
            lg.iter(sim);
            sim.advance(VirtualTime::from_micros(300));
            let item = self.lease_queue.pop_front().expect("sized loop");
            // Leases younger than the grace period go back to the queue.
            if sim.now().saturating_sub(item) < VirtualTime::from_secs(2) {
                self.lease_queue.push_back(item);
            } else {
                self.pending_edits += 1;
            }
        }
        drop(lg);
        sim.schedule(TICK, Ev::LeaseTick);
    }

    fn edit_tick(&mut self, sim: &mut Sim<Ev>) {
        let _f = self.agent.frame(self.ids.fn_editlog);
        let _ = self
            .agent
            .negation_point(self.ids.np_is_ha, self.cfg.failover_enabled);
        let lg = self.agent.loop_enter(self.ids.l_editlog);
        let n = self.pending_edits.min(16);
        self.pending_edits -= n;
        for _ in 0..n {
            lg.iter(sim);
            sim.advance(VirtualTime::from_micros(250));
        }
        drop(lg);
        // A sync loop that has fallen far behind its cadence trips the
        // failover controller; the standby rejects IBRs while catching up.
        let behind = sim.now().saturating_sub(self.last_edit_tick) > timeouts::STALE;
        if behind && self.cfg.failover_enabled && !self.failed_over {
            self.failed_over = true;
            self.standby_until = sim.now() + VirtualTime::from_secs(8);
        }
        self.standby_active = sim.now() < self.standby_until;
        self.last_edit_tick = sim.now();
        sim.schedule(TICK, Ev::EditTick);
    }

    fn cache_tick(&mut self, sim: &mut Sim<Ev>) {
        let _f = self.agent.frame(self.ids.fn_cache);
        let lg = self.agent.loop_enter(self.ids.l_cache);
        let drain = self.cache_queue.min(24);
        self.cache_queue -= drain;
        let n = self.cfg.cache_directives as u64 + drain;
        for _ in 0..n {
            lg.iter(sim);
            sim.advance(VirtualTime::from_micros(200));
        }
        drop(lg);
        sim.schedule(TICK * 2, Ev::CacheTick);
    }

    fn repl_tick(&mut self, sim: &mut Sim<Ev>) {
        let _f = self.agent.frame(self.ids.fn_repl);
        let _ = self.agent.negation_point(self.ids.np_is_sorted, true);
        if let Some(e) = self.agent.throw_guard(self.ids.tp_repl_ioe) {
            let _ = e;
            // Failed replication batch: reconstruction must take over
            // (HDFS3 bug 2's back edge).
            self.recon_queue += 6;
            self.under_replicated += 4;
            sim.schedule(TICK * 2, Ev::ReplTick);
            return;
        }
        // A replication monitor running far behind its cadence means its
        // command RPCs have already timed out (HDFS3 reconstruction path).
        let behind = self.last_repl_tick > VirtualTime::ZERO
            && sim.now().saturating_sub(self.last_repl_tick) > timeouts::RPC * 2;
        if behind && self.version == HdfsVersion::V3 {
            let _ = self.agent.throw_fired(self.ids.tp_repl_ioe);
            self.recon_queue += 6;
            self.under_replicated += 4;
        }
        let lg = self.agent.loop_enter(self.ids.l_repl_monitor);
        let n = self.under_replicated.min(16);
        self.under_replicated -= n;
        for i in 0..n {
            lg.iter(sim);
            sim.advance(VirtualTime::from_micros(250));
            // Replication work is dispatched as DN commands.
            let dn = (i as usize) % self.cfg.dns;
            self.dn_cmd_queue[dn] += 1;
        }
        drop(lg);
        self.last_repl_tick = sim.now();
        sim.schedule(TICK * 2, Ev::ReplTick);
    }

    fn rec_tick(&mut self, sim: &mut Sim<Ev>) {
        let _f = self.agent.frame(self.ids.fn_blockrec);
        self.agent
            .branch(self.ids.br_queue_nonempty, !self.recovery_queue.is_empty());
        let lg = self.agent.loop_enter(self.ids.l_blockrec);
        let n = self.recovery_queue.len().min(8);
        for _ in 0..n {
            lg.iter(sim);
            sim.advance(VirtualTime::from_millis(1));
            let item = self.recovery_queue.pop_front().expect("sized loop");
            let result = self.recover_one(sim, item);
            if let Err(_e) = result {
                if self.cfg.resync_on_recovery_failure {
                    // Ask every DN for an immediate full block re-sync,
                    // delivered as urgent (unthrottled) reports.
                    for dn in 0..self.cfg.dns {
                        let total = self.cfg.blocks_per_dn.max(8);
                        let mut left = total;
                        while left > 0 {
                            let batch = left.min(64);
                            left -= batch;
                            self.ibr_retry_reports[dn].push(batch);
                        }
                    }
                }
                if self.cfg.recovery_retry && item.attempts < 4 {
                    // Blind retry (bug 3's amplifier).
                    self.recovery_queue.push_back(RecoveryItem {
                        created: sim.now(),
                        attempts: item.attempts + 1,
                    });
                }
            }
        }
        drop(lg);
        sim.schedule(TICK * 2, Ev::RecTick);
    }

    fn recover_one(&self, sim: &mut Sim<Ev>, item: RecoveryItem) -> Result<(), Fault> {
        if let Some(e) = self.agent.throw_guard(self.ids.tp_blockrec_ioe) {
            return Err(e);
        }
        // Timeout, or not enough live replica holders (2-node clusters
        // cannot recover once the pipeline DN is suspect).
        let live = (0..self.cfg.dns)
            .filter(|&d| !self.dn_excluded[d] && !self.dn_suspect[d])
            .count();
        let timed_out = sim.now().saturating_sub(item.created) > timeouts::OPERATION;
        if timed_out || live < 2 {
            return Err(self.agent.throw_fired(self.ids.tp_blockrec_ioe));
        }
        Ok(())
    }

    fn pipe_tick(&mut self, sim: &mut Sim<Ev>) {
        let _f = self.agent.frame(self.ids.fn_pipeline);
        if let Some(_e) = self.agent.throw_guard(self.ids.tp_sock_read) {
            // Socket hiccup: drop this tick's work; packets stay queued.
            sim.schedule(TICK / 2, Ev::PipeTick);
            return;
        }
        let lg = self.agent.loop_enter(self.ids.l_pipeline_ack);
        let n = self.packet_queue.len();
        for _ in 0..n {
            lg.iter(sim);
            sim.advance(VirtualTime::from_micros(500));
            let wid = self.packet_queue.pop_front().expect("sized loop");
            let w = &mut self.writes[wid as usize];
            if w.failed {
                continue;
            }
            if w.packets_left > 0 {
                w.packets_left -= 1;
            }
            if w.packets_left == 0 && !w.committed {
                // Block complete → IBR entry for the NN.
                self.ibr_pending[w.dn] += 1;
            }
        }
        drop(lg);
        sim.schedule(TICK / 2, Ev::PipeTick);
    }

    fn write_check(&mut self, sim: &mut Sim<Ev>, wid: u32) {
        let _f = self.agent.frame(self.ids.fn_write_check);
        // The guard sits at the head of the status check (the if-statement
        // of Fig. 4), so it is reached for every checked write.
        if let Some(e) = self.agent.throw_guard(self.ids.tp_pipeline_ioe) {
            let _ = e;
            self.on_write_failure(sim, wid);
            return;
        }
        let w = self.writes[wid as usize];
        if w.committed || w.failed {
            return;
        }
        if w.commit_rejected || sim.now().saturating_sub(w.started) > timeouts::OPERATION {
            let _ = self.agent.throw_fired(self.ids.tp_pipeline_ioe);
            self.on_write_failure(sim, wid);
            return;
        }
        // Still in flight: if packets are done but the commit is missing and
        // pipeline-retry is configured, resend the tail packets (bug 4's
        // back edge).
        if self.cfg.pipeline_retry && w.packets_left == 0 && !w.committed {
            for _ in 0..WRITE_PACKETS {
                self.packet_queue.push_back(wid);
            }
            self.writes[wid as usize].packets_left = WRITE_PACKETS;
        }
        sim.schedule(VirtualTime::from_secs(4), Ev::WriteCheck(wid));
    }

    fn client_tick(&mut self, sim: &mut Sim<Ev>) {
        let _f = self.agent.frame(self.ids.fn_client);
        self.agent
            .branch(self.ids.br_is_client_op, !self.chunk_queue.is_empty());
        // Constant-bound retry loop: analyzer-filtered decoy.
        {
            let lg = self.agent.loop_enter(self.ids.l_retry_const);
            for _ in 0..3 {
                lg.iter(sim);
            }
        }
        let n = self.chunk_queue.len();
        let reads: Vec<Chunk> = {
            let lg = self.agent.loop_enter(self.ids.l_client_read);
            let mut next = Vec::new();
            for _ in 0..n {
                let c = self.chunk_queue.pop_front().expect("sized loop");
                if !c.is_read {
                    next.push(c);
                    continue;
                }
                lg.iter(sim);
                sim.advance(VirtualTime::from_micros(400));
                if sim.now().saturating_sub(c.created) > CHUNK_SLOW && c.attempts < 2 {
                    // Slow read: re-request the chunk.
                    next.push(Chunk {
                        created: sim.now(),
                        attempts: c.attempts + 1,
                        is_read: true,
                    });
                }
            }
            next
        };
        let writes: Vec<Chunk> = {
            let lg = self.agent.loop_enter(self.ids.l_client_write);
            let mut next = Vec::new();
            for c in reads {
                if c.is_read {
                    next.push(c);
                    continue;
                }
                lg.iter(sim);
                sim.advance(VirtualTime::from_micros(400));
                if sim.now().saturating_sub(c.created) > CHUNK_SLOW && c.attempts < 2 {
                    next.push(Chunk {
                        created: sim.now(),
                        attempts: c.attempts + 1,
                        is_read: false,
                    });
                }
            }
            next
        };
        for c in writes {
            self.chunk_queue.push_back(c);
        }
        sim.schedule(TICK, Ev::ClientTick);
    }

    fn recon_tick(&mut self, sim: &mut Sim<Ev>) {
        if self.version != HdfsVersion::V3 {
            return;
        }
        let _f = self.agent.frame(self.ids.fn_recon);
        let lg = self.agent.loop_enter(self.ids.l_recon);
        let n = self.recon_queue;
        self.recon_queue = 0;
        for _ in 0..n {
            lg.iter(sim);
            sim.advance(VirtualTime::from_millis(1));
        }
        drop(lg);
        sim.schedule(TICK * 3, Ev::ReconTick);
    }

    fn delete_tick(&mut self, sim: &mut Sim<Ev>) {
        if self.version != HdfsVersion::V3 {
            return;
        }
        let _f = self.agent.frame(self.ids.fn_deleter);
        let lg = self.agent.loop_enter(self.ids.l_deleter);
        let n = self.delete_queue;
        self.delete_queue = 0;
        for _ in 0..n {
            lg.iter(sim);
            sim.advance(VirtualTime::from_micros(600));
        }
        drop(lg);
        sim.schedule(TICK * 3, Ev::DeleteTick);
    }
}

impl World for HdfsWorld {
    type Event = Ev;

    fn handle(&mut self, sim: &mut Sim<Ev>, ev: Ev) {
        if std::env::var("CSNAKE_DBG").is_ok() {
            let name = match ev {
                Ev::Heartbeat(_) => "hb",
                Ev::Monitor => "mon",
                Ev::LeaseTick => "lease",
                Ev::EditTick => "edit",
                Ev::CacheTick => "cache",
                Ev::ReplTick => "repl",
                Ev::RecTick => "rec",
                Ev::PipeTick => "pipe",
                Ev::ClientTick => "client",
                Ev::WriteStart(_) => "wstart",
                Ev::WriteCheck(_) => "wcheck",
                Ev::ReadStart => "rstart",
                Ev::RecoveryStart => "recstart",
                Ev::LeaseStart => "lstart",
                Ev::NnIbr { .. } => "nnibr",
                Ev::IbrProcTick => "ibrproc",
                Ev::ReconTick => "recon",
                Ev::DeleteTick => "del",
                Ev::DeleteStart => "delstart",
            };
            use std::sync::atomic::{AtomicU64, Ordering};
            use std::sync::OnceLock;
            static COUNTS: OnceLock<
                std::sync::Mutex<std::collections::BTreeMap<&'static str, u64>>,
            > = OnceLock::new();
            static TOTAL: AtomicU64 = AtomicU64::new(0);
            let m = COUNTS.get_or_init(Default::default);
            *m.lock().unwrap().entry(name).or_insert(0) += 1;
            let t = TOTAL.fetch_add(1, Ordering::Relaxed);
            if t % 500_000 == 499_999 {
                eprintln!(
                    "ev histogram @{t}: {:?} now={}",
                    m.lock().unwrap(),
                    sim.now()
                );
            }
        }
        match ev {
            Ev::Heartbeat(dn) => self.heartbeat(sim, dn),
            Ev::Monitor => self.monitor(sim),
            Ev::LeaseTick => self.lease_tick(sim),
            Ev::EditTick => self.edit_tick(sim),
            Ev::CacheTick => self.cache_tick(sim),
            Ev::ReplTick => self.repl_tick(sim),
            Ev::RecTick => self.rec_tick(sim),
            Ev::PipeTick => self.pipe_tick(sim),
            Ev::ClientTick => self.client_tick(sim),
            Ev::WriteStart(i) => {
                let intended = VirtualTime::from_millis(self.cfg.write_interval_ms)
                    * (self.writes_started as u64 + 1);
                let _ = i;
                let dn = (self.writes_started as usize) % self.cfg.dns;
                let wid = self.writes.len() as u32;
                self.writes.push(WriteOp {
                    started: intended,
                    packets_left: WRITE_PACKETS,
                    committed: false,
                    failed: false,
                    commit_rejected: false,
                    dn,
                });
                self.writes_started += 1;
                for _ in 0..WRITE_PACKETS {
                    self.packet_queue.push_back(wid);
                }
                // Writes journal an edit and occupy a lease slot.
                self.pending_edits += 1;
                if self.cfg.lease_load > 0 && wid.is_multiple_of(2) {
                    self.lease_queue.push_back(intended);
                }
                sim.schedule_at(intended + VirtualTime::from_secs(4), Ev::WriteCheck(wid));
            }
            Ev::WriteCheck(wid) => self.write_check(sim, wid),
            Ev::ReadStart => {
                self.reads_issued += 1;
                self.chunk_queue.push_back(Chunk {
                    created: sim.now(),
                    attempts: 0,
                    is_read: true,
                });
                // Mixed clients interleave writes as chunks too.
                if self.reads_issued.is_multiple_of(2) {
                    self.chunk_queue.push_back(Chunk {
                        created: sim.now(),
                        attempts: 0,
                        is_read: false,
                    });
                }
            }
            Ev::RecoveryStart => {
                self.recovery_queue.push_back(RecoveryItem {
                    created: sim.now(),
                    attempts: 0,
                });
            }
            Ev::LeaseStart => {
                self.lease_queue.push_back(sim.now());
            }
            Ev::NnIbr {
                dn,
                sent_us,
                entries,
                journal,
            } => {
                self.ibr_inbox
                    .push_back((dn, VirtualTime::from_micros(sent_us), entries, journal));
            }
            Ev::IbrProcTick => self.ibr_proc_tick(sim),
            Ev::ReconTick => self.recon_tick(sim),
            Ev::DeleteTick => self.delete_tick(sim),
            Ev::DeleteStart => {
                self.delete_queue += 3;
            }
        }
    }
}

/// Seed the HDFS3 reconstruction backlog.
pub(crate) fn seed_leases(world: &mut HdfsWorld) {
    world.recon_queue = world.cfg.recon_tasks as u64;
}

/// The mini-HDFS2 target.
pub struct MiniHdfs2 {
    registry: Arc<Registry>,
    ids: HdfsIds,
}

impl Default for MiniHdfs2 {
    fn default() -> Self {
        Self::new()
    }
}

impl MiniHdfs2 {
    /// Builds the system and registry.
    pub fn new() -> Self {
        let (reg, ids) = build_registry(HdfsVersion::V2);
        MiniHdfs2 {
            registry: Arc::new(reg),
            ids,
        }
    }

    /// Instrumentation ids.
    pub fn ids(&self) -> HdfsIds {
        self.ids
    }

    /// Per-test configuration (shared with mini-HDFS3).
    pub(crate) fn cfg_for(test: TestId) -> HdfsCfg {
        let d = HdfsCfg::default();
        match test.0 {
            // t0: broad default coverage.
            0 => HdfsCfg {
                writes: 20,
                read_chunks: 10,
                recovery_on_pipeline_failure: true,
                ..d
            },
            // t1: write-pipeline heavy.
            1 => HdfsCfg {
                writes: 50,
                write_interval_ms: 200,
                lease_load: 0,
                recoveries: 6,
                corrupt_on_ibr_failure: true,
                ..d
            },
            // t2: lease recovery heavy.
            2 => HdfsCfg {
                lease_load: 48,
                writes: 18,
                ..d
            },
            // t3: block recovery with blind retry.
            3 => HdfsCfg {
                recoveries: 24,
                recovery_retry: true,
                writes: 6,
                ..d
            },
            // t4: HA failover; IBR journal retry off.
            4 => HdfsCfg {
                failover_enabled: true,
                writes: 30,
                write_interval_ms: 250,
                ..d
            },
            // t5: cache-directive heavy.
            5 => HdfsCfg {
                cache_directives: 60,
                writes: 18,
                ..d
            },
            // t6: balancer-style volume test, IBR unthrottled.
            6 => HdfsCfg {
                blocks_per_dn: 1600,
                writes: 60,
                write_interval_ms: 50,
                ibr_throttle_ms: 0,
                lease_load: 0,
                cache_directives: 0,
                background_reports: false,
                ..d
            },
            // t7: IBR interval configuration test (throttled, tiny volume).
            7 => HdfsCfg {
                blocks_per_dn: 8,
                writes: 8,
                write_interval_ms: 900,
                ibr_throttle_ms: 6000,
                lease_load: 0,
                recoveries: 0,
                cache_directives: 0,
                background_reports: false,
                horizon_s: 60,
                ..d
            },
            // t8: staleness handling (block-pool restart on fatal error).
            8 => HdfsCfg {
                restart_on_pipeline_failure: true,
                writes: 24,
                ..d
            },
            // t9: two-node cluster recovery.
            9 => HdfsCfg {
                dns: 2,
                recovery_on_pipeline_failure: true,
                recoveries: 8,
                writes: 16,
                ..d
            },
            // t10: recovery-failure resync with large volumes.
            10 => HdfsCfg {
                blocks_per_dn: 2400,
                resync_on_recovery_failure: true,
                recoveries: 10,
                recovery_retry: false,
                writes: 10,
                ..d
            },
            // t11: mixed read/write clients (expected contention).
            11 => HdfsCfg {
                read_chunks: 60,
                writes: 10,
                lease_load: 0,
                recoveries: 0,
                ..d
            },
            // t12: proper IBR retry with journal sync.
            12 => HdfsCfg {
                ibr_retry_journal: true,
                writes: 30,
                write_interval_ms: 250,
                ..d
            },
            // t13: lease recovery reaction to write failures.
            13 => HdfsCfg {
                lease_recovery_on_failure: true,
                writes: 30,
                lease_load: 12,
                ..d
            },
            // t14: pipeline re-streaming after report failures.
            _ => HdfsCfg {
                pipeline_retry: true,
                writes: 40,
                write_interval_ms: 250,
                ..d
            },
        }
    }

    fn test_list() -> Vec<TestCase> {
        let names: [(&'static str, &'static str); 15] = [
            ("test_basic_read_write", "3 DNs, mixed ops, default config"),
            ("test_write_pipeline_heavy", "50 writes at 200ms"),
            ("test_lease_recovery", "48 lease-manager items plus writes"),
            ("test_block_recovery", "24 recoveries with blind retry"),
            ("test_editlog_failover", "HA enabled, journal-heavy writes"),
            ("test_cache_directives", "60 cache directives plus writes"),
            (
                "test_balancer_many_blocks",
                "1600 blocks/DN, unthrottled IBR",
            ),
            ("test_ibr_interval_config", "8 blocks, 6s IBR throttle"),
            ("test_dn_staleness", "block-pool restart on pipeline error"),
            ("test_small_cluster_recovery", "2-node cluster recoveries"),
            (
                "test_recovery_resync",
                "re-sync on recovery failure, big volumes",
            ),
            ("test_client_mixed", "read/write client contention"),
            ("test_ibr_retry_journal", "journal-syncing IBR retry path"),
            (
                "test_lease_on_failure",
                "lease recovery reacting to failures",
            ),
            (
                "test_pipeline_rebuild",
                "block re-streaming after report failures",
            ),
        ];
        names
            .iter()
            .enumerate()
            .map(|(i, (name, description))| TestCase {
                id: TestId(i as u32),
                name,
                description,
            })
            .collect()
    }
}

pub(crate) fn run_hdfs(
    registry: &Arc<Registry>,
    ids: HdfsIds,
    version: HdfsVersion,
    cfg: HdfsCfg,
    plan: Option<InjectionPlan>,
    seed: u64,
) -> RunTrace {
    let horizon = VirtualTime::from_secs(cfg.horizon_s) + VirtualTime::from_secs(600);
    run_world(registry, plan, seed, horizon, |agent, sim| {
        HdfsWorld::bootstrap(&cfg, sim);
        // Stop periodic services at the nominal horizon by bounding events:
        // the workload itself is finite; periodic ticks past the nominal
        // horizon are cheap no-ops, and the hard horizon bounds the run.
        let mut w = HdfsWorld::new(agent, ids, cfg, version);
        seed_leases(&mut w);
        w
    })
}

impl TargetSystem for MiniHdfs2 {
    fn name(&self) -> &'static str {
        "mini-hdfs2"
    }

    fn registry(&self) -> Arc<Registry> {
        Arc::clone(&self.registry)
    }

    fn tests(&self) -> Vec<TestCase> {
        Self::test_list()
    }

    fn run(&self, test: TestId, plan: Option<InjectionPlan>, seed: u64) -> RunTrace {
        run_hdfs(
            &self.registry,
            self.ids,
            HdfsVersion::V2,
            Self::cfg_for(test),
            plan,
            seed,
        )
    }

    fn known_bugs(&self) -> Vec<KnownBug> {
        hdfs2_bugs()
    }

    fn expected_contention_labels(&self) -> Vec<&'static str> {
        vec!["client_read_loop", "client_write_loop"]
    }
}

pub(crate) fn hdfs2_bugs() -> Vec<KnownBug> {
    vec![
        KnownBug {
            id: "hdfs2-lease-recovery",
            jira: "HDFS-17661",
            summary: "lease-manager delay backs up IBR processing; failed IBRs abort writes whose lease recovery re-loads the lease manager",
            labels: vec!["lease_loop", "ibr_rpc_ioe", "write_pipeline_ioe"],
        },
        KnownBug {
            id: "hdfs2-editlog-failover",
            jira: "HDFS-17836",
            summary: "edit-log sync delay triggers failover; standby-rejected IBRs are re-journaled, re-loading the sync loop",
            labels: vec!["editlog_loop", "ibr_standby_ioe"],
        },
        KnownBug {
            id: "hdfs2-block-recovery",
            jira: "HDFS-17662",
            summary: "block recovery delay times out recoveries that are blindly retried",
            labels: vec!["blockrec_loop", "blockrec_ioe"],
        },
        KnownBug {
            id: "hdfs2-write-pipeline",
            jira: "HDFS-17837",
            summary: "pipeline ack delay fails writes; recovery and IBR failures resend packets into the ack loop",
            labels: vec![
                "pipeline_ack_loop",
                "write_pipeline_ioe",
                "blockrec_ioe",
                "ibr_rpc_ioe",
            ],
        },
        KnownBug {
            id: "hdfs2-block-cache",
            jira: "HDFS-17660",
            summary: "cache rescan delay fails writes; block-pool restarts go stale and re-load the rescan loop",
            labels: vec!["cache_loop", "write_pipeline_ioe", "dn_stale"],
        },
        KnownBug {
            id: "hdfs2-ibr-throttle",
            jira: "HDFS-17780",
            summary: "failed IBR retried at the next heartbeat, bypassing the configured report interval",
            labels: vec!["ibr_process_loop", "ibr_rpc_ioe"],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MiniHdfs2 {
        MiniHdfs2::new()
    }

    fn run_t(test: u32, plan: Option<InjectionPlan>, seed: u64) -> RunTrace {
        sys().run(TestId(test), plan, seed)
    }

    #[test]
    fn profiles_are_clean_of_errors() {
        let s = sys();
        let ids = s.ids();
        for t in 0..14 {
            let trace = s.run(TestId(t), None, 11 + t as u64);
            for tp in [
                ids.tp_pipeline_ioe,
                ids.tp_ibr_ioe,
                ids.tp_ibr_standby_ioe,
                ids.np_dn_stale,
            ] {
                assert!(
                    !trace.occurred(tp),
                    "test {t}: unexpected natural fault at {tp}"
                );
            }
        }
    }

    #[test]
    fn profile_covers_core_points() {
        let ids = sys().ids();
        let trace = run_t(0, None, 5);
        for p in [
            ids.l_lease,
            ids.l_editlog,
            ids.l_pipeline_ack,
            ids.l_ibr_process,
            ids.l_ibr_send,
            ids.l_dn_monitor,
            ids.tp_pipeline_ioe,
            ids.tp_ibr_ioe,
            ids.np_dn_stale,
        ] {
            assert!(trace.coverage.contains(&p), "t0 must cover {p}");
        }
    }

    #[test]
    fn lease_delay_breaks_ibr_in_lease_test() {
        let ids = sys().ids();
        let plan = InjectionPlan::delay(ids.l_lease, VirtualTime::from_millis(3200));
        let t = run_t(2, Some(plan), 3);
        assert!(t.injected.is_some());
        assert!(t.occurred(ids.tp_ibr_ioe), "lease delay must time out IBRs");
    }

    #[test]
    fn injected_ibr_failure_fails_writes() {
        let ids = sys().ids();
        let t = run_t(1, Some(InjectionPlan::throw(ids.tp_ibr_ioe)), 3);
        assert!(t.injected.is_some());
        assert!(
            t.occurred(ids.tp_pipeline_ioe),
            "uncommitted write must trip its status check"
        );
    }

    #[test]
    fn pipeline_failure_loads_lease_manager_when_configured() {
        let ids = sys().ids();
        let base = run_t(13, None, 3).loop_count(ids.l_lease);
        let t = run_t(13, Some(InjectionPlan::throw(ids.tp_pipeline_ioe)), 3);
        assert!(
            t.loop_count(ids.l_lease) > base,
            "lease queue must grow: {} vs {base}",
            t.loop_count(ids.l_lease)
        );
    }

    #[test]
    fn editlog_delay_causes_standby_rejections_under_failover() {
        let ids = sys().ids();
        let plan = InjectionPlan::delay(ids.l_editlog, VirtualTime::from_millis(3200));
        let t = run_t(4, Some(plan), 3);
        assert!(
            t.occurred(ids.tp_ibr_standby_ioe),
            "failover window must reject IBRs"
        );
    }

    #[test]
    fn standby_rejection_reloads_editlog_when_journal_retry_on() {
        let ids = sys().ids();
        let base = run_t(12, None, 3).loop_count(ids.l_editlog);
        let t = run_t(12, Some(InjectionPlan::throw(ids.tp_ibr_standby_ioe)), 3);
        assert!(
            t.loop_count(ids.l_editlog) > base + 4,
            "re-journal must grow the sync loop: {} vs {base}",
            t.loop_count(ids.l_editlog)
        );
    }

    #[test]
    fn recovery_delay_retries_grow_recovery_loop() {
        let ids = sys().ids();
        let base = run_t(3, None, 3).loop_count(ids.l_blockrec);
        let plan = InjectionPlan::delay(ids.l_blockrec, VirtualTime::from_millis(3200));
        let t = run_t(3, Some(plan), 3);
        assert!(t.occurred(ids.tp_blockrec_ioe), "recoveries must time out");
        assert!(
            t.loop_count(ids.l_blockrec) > base,
            "blind retry must amplify: {} vs {base}",
            t.loop_count(ids.l_blockrec)
        );
    }

    #[test]
    fn small_cluster_pipeline_failure_breaks_recovery() {
        let ids = sys().ids();
        let t = run_t(9, Some(InjectionPlan::throw(ids.tp_pipeline_ioe)), 3);
        assert!(
            t.occurred(ids.tp_blockrec_ioe),
            "2-node cluster cannot recover after a pipeline failure"
        );
    }

    #[test]
    fn recovery_failure_resync_overloads_ibr() {
        let ids = sys().ids();
        let t = run_t(10, Some(InjectionPlan::throw(ids.tp_blockrec_ioe)), 3);
        assert!(
            t.occurred(ids.tp_ibr_ioe),
            "resync burst must time out IBR processing"
        );
    }

    #[test]
    fn ibr_failure_restreams_packets_in_rebuild_test() {
        let ids = sys().ids();
        let base = run_t(14, None, 3).loop_count(ids.l_pipeline_ack);
        let t = run_t(14, Some(InjectionPlan::throw(ids.tp_ibr_ioe)), 3);
        assert!(
            t.loop_count(ids.l_pipeline_ack) > base,
            "re-streaming must grow the ack loop: {} vs {base}",
            t.loop_count(ids.l_pipeline_ack)
        );
    }

    #[test]
    fn cache_delay_fails_writes_in_cache_test() {
        let ids = sys().ids();
        let plan = InjectionPlan::delay(ids.l_cache, VirtualTime::from_millis(3200));
        let t = run_t(5, Some(plan), 3);
        assert!(t.occurred(ids.tp_pipeline_ioe));
    }

    #[test]
    fn pipeline_failure_pauses_heartbeats_to_staleness() {
        let ids = sys().ids();
        let t = run_t(8, Some(InjectionPlan::throw(ids.tp_pipeline_ioe)), 3);
        assert!(
            t.occurred(ids.np_dn_stale),
            "block-pool restart must trip the staleness detector"
        );
    }

    #[test]
    fn stale_injection_grows_cache_rescan() {
        let ids = sys().ids();
        let base = run_t(5, None, 3).loop_count(ids.l_cache);
        let t = run_t(5, Some(InjectionPlan::negate(ids.np_dn_stale)), 3);
        assert!(
            t.loop_count(ids.l_cache) > base,
            "stale exclusion must re-place cached blocks: {} vs {base}",
            t.loop_count(ids.l_cache)
        );
    }

    #[test]
    fn ibr_delay_times_out_reports_in_volume_test() {
        let ids = sys().ids();
        let plan = InjectionPlan::delay(ids.l_ibr_process, VirtualTime::from_millis(3200));
        let t = run_t(6, Some(plan), 3);
        assert!(t.occurred(ids.tp_ibr_ioe));
    }

    #[test]
    fn ibr_failure_bypasses_throttle_only_when_throttled() {
        let ids = sys().ids();
        // Throttled test: send count grows.
        let base7 = run_t(7, None, 3).loop_count(ids.l_ibr_send);
        let inj7 = run_t(7, Some(InjectionPlan::throw(ids.tp_ibr_ioe)), 3);
        assert!(
            inj7.loop_count(ids.l_ibr_send) > base7,
            "throttle bypass must add sends: {} vs {base7}",
            inj7.loop_count(ids.l_ibr_send)
        );
        // Unthrottled volume test: cadence unchanged.
        let base6 = run_t(6, None, 3).loop_count(ids.l_ibr_send);
        let inj6 = run_t(6, Some(InjectionPlan::throw(ids.tp_ibr_ioe)), 3);
        let delta = inj6.loop_count(ids.l_ibr_send) as i64 - base6 as i64;
        assert!(
            delta.abs() <= 2,
            "unthrottled cadence must not change materially: {delta}"
        );
    }

    #[test]
    fn stale_negation_grows_replication_and_commands() {
        let ids = sys().ids();
        let base = run_t(0, None, 3);
        let t = run_t(0, Some(InjectionPlan::negate(ids.np_dn_stale)), 3);
        assert!(t.loop_count(ids.l_repl_monitor) > base.loop_count(ids.l_repl_monitor));
        assert!(t.loop_count(ids.l_cmd_proc) > base.loop_count(ids.l_cmd_proc));
    }

    #[test]
    fn client_contention_is_mutual() {
        let ids = sys().ids();
        let base = run_t(11, None, 3);
        let plan = InjectionPlan::delay(ids.l_client_read, VirtualTime::from_millis(3200));
        let t = run_t(11, Some(plan), 3);
        assert!(
            t.loop_count(ids.l_client_write) > base.loop_count(ids.l_client_write),
            "read delay must slow writes into re-requests: {} vs {}",
            t.loop_count(ids.l_client_write),
            base.loop_count(ids.l_client_write)
        );
    }

    #[test]
    fn offer_loop_nesting_is_declared() {
        let s = sys();
        let reg = s.registry();
        let ids = s.ids();
        let meta = reg.point(ids.l_cmd_proc).loop_meta.as_ref().unwrap();
        assert_eq!(meta.parent, Some(ids.l_offer));
        assert_eq!(meta.next_sibling, Some(ids.l_ibr_send));
    }
}
