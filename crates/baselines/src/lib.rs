//! Baseline strategies CSnake is compared against in the paper.
//!
//! * [`naive`] — the §8.2 alternative: inject a *single* fault into a
//!   workload and check whether it re-triggers itself in the same run
//!   (e.g. delay one loop and watch that same loop's iteration count).
//!   Most Table 3 bugs span multiple workloads and defeat this.
//! * [`blackbox`] — a Jepsen/Blockade-style black-box fuzzer (§8.2.1):
//!   coarse-grained external faults (node crash/restart, partitions, link
//!   slowdowns) with a crash/flag oracle, no whitebox feedback. It finds
//!   none of the seeded self-sustaining cycles.
//! * [`strategies`] — budget-allocation policies behind
//!   `csnake_core::AllocationStrategy` (exhaustive sweep, coverage-greedy),
//!   pluggable into a detection `Session` in place of 3PA.
//!
//! The random-allocation baseline (Table 3 "Rnd.?") lives in
//! `csnake_core::alloc::RandomAllocation`, since it shares the experiment
//! engine and the sessions' strategy slot directly.

pub mod blackbox;
pub mod naive;
pub mod strategies;

pub use blackbox::{run_blackbox_campaign, BlackboxConfig, BlackboxReport};
pub use naive::{run_naive_strategy, NaiveConfig, NaiveFinding, NaiveReport};
pub use strategies::{CoverageGreedyAllocation, ExhaustiveAllocation};
