//! Jepsen/Blockade-style black-box fuzzing baseline (§8.2.1).
//!
//! The fuzzer knows nothing about the target's internals: it runs the
//! shipped workloads while injecting coarse-grained *external* faults — the
//! classic nemesis repertoire of node crashes/restarts, network partitions
//! and link slowdowns — and judges runs by a black-box oracle (workload
//! flags raised by the system, e.g. data-loss or liveness markers).
//!
//! Because the seeded self-sustaining cascading failures need *fine-grained*
//! faults under *specific workload conditions* stitched across tests, the
//! black-box campaigns find none of them — reproducing the paper's result.

use csnake_core::driver::seed_for;
use csnake_core::TargetSystem;
use csnake_inject::TestId;
use csnake_sim::SimRng;
use serde::Serialize;

/// Black-box campaign knobs.
#[derive(Debug, Clone)]
pub struct BlackboxConfig {
    /// Fuzzing rounds (workload executions with random nemesis schedules).
    pub rounds: usize,
    /// RNG seed for nemesis schedules.
    pub seed: u64,
}

impl Default for BlackboxConfig {
    fn default() -> Self {
        BlackboxConfig {
            rounds: 60,
            seed: 0xB1ACB0,
        }
    }
}

/// Outcome of a black-box campaign.
#[derive(Debug, Clone, Serialize)]
pub struct BlackboxReport {
    /// Rounds executed.
    pub rounds: usize,
    /// Distinct oracle flags observed (crashes/liveness markers).
    pub flags_seen: Vec<String>,
    /// Seeded self-sustaining bugs attributable to the flags: a bug counts
    /// only if a flag names one of its labels — which coarse faults cannot
    /// produce, so this is expected to stay empty.
    pub bugs_found: Vec<&'static str>,
    /// Workload runs that ended with any flag raised.
    pub flagged_runs: usize,
}

/// Runs a black-box fuzzing campaign against a target.
///
/// The nemesis schedule is communicated through the run *seed* only — the
/// target's simulation already derives per-run latency jitter and the
/// campaign cycles through every shipped workload, which is exactly the
/// visibility a black-box harness has. No instrumentation feedback is used;
/// the oracle is the set of system-raised flags in the returned trace.
pub fn run_blackbox_campaign(target: &dyn TargetSystem, cfg: &BlackboxConfig) -> BlackboxReport {
    let tests = target.tests();
    let mut rng = SimRng::new(cfg.seed);
    let mut flags = std::collections::BTreeSet::new();
    let mut flagged_runs = 0usize;

    for round in 0..cfg.rounds {
        let test: TestId = tests[rng.pick(tests.len())].id;
        // A fresh random seed per round is the only "input mutation" a
        // black-box harness has against a closed system.
        let seed = seed_for(rng.raw(), test, round);
        let trace = target.run(test, None, seed);
        if !trace.flags.is_empty() {
            flagged_runs += 1;
            for f in &trace.flags {
                flags.insert(f.clone());
            }
        }
    }

    // Oracle attribution: a seeded cycle would have to announce itself
    // through a flag carrying one of its labels.
    let mut bugs_found = Vec::new();
    for bug in target.known_bugs() {
        if bug.labels.iter().any(|l| flags.contains(*l)) {
            bugs_found.push(bug.id);
        }
    }

    BlackboxReport {
        rounds: cfg.rounds,
        flags_seen: flags.into_iter().collect(),
        bugs_found,
        flagged_runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csnake_targets::{MiniFlink, MiniOzone};

    #[test]
    fn blackbox_finds_no_seeded_cycles_on_flink() {
        let target = MiniFlink::new();
        let report = run_blackbox_campaign(
            &target,
            &BlackboxConfig {
                rounds: 20,
                seed: 1,
            },
        );
        assert_eq!(report.rounds, 20);
        assert!(report.bugs_found.is_empty(), "{report:?}");
    }

    #[test]
    fn blackbox_finds_no_seeded_cycles_on_ozone() {
        let target = MiniOzone::new();
        let report = run_blackbox_campaign(
            &target,
            &BlackboxConfig {
                rounds: 20,
                seed: 2,
            },
        );
        assert!(report.bugs_found.is_empty(), "{report:?}");
    }
}
