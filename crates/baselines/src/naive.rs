//! The naive single-fault self-loop strategy (§8.2).
//!
//! For every injectable fault and every reaching workload, inject the fault
//! alone and check whether *the fault causes itself* within that single run:
//!
//! * a delayed loop whose own iteration count still increases significantly
//!   (a self-sustaining load loop), or
//! * an injected exception/negation that re-occurs *again* later in the
//!   same injection run (beyond the injected occurrence itself).
//!
//! A seeded bug counts as "detectable by the naive strategy" (Table 3
//! "Alt.?") when such a self-loop exists on one of the bug's labels.

use std::collections::BTreeSet;

use csnake_core::driver::seed_for;
use csnake_core::stats::significant_increase;
use csnake_core::TargetSystem;
use csnake_inject::{FaultId, FaultKind, InjectionPlan, TestId};
use csnake_sim::VirtualTime;
use serde::Serialize;

/// Naive-strategy knobs.
#[derive(Debug, Clone)]
pub struct NaiveConfig {
    /// Repetitions per run set (paper: 5).
    pub reps: usize,
    /// Delay lengths swept for loop faults, in milliseconds.
    pub delay_values_ms: Vec<u64>,
    /// One-sided t-test threshold.
    pub p_value: f64,
    /// Base seed.
    pub base_seed: u64,
}

impl Default for NaiveConfig {
    fn default() -> Self {
        NaiveConfig {
            reps: 3,
            delay_values_ms: vec![800, 3200],
            p_value: 0.1,
            base_seed: 0xA17,
        }
    }
}

/// One self-loop found by the naive strategy.
#[derive(Debug, Clone, Serialize)]
pub struct NaiveFinding {
    /// The injected fault.
    pub fault: FaultId,
    /// Its registry label.
    pub label: &'static str,
    /// The workload it self-sustained in.
    pub test: TestId,
}

/// Result of a naive campaign over one target.
#[derive(Debug, Clone, Serialize)]
pub struct NaiveReport {
    /// All self-loops found.
    pub findings: Vec<NaiveFinding>,
    /// Injection runs executed.
    pub runs: usize,
    /// Known bugs whose label set intersects a finding ("Alt.? = yes").
    pub alt_detected: Vec<&'static str>,
}

/// Runs the naive single-fault strategy over every (fault, test) pair.
pub fn run_naive_strategy(target: &dyn TargetSystem, cfg: &NaiveConfig) -> NaiveReport {
    let registry = target.registry();
    let tests = target.tests();
    let mut findings = Vec::new();
    let mut runs = 0usize;

    for tc in &tests {
        // Profile runs for this test.
        let profiles: Vec<_> = (0..cfg.reps)
            .map(|r| target.run(tc.id, None, seed_for(cfg.base_seed, tc.id, r)))
            .collect();
        runs += profiles.len();
        let covered: BTreeSet<FaultId> = profiles
            .iter()
            .flat_map(|t| t.coverage.iter().copied())
            .collect();

        for p in registry.points() {
            if !covered.contains(&p.id) {
                continue;
            }
            let self_loop = match p.kind {
                FaultKind::LoopPoint => {
                    let prof: Vec<f64> =
                        profiles.iter().map(|t| t.loop_count(p.id) as f64).collect();
                    cfg.delay_values_ms.iter().any(|ms| {
                        let plan = InjectionPlan::delay(p.id, VirtualTime::from_millis(*ms));
                        let inj: Vec<f64> = (0..cfg.reps)
                            .map(|r| {
                                target
                                    .run(tc.id, Some(plan), seed_for(cfg.base_seed, tc.id, r))
                                    .loop_count(p.id) as f64
                            })
                            .collect();
                        // The injected delay does not change the count by
                        // itself; only retry storms can.
                        significant_increase(&prof, &inj, cfg.p_value)
                    })
                }
                FaultKind::Throw | FaultKind::LibCall | FaultKind::Negation => {
                    let plan = match p.kind {
                        FaultKind::Negation => InjectionPlan::negate(p.id),
                        _ => InjectionPlan::throw(p.id),
                    };
                    (0..cfg.reps).all(|r| {
                        let t = target.run(tc.id, Some(plan), seed_for(cfg.base_seed, tc.id, r));
                        // Re-occurrence beyond the injected occurrence.
                        t.occurrences.get(&p.id).map(|o| o.len()).unwrap_or(0) > 1
                    })
                }
            };
            runs += cfg.reps * cfg.delay_values_ms.len().max(1);
            if self_loop {
                findings.push(NaiveFinding {
                    fault: p.id,
                    label: p.label,
                    test: tc.id,
                });
            }
        }
    }

    // A bug is naive-detectable when a self-loop exists on one of its
    // labels: the single injection already manifests the cycle's engine.
    let mut alt_detected = Vec::new();
    for bug in target.known_bugs() {
        let hit = findings.iter().any(|f| bug.labels.contains(&f.label));
        if hit {
            alt_detected.push(bug.id);
        }
    }

    NaiveReport {
        findings,
        runs,
        alt_detected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csnake_targets::ToySystem;

    #[test]
    fn naive_finds_toy_self_loop_in_retry_test_only() {
        // In the toy, delaying the work loop in the retry-enabled workload
        // self-amplifies (timeouts → fanout retries → more iterations); in
        // the retry-free workload it cannot.
        let target = ToySystem::new();
        let report = run_naive_strategy(&target, &NaiveConfig::default());
        let ids = target.ids();
        let self_tests: Vec<TestId> = report
            .findings
            .iter()
            .filter(|f| f.fault == ids.l_work)
            .map(|f| f.test)
            .collect();
        assert!(
            self_tests.contains(&TestId(1)),
            "retry workload must self-loop: {report:?}"
        );
        assert!(
            !self_tests.contains(&TestId(0)),
            "no-retry workload must not self-loop"
        );
        assert_eq!(report.alt_detected, vec!["toy-retry-storm"]);
    }
}
