//! Engine-level comparison policies behind the [`AllocationStrategy`]
//! trait.
//!
//! `csnake_core`'s strategy interface abstracts "how to spend the
//! experiment budget" over an [`ExperimentEngine`]; this module contributes
//! the comparison policies that bracket the paper's Three-Phase Allocation:
//!
//! * [`ExhaustiveAllocation`] — every `(fault, reaching test)` combination,
//!   the (budget-unconstrained) upper bound on what any allocator can
//!   discover with the same engine.
//! * [`CoverageGreedyAllocation`] — the "obvious" heuristic: give each
//!   fault the same quota and always pick its highest-coverage unused
//!   workload. This generalises 3PA's phase one to the whole budget —
//!   exactly what 3PA's phases two and three exist to improve on, since
//!   coverage-greedy picks never diversify into the low-coverage workloads
//!   where conditional propagations hide.
//!
//! The crate's other two baselines stay *outside* the trait deliberately:
//! the naive single-fault strategy ([`crate::naive`]) judges raw traces
//! (self re-occurrence within one run) and the black-box fuzzer
//! ([`crate::blackbox`]) injects coarse external faults that no whitebox
//! engine vocabulary describes. Policies that *do* speak `(fault, test)`
//! experiments belong here.

use csnake_core::{
    run_planned, AllocationResult, AllocationStrategy, CampaignObserver, ExperimentEngine,
    ThreePhaseConfig,
};
use csnake_inject::{FaultId, TestId};

/// Runs every `(fault, reaching-test)` combination once, in deterministic
/// (fault id, coverage-ranked test) order. No budget: this is the
/// everything-the-engine-can-see upper bound other policies are compared
/// against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExhaustiveAllocation;

impl AllocationStrategy for ExhaustiveAllocation {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn run(
        &self,
        engine: &mut dyn ExperimentEngine,
        observer: &dyn CampaignObserver,
    ) -> AllocationResult {
        let batch = plan_coverage_ranked(engine, usize::MAX);
        let budget = batch.len();
        run_planned(engine, &batch, budget, observer)
    }
}

/// Equal per-fault quotas, spent greedily on each fault's highest-coverage
/// reaching workloads.
#[derive(Debug, Clone)]
pub struct CoverageGreedyAllocation {
    /// Budget knobs; the total is [`ThreePhaseConfig::total_budget`] over
    /// the engine's fault count, split evenly across faults.
    pub cfg: ThreePhaseConfig,
}

impl CoverageGreedyAllocation {
    /// A coverage-greedy policy matching the budget of the given 3PA knobs.
    pub fn new(cfg: ThreePhaseConfig) -> Self {
        CoverageGreedyAllocation { cfg }
    }
}

impl AllocationStrategy for CoverageGreedyAllocation {
    fn name(&self) -> &'static str {
        "coverage-greedy"
    }

    fn run(
        &self,
        engine: &mut dyn ExperimentEngine,
        observer: &dyn CampaignObserver,
    ) -> AllocationResult {
        let budget = self.cfg.total_budget(engine.faults().len());
        let batch = plan_coverage_ranked(engine, self.cfg.budget_per_fault);
        run_planned(engine, &batch, budget, observer)
    }
}

/// Plans up to `per_fault` experiments per fault, tests ranked by
/// descending coverage (lowest id on ties — the same deterministic order
/// 3PA's phase one uses).
fn plan_coverage_ranked(
    engine: &dyn ExperimentEngine,
    per_fault: usize,
) -> Vec<(FaultId, TestId, u8)> {
    let mut batch = Vec::new();
    for f in engine.faults() {
        let mut tests = engine.tests_reaching(f);
        tests.sort_by_key(|t| (std::cmp::Reverse(engine.coverage_size(*t)), *t));
        for t in tests.into_iter().take(per_fault) {
            batch.push((f, t, 0));
        }
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use csnake_core::ExperimentOutcome;
    use csnake_core::{NoopObserver, ProgressCollector};
    use std::collections::BTreeSet;

    /// Engine where every fault reaches every test and interferes with a
    /// fixed partner fault.
    struct GridEngine {
        faults: Vec<FaultId>,
        tests: Vec<TestId>,
        log: Vec<(FaultId, TestId)>,
    }

    impl GridEngine {
        fn new(n_faults: u32, n_tests: u32) -> Self {
            GridEngine {
                faults: (0..n_faults).map(FaultId).collect(),
                tests: (0..n_tests).map(TestId).collect(),
                log: Vec::new(),
            }
        }
    }

    impl ExperimentEngine for GridEngine {
        fn faults(&self) -> Vec<FaultId> {
            self.faults.clone()
        }
        fn tests_reaching(&self, _f: FaultId) -> Vec<TestId> {
            self.tests.clone()
        }
        fn coverage_size(&self, t: TestId) -> usize {
            100 - t.0 as usize
        }
        fn run_experiment(&mut self, f: FaultId, t: TestId, _phase: u8) -> ExperimentOutcome {
            self.log.push((f, t));
            ExperimentOutcome {
                fault: f,
                test: t,
                interference: BTreeSet::new(),
                edges: Vec::new(),
            }
        }
    }

    #[test]
    fn exhaustive_covers_the_full_grid_once() {
        let mut eng = GridEngine::new(3, 4);
        let res = ExhaustiveAllocation.run(&mut eng, &NoopObserver);
        assert_eq!(res.experiments_run, 12);
        assert_eq!(res.budget, 12);
        let mut combos = eng.log.clone();
        combos.sort_unstable();
        combos.dedup();
        assert_eq!(combos.len(), 12, "no repeats");
    }

    #[test]
    fn coverage_greedy_respects_quota_and_rank() {
        let mut eng = GridEngine::new(3, 5);
        let cfg = ThreePhaseConfig {
            budget_per_fault: 2,
            ..Default::default()
        };
        let progress = ProgressCollector::new();
        let res = CoverageGreedyAllocation::new(cfg).run(&mut eng, &progress);
        assert_eq!(res.experiments_run, 6);
        assert_eq!(res.budget, 6);
        // Every fault got exactly its quota, on the two highest-coverage
        // tests (ids 0 and 1).
        for f in 0..3u32 {
            let tests: Vec<TestId> = eng
                .log
                .iter()
                .filter(|(ff, _)| *ff == FaultId(f))
                .map(|(_, t)| *t)
                .collect();
            assert_eq!(tests, vec![TestId(0), TestId(1)]);
        }
        assert_eq!(progress.snapshot().experiments, 6);
    }

    #[test]
    fn strategies_are_object_safe() {
        let cfg = ThreePhaseConfig::default();
        let policies: Vec<Box<dyn AllocationStrategy>> = vec![
            Box::new(ExhaustiveAllocation),
            Box::new(CoverageGreedyAllocation::new(cfg)),
        ];
        let names: Vec<&str> = policies.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["exhaustive", "coverage-greedy"]);
    }
}
