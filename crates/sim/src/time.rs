//! Virtual time: a monotone microsecond counter.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A point in (or span of) virtual time, with microsecond resolution.
///
/// `VirtualTime` is used both as an *instant* (time since simulation start)
/// and as a *duration*; the arithmetic is identical and the simulator never
/// needs wall-clock anchoring, so a single type keeps the substrate small.
///
/// # Examples
///
/// ```
/// use csnake_sim::VirtualTime;
///
/// let t = VirtualTime::from_millis(1500);
/// assert_eq!(t.as_micros(), 1_500_000);
/// assert_eq!(t + VirtualTime::from_millis(500), VirtualTime::from_secs(2));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct VirtualTime(u64);

impl VirtualTime {
    /// The zero instant (simulation start) / empty duration.
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// The largest representable time; used as "never".
    pub const MAX: VirtualTime = VirtualTime(u64::MAX);

    /// Creates a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        VirtualTime(us)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        VirtualTime(ms * 1_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        VirtualTime(s * 1_000_000)
    }

    /// Returns the value in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the value in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the value in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction; returns [`VirtualTime::ZERO`] on underflow.
    pub fn saturating_sub(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition; clamps at [`VirtualTime::MAX`].
    pub fn saturating_add(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0.saturating_add(rhs.0))
    }

    /// Returns `true` if this is the zero time.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0 + rhs.0)
    }
}

impl AddAssign for VirtualTime {
    fn add_assign(&mut self, rhs: VirtualTime) {
        self.0 += rhs.0;
    }
}

impl Sub for VirtualTime {
    type Output = VirtualTime;
    fn sub(self, rhs: VirtualTime) -> VirtualTime {
        VirtualTime(self.0 - rhs.0)
    }
}

impl Mul<u64> for VirtualTime {
    type Output = VirtualTime;
    fn mul(self, rhs: u64) -> VirtualTime {
        VirtualTime(self.0 * rhs)
    }
}

impl Div<u64> for VirtualTime {
    type Output = VirtualTime;
    fn div(self, rhs: u64) -> VirtualTime {
        VirtualTime(self.0 / rhs)
    }
}

impl Sum for VirtualTime {
    fn sum<I: Iterator<Item = VirtualTime>>(iter: I) -> VirtualTime {
        iter.fold(VirtualTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{}ms", self.as_millis())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(VirtualTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(VirtualTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(VirtualTime::from_micros(7).as_micros(), 7);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = VirtualTime::from_millis(100);
        let b = VirtualTime::from_millis(250);
        assert_eq!(a + b, VirtualTime::from_millis(350));
        assert_eq!(b - a, VirtualTime::from_millis(150));
        assert_eq!(a * 3, VirtualTime::from_millis(300));
        assert_eq!(b / 5, VirtualTime::from_millis(50));
    }

    #[test]
    fn saturating_sub_clamps_to_zero() {
        let a = VirtualTime::from_millis(100);
        let b = VirtualTime::from_millis(250);
        assert_eq!(a.saturating_sub(b), VirtualTime::ZERO);
        assert_eq!(b.saturating_sub(a), VirtualTime::from_millis(150));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(VirtualTime::from_millis(1) < VirtualTime::from_millis(2));
        assert!(VirtualTime::ZERO < VirtualTime::MAX);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(VirtualTime::from_micros(12).to_string(), "12us");
        assert_eq!(VirtualTime::from_millis(12).to_string(), "12ms");
        assert_eq!(VirtualTime::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: VirtualTime = (1..=4).map(VirtualTime::from_millis).sum();
        assert_eq!(total, VirtualTime::from_millis(10));
    }
}
