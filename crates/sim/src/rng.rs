//! Seeded random-number helpers used across the simulator and the harness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::VirtualTime;

/// A deterministic random-number generator with simulation-oriented helpers.
///
/// Wraps [`StdRng`]; every run of a target system gets its own `SimRng`
/// derived from the run seed, so repetitions differ (giving the t-test in the
/// fault-causality analysis real variance to work with) while any individual
/// run is exactly reproducible.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent generator for a named sub-component.
    ///
    /// Mixing the label keeps sub-streams decorrelated without the caller
    /// having to manage seed bookkeeping.
    pub fn derive(&mut self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SimRng::new(h ^ self.inner.gen::<u64>())
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p.clamp(0.0, 1.0)
    }

    /// A duration jittered uniformly within `±pct` of `base`.
    ///
    /// Used for message latency so that repeated runs of the same workload
    /// show the run-to-run variance the paper's statistical test expects.
    pub fn jitter(&mut self, base: VirtualTime, pct: f64) -> VirtualTime {
        let span = (base.as_micros() as f64 * pct.clamp(0.0, 1.0)) as i64;
        if span == 0 {
            return base;
        }
        let delta = self.inner.gen_range(-span..=span);
        let us = (base.as_micros() as i64 + delta).max(0) as u64;
        VirtualTime::from_micros(us)
    }

    /// Picks a uniformly random element index for a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn pick(&mut self, len: usize) -> usize {
        self.inner.gen_range(0..len)
    }

    /// Returns a raw 64-bit sample (for hashing / sub-seeding).
    pub fn raw(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Exports the generator state for checkpointing.
    ///
    /// The returned words fully determine the future stream; feeding them to
    /// [`SimRng::from_state`] resumes exactly where this generator left off.
    pub fn state(&self) -> [u64; 4] {
        self.inner.state()
    }

    /// Restores a generator from a state captured with [`SimRng::state`].
    pub fn from_state(state: [u64; 4]) -> Self {
        SimRng {
            inner: StdRng::from_state(state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.range(0, 1_000_000), b.range(0, 1_000_000));
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(8);
        let same = (0..64).filter(|_| a.raw() == b.raw()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn jitter_stays_within_band() {
        let mut rng = SimRng::new(3);
        let base = VirtualTime::from_millis(100);
        for _ in 0..256 {
            let j = rng.jitter(base, 0.2);
            assert!(j >= VirtualTime::from_millis(80), "{j}");
            assert!(j <= VirtualTime::from_millis(120), "{j}");
        }
    }

    #[test]
    fn jitter_zero_base_is_zero() {
        let mut rng = SimRng::new(3);
        assert_eq!(rng.jitter(VirtualTime::ZERO, 0.5), VirtualTime::ZERO);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = SimRng::new(77);
        for _ in 0..13 {
            a.raw();
        }
        let mut b = SimRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.raw(), b.raw());
        }
    }

    #[test]
    fn derive_is_label_sensitive() {
        let mut root1 = SimRng::new(11);
        let mut root2 = SimRng::new(11);
        let mut a = root1.derive("alpha");
        let mut b = root2.derive("beta");
        let same = (0..64).filter(|_| a.raw() == b.raw()).count();
        assert!(same < 4);
    }
}
