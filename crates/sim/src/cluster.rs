//! Cluster membership primitives shared by the target systems.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node (server/host) in a simulated cluster.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Live-membership view of a cluster, as maintained by a manager node
/// (NameNode, HMaster, JobManager, SCM...).
///
/// Tracks which nodes are currently considered alive/excluded; target systems
/// layer their own staleness detectors on top.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Membership {
    all: BTreeSet<NodeId>,
    excluded: BTreeSet<NodeId>,
}

impl Membership {
    /// Creates a membership over nodes `0..n`.
    pub fn with_nodes(n: u32) -> Self {
        Membership {
            all: (0..n).map(NodeId).collect(),
            excluded: BTreeSet::new(),
        }
    }

    /// All registered nodes, live or not.
    pub fn all(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.all.iter().copied()
    }

    /// Nodes currently live (registered and not excluded).
    pub fn live(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.all
            .iter()
            .copied()
            .filter(move |n| !self.excluded.contains(n))
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> usize {
        self.all.len() - self.excluded.len()
    }

    /// Total number of registered nodes.
    pub fn total(&self) -> usize {
        self.all.len()
    }

    /// Marks a node as excluded (dead/unhealthy). Idempotent.
    pub fn exclude(&mut self, n: NodeId) {
        if self.all.contains(&n) {
            self.excluded.insert(n);
        }
    }

    /// Re-admits a previously excluded node. Idempotent.
    pub fn readmit(&mut self, n: NodeId) {
        self.excluded.remove(&n);
    }

    /// Returns `true` if the node is registered and not excluded.
    pub fn is_live(&self, n: NodeId) -> bool {
        self.all.contains(&n) && !self.excluded.contains(&n)
    }

    /// Adds a node to the cluster.
    pub fn register(&mut self, n: NodeId) {
        self.all.insert(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_nodes_builds_contiguous_ids() {
        let m = Membership::with_nodes(3);
        assert_eq!(m.total(), 3);
        assert_eq!(m.live_count(), 3);
        assert!(m.is_live(NodeId(2)));
        assert!(!m.is_live(NodeId(3)));
    }

    #[test]
    fn exclude_and_readmit() {
        let mut m = Membership::with_nodes(3);
        m.exclude(NodeId(1));
        assert_eq!(m.live_count(), 2);
        assert!(!m.is_live(NodeId(1)));
        m.exclude(NodeId(1)); // idempotent
        assert_eq!(m.live_count(), 2);
        m.readmit(NodeId(1));
        assert_eq!(m.live_count(), 3);
    }

    #[test]
    fn exclude_unknown_node_is_noop() {
        let mut m = Membership::with_nodes(2);
        m.exclude(NodeId(9));
        assert_eq!(m.live_count(), 2);
    }

    #[test]
    fn live_iterator_skips_excluded() {
        let mut m = Membership::with_nodes(4);
        m.exclude(NodeId(0));
        m.exclude(NodeId(2));
        let live: Vec<_> = m.live().collect();
        assert_eq!(live, vec![NodeId(1), NodeId(3)]);
    }
}
