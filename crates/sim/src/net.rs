//! A simple fault-capable network model.
//!
//! Target systems route messages through a [`Network`] to obtain per-link
//! latency and to honour black-box fault campaigns (node crashes, partitions,
//! extra delay) injected by the Jepsen/Blockade-style baseline fuzzer
//! (`csnake-baselines::blackbox`).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::cluster::NodeId;
use crate::rng::SimRng;
use crate::time::VirtualTime;

/// Static latency characteristics of a link class.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Baseline one-way latency.
    pub base: VirtualTime,
    /// Relative jitter applied uniformly (`±pct`).
    pub jitter_pct: f64,
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec {
            base: VirtualTime::from_millis(2),
            jitter_pct: 0.5,
        }
    }
}

/// Verdict for one message delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Deliver after the given latency.
    After(VirtualTime),
    /// The message is lost (partition or crash).
    Dropped,
}

/// Mutable network state: crashes, partitions and slow links.
#[derive(Debug, Clone, Default)]
pub struct Network {
    spec: LinkSpec,
    crashed: BTreeSet<NodeId>,
    /// Unordered node pairs that cannot communicate.
    partitions: BTreeSet<(NodeId, NodeId)>,
    /// Additional fixed delay on every link (black-box "slow network" fault).
    pub extra_delay: VirtualTime,
}

fn pair(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Network {
    /// Creates a network with the given link spec.
    pub fn new(spec: LinkSpec) -> Self {
        Network {
            spec,
            ..Network::default()
        }
    }

    /// Marks a node as crashed: it neither sends nor receives.
    pub fn crash(&mut self, n: NodeId) {
        self.crashed.insert(n);
    }

    /// Restarts a crashed node.
    pub fn restart(&mut self, n: NodeId) {
        self.crashed.remove(&n);
    }

    /// Returns `true` if the node is currently crashed.
    pub fn is_crashed(&self, n: NodeId) -> bool {
        self.crashed.contains(&n)
    }

    /// Cuts the link between two nodes (both directions).
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.partitions.insert(pair(a, b));
    }

    /// Heals the link between two nodes.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.partitions.remove(&pair(a, b));
    }

    /// Heals all partitions and restarts all nodes.
    pub fn heal_all(&mut self) {
        self.partitions.clear();
        self.crashed.clear();
        self.extra_delay = VirtualTime::ZERO;
    }

    /// Decides the fate of a message from `src` to `dst`.
    pub fn route(&self, src: NodeId, dst: NodeId, rng: &mut SimRng) -> Delivery {
        if self.crashed.contains(&src) || self.crashed.contains(&dst) {
            return Delivery::Dropped;
        }
        if self.partitions.contains(&pair(src, dst)) {
            return Delivery::Dropped;
        }
        let lat = rng.jitter(self.spec.base, self.spec.jitter_pct) + self.extra_delay;
        Delivery::After(lat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(5)
    }

    #[test]
    fn routes_with_latency_by_default() {
        let net = Network::new(LinkSpec::default());
        match net.route(NodeId(0), NodeId(1), &mut rng()) {
            Delivery::After(d) => assert!(d > VirtualTime::ZERO),
            Delivery::Dropped => panic!("should deliver"),
        }
    }

    #[test]
    fn crashed_node_drops_messages_both_ways() {
        let mut net = Network::new(LinkSpec::default());
        net.crash(NodeId(1));
        assert_eq!(
            net.route(NodeId(0), NodeId(1), &mut rng()),
            Delivery::Dropped
        );
        assert_eq!(
            net.route(NodeId(1), NodeId(0), &mut rng()),
            Delivery::Dropped
        );
        net.restart(NodeId(1));
        assert_ne!(
            net.route(NodeId(0), NodeId(1), &mut rng()),
            Delivery::Dropped
        );
    }

    #[test]
    fn partition_is_symmetric_and_healable() {
        let mut net = Network::new(LinkSpec::default());
        net.partition(NodeId(2), NodeId(0));
        assert_eq!(
            net.route(NodeId(0), NodeId(2), &mut rng()),
            Delivery::Dropped
        );
        assert_eq!(
            net.route(NodeId(2), NodeId(0), &mut rng()),
            Delivery::Dropped
        );
        net.heal(NodeId(0), NodeId(2));
        assert_ne!(
            net.route(NodeId(2), NodeId(0), &mut rng()),
            Delivery::Dropped
        );
    }

    #[test]
    fn extra_delay_adds_to_latency() {
        let mut net = Network::new(LinkSpec {
            base: VirtualTime::from_millis(1),
            jitter_pct: 0.0,
        });
        net.extra_delay = VirtualTime::from_secs(1);
        match net.route(NodeId(0), NodeId(1), &mut rng()) {
            Delivery::After(d) => assert!(d >= VirtualTime::from_secs(1)),
            Delivery::Dropped => panic!("should deliver"),
        }
    }

    #[test]
    fn heal_all_resets_everything() {
        let mut net = Network::new(LinkSpec::default());
        net.crash(NodeId(0));
        net.partition(NodeId(1), NodeId(2));
        net.extra_delay = VirtualTime::from_secs(1);
        net.heal_all();
        assert!(!net.is_crashed(NodeId(0)));
        assert_ne!(
            net.route(NodeId(1), NodeId(2), &mut rng()),
            Delivery::Dropped
        );
        assert_eq!(net.extra_delay, VirtualTime::ZERO);
    }
}
