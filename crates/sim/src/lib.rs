//! Deterministic discrete-event simulation substrate for the CSnake
//! reproduction.
//!
//! The paper evaluates CSnake on five real Java distributed systems running on
//! physical testbeds. This crate provides the substitute substrate: a
//! single-threaded, fully deterministic discrete-event simulator with
//! *virtual time*. Target systems (see `csnake-targets`) are written as
//! [`World`] implementations whose event handlers may *advance* virtual time
//! to model computation cost — which is exactly how CSnake's spinning-delay
//! injection manifests (a delayed loop iteration advances the clock, and every
//! event queued behind it observes the queueing delay, just like a
//! single-threaded RPC server with a backlog).
//!
//! Determinism: given the same seed and the same sequence of scheduled events,
//! a run is bit-for-bit reproducible. Run-to-run variance (needed by the
//! paper's t-test on loop iteration counts, §4.3) comes from seeding each
//! repetition differently, which perturbs message latency jitter.
//!
//! # Examples
//!
//! ```
//! use csnake_sim::{Sim, VirtualTime, World};
//!
//! struct Counter {
//!     ticks: u32,
//! }
//!
//! enum Ev {
//!     Tick,
//! }
//!
//! impl World for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, sim: &mut Sim<Ev>, _ev: Ev) {
//!         self.ticks += 1;
//!         if self.ticks < 10 {
//!             sim.schedule(VirtualTime::from_millis(100), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut sim = Sim::new(42);
//! sim.schedule(VirtualTime::ZERO, Ev::Tick);
//! let mut world = Counter { ticks: 0 };
//! sim.run(&mut world, VirtualTime::from_secs(60));
//! assert_eq!(world.ticks, 10);
//! ```

pub mod cluster;
pub mod net;
pub mod queue;
pub mod rng;
pub mod scheduler;
pub mod sim;
pub mod time;
mod wheel;

pub use cluster::{Membership, NodeId};
pub use net::{LinkSpec, Network};
pub use queue::BoundedQueue;
pub use rng::SimRng;
pub use scheduler::SchedulerKind;
pub use sim::{Clock, Sim, TimerId, World};
pub use time::VirtualTime;
