//! The discrete-event executor.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::rng::SimRng;
use crate::scheduler::{self, SchedulerKind};
use crate::time::VirtualTime;
use crate::wheel::TimerWheel;

/// Read/advance access to virtual time, decoupled from the event type.
///
/// The injection agent (`csnake-inject`) applies spinning-delay injections
/// through this trait without knowing the target system's event type.
pub trait Clock {
    /// Current virtual time.
    fn now(&self) -> VirtualTime;

    /// Advances virtual time by `d`, modelling computation cost inside the
    /// currently-running event handler.
    fn advance(&mut self, d: VirtualTime);
}

/// A system under simulation: owns the state, handles events.
pub trait World {
    /// The event alphabet of the system.
    type Event;

    /// Handles one event. The handler may schedule further events, advance
    /// the clock, and mutate system state.
    fn handle(&mut self, sim: &mut Sim<Self::Event>, ev: Self::Event);
}

pub(crate) struct Scheduled<E> {
    pub(crate) time: VirtualTime,
    pub(crate) seq: u64,
    pub(crate) ev: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    // Reverse ordering: BinaryHeap is a max-heap, we want earliest-first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Handle for a scheduled event, usable with [`Sim::cancel`].
///
/// Timer ids are the executor's tie-breaking sequence numbers: unique per
/// `Sim`, issued in scheduling order, never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

/// The event queue behind the executor: the wheel fast path or the
/// retained heap reference, selected per-`Sim` (see [`SchedulerKind`]).
/// Both produce identical `(time, seq)` pop order.
enum EventQueue<E> {
    Heap(BinaryHeap<Scheduled<E>>),
    Wheel(TimerWheel<E>),
}

impl<E> EventQueue<E> {
    fn push(&mut self, sch: Scheduled<E>) {
        match self {
            EventQueue::Heap(h) => h.push(sch),
            EventQueue::Wheel(w) => w.push(sch),
        }
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        match self {
            EventQueue::Heap(h) => h.pop(),
            EventQueue::Wheel(w) => w.pop(),
        }
    }

    fn peek_key(&mut self) -> Option<(VirtualTime, u64)> {
        match self {
            EventQueue::Heap(h) => h.peek().map(|s| (s.time, s.seq)),
            EventQueue::Wheel(w) => w.peek_key(),
        }
    }

    fn len(&self) -> usize {
        match self {
            EventQueue::Heap(h) => h.len(),
            EventQueue::Wheel(w) => w.len(),
        }
    }
}

/// The deterministic discrete-event executor.
///
/// Events are ordered by `(time, sequence)`; the sequence number breaks ties
/// in scheduling order, which makes runs fully deterministic. An event whose
/// scheduled time is *earlier* than the current clock (because a previous
/// handler advanced time past it) executes "late" at the current clock — this
/// models a single-threaded server whose queue backs up behind a slow
/// request, the central mechanism by which CSnake's delay injection causes
/// downstream timeouts.
///
/// Two queue backends exist — the event wheel and the retained heap
/// reference — with bit-identical semantics; see [`SchedulerKind`].
pub struct Sim<E> {
    now: VirtualTime,
    seq: u64,
    queue: EventQueue<E>,
    /// Cancelled timer ids not yet swept from the queue; sweeping happens
    /// lazily when a cancelled event reaches the front.
    cancelled: HashSet<u64>,
    rng: SimRng,
    events_executed: u64,
    /// Hard cap on executed events; guards against seeded bugs producing
    /// genuinely unbounded retry storms inside one run.
    pub event_limit: u64,
}

impl<E> Clock for Sim<E> {
    fn now(&self) -> VirtualTime {
        self.now
    }

    fn advance(&mut self, d: VirtualTime) {
        self.now = self.now.saturating_add(d);
    }
}

impl<E> Sim<E> {
    /// Creates an executor with the given RNG seed, using the process-wide
    /// default scheduler backend ([`scheduler::default_kind`]).
    pub fn new(seed: u64) -> Self {
        Sim::with_scheduler(seed, scheduler::default_kind())
    }

    /// Creates an executor with an explicit scheduler backend.
    pub fn with_scheduler(seed: u64, kind: SchedulerKind) -> Self {
        Sim {
            now: VirtualTime::ZERO,
            seq: 0,
            queue: match kind {
                SchedulerKind::Heap => EventQueue::Heap(BinaryHeap::new()),
                SchedulerKind::Wheel => EventQueue::Wheel(TimerWheel::new()),
            },
            cancelled: HashSet::new(),
            rng: SimRng::new(seed),
            events_executed: 0,
            event_limit: 2_000_000,
        }
    }

    /// Which queue backend this executor runs on.
    pub fn scheduler(&self) -> SchedulerKind {
        match self.queue {
            EventQueue::Heap(_) => SchedulerKind::Heap,
            EventQueue::Wheel(_) => SchedulerKind::Wheel,
        }
    }

    /// Current virtual time (also available through [`Clock`]).
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.events_executed
    }

    /// Mutable access to the run RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedules `ev` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: VirtualTime, ev: E) -> TimerId {
        let time = self.now.saturating_add(delay);
        self.schedule_at(time, ev)
    }

    /// Schedules `ev` at an absolute virtual time.
    ///
    /// Times in the past are allowed; the event will run "late" at the
    /// current clock, like a queued request behind a slow handler.
    pub fn schedule_at(&mut self, time: VirtualTime, ev: E) -> TimerId {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { time, seq, ev });
        TimerId(seq)
    }

    /// Schedules `ev` after `base` jittered by `±pct` — the common way targets
    /// model message latency.
    pub fn send(&mut self, base: VirtualTime, pct: f64, ev: E) -> TimerId {
        let d = self.rng.jitter(base, pct);
        self.schedule(d, ev)
    }

    /// Cancels a scheduled timer, as a target's "response arrived, disarm
    /// the timeout" path. Returns `false` if the id was never issued or
    /// already cancelled. Cancelling a timer that already fired is a no-op
    /// (the mark lingers but can never match a future event — ids are
    /// never reused).
    ///
    /// Cancelled events are swept lazily when they reach the queue front,
    /// so [`Sim::pending`] counts them until then.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        if id.0 >= self.seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Cancels `id` and schedules `ev` in its place, `delay` from now,
    /// returning the replacement's id — the retry/backoff "push the
    /// timeout out" idiom.
    pub fn reschedule(&mut self, id: TimerId, delay: VirtualTime, ev: E) -> TimerId {
        self.cancel(id);
        self.schedule(delay, ev)
    }

    /// Number of pending events, including cancelled ones not yet swept.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// `(time, seq)` of the next live event, sweeping any cancelled events
    /// off the queue front.
    fn peek_key(&mut self) -> Option<(VirtualTime, u64)> {
        loop {
            let (time, seq) = self.queue.peek_key()?;
            if self.cancelled.is_empty() || !self.cancelled.remove(&seq) {
                return Some((time, seq));
            }
            self.queue.pop();
        }
    }

    /// Runs the world until the queue drains, `until` is reached, or the
    /// event limit trips. Returns the number of events executed.
    pub fn run<W: World<Event = E>>(&mut self, world: &mut W, until: VirtualTime) -> u64 {
        let start = self.events_executed;
        while let Some((time, _)) = self.peek_key() {
            if time > until {
                // Nothing left before the horizon.
                break;
            }
            let sch = self.queue.pop().expect("peeked");
            // Late events execute at the current clock; on-time events move
            // the clock forward.
            self.now = self.now.max(sch.time);
            self.events_executed += 1;
            if self.events_executed - start > self.event_limit {
                break;
            }
            world.handle(self, sch.ev);
        }
        self.events_executed - start
    }

    /// Queueing lateness of an event scheduled at `scheduled`: how long past
    /// its intended time the current handler is running.
    pub fn lateness(&self, scheduled: VirtualTime) -> VirtualTime {
        self.now.saturating_sub(scheduled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        A,
        B,
        Spin(VirtualTime),
    }

    #[derive(Default)]
    struct Log {
        seen: Vec<(Ev, VirtualTime)>,
    }

    impl World for Log {
        type Event = Ev;
        fn handle(&mut self, sim: &mut Sim<Ev>, ev: Ev) {
            if let Ev::Spin(d) = &ev {
                sim.advance(*d);
            }
            self.seen.push((ev, sim.now()));
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(1);
        sim.schedule(VirtualTime::from_millis(20), Ev::B);
        sim.schedule(VirtualTime::from_millis(10), Ev::A);
        let mut w = Log::default();
        sim.run(&mut w, VirtualTime::from_secs(1));
        assert_eq!(w.seen[0].0, Ev::A);
        assert_eq!(w.seen[1].0, Ev::B);
    }

    #[test]
    fn ties_break_in_scheduling_order() {
        let mut sim = Sim::new(1);
        sim.schedule(VirtualTime::from_millis(5), Ev::A);
        sim.schedule(VirtualTime::from_millis(5), Ev::B);
        let mut w = Log::default();
        sim.run(&mut w, VirtualTime::from_secs(1));
        assert_eq!(w.seen[0].0, Ev::A);
        assert_eq!(w.seen[1].0, Ev::B);
    }

    #[test]
    fn advance_delays_subsequent_events() {
        let mut sim = Sim::new(1);
        sim.schedule(
            VirtualTime::from_millis(1),
            Ev::Spin(VirtualTime::from_secs(5)),
        );
        sim.schedule(VirtualTime::from_millis(2), Ev::A);
        let mut w = Log::default();
        sim.run(&mut w, VirtualTime::from_secs(60));
        // Ev::A was scheduled at 2ms but runs after the 5s spin — "late".
        let (_, a_time) = &w.seen[1];
        assert!(*a_time >= VirtualTime::from_secs(5));
    }

    #[test]
    fn horizon_stops_the_run() {
        let mut sim = Sim::new(1);
        for i in 0..100 {
            sim.schedule(VirtualTime::from_millis(i * 10), Ev::A);
        }
        let mut w = Log::default();
        sim.run(&mut w, VirtualTime::from_millis(95));
        assert_eq!(w.seen.len(), 10); // 0..=90ms
        assert_eq!(sim.pending(), 90);
    }

    #[test]
    fn lateness_measures_queueing_delay() {
        let mut sim: Sim<Ev> = Sim::new(1);
        sim.advance(VirtualTime::from_millis(500));
        assert_eq!(
            sim.lateness(VirtualTime::from_millis(100)),
            VirtualTime::from_millis(400)
        );
        assert_eq!(sim.lateness(VirtualTime::from_secs(10)), VirtualTime::ZERO);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut sim = Sim::new(seed);
            for _ in 0..10 {
                let d = sim.rng().jitter(VirtualTime::from_millis(100), 0.5);
                sim.schedule(d, Ev::A);
            }
            let mut w = Log::default();
            sim.run(&mut w, VirtualTime::from_secs(10));
            w.seen
                .iter()
                .map(|(_, t)| t.as_micros())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn event_limit_bounds_runaway_loops() {
        struct Storm;
        impl World for Storm {
            type Event = ();
            fn handle(&mut self, sim: &mut Sim<()>, _ev: ()) {
                // Re-schedule two events per event: exponential storm.
                sim.schedule(VirtualTime::from_micros(1), ());
                sim.schedule(VirtualTime::from_micros(1), ());
            }
        }
        let mut sim: Sim<()> = Sim::new(1);
        sim.event_limit = 1_000;
        sim.schedule(VirtualTime::ZERO, ());
        let executed = sim.run(&mut Storm, VirtualTime::MAX);
        assert!(executed <= 1_001);
    }
}
