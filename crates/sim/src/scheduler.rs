//! Scheduler selection: the event-wheel fast path vs. the retained heap.
//!
//! The executor has two event-queue backends with **bit-identical**
//! semantics — pop order, lateness, horizon and event-limit behaviour are
//! exactly equal, proven by the equivalence proptests in this crate's
//! `scheduler_equivalence.rs` and the corpus campaign-report comparison
//! in the scenario crate's `scheduler_reports.rs`:
//!
//! * [`SchedulerKind::Wheel`] — the hierarchical timing wheel
//!   (`wheel.rs`), `O(1)` pushes and bitmap-scan pops; the default.
//! * [`SchedulerKind::Heap`] — the original binary heap, retained as the
//!   executable reference, the same discipline as the indexed-vs-reference
//!   FCA and sparse-vs-dense clustering pairs.
//!
//! [`Sim::with_scheduler`](crate::Sim::with_scheduler) picks a backend
//! explicitly; [`Sim::new`](crate::Sim::new) reads the process-wide
//! default set here. The default is a *process* global (an atomic), not a
//! thread-local like `csnake_inject::tracing_switch`: target runs fan out
//! over worker pools, and the scheduler choice must reach those threads.
//! Because both backends produce identical results, flipping the default
//! mid-process can never change an outcome — only its speed — so the
//! global is safe to toggle from benches and equivalence tests.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which event-queue backend a [`Sim`](crate::Sim) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Hierarchical timing wheel (default fast path).
    Wheel,
    /// Binary heap (retained reference).
    Heap,
}

impl SchedulerKind {
    /// Stable lowercase name, for bench artifacts and logs.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::Wheel => "wheel",
            SchedulerKind::Heap => "heap",
        }
    }
}

static DEFAULT_KIND: AtomicU8 = AtomicU8::new(0);

/// Sets the process-wide default backend used by `Sim::new`.
pub fn set_default(kind: SchedulerKind) {
    let tag = match kind {
        SchedulerKind::Wheel => 0,
        SchedulerKind::Heap => 1,
    };
    DEFAULT_KIND.store(tag, Ordering::Relaxed);
}

/// The current process-wide default backend (initially
/// [`SchedulerKind::Wheel`]).
pub fn default_kind() -> SchedulerKind {
    match DEFAULT_KIND.load(Ordering::Relaxed) {
        0 => SchedulerKind::Wheel,
        _ => SchedulerKind::Heap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trips() {
        assert_eq!(default_kind(), SchedulerKind::Wheel);
        set_default(SchedulerKind::Heap);
        assert_eq!(default_kind(), SchedulerKind::Heap);
        set_default(SchedulerKind::Wheel);
        assert_eq!(default_kind(), SchedulerKind::Wheel);
        assert_eq!(SchedulerKind::Wheel.name(), "wheel");
        assert_eq!(SchedulerKind::Heap.name(), "heap");
    }
}
