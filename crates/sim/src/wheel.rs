//! Hierarchical timing wheel: the event queue behind the fast scheduler.
//!
//! The binary-heap queue pays `O(log n)` with poor locality per operation;
//! at the open-loop workload engine's scale (millions of pre-scheduled
//! arrivals pending at once) those log-factors and cache misses dominate a
//! run. The wheel replaces them with `O(1)` slot pushes and a bitmap scan
//! per pop, while producing **bit-identical pop order**: events leave in
//! exactly the heap's `(time, sequence)` order, proven by the equivalence
//! suite in `sim.rs`, the scheduler proptests, and the corpus
//! campaign-report comparison in the scenario crate's
//! `scheduler_reports.rs`.
//!
//! # Structure
//!
//! Eleven levels of 64 slots cover the full `u64` microsecond range
//! (6 bits per level, `6 × 11 ≥ 64`). An event at absolute time `t` lives
//! at the level of the highest bit in which `t` differs from the wheel's
//! internal cursor `cur`; level-1 slots therefore hold events less than
//! 64² µs ahead, level-2 slots events less than 64³ µs ahead, and so on.
//! Each level keeps a 64-bit occupancy bitmap so finding the next
//! non-empty slot is a `trailing_zeros`, not a scan.
//!
//! There is no distributed level 0. The bottom of the wheel is the
//! **front batch**: a sorted run of the nearest events, covering the
//! window `(cur, front_hi)`. When the front drains, the earliest occupied
//! slot either *cascades* (its events re-insert relative to the advanced
//! cursor, landing strictly lower) or — once it is a level-1 slot or small
//! enough — is drained wholesale, sorted once by `(time, seq)`, and served
//! directly from the batch. Sorting a contiguous run replaces two or three
//! per-event distribution rounds through the lowest levels, which is where
//! a bulk-scheduled workload spends most of its scheduler time. New pushes
//! that land inside the active front window merge by binary-search insert
//! (appends at the tail for the common same-time, rising-sequence case).
//!
//! # Ordering invariants
//!
//! * The cursor never passes the earliest pending wheel event; wheel
//!   residents always have `time > cur`, and `front_hi` never falls below
//!   the end of the cursor's 64 µs window, so every event beyond the front
//!   window genuinely differs from `cur` at bit 6 or above.
//! * `schedule_at` times at or before the cursor (late events, or events
//!   between the executor's clock and the eagerly-advanced cursor) go to a
//!   small *overdue* heap; pops compare the overdue minimum against the
//!   front minimum by `(time, seq)`, so late scheduling keeps the exact
//!   heap semantics.
//! * The front batch is totally ordered by `(time, seq)`; upper-level
//!   events all start at or after `front_hi`, hence after every front
//!   event — the front head is always the wheel minimum.

use std::collections::{BinaryHeap, VecDeque};

use crate::sim::Scheduled;
use crate::time::VirtualTime;

/// Bits per wheel level (64 slots).
const BITS: u32 = 6;
/// Levels needed to cover the full `u64` microsecond range.
const LEVELS: usize = 11;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Slots at level ≥ 2 up to this size are sorted and served directly
/// instead of cascading. Large enough to catch typical bulk-arrival slot
/// populations, small enough that a mid-window binary-search insert (a
/// `memmove` of half the batch) stays cheap.
const BATCH_THRESHOLD: usize = 512;

/// One upper wheel level (1..): occupancy bitmap plus 64 append-only
/// slots, drained wholesale when the cursor reaches them.
struct Level<E> {
    occupied: u64,
    slots: Vec<Vec<Scheduled<E>>>,
}

impl<E> Level<E> {
    fn new() -> Self {
        Level {
            occupied: 0,
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
        }
    }
}

/// Hierarchical timing wheel with exact `(time, seq)` pop order.
pub(crate) struct TimerWheel<E> {
    /// Wheel time in microseconds. Advances eagerly to the window start of
    /// the earliest pending event during cascades; never decreases and
    /// never passes a pending wheel event.
    cur: u64,
    /// Sorted run of the nearest events: the half-open window
    /// `(cur, front_hi)`, ordered by `(time, seq)`.
    front: VecDeque<Scheduled<E>>,
    /// Exclusive upper bound of the front window. Invariant:
    /// `front_hi ≥ (cur & !63) + 64`.
    front_hi: u64,
    /// Levels 1..LEVELS, index `k` holding level `k + 1`.
    upper: Vec<Level<E>>,
    /// Events scheduled at or before `cur` (late `schedule_at`, or pushes
    /// landing behind the eagerly-advanced cursor).
    overdue: BinaryHeap<Scheduled<E>>,
    len: usize,
    /// Reusable drain buffer: an upper slot's vector is pointer-swapped
    /// through here, so slot backing allocations circulate instead of
    /// being freed and re-grown on every visit — pure malloc churn at
    /// million-timer scale otherwise.
    scratch: Vec<Scheduled<E>>,
}

impl<E> TimerWheel<E> {
    pub(crate) fn new() -> Self {
        TimerWheel {
            cur: 0,
            front: VecDeque::new(),
            front_hi: SLOTS as u64,
            upper: (1..LEVELS).map(|_| Level::new()).collect(),
            overdue: BinaryHeap::new(),
            len: 0,
            scratch: Vec::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Merges `sch` into the sorted front batch. Sequence numbers issued
    /// later are always larger, so the insertion point is purely
    /// time-determined: after every event at `≤ sch.time` already present.
    fn front_insert(&mut self, sch: Scheduled<E>) {
        let t = sch.time;
        if self.front.back().is_none_or(|b| b.time <= t) {
            self.front.push_back(sch);
            return;
        }
        let pos = self.front.partition_point(|s| s.time <= t);
        self.front.insert(pos, sch);
    }

    pub(crate) fn push(&mut self, sch: Scheduled<E>) {
        self.len += 1;
        let t = sch.time.as_micros();
        if t <= self.cur {
            self.overdue.push(sch);
            return;
        }
        if t < self.front_hi {
            self.front_insert(sch);
            return;
        }
        // front_hi covers the cursor's full 64 µs window, so t differs
        // from cur at bit ≥ 6: level is always ≥ 1.
        let diff = t ^ self.cur;
        let level = ((63 - diff.leading_zeros()) / BITS) as usize;
        debug_assert!(level >= 1, "sub-window event escaped the front batch");
        let slot = ((t >> (BITS as u64 * level as u64)) & (SLOTS as u64 - 1)) as usize;
        let lv = &mut self.upper[level - 1];
        lv.occupied |= 1 << slot;
        lv.slots[slot].push(sch);
    }

    /// Ensures the wheel minimum (if any) sits at the head of the front
    /// batch, cascading or batch-sorting upper slots as needed.
    fn settle_front(&mut self) {
        while self.front.is_empty() {
            let Some(level) = (1..LEVELS).find(|&k| self.upper[k - 1].occupied != 0) else {
                return;
            };
            let idx_from = ((self.cur >> (BITS as u64 * level as u64)) & (SLOTS as u64 - 1)) as u32;
            let occ = self.upper[level - 1].occupied;
            let mask = occ & (!0u64 << idx_from);
            debug_assert!(mask != 0, "wheel entries behind the cursor index");
            let bits = if mask != 0 { mask } else { occ };
            let slot = bits.trailing_zeros() as usize;
            // Advance the cursor to the slot's window start.
            let shift = BITS * level as u32;
            let upper_bits = if shift + BITS >= 64 {
                0
            } else {
                self.cur & !((1u64 << (shift + BITS)) - 1)
            };
            let slot_start = upper_bits | ((slot as u64) << shift);
            self.cur = self.cur.max(slot_start);
            // Swap the slot's vector out through the scratch buffer: the
            // slot inherits scratch's (empty, warm) allocation.
            let mut scratch = std::mem::take(&mut self.scratch);
            std::mem::swap(&mut scratch, &mut self.upper[level - 1].slots[slot]);
            self.upper[level - 1].occupied &= !(1u64 << slot);
            if level == 1 || scratch.len() <= BATCH_THRESHOLD {
                // Serve the whole slot as the front batch: one sort
                // replaces the remaining per-event distribution rounds.
                scratch.sort_unstable_by_key(|s| (s.time, s.seq));
                self.front.extend(scratch.drain(..));
                self.front_hi = slot_start + (1u64 << shift);
            } else {
                // Too big to sort in one go: re-insert relative to the new
                // cursor; each event lands strictly below this level. The
                // front takes the cursor's 64 µs window so level-0-sized
                // remainders have somewhere to go.
                self.front_hi = (self.cur & !(SLOTS as u64 - 1)) + SLOTS as u64;
                for sch in scratch.drain(..) {
                    self.len -= 1;
                    self.push(sch);
                }
            }
            self.scratch = scratch;
        }
    }

    /// `(time, seq)` of the minimum pending event, without removing it.
    pub(crate) fn peek_key(&mut self) -> Option<(VirtualTime, u64)> {
        self.settle_front();
        let wheel = self.front.front().map(|s| (s.time, s.seq));
        let overdue = self.overdue.peek().map(|s| (s.time, s.seq));
        match (wheel, overdue) {
            (None, None) => None,
            (Some(w), None) => Some(w),
            (None, Some(o)) => Some(o),
            (Some(w), Some(o)) => Some(if o < w { o } else { w }),
        }
    }

    pub(crate) fn pop(&mut self) -> Option<Scheduled<E>> {
        self.settle_front();
        let wheel_key = self.front.front().map(|s| (s.time, s.seq));
        let overdue_key = self.overdue.peek().map(|s| (s.time, s.seq));
        let from_overdue = match (wheel_key, overdue_key) {
            (None, None) => return None,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (Some(w), Some(o)) => o < w,
        };
        self.len -= 1;
        if from_overdue {
            self.overdue.pop()
        } else {
            self.front.pop_front()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sch(time: u64, seq: u64) -> Scheduled<u64> {
        Scheduled {
            time: VirtualTime::from_micros(time),
            seq,
            ev: seq,
        }
    }

    fn drain(w: &mut TimerWheel<u64>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(s) = w.pop() {
            out.push((s.time.as_micros(), s.seq));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut w = TimerWheel::new();
        for (i, t) in [500u64, 3, 70_000, 3, 1 << 40, 64, 65]
            .into_iter()
            .enumerate()
        {
            w.push(sch(t, i as u64));
        }
        assert_eq!(
            drain(&mut w),
            vec![
                (3, 1),
                (3, 3),
                (64, 5),
                (65, 6),
                (500, 0),
                (70_000, 2),
                (1 << 40, 4)
            ]
        );
    }

    #[test]
    fn late_pushes_behind_the_cursor_still_order_exactly() {
        let mut w = TimerWheel::new();
        w.push(sch(10_000, 0));
        // Popping advances the cursor past 0; a later push at an earlier
        // time must still come out by (time, seq).
        assert_eq!(w.pop().map(|s| s.seq), Some(0));
        w.push(sch(5, 1));
        w.push(sch(10_000, 2));
        w.push(sch(5, 3));
        assert_eq!(drain(&mut w), vec![(5, 1), (5, 3), (10_000, 2)]);
    }

    #[test]
    fn mid_window_inserts_merge_into_the_front_batch() {
        let mut w = TimerWheel::new();
        // Build a served front window, then land new events inside it,
        // before and after the batch head.
        for i in 0..10u64 {
            w.push(sch(100_000 + i * 7, i));
        }
        assert_eq!(w.pop().map(|s| s.seq), Some(0));
        w.push(sch(100_003, 10)); // before the current front head
        w.push(sch(100_050, 11)); // past the current front tail
        w.push(sch(100_007, 12)); // ties an existing time, later seq
        let rest = drain(&mut w);
        let mut expect: Vec<(u64, u64)> = (1..10).map(|i| (100_000 + i * 7, i)).collect();
        expect.extend([(100_003, 10), (100_050, 11), (100_007, 12)]);
        expect.sort_unstable();
        assert_eq!(rest, expect);
    }

    #[test]
    fn len_tracks_cascades_and_overdue() {
        let mut w = TimerWheel::new();
        for i in 0..100u64 {
            w.push(sch(i * 1000, i));
        }
        assert_eq!(w.len(), 100);
        for expect in (0..100).rev() {
            w.pop();
            assert_eq!(w.len(), expect);
        }
        assert!(w.pop().is_none());
    }

    #[test]
    fn big_slots_cascade_and_small_slots_batch_identically() {
        // 2·BATCH_THRESHOLD events inside one level-3 slot forces the
        // cascade path; the level-2 remainders then batch-sort.
        let mut w = TimerWheel::new();
        let base = 1u64 << 18;
        let n = 2 * BATCH_THRESHOLD as u64;
        for i in 0..n {
            w.push(sch(base + (i * 131) % 200_000, i));
        }
        let mut expect: Vec<(u64, u64)> = (0..n).map(|i| (base + (i * 131) % 200_000, i)).collect();
        expect.sort_unstable();
        assert_eq!(drain(&mut w), expect);
    }

    #[test]
    fn peek_matches_pop() {
        let mut w = TimerWheel::new();
        for (i, t) in [9u64, 1, 1, 1 << 30, 0].into_iter().enumerate() {
            w.push(sch(t, i as u64));
        }
        while let Some(key) = w.peek_key() {
            let popped = w.pop().expect("peeked");
            assert_eq!((popped.time, popped.seq), key);
        }
    }
}
