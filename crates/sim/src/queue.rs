//! A bounded FIFO queue with drop accounting.
//!
//! Several target systems (Ozone's event queue, HDFS3's async services) are
//! built around bounded dispatch queues whose overflow behaviour participates
//! in the seeded cascading failures.

use std::collections::VecDeque;

/// Bounded FIFO; rejects pushes beyond `capacity` and counts the rejects.
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            items: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Attempts to enqueue; returns the item back on overflow.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.dropped += 1;
            Err(item)
        } else {
            self.items.push_back(item);
            Ok(())
        }
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Current queue length.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Returns `true` if at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Number of rejected pushes so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_rejects_and_counts() {
        let mut q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert!(q.is_full());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.dropped(), 1);
        q.pop();
        q.push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BoundedQueue::<u8>::new(0);
    }
}
