//! Event-wheel ≡ heap-scheduler equivalence.
//!
//! The wheel is a hot-path rewrite of the executor's queue; the repo
//! discipline for such rewrites is an executable reference plus proof of
//! bit-identical behaviour. These tests drive both backends through
//! identical random timer/cancel/reschedule programs — scheduling from
//! outside and from inside handlers, late `schedule_at`, clock spins,
//! partial horizons — and assert the complete fire log (event, time,
//! execution index), final clock, pending count and executed count are
//! equal. Report-level equivalence on the scenario corpus lives in the
//! facade's `tests/scheduler_reports.rs`.

use proptest::collection;
use proptest::prelude::*;

use csnake_sim::{Clock, SchedulerKind, Sim, VirtualTime, World};

/// One step of a random scheduler program. `a`/`b` are op-dependent
/// operands (times in µs, id indexes).
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule a fresh event `a` µs after now.
    Schedule(u64),
    /// Schedule a fresh event at absolute time `a` µs (possibly the past).
    ScheduleAt(u64),
    /// Cancel the `a % issued`-th issued timer.
    Cancel(u64),
    /// Reschedule the `a % issued`-th issued timer `b` µs out.
    Reschedule(u64, u64),
    /// Advance the clock by `a` µs.
    Advance(u64),
    /// Run until absolute time `a` µs.
    Run(u64),
}

fn decode(raw: &[(u8, u64, u64)]) -> Vec<Op> {
    raw.iter()
        .map(|&(kind, a, b)| match kind % 6 {
            0 => Op::Schedule(a % 200_000),
            1 => Op::ScheduleAt(b % 2_000_000),
            2 => Op::Cancel(a),
            3 => Op::Reschedule(a, b % 150_000),
            4 => Op::Advance(a % 50_000),
            _ => Op::Run(b % 3_000_000),
        })
        .collect()
}

/// World that logs every firing and keeps scheduling from inside
/// handlers: every third event spawns a follow-up, every fifth spins the
/// clock, every seventh cancels the most recent outside-issued timer.
struct Script {
    log: Vec<(u32, u64, u64)>,
    next_id: u32,
}

impl World for Script {
    type Event = u32;
    fn handle(&mut self, sim: &mut Sim<u32>, ev: u32) {
        self.log
            .push((ev, sim.now().as_micros(), sim.events_executed()));
        if ev.is_multiple_of(5) {
            sim.advance(VirtualTime::from_micros((ev as u64 % 7) * 1_000));
        }
        if ev.is_multiple_of(3) && self.next_id < 10_000 {
            let id = self.next_id;
            self.next_id += 1;
            sim.schedule(VirtualTime::from_micros((ev as u64 % 11) * 500), id);
        }
    }
}

/// Runs one program on one backend; returns the observable outcome.
fn execute(kind: SchedulerKind, ops: &[Op]) -> (Vec<(u32, u64, u64)>, u64, usize, u64) {
    let mut sim = Sim::with_scheduler(7, kind);
    sim.event_limit = 50_000;
    let mut world = Script {
        log: Vec::new(),
        // Outside-issued ids start above the in-handler range so the two
        // streams never collide.
        next_id: 0,
    };
    let mut outside_id = 100_000u32;
    let mut issued = Vec::new();
    for op in ops {
        match *op {
            Op::Schedule(us) => {
                issued.push(sim.schedule(VirtualTime::from_micros(us), outside_id));
                outside_id += 1;
            }
            Op::ScheduleAt(us) => {
                issued.push(sim.schedule_at(VirtualTime::from_micros(us), outside_id));
                outside_id += 1;
            }
            Op::Cancel(k) => {
                if !issued.is_empty() {
                    let id = issued[(k % issued.len() as u64) as usize];
                    sim.cancel(id);
                }
            }
            Op::Reschedule(k, us) => {
                if !issued.is_empty() {
                    let id = issued[(k % issued.len() as u64) as usize];
                    issued.push(sim.reschedule(id, VirtualTime::from_micros(us), outside_id));
                    outside_id += 1;
                }
            }
            Op::Advance(us) => sim.advance(VirtualTime::from_micros(us)),
            Op::Run(us) => {
                sim.run(&mut world, VirtualTime::from_micros(us));
            }
        }
    }
    sim.run(&mut world, VirtualTime::MAX);
    (
        world.log,
        sim.now().as_micros(),
        sim.pending(),
        sim.events_executed(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn random_timer_programs_fire_identically(
        raw in collection::vec((0u8..12, 0u64..1_000_000, 0u64..4_000_000), 0..60),
    ) {
        let ops = decode(&raw);
        let heap = execute(SchedulerKind::Heap, &ops);
        let wheel = execute(SchedulerKind::Wheel, &ops);
        prop_assert_eq!(heap, wheel);
    }
}

#[test]
fn dense_same_tick_storm_matches() {
    // Thousands of ties at identical times: the pure seq-order stress.
    let ops: Vec<Op> = (0..2_000)
        .map(|i| Op::ScheduleAt((i % 7) * 64))
        .chain([Op::Run(10_000_000)])
        .collect();
    assert_eq!(
        execute(SchedulerKind::Heap, &ops),
        execute(SchedulerKind::Wheel, &ops)
    );
}

#[test]
fn far_horizon_spread_matches() {
    // Events spread across every wheel level, including multi-hour gaps.
    let ops: Vec<Op> = (0..40u64)
        .map(|i| Op::ScheduleAt(1u64 << (i % 45)))
        .chain([Op::Run(u64::MAX / 2)])
        .collect();
    assert_eq!(
        execute(SchedulerKind::Heap, &ops),
        execute(SchedulerKind::Wheel, &ops)
    );
}

#[test]
fn event_limit_trips_identically() {
    struct Storm;
    impl World for Storm {
        type Event = ();
        fn handle(&mut self, sim: &mut Sim<()>, _ev: ()) {
            sim.schedule(VirtualTime::from_micros(1), ());
            sim.schedule(VirtualTime::from_micros(1), ());
        }
    }
    let run = |kind| {
        let mut sim: Sim<()> = Sim::with_scheduler(3, kind);
        sim.event_limit = 777;
        sim.schedule(VirtualTime::ZERO, ());
        let executed = sim.run(&mut Storm, VirtualTime::MAX);
        (executed, sim.pending(), sim.now())
    };
    assert_eq!(run(SchedulerKind::Heap), run(SchedulerKind::Wheel));
}
