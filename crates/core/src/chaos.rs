//! Self-fault-injection for the campaign runner itself.
//!
//! CSnake injects faults into *target systems*; this module turns the same
//! discipline on the campaign supervisor. A [`ChaosInjector`] can make
//! experiment jobs panic, stall past a deadline, or fail snapshot IO at
//! chosen sites, so the retry/checkpoint/degradation machinery is exercised
//! by tests and CI instead of waiting for a real crash at hour five of a
//! campaign.
//!
//! Determinism is the whole design:
//!
//! * whether a site fires is a pure function of `(seed, site, key)` — a
//!   stable FNV-style hash mapped to a unit float and compared against the
//!   configured rate. The key is the experiment's `(fault, test)` identity
//!   (or a checkpoint ordinal), **not** call order, so parallel workers
//!   cannot race the decision;
//! * transient failures clear after [`ChaosConfig::transient_attempts`]
//!   hits of the same site: the per-key attempt counter makes "fails twice
//!   then succeeds" reproducible, which is what lets the recovery tests
//!   assert byte-identical reports after retries;
//! * a "stall" sleeps [`ChaosConfig::stall_ms`] and then panics with a
//!   deadline message — simulating a watchdog kill without putting any
//!   wall-clock measurement into campaign results.
//!
//! Configuration comes from [`DriverConfig::chaos`](crate::driver::DriverConfig)
//! or the `CSNAKE_CHAOS` environment variable (see [`ChaosConfig::from_env`]).

use std::collections::HashMap;
use std::sync::Mutex;

use csnake_inject::{FaultId, TestId};
use serde::{Deserialize, Serialize};

/// Which supervisor site a chaos decision applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosSite {
    /// An experiment job panics at dispatch.
    ExperimentPanic,
    /// An experiment job stalls past its deadline (then dies).
    ExperimentStall,
    /// A snapshot write fails with an IO error.
    SnapshotIo,
    /// A wire frame (daemon shard assignment) is lost in flight.
    WireDrop,
    /// A wire frame is stalled in flight (delivery delayed by `stall_ms`).
    WireStall,
}

impl ChaosSite {
    fn tag(self) -> u64 {
        match self {
            ChaosSite::ExperimentPanic => 1,
            ChaosSite::ExperimentStall => 2,
            ChaosSite::SnapshotIo => 3,
            ChaosSite::WireDrop => 4,
            ChaosSite::WireStall => 5,
        }
    }
}

/// Knobs of the self-fault-injection harness. All rates default to zero —
/// chaos is opt-in and a default config is exactly a no-op.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Seed of the decision hash; different seeds select different victim
    /// sites at the same rates.
    pub seed: u64,
    /// Probability that a given `(fault, test)` experiment panics.
    pub experiment_panic: f64,
    /// Probability that a given `(fault, test)` experiment stalls past its
    /// deadline.
    pub experiment_stall: f64,
    /// Probability that a given snapshot write fails with an IO error.
    pub snapshot_io: f64,
    /// Probability that a given wire frame (a daemon shard assignment,
    /// keyed by its shard ordinal) is dropped in flight. The coordinator
    /// re-sends dropped frames; transient drops are invisible in results,
    /// permanent drops exhaust the reassignment budget and the shard's
    /// cells degrade into gaps.
    pub wire_drop: f64,
    /// Probability that a given wire frame is stalled `stall_ms` before
    /// delivery. Pacing only — a stalled frame still arrives, so results
    /// are never affected (the lease machinery just sees a slow worker).
    pub wire_stall: f64,
    /// How many times a selected site fails before it starts succeeding.
    /// Keep this at or below the supervisor's retry budget and every
    /// failure is transient; see `permanent` for the other regime.
    pub transient_attempts: u32,
    /// When set, selected sites fail on every attempt — retries cannot
    /// save them, and the campaign must degrade gracefully instead.
    pub permanent: bool,
    /// How long a "stall" sleeps before dying, in milliseconds. Pacing
    /// only: the value never reaches campaign results.
    pub stall_ms: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0,
            experiment_panic: 0.0,
            experiment_stall: 0.0,
            snapshot_io: 0.0,
            wire_drop: 0.0,
            wire_stall: 0.0,
            transient_attempts: 1,
            permanent: false,
            stall_ms: 25,
        }
    }
}

impl ChaosConfig {
    /// True when no site can ever fire.
    pub fn is_disabled(&self) -> bool {
        self.experiment_panic <= 0.0
            && self.experiment_stall <= 0.0
            && self.snapshot_io <= 0.0
            && self.wire_drop <= 0.0
            && self.wire_stall <= 0.0
    }

    /// Parses the `CSNAKE_CHAOS` environment variable, a comma-separated
    /// `key=value` list:
    ///
    /// ```text
    /// CSNAKE_CHAOS=seed=7,exp_panic=0.2,exp_stall=0.1,snap_io=0.25,wire_drop=0.2,wire_stall=0.1,attempts=2,permanent=1,stall_ms=50
    /// ```
    ///
    /// Returns `None` when the variable is unset or empty; unknown keys and
    /// unparsable values are ignored (chaos must never turn a typo into a
    /// campaign-fatal error).
    pub fn from_env() -> Option<ChaosConfig> {
        let raw = std::env::var("CSNAKE_CHAOS").ok()?;
        if raw.trim().is_empty() {
            return None;
        }
        Some(Self::parse(&raw))
    }

    /// Parses the `CSNAKE_CHAOS` syntax from a string (see
    /// [`ChaosConfig::from_env`]).
    pub fn parse(raw: &str) -> ChaosConfig {
        let mut cfg = ChaosConfig::default();
        for part in raw.split(',') {
            let Some((k, v)) = part.split_once('=') else {
                continue;
            };
            let (k, v) = (k.trim(), v.trim());
            match k {
                "seed" => {
                    if let Ok(x) = v.parse() {
                        cfg.seed = x;
                    }
                }
                "exp_panic" => {
                    if let Ok(x) = v.parse() {
                        cfg.experiment_panic = x;
                    }
                }
                "exp_stall" => {
                    if let Ok(x) = v.parse() {
                        cfg.experiment_stall = x;
                    }
                }
                "snap_io" => {
                    if let Ok(x) = v.parse() {
                        cfg.snapshot_io = x;
                    }
                }
                "wire_drop" => {
                    if let Ok(x) = v.parse() {
                        cfg.wire_drop = x;
                    }
                }
                "wire_stall" => {
                    if let Ok(x) = v.parse() {
                        cfg.wire_stall = x;
                    }
                }
                "attempts" => {
                    if let Ok(x) = v.parse() {
                        cfg.transient_attempts = x;
                    }
                }
                "permanent" => cfg.permanent = v == "1" || v.eq_ignore_ascii_case("true"),
                "stall_ms" => {
                    if let Ok(x) = v.parse() {
                        cfg.stall_ms = x;
                    }
                }
                _ => {}
            }
        }
        cfg
    }
}

/// FNV-1a over the decision identity, widened to a unit float the same way
/// the vendored `rand` maps `u64 → f64`.
fn unit_roll(seed: u64, site: u64, key: u64) -> f64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for word in [seed, site, key] {
        for b in word.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    // One xoshiro-style finalize round so low-entropy keys still spread.
    h ^= h >> 31;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 29;
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The runtime half: answers "does this site fail *this time*?" with the
/// per-key attempt bookkeeping that makes transient failures clear.
#[derive(Debug)]
pub struct ChaosInjector {
    cfg: ChaosConfig,
    /// Attempts seen so far per `(site, key)` — interior-mutable because
    /// experiment hooks run on `&self` from worker threads.
    attempts: Mutex<HashMap<(u64, u64), u32>>,
}

impl ChaosInjector {
    /// Builds an injector; a disabled config yields a guaranteed no-op.
    pub fn new(cfg: ChaosConfig) -> Self {
        ChaosInjector {
            cfg,
            attempts: Mutex::new(HashMap::new()),
        }
    }

    /// A permanently-disabled injector.
    pub fn disabled() -> Self {
        Self::new(ChaosConfig::default())
    }

    /// Whether any site can fire at all.
    pub fn enabled(&self) -> bool {
        !self.cfg.is_disabled()
    }

    /// The configuration this injector runs.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Core decision: is `(site, key)` selected, and has it exhausted its
    /// transient allowance? Increments the per-key attempt counter on
    /// selected sites.
    fn should_fail(&self, site: ChaosSite, key: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if unit_roll(self.cfg.seed, site.tag(), key) >= rate {
            return false;
        }
        if self.cfg.permanent {
            return true;
        }
        let mut attempts = self.attempts.lock().expect("chaos attempt map");
        let n = attempts.entry((site.tag(), key)).or_insert(0);
        *n += 1;
        *n <= self.cfg.transient_attempts
    }

    /// Experiment-site hook: call at the top of a `(fault, test)`
    /// experiment job, **before** any simulator work, so a killed attempt
    /// contributes zero runs and retried campaigns keep exact accounting.
    ///
    /// # Panics
    ///
    /// Panics (by design) when the experiment is selected for a panic or a
    /// stall; the stall sleeps `stall_ms` first to exercise the deadline
    /// path.
    pub fn experiment_hook(&self, f: FaultId, t: TestId) {
        if !self.enabled() {
            return;
        }
        let key = ((f.0 as u64) << 32) | t.0 as u64;
        if self.should_fail(ChaosSite::ExperimentPanic, key, self.cfg.experiment_panic) {
            panic!(
                "chaos: injected panic in experiment (fault {}, test {})",
                f.0, t.0
            );
        }
        if self.should_fail(ChaosSite::ExperimentStall, key, self.cfg.experiment_stall) {
            std::thread::sleep(std::time::Duration::from_millis(self.cfg.stall_ms));
            panic!(
                "chaos: experiment (fault {}, test {}) stalled past its deadline",
                f.0, t.0
            );
        }
    }

    /// Snapshot-IO-site hook: call before writing checkpoint `ordinal`.
    /// Returns an injected IO error when selected.
    pub fn snapshot_io_hook(&self, ordinal: u64) -> std::io::Result<()> {
        if self.enabled() && self.should_fail(ChaosSite::SnapshotIo, ordinal, self.cfg.snapshot_io)
        {
            return Err(std::io::Error::other(format!(
                "chaos: injected IO failure on snapshot write {ordinal}"
            )));
        }
        Ok(())
    }

    /// Wire-drop-site hook: call before sending the frame for shard
    /// `shard`. `true` means the frame is lost in flight — the sender must
    /// treat the delivery as failed (and may retry; the per-key attempt
    /// counter makes transient losses clear on re-send). Keyed on the
    /// shard ordinal, not call order, so re-sends of the same shard make
    /// progress deterministically.
    pub fn wire_drop_hook(&self, shard: u64) -> bool {
        self.enabled() && self.should_fail(ChaosSite::WireDrop, shard, self.cfg.wire_drop)
    }

    /// Wire-stall-site hook: call before sending the frame for shard
    /// `shard`. When selected, sleeps `stall_ms` (simulating a frame stuck
    /// in a queue) and returns `true`; the frame is then delivered
    /// normally, so the stall paces wall-clock only and never perturbs
    /// results.
    pub fn wire_stall_hook(&self, shard: u64) -> bool {
        if self.enabled() && self.should_fail(ChaosSite::WireStall, shard, self.cfg.wire_stall) {
            std::thread::sleep(std::time::Duration::from_millis(self.cfg.stall_ms));
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_a_noop() {
        let inj = ChaosInjector::disabled();
        assert!(!inj.enabled());
        for i in 0..64 {
            inj.experiment_hook(FaultId(i), TestId(i));
            assert!(inj.snapshot_io_hook(i as u64).is_ok());
        }
    }

    #[test]
    fn decisions_are_deterministic_in_identity_not_order() {
        let cfg = ChaosConfig {
            seed: 7,
            snapshot_io: 0.5,
            permanent: true,
            ..Default::default()
        };
        let a = ChaosInjector::new(cfg.clone());
        let b = ChaosInjector::new(cfg);
        let fwd: Vec<bool> = (0..64).map(|i| a.snapshot_io_hook(i).is_err()).collect();
        let rev: Vec<bool> = (0..64)
            .rev()
            .map(|i| b.snapshot_io_hook(i).is_err())
            .collect();
        let rev: Vec<bool> = rev.into_iter().rev().collect();
        assert_eq!(fwd, rev);
        assert!(fwd.iter().any(|&x| x), "rate 0.5 must select something");
        assert!(!fwd.iter().all(|&x| x), "rate 0.5 must spare something");
    }

    #[test]
    fn transient_failures_clear_after_the_allowance() {
        let cfg = ChaosConfig {
            seed: 3,
            snapshot_io: 1.0,
            transient_attempts: 2,
            ..Default::default()
        };
        let inj = ChaosInjector::new(cfg);
        assert!(inj.snapshot_io_hook(9).is_err(), "attempt 1 fails");
        assert!(inj.snapshot_io_hook(9).is_err(), "attempt 2 fails");
        assert!(inj.snapshot_io_hook(9).is_ok(), "attempt 3 clears");
        assert!(inj.snapshot_io_hook(9).is_ok(), "and stays clear");
    }

    #[test]
    fn permanent_failures_never_clear() {
        let cfg = ChaosConfig {
            seed: 3,
            snapshot_io: 1.0,
            permanent: true,
            ..Default::default()
        };
        let inj = ChaosInjector::new(cfg);
        for _ in 0..8 {
            assert!(inj.snapshot_io_hook(9).is_err());
        }
    }

    #[test]
    fn experiment_hook_panics_with_site_identity() {
        let cfg = ChaosConfig {
            seed: 1,
            experiment_panic: 1.0,
            ..Default::default()
        };
        let inj = ChaosInjector::new(cfg);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inj.experiment_hook(FaultId(4), TestId(2))
        }));
        std::panic::set_hook(prev);
        let payload = r.expect_err("rate 1.0 must fire");
        let msg = crate::pool::panic_message(payload.as_ref());
        assert!(msg.contains("chaos"), "{msg:?}");
        assert!(msg.contains("fault 4") && msg.contains("test 2"), "{msg:?}");
    }

    #[test]
    fn env_syntax_parses_and_ignores_junk() {
        let cfg =
            ChaosConfig::parse("seed=7, exp_panic=0.25,exp_stall=0.5,snap_io=0.125,wire_drop=0.375,wire_stall=0.0625,attempts=3,permanent=true,stall_ms=5,wat=1,junk");
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.experiment_panic, 0.25);
        assert_eq!(cfg.experiment_stall, 0.5);
        assert_eq!(cfg.snapshot_io, 0.125);
        assert_eq!(cfg.wire_drop, 0.375);
        assert_eq!(cfg.wire_stall, 0.0625);
        assert_eq!(cfg.transient_attempts, 3);
        assert!(cfg.permanent);
        assert_eq!(cfg.stall_ms, 5);
        assert!(ChaosConfig::parse("").is_disabled());
        assert!(!ChaosConfig::parse("wire_drop=0.5").is_disabled());
        assert!(!ChaosConfig::parse("wire_stall=0.5").is_disabled());
    }

    #[test]
    fn transient_wire_drops_clear_on_resend() {
        let cfg = ChaosConfig {
            seed: 5,
            wire_drop: 1.0,
            transient_attempts: 2,
            ..Default::default()
        };
        let inj = ChaosInjector::new(cfg);
        assert!(inj.wire_drop_hook(3), "send 1 dropped");
        assert!(inj.wire_drop_hook(3), "send 2 dropped");
        assert!(!inj.wire_drop_hook(3), "send 3 delivered");
        assert!(!inj.wire_drop_hook(3), "and stays delivered");
    }

    #[test]
    fn permanent_wire_drops_never_clear_and_key_on_shard_identity() {
        let cfg = ChaosConfig {
            seed: 5,
            wire_drop: 0.5,
            permanent: true,
            ..Default::default()
        };
        let a = ChaosInjector::new(cfg.clone());
        let b = ChaosInjector::new(cfg);
        let fwd: Vec<bool> = (0..64).map(|s| a.wire_drop_hook(s)).collect();
        let mut rev: Vec<bool> = (0..64).rev().map(|s| b.wire_drop_hook(s)).collect();
        rev.reverse();
        assert_eq!(fwd, rev, "decisions must key on shard id, not call order");
        assert!(fwd.iter().any(|&x| x) && !fwd.iter().all(|&x| x));
        for _ in 0..4 {
            assert_eq!(
                fwd,
                (0..64).map(|s| a.wire_drop_hook(s)).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn wire_stall_fires_but_delivers() {
        let cfg = ChaosConfig {
            seed: 1,
            wire_stall: 1.0,
            stall_ms: 1,
            transient_attempts: 1,
            ..Default::default()
        };
        let inj = ChaosInjector::new(cfg);
        assert!(inj.wire_stall_hook(0), "first delivery stalls");
        assert!(!inj.wire_stall_hook(0), "transient stall clears");
        assert!(!ChaosInjector::disabled().wire_stall_hook(0));
    }

    #[test]
    fn rates_select_roughly_the_configured_fraction() {
        let cfg = ChaosConfig {
            seed: 11,
            snapshot_io: 0.25,
            permanent: true,
            ..Default::default()
        };
        let inj = ChaosInjector::new(cfg);
        let hits = (0..4000)
            .filter(|&i| inj.snapshot_io_hook(i).is_err())
            .count();
        assert!(
            (700..=1300).contains(&hits),
            "hits={hits} of 4000 at rate 0.25"
        );
    }
}
