//! Statistical tests used by the fault-causality analysis.
//!
//! The paper detects *iteration count interference* by checking whether a
//! loop's iteration count "statistically increases compared to the profile
//! run", using a one-sided t-test with p = 0.1 (§4.3). Profile and injection
//! runs are repeated five times each, so the samples are tiny; we use the
//! Welch (unequal-variance) form, which is the safe default.

/// Natural log of the gamma function (Lanczos approximation).
///
/// Accurate to ~1e-10 for positive arguments, far beyond what a p = 0.1
/// threshold on n = 5 samples needs.
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos g = 7, n = 9 coefficients.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction expansion (Lentz's algorithm).
pub fn betainc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "betainc requires positive parameters");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_beta = ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b);
    let front = (a * x.ln() + b * (1.0 - x).ln() - ln_beta).exp();
    // Use the symmetry relation for faster convergence.
    if x > (a + 1.0) / (a + b + 2.0) {
        return 1.0 - betainc(b, a, 1.0 - x);
    }
    // Continued fraction.
    let tiny = 1e-300;
    let mut f = 1.0_f64;
    let mut c = 1.0_f64;
    let mut d = 0.0_f64;
    for i in 0..=200 {
        let m = i / 2;
        let numerator = if i == 0 {
            1.0
        } else if i % 2 == 0 {
            let m = m as f64;
            (m * (b - m) * x) / ((a + 2.0 * m - 1.0) * (a + 2.0 * m))
        } else {
            let m = m as f64;
            -((a + m) * (a + b + m) * x) / ((a + 2.0 * m) * (a + 2.0 * m + 1.0))
        };
        d = 1.0 + numerator * d;
        if d.abs() < tiny {
            d = tiny;
        }
        d = 1.0 / d;
        c = 1.0 + numerator / c;
        if c.abs() < tiny {
            c = tiny;
        }
        let cd = c * d;
        f *= cd;
        if (1.0 - cd).abs() < 1e-12 {
            return (front * (f - 1.0) / a).clamp(0.0, 1.0);
        }
    }
    (front * (f - 1.0) / a).clamp(0.0, 1.0)
}

/// Survival function of Student's t distribution: `P(T > t)` with `df`
/// degrees of freedom.
pub fn t_sf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive");
    let x = df / (df + t * t);
    let half = 0.5 * betainc(df / 2.0, 0.5, x);
    if t >= 0.0 {
        half
    } else {
        1.0 - half
    }
}

/// Sufficient statistics of one sample, precomputed once and reused across
/// many Welch tests (the fault-causality analysis compares every injection
/// experiment on a test against the *same* profile runs, so the profile
/// side's moments are shared).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean (NaN for empty samples; callers handle `n == 0`).
    pub mean: f64,
    /// Unbiased sample variance (0.0 below two observations).
    pub var: f64,
}

/// Computes [`SampleStats`] with exactly the summation order the scalar
/// [`welch_one_sided_p`] always used, so stats-based tests are bit-identical
/// to slice-based ones.
pub fn sample_stats(xs: &[f64]) -> SampleStats {
    let (mean, var) = mean_var(xs);
    SampleStats {
        n: xs.len(),
        mean,
        var,
    }
}

fn mean_var(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
    (mean, var)
}

/// The Welch t statistic and Welch–Satterthwaite degrees of freedom for the
/// non-degenerate case (both samples ≥ 2 observations, some variance).
fn welch_t_df(a: SampleStats, b: SampleStats) -> (f64, f64) {
    let na = a.n as f64;
    let nb = b.n as f64;
    let se2 = a.var / na + b.var / nb;
    let t = (b.mean - a.mean) / se2.sqrt();
    let df_num = se2 * se2;
    let df_den = (a.var / na).powi(2) / (na - 1.0) + (b.var / nb).powi(2) / (nb - 1.0);
    let df = if df_den == 0.0 {
        na + nb - 2.0
    } else {
        df_num / df_den
    };
    (t, df)
}

/// [`welch_one_sided_p`] over precomputed sample moments. Bit-identical to
/// the slice form when the stats come from [`sample_stats`].
pub fn welch_one_sided_p_stats(a: SampleStats, b: SampleStats) -> f64 {
    if a.n == 0 || b.n == 0 {
        return 1.0;
    }
    if a.var == 0.0 && b.var == 0.0 {
        return if b.mean > a.mean { 0.0 } else { 1.0 };
    }
    if a.n < 2 || b.n < 2 {
        return if b.mean > a.mean { 0.0 } else { 1.0 };
    }
    let (t, df) = welch_t_df(a, b);
    t_sf(t, df)
}

/// Decision form of the one-sided Welch test: `true` iff
/// `welch_one_sided_p_stats(a, b) < p_threshold`, computed without the
/// expensive `t_sf` evaluation whenever the t statistic alone already
/// decides it.
///
/// `t ≤ 0` implies `p = SF(t) ≥ 0.5`, so for any threshold ≤ 0.5 (the FCA
/// default is 0.1) a non-positive statistic short-circuits to `false`. This
/// is exact, not approximate: the survival function is monotone decreasing
/// and `SF(0) = 0.5`. In a campaign the vast majority of candidate loops
/// are unaffected by the injection (`mean(b) ≤ mean(a)`), so almost every
/// test resolves in a handful of flops instead of a continued-fraction
/// `betainc` evaluation.
pub fn welch_one_sided_significant(a: SampleStats, b: SampleStats, p_threshold: f64) -> bool {
    if a.n == 0 || b.n == 0 {
        return 1.0 < p_threshold;
    }
    if (a.var == 0.0 && b.var == 0.0) || a.n < 2 || b.n < 2 {
        let p = if b.mean > a.mean { 0.0 } else { 1.0 };
        return p < p_threshold;
    }
    let (t, df) = welch_t_df(a, b);
    if t <= 0.0 && p_threshold <= 0.5 {
        return false;
    }
    t_sf(t, df) < p_threshold
}

/// Batched one-sided Welch tests over all candidate loops of one experiment:
/// `out[i]` is `true` iff injection sample `i` is a statistically significant
/// increase over profile sample `i` at `p_threshold`. The profile side is
/// typically precomputed once per test and shared across every experiment.
pub fn welch_batch_significant(
    profile: &[SampleStats],
    injection: &[SampleStats],
    p_threshold: f64,
) -> Vec<bool> {
    assert_eq!(
        profile.len(),
        injection.len(),
        "batched Welch test requires paired samples"
    );
    profile
        .iter()
        .zip(injection)
        .map(|(&a, &b)| welch_one_sided_significant(a, b, p_threshold))
        .collect()
}

/// One-sided Welch t-test p-value for the alternative `mean(b) > mean(a)`.
///
/// Returns the probability of observing a difference at least this large
/// under the null hypothesis of equal means. Degenerate inputs are handled
/// the way the fault-causality analysis needs:
///
/// * both samples have zero variance → p = 0 if `mean(b) > mean(a)`, else 1
///   (fully deterministic counts: any increase is "significant");
/// * fewer than two observations on either side → compares means the same
///   way.
///
/// # Examples
///
/// ```
/// use csnake_core::stats::welch_one_sided_p;
///
/// let profile = [100.0, 101.0, 99.0, 100.0, 100.0];
/// let injected = [150.0, 149.0, 151.0, 150.0, 152.0];
/// assert!(welch_one_sided_p(&profile, &injected) < 0.01);
/// assert!(welch_one_sided_p(&injected, &profile) > 0.9);
/// ```
pub fn welch_one_sided_p(a: &[f64], b: &[f64]) -> f64 {
    welch_one_sided_p_stats(sample_stats(a), sample_stats(b))
}

/// Convenience: `true` if `b`'s mean is a statistically significant increase
/// over `a`'s at the given p-value threshold.
pub fn significant_increase(a: &[f64], b: &[f64], p_threshold: f64) -> bool {
    welch_one_sided_p(a, b) < p_threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = 1, Γ(2) = 1, Γ(5) = 24, Γ(0.5) = √π.
        assert!((ln_gamma(1.0)).abs() < 1e-9);
        assert!((ln_gamma(2.0)).abs() < 1e-9);
        assert!((ln_gamma(5.0) - 24.0_f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn betainc_boundaries_and_symmetry() {
        assert_eq!(betainc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(betainc(2.0, 3.0, 1.0), 1.0);
        // I_x(1,1) = x (uniform CDF).
        for x in [0.1, 0.4, 0.9] {
            assert!((betainc(1.0, 1.0, x) - x).abs() < 1e-9, "{x}");
        }
        // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
        let v = betainc(2.5, 4.0, 0.3);
        let w = 1.0 - betainc(4.0, 2.5, 0.7);
        assert!((v - w).abs() < 1e-9);
    }

    #[test]
    fn t_sf_matches_reference_values() {
        // t = 0 → 0.5 for any df.
        assert!((t_sf(0.0, 4.0) - 0.5).abs() < 1e-9);
        // df = 1 is the Cauchy distribution: SF(1) = 0.25.
        assert!((t_sf(1.0, 1.0) - 0.25).abs() < 1e-9);
        // Reference: SF(2.776, 4) ≈ 0.025 (classic t-table value).
        assert!((t_sf(2.776, 4.0) - 0.025).abs() < 5e-4);
        // Large df approaches the normal: SF(1.645, 1e6) ≈ 0.05.
        assert!((t_sf(1.645, 1e6) - 0.05).abs() < 1e-3);
        // Negative t mirrors.
        assert!((t_sf(-1.0, 1.0) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn welch_detects_clear_increase() {
        let a = [100.0, 102.0, 98.0, 101.0, 99.0];
        let b = [140.0, 142.0, 139.0, 141.0, 138.0];
        assert!(welch_one_sided_p(&a, &b) < 0.001);
        assert!(significant_increase(&a, &b, 0.1));
    }

    #[test]
    fn welch_rejects_no_change_and_decrease() {
        let a = [100.0, 102.0, 98.0, 101.0, 99.0];
        let same = [99.0, 101.0, 100.0, 102.0, 98.0];
        assert!(welch_one_sided_p(&a, &same) > 0.1);
        let lower = [80.0, 82.0, 79.0, 81.0, 78.0];
        assert!(welch_one_sided_p(&a, &lower) > 0.9);
        assert!(!significant_increase(&a, &same, 0.1));
    }

    #[test]
    fn welch_zero_variance_compares_means() {
        let a = [10.0; 5];
        let b = [11.0; 5];
        assert_eq!(welch_one_sided_p(&a, &b), 0.0);
        assert_eq!(welch_one_sided_p(&b, &a), 1.0);
        assert_eq!(welch_one_sided_p(&a, &a.clone()), 1.0);
    }

    #[test]
    fn welch_handles_small_and_empty_samples() {
        assert_eq!(welch_one_sided_p(&[], &[1.0]), 1.0);
        assert_eq!(welch_one_sided_p(&[1.0], &[]), 1.0);
        assert_eq!(welch_one_sided_p(&[1.0], &[2.0]), 0.0);
        assert_eq!(welch_one_sided_p(&[2.0], &[1.0]), 1.0);
    }

    #[test]
    fn welch_one_zero_variance_side() {
        let a = [10.0; 5];
        let b = [10.5, 11.5, 10.8, 11.2, 11.0];
        let p = welch_one_sided_p(&a, &b);
        assert!(p < 0.05, "p = {p}");
    }

    #[test]
    fn stats_form_is_bit_identical_to_slice_form() {
        let cases: &[(&[f64], &[f64])] = &[
            (&[100.0, 102.0, 98.0], &[140.0, 139.0, 141.0]),
            (&[10.0; 5], &[11.0; 5]),
            (&[1.0], &[2.0]),
            (&[], &[1.0]),
            (&[5.0, 5.0, 5.0], &[5.0, 6.0, 4.0]),
            (&[3.0, 4.0], &[3.5, 3.6]),
        ];
        for (a, b) in cases {
            let slice_p = welch_one_sided_p(a, b);
            let stats_p = welch_one_sided_p_stats(sample_stats(a), sample_stats(b));
            assert_eq!(slice_p.to_bits(), stats_p.to_bits(), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn significance_decision_matches_p_value_comparison() {
        let mut gen = 0x1234_5678_u64;
        let mut next = move || {
            gen = gen.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((gen >> 33) % 1000) as f64 / 10.0
        };
        for _ in 0..500 {
            let a: Vec<f64> = (0..5).map(|_| next()).collect();
            let b: Vec<f64> = (0..5).map(|_| next()).collect();
            let (sa, sb) = (sample_stats(&a), sample_stats(&b));
            for thr in [0.01, 0.1, 0.5] {
                let expect = welch_one_sided_p(&a, &b) < thr;
                assert_eq!(welch_one_sided_significant(sa, sb, thr), expect);
            }
        }
    }

    #[test]
    fn batch_significance_is_elementwise() {
        let prof: Vec<SampleStats> = [[100.0, 101.0, 99.0], [5.0, 5.0, 5.0], [1.0, 2.0, 3.0]]
            .iter()
            .map(|xs| sample_stats(xs))
            .collect();
        let inj: Vec<SampleStats> = [[150.0, 151.0, 149.0], [5.0, 5.0, 5.0], [1.0, 2.0, 3.0]]
            .iter()
            .map(|xs| sample_stats(xs))
            .collect();
        assert_eq!(
            welch_batch_significant(&prof, &inj, 0.1),
            vec![true, false, false]
        );
    }

    #[test]
    fn p_value_monotone_in_effect_size() {
        let a = [100.0, 101.0, 99.0, 100.5, 99.5];
        let mut last = 1.0;
        for shift in [0.0, 1.0, 2.0, 5.0, 10.0] {
            let b: Vec<f64> = a.iter().map(|x| x + shift).collect();
            let p = welch_one_sided_p(&a, &b);
            assert!(p <= last + 1e-12, "shift {shift}: {p} > {last}");
            last = p;
        }
    }
}
