//! The typed error layer of the staged [`Session`](crate::session::Session)
//! API.
//!
//! Construction and stage misuse, snapshot I/O, and snapshot integrity all
//! surface as [`CsnakeError`] values instead of panics, so embedding callers
//! (services, harnesses) can react — retry, fall back to a fresh campaign,
//! or refuse a corrupt checkpoint — without unwinding.

use std::fmt;
use std::io;
use std::path::PathBuf;

use crate::session::Stage;

/// Convenience alias used across the session/snapshot API.
pub type Result<T> = std::result::Result<T, CsnakeError>;

/// Everything that can go wrong constructing, driving, checkpointing or
/// resuming a detection [`Session`](crate::session::Session).
#[derive(Debug)]
pub enum CsnakeError {
    /// A stage method was called out of order (e.g. `stitch()` before
    /// `allocate()`).
    StageOrder {
        /// The stage the session must be in for the call to proceed.
        expected: Stage,
        /// The stage the session is actually in.
        found: Stage,
    },
    /// The target system cannot be driven (no workloads, empty registry).
    InvalidTarget(String),
    /// Reading or writing a snapshot file failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying OS error.
        source: io::Error,
    },
    /// The snapshot payload is malformed: bad magic, checksum mismatch, or
    /// an impossible encoded value.
    SnapshotCorrupt(String),
    /// The snapshot file is shorter than its header declares — the classic
    /// signature of a write interrupted by a crash or kill. Distinct from
    /// [`CsnakeError::SnapshotCorrupt`] so a resume path can fall back to an
    /// earlier checkpoint instead of treating the campaign as damaged.
    SnapshotTorn {
        /// Bytes the header (or the minimum container layout) promised.
        expected: u64,
        /// Bytes actually present in the file.
        found: u64,
    },
    /// The snapshot was written by an incompatible format version.
    SnapshotVersion {
        /// Version found in the snapshot header.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// The snapshot was taken from a different target system.
    TargetMismatch {
        /// Target name recorded in the snapshot.
        snapshot: String,
        /// Name of the target the resume was attempted against.
        actual: String,
    },
    /// The target has the right name but a structurally different
    /// fault-point inventory (points added/removed/renumbered since the
    /// snapshot was taken) — resuming would silently corrupt causality.
    RegistryMismatch {
        /// Registry fingerprint recorded in the snapshot.
        snapshot: u64,
        /// Fingerprint of the live target's registry.
        actual: u64,
    },
    /// `resume()` was combined with an explicit `config()` override; a
    /// snapshot carries its own configuration (including every seed), and
    /// silently preferring either one would surprise the caller.
    ConfigOverride,
}

impl fmt::Display for CsnakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsnakeError::StageOrder { expected, found } => write!(
                f,
                "session stage mismatch: operation requires stage {expected:?}, \
                 session is at {found:?}"
            ),
            CsnakeError::InvalidTarget(why) => write!(f, "invalid target system: {why}"),
            CsnakeError::Io { path, source } => {
                write!(f, "snapshot I/O failed for {}: {source}", path.display())
            }
            CsnakeError::SnapshotCorrupt(why) => write!(f, "corrupt snapshot: {why}"),
            CsnakeError::SnapshotTorn { expected, found } => write!(
                f,
                "torn snapshot: file holds {found} bytes but the header \
                 promises {expected} — the write was interrupted; resume \
                 from an earlier checkpoint"
            ),
            CsnakeError::SnapshotVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build supports {supported})"
            ),
            CsnakeError::TargetMismatch { snapshot, actual } => write!(
                f,
                "snapshot was taken from target {snapshot:?} but resume was \
                 attempted against {actual:?}"
            ),
            CsnakeError::RegistryMismatch { snapshot, actual } => write!(
                f,
                "target registry changed since the snapshot was taken \
                 (fingerprint {snapshot:#018x} in snapshot, {actual:#018x} live); \
                 re-run the campaign from scratch"
            ),
            CsnakeError::ConfigOverride => write!(
                f,
                "resume() takes its configuration from the snapshot; remove \
                 the explicit config() override (or build a fresh session)"
            ),
        }
    }
}

impl std::error::Error for CsnakeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsnakeError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CsnakeError::StageOrder {
            expected: Stage::Profiled,
            found: Stage::Built,
        };
        let s = e.to_string();
        assert!(s.contains("Profiled") && s.contains("Built"), "{s}");

        let e = CsnakeError::SnapshotVersion {
            found: 99,
            supported: 1,
        };
        assert!(e.to_string().contains("99"));

        let e = CsnakeError::TargetMismatch {
            snapshot: "mini-hdfs2".into(),
            actual: "toy".into(),
        };
        let s = e.to_string();
        assert!(s.contains("mini-hdfs2") && s.contains("toy"), "{s}");

        let e = CsnakeError::SnapshotTorn {
            expected: 64,
            found: 17,
        };
        let s = e.to_string();
        assert!(s.contains("64") && s.contains("17"), "{s}");
    }

    #[test]
    fn io_variant_exposes_source() {
        use std::error::Error;
        let e = CsnakeError::Io {
            path: PathBuf::from("/tmp/x.csnake"),
            source: io::Error::new(io::ErrorKind::NotFound, "gone"),
        };
        assert!(e.source().is_some());
        assert!(e.to_string().contains("x.csnake"));
    }
}
