//! Detection reports: cycle composition, ground-truth matching, TP/FP
//! accounting (§8.1, §8.4).

use std::collections::BTreeSet;

use csnake_inject::{FaultId, FaultKind, Registry, TestId};
use serde::{Deserialize, Serialize};

use crate::alloc::AllocationResult;
use crate::beam::{Cycle, CycleCluster};
use crate::edge::CausalDb;
use crate::target::{KnownBug, TargetSystem};

/// Injection composition of a cycle, in the notation of Table 3
/// ("1D | 2E | 0N").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Composition {
    /// Distinct delay injections.
    pub delays: usize,
    /// Distinct exception injections.
    pub exceptions: usize,
    /// Distinct negation injections.
    pub negations: usize,
}

impl std::fmt::Display for Composition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}D | {}E | {}N",
            self.delays, self.exceptions, self.negations
        )
    }
}

/// Computes the injection composition of a cycle.
pub fn composition(cycle: &Cycle, db: &CausalDb, reg: &Registry) -> Composition {
    let mut seen = BTreeSet::new();
    let mut c = Composition::default();
    for f in cycle.injected_faults(db) {
        if !seen.insert(f) {
            continue;
        }
        match reg.point(f).kind {
            FaultKind::LoopPoint => c.delays += 1,
            FaultKind::Throw | FaultKind::LibCall => c.exceptions += 1,
            FaultKind::Negation => c.negations += 1,
        }
    }
    c
}

/// A detected known bug.
#[derive(Debug, Clone, Serialize)]
pub struct BugMatch {
    /// The ground-truth bug.
    pub bug: KnownBug,
    /// Index of the matching cycle cluster.
    pub cluster_idx: usize,
    /// Index of the best matching cycle.
    pub cycle_idx: usize,
    /// 3PA phase after which all of the cycle's causal relationships were
    /// known (Table 3 "Alloc." column).
    pub phase: u8,
    /// Injection composition of the matching cycle (Table 3 "Cycle" column).
    pub composition: Composition,
}

/// Classification of a cycle cluster against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterVerdict {
    /// Matches a seeded bug.
    TruePositive,
    /// Pure-delay cycle among loops whose contention is accepted behaviour
    /// (§8.4.2 reason 1).
    ExpectedContention,
    /// Anything else.
    FalsePositive,
}

/// Full detection report for one system.
#[derive(Debug, Clone, Serialize)]
pub struct DetectionReport {
    /// Target system name.
    pub system: &'static str,
    /// All reported cycles (deduplicated, best score first).
    pub cycles: Vec<Cycle>,
    /// Cycle clusters.
    pub clusters: Vec<CycleCluster>,
    /// Verdict per cluster (same order as `clusters`).
    pub verdicts: Vec<ClusterVerdict>,
    /// Ground-truth bugs detected.
    pub matches: Vec<BugMatch>,
    /// Ground-truth bugs missed.
    pub undetected: Vec<KnownBug>,
    /// Experiments run by the allocation protocol.
    pub experiments_run: usize,
    /// Causal edges discovered.
    pub edge_count: usize,
    /// `(fault, test, phase)` experiment cells the supervisor abandoned
    /// after exhausting retries — empty on clean (or transiently-failing)
    /// campaigns. A non-empty list means the report is *partial*: these
    /// cells contributed no causal edges.
    pub missing_cells: Vec<(FaultId, TestId, u8)>,
}

impl DetectionReport {
    /// Whether the campaign completed degraded: some experiment cells were
    /// abandoned after exhausting retries (see
    /// [`missing_cells`](DetectionReport::missing_cells)).
    pub fn degraded(&self) -> bool {
        !self.missing_cells.is_empty()
    }

    /// Number of true-positive clusters.
    pub fn tp_clusters(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|v| **v == ClusterVerdict::TruePositive)
            .count()
    }

    /// Number of false-positive clusters (including expected contention).
    pub fn fp_clusters(&self) -> usize {
        self.verdicts.len() - self.tp_clusters()
    }

    /// Number of expected-contention clusters.
    pub fn expected_contention_clusters(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|v| **v == ClusterVerdict::ExpectedContention)
            .count()
    }
}

/// Phase after which every edge of the cycle is known.
fn cycle_phase(cycle: &Cycle, db: &CausalDb) -> u8 {
    cycle
        .edges
        .iter()
        .map(|&i| db.edge(i).phase)
        .max()
        .unwrap_or(0)
}

/// `true` if the cycle touches every label of the bug.
fn cycle_matches_bug(cycle: &Cycle, db: &CausalDb, reg: &Registry, bug: &KnownBug) -> bool {
    let labels: BTreeSet<&str> = cycle
        .all_faults(db)
        .into_iter()
        .map(|f| reg.point(f).label)
        .collect();
    bug.labels.iter().all(|l| labels.contains(l))
}

/// Strict form used for cluster verdicts: the cycle's *injected* fault
/// labels are exactly the bug's label set (no unrelated faults riding
/// along), mirroring the paper's manual cluster inspection (§8.4.1).
fn cycle_matches_bug_exactly(cycle: &Cycle, db: &CausalDb, reg: &Registry, bug: &KnownBug) -> bool {
    let labels: BTreeSet<&str> = cycle
        .injected_faults(db)
        .map(|f| reg.point(f).label)
        .collect();
    let want: BTreeSet<&str> = bug.labels.iter().copied().collect();
    labels == want
}

/// `true` if the cycle is pure expected contention: every injected fault is
/// a loop whose label is in the target's expected-contention list.
fn is_expected_contention(cycle: &Cycle, db: &CausalDb, reg: &Registry, expected: &[&str]) -> bool {
    if expected.is_empty() {
        return false;
    }
    let mut any = false;
    for f in cycle.injected_faults(db) {
        any = true;
        let p = reg.point(f);
        if p.kind != FaultKind::LoopPoint || !expected.contains(&p.label) {
            return false;
        }
    }
    any
}

/// Builds the detection report: clusters cycles, matches ground truth and
/// classifies clusters.
pub fn build_report(
    target: &dyn TargetSystem,
    alloc: &AllocationResult,
    cycles: Vec<Cycle>,
    clusters: Vec<CycleCluster>,
) -> DetectionReport {
    let reg = target.registry();
    let db = &alloc.db;
    let bugs = target.known_bugs();
    let expected = target.expected_contention_labels();

    let mut verdicts = Vec::with_capacity(clusters.len());
    for cl in &clusters {
        let mut verdict = ClusterVerdict::FalsePositive;
        let tp = cl.cycle_idxs.iter().any(|&ci| {
            bugs.iter()
                .any(|b| cycle_matches_bug_exactly(&cycles[ci], db, &reg, b))
        });
        if tp {
            verdict = ClusterVerdict::TruePositive;
        } else if cl
            .cycle_idxs
            .iter()
            .all(|&ci| is_expected_contention(&cycles[ci], db, &reg, &expected))
            && !cl.cycle_idxs.is_empty()
        {
            verdict = ClusterVerdict::ExpectedContention;
        }
        verdicts.push(verdict);
    }

    let mut matches = Vec::new();
    let mut undetected = Vec::new();
    for bug in bugs {
        // Prefer the *minimal* matching cycle (fewest injections), then the
        // lowest (most conditional) score.
        let best = cycles
            .iter()
            .enumerate()
            .filter(|(_, c)| cycle_matches_bug(c, db, &reg, &bug))
            .min_by(|(_, a), (_, b)| {
                let ka = composition(a, db, &reg);
                let kb = composition(b, db, &reg);
                let na = ka.delays + ka.exceptions + ka.negations;
                let nb = kb.delays + kb.exceptions + kb.negations;
                na.cmp(&nb).then(a.score.total_cmp(&b.score))
            });
        match best {
            Some((ci, cycle)) => {
                let cluster_idx = clusters
                    .iter()
                    .position(|cl| cl.cycle_idxs.contains(&ci))
                    .unwrap_or(0);
                matches.push(BugMatch {
                    bug,
                    cluster_idx,
                    cycle_idx: ci,
                    phase: cycle_phase(cycle, db),
                    composition: composition(cycle, db, &reg),
                });
            }
            None => undetected.push(bug),
        }
    }

    DetectionReport {
        system: target.name(),
        edge_count: db.len(),
        experiments_run: alloc.experiments_run,
        cycles,
        clusters,
        verdicts,
        matches,
        undetected,
        missing_cells: alloc.gaps.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::{CausalEdge, CompatState, EdgeKind};
    use csnake_inject::{
        BoolSource, ExceptionCategory, FaultId, Occurrence, RegistryBuilder, TestId,
    };

    fn state(tag: u32) -> CompatState {
        CompatState::Occurrences(vec![Occurrence::new(
            [Some(csnake_inject::FnId(tag)), None],
            vec![],
        )])
    }

    fn mk_edge(cause: FaultId, effect: FaultId, kind: EdgeKind, phase: u8) -> CausalEdge {
        CausalEdge {
            cause,
            effect,
            kind,
            test: TestId(0),
            phase,
            cause_state: state(cause.0),
            effect_state: state(effect.0),
        }
    }

    #[test]
    fn composition_counts_distinct_injections_by_kind() {
        let mut b = RegistryBuilder::new("t");
        let f = b.func("X.f");
        let lp = b.workload_loop(f, 1, false, "lp");
        let tp = b.throw_point(f, 2, "IOE", ExceptionCategory::SystemSpecific, "tp");
        let np = b.negation_point(f, 3, true, BoolSource::ErrorDetector, "np");
        let reg = b.build();
        let db = CausalDb::from_edges(vec![
            mk_edge(lp, tp, EdgeKind::ED, 1),
            mk_edge(tp, np, EdgeKind::EI, 1),
            mk_edge(np, lp, EdgeKind::SI, 2),
        ]);
        let cycle = Cycle {
            edges: vec![0, 1, 2],
            score: 0.5,
        };
        let c = composition(&cycle, &db, &reg);
        assert_eq!(
            c,
            Composition {
                delays: 1,
                exceptions: 1,
                negations: 1
            }
        );
        assert_eq!(c.to_string(), "1D | 1E | 1N");
        assert_eq!(cycle_phase(&cycle, &db), 2);
    }

    #[test]
    fn bug_matching_requires_all_labels() {
        let mut b = RegistryBuilder::new("t");
        let f = b.func("X.f");
        let lp = b.workload_loop(f, 1, false, "loop_a");
        let tp = b.throw_point(f, 2, "IOE", ExceptionCategory::SystemSpecific, "ioe_b");
        let reg = b.build();
        let db = CausalDb::from_edges(vec![
            mk_edge(lp, tp, EdgeKind::ED, 1),
            mk_edge(tp, lp, EdgeKind::SI, 1),
        ]);
        let cycle = Cycle {
            edges: vec![0, 1],
            score: 0.1,
        };
        let full = KnownBug {
            id: "x",
            jira: "J-1",
            summary: "s",
            labels: vec!["loop_a", "ioe_b"],
        };
        let partial_extra = KnownBug {
            id: "y",
            jira: "J-2",
            summary: "s",
            labels: vec!["loop_a", "missing_label"],
        };
        assert!(cycle_matches_bug(&cycle, &db, &reg, &full));
        assert!(!cycle_matches_bug(&cycle, &db, &reg, &partial_extra));
    }

    #[test]
    fn expected_contention_is_pure_delay_only() {
        let mut b = RegistryBuilder::new("t");
        let f = b.func("X.f");
        let read_l = b.workload_loop(f, 1, true, "client_read");
        let write_l = b.workload_loop(f, 2, true, "client_write");
        let tp = b.throw_point(f, 3, "IOE", ExceptionCategory::SystemSpecific, "ioe");
        let reg = b.build();
        let db = CausalDb::from_edges(vec![
            mk_edge(read_l, write_l, EdgeKind::SD, 1),
            mk_edge(write_l, read_l, EdgeKind::SD, 1),
            mk_edge(tp, read_l, EdgeKind::SI, 1),
        ]);
        let pure = Cycle {
            edges: vec![0, 1],
            score: 0.9,
        };
        let mixed = Cycle {
            edges: vec![2, 0],
            score: 0.9,
        };
        let expected = ["client_read", "client_write"];
        assert!(is_expected_contention(&pure, &db, &reg, &expected));
        assert!(!is_expected_contention(&mixed, &db, &reg, &expected));
        assert!(!is_expected_contention(&pure, &db, &reg, &[]));
    }
}
