//! Crate-internal FxHash-style hashing for hot-path maps.
//!
//! The stitch index's interning/dedup maps and the sparse clustering's
//! duplicate-grouping and adjacency maps all key on short integer
//! sequences (or values that are already hashes), where SipHash's
//! per-byte cost dominates profiles. [`FxHasher`] is the rustc-hash mix:
//! one rotate + xor + multiply per word — fast and deterministic, not
//! DoS-resistant, which is the right trade for internal data.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The rustc-hash multiplier.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style hasher: one rotate + xor + multiply per word.
#[derive(Default)]
pub(crate) struct FxHasher {
    pub(crate) hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed through [`FxHasher`].
pub(crate) type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed through [`FxHasher`].
pub(crate) type FxSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fx_hasher_distinguishes_words_and_orders() {
        let h = |words: &[u64]| {
            let mut hasher = FxHasher::default();
            for &w in words {
                hasher.write_u64(w);
            }
            hasher.finish()
        };
        assert_ne!(h(&[1, 2]), h(&[2, 1]));
        assert_ne!(h(&[1]), h(&[2]));
    }
}
