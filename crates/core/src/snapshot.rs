//! Versioned `.csnake` snapshot files: checkpoint/resume for detection
//! sessions.
//!
//! A [`Snapshot`] captures everything a [`Session`](crate::session::Session)
//! has computed up to a stage boundary — the full detection configuration,
//! the cached profile traces (the expensive simulator output), the
//! allocation result with its causal database, and the stitched cycles.
//! Cheap derived state (coverage maps, the dynamic call graph, profile
//! indexes, the causal database's hash indexes) is deliberately *not*
//! stored: it is rebuilt deterministically on resume, which both keeps
//! snapshots small and guarantees a resumed session is bit-identical to an
//! uninterrupted one.
//!
//! # Format
//!
//! The container is a fixed header followed by a length-prefixed payload:
//!
//! ```text
//! magic   4 bytes  b"CSNK"
//! version u32 LE   SNAPSHOT_VERSION
//! length  u64 LE   payload byte count
//! check   u64 LE   FNV-1a over the payload bytes
//! payload ...      field-by-field little-endian encoding
//! ```
//!
//! The workspace's vendored `serde` is a compile-only stand-in (no real
//! serializers exist in this offline environment), so the payload codec is
//! hand-written: a minimal [`Persist`] trait with little-endian scalar
//! encoding, length-prefixed sequences, and tagged enums. Every value the
//! snapshot needs implements it below.
//!
//! # Varint + delta layer (format version 2)
//!
//! Profile traces dominate `.csnake` files, and their payload is mostly
//! *dense small ids* (fault/function/branch ids, sorted key sets) and
//! *small counts* (loop iteration counts, sequence lengths). Version 2
//! therefore encodes under the same [`Persist`] surface:
//!
//! * **LEB128 varints** for every sequence length, id newtype
//!   ([`FaultId`], [`TestId`], [`FnId`], [`BranchId`]), [`VirtualTime`],
//!   and the run counters — one or two bytes in practice instead of 4–8;
//! * **delta encoding** for the sorted id keys of a trace's coverage
//!   set, occurrence/loop maps and call-edge set (strictly increasing, so
//!   consecutive deltas are tiny varints);
//! * **slot packing** for 2-level call stacks (`None` → `0`,
//!   `Some(f)` → `f + 1`, one varint per slot) and branch-trace entries
//!   (`(branch << 1) | outcome` in one varint).
//!
//! Checksums, floating-point scores and occurrence signatures stay
//! fixed-width: they are high-entropy, where varints only add overhead.
//! Old version-1 files are rejected with a typed
//! [`CsnakeError::SnapshotVersion`] — the layout is not self-describing,
//! so silently misreading would be worse than re-running the campaign.
//!
//! # Mid-phase checkpoints and atomic writes (format version 4)
//!
//! Version 4 adds the campaign supervisor's durability layer:
//!
//! * an optional **mid-phase section** ([`MidPhaseState`]) carrying the
//!   3PA runner's RNG state, used-set and executed-prefix counters, so a
//!   killed campaign resumes *inside* an allocation phase instead of
//!   replaying it from the last stage boundary;
//! * the supervisor's [`RetryConfig`]/[`ChaosConfig`] knobs and the
//!   allocation result's gap list join the persisted configuration;
//! * every snapshot write goes through [`write_file_bytes`], which stages
//!   the bytes in a `<path>.csnake.tmp` sibling, `fsync`s, and renames
//!   into place — a crash mid-write leaves the previous checkpoint
//!   intact, never a half-written file.
//!
//! # Shard islands (format version 5)
//!
//! Version 5 extends the mid-phase section with the daemon's per-shard
//! checkpoint islands ([`crate::alloc::ShardSpan`]): out-of-order spans a
//! sharded coordinator completed beyond the contiguous executed prefix,
//! merged on resume by [`MidPhaseState::normalize`]. The wire chaos rates
//! (`wire_drop`, `wire_stall`) join the persisted [`ChaosConfig`]. Both
//! additions are appended behind version gates, so version-4 files decode
//! with empty/zero defaults and resume exactly as before.
//!
//! Integrity failures surface as typed errors: a truncated file —
//! shorter than its header, or a payload cut off before the length the
//! header promises — is [`CsnakeError::SnapshotTorn`] (an interrupted
//! write; resume from an earlier checkpoint); a wrong magic, trailing
//! junk or checksum mismatch is [`CsnakeError::SnapshotCorrupt`]; a
//! format bump is [`CsnakeError::SnapshotVersion`]; and resuming against
//! the wrong system is [`CsnakeError::TargetMismatch`] (checked by the
//! session, which compares [`Snapshot::target`] against the live
//! target's name).

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use csnake_analyzer::AnalysisConfig;
use csnake_inject::{
    BranchId, CallStack2, FaultId, FaultKind, FnId, LoopState, Occurrence, Registry, RunTrace,
    TestId,
};
use csnake_sim::VirtualTime;

use crate::alloc::{AllocationResult, MidPhaseState, ShardSpan, ThreePhaseConfig};
use crate::beam::{BeamConfig, Cycle, CycleCluster};
use crate::chaos::ChaosConfig;
use crate::driver::RetryConfig;
use crate::edge::{CausalDb, CausalEdge, CompatState, EdgeKind};
use crate::error::{CsnakeError, Result};
use crate::fca::{ExperimentOutcome, FcaConfig};
use crate::session::{Stage, StitchedCycles};
use crate::{DetectConfig, DriverConfig};

/// Leading magic of every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"CSNK";

/// Format version written by this build.
/// Version 2 introduced the varint + delta payload layer; version 3 added
/// the driver's `cache_injections` flag to the persisted configuration;
/// version 4 added the campaign supervisor's mid-phase checkpoint section
/// ([`MidPhaseState`]), the retry/chaos configuration, and the allocation
/// gap list; version 5 added the daemon's per-shard checkpoint islands
/// ([`crate::alloc::ShardSpan`] in the mid-phase section) and the wire
/// chaos rates. Version 4 files are still read — the v5 additions decode
/// as empty/zero — so pre-daemon checkpoints resume unchanged. Files
/// outside [`SNAPSHOT_MIN_VERSION`]`..=`[`SNAPSHOT_VERSION`] are rejected
/// with a typed [`CsnakeError::SnapshotVersion`].
pub const SNAPSHOT_VERSION: u32 = 5;

/// Oldest format version this build still reads.
pub const SNAPSHOT_MIN_VERSION: u32 = 4;

/// FNV-1a over raw bytes (the integrity checksum of the container; public
/// so the daemon's wire frames checksum their payloads identically).
pub fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Order-sensitive fingerprint of a registry's fault-point inventory (ids,
/// kinds, labels). Persisted in every snapshot and re-checked on resume:
/// a target whose *name* still matches but whose points were added,
/// removed, renumbered or relabeled since the checkpoint would otherwise
/// reinterpret the stored `FaultId`s silently — exactly the class of
/// wrong-but-plausible campaign the typed error layer exists to prevent.
pub fn registry_fingerprint(reg: &Registry) -> u64 {
    let mut w = Writer::new();
    for p in reg.points() {
        p.id.put(&mut w);
        let kind: u8 = match p.kind {
            FaultKind::LoopPoint => 0,
            FaultKind::Throw => 1,
            FaultKind::LibCall => 2,
            FaultKind::Negation => 3,
        };
        kind.put(&mut w);
        put_str(p.label, &mut w);
    }
    fnv1a_bytes(&w.buf)
}

/// Length-prefixed string encoding shared by `String::put` and the
/// borrowed-state encoders (byte-identical output).
fn put_str(s: &str, w: &mut Writer) {
    s.len().put(w);
    w.put_bytes(s.as_bytes());
}

/// `Option`-tagged encoding of a borrowed value, byte-identical to
/// `Option<T>::put`.
fn put_opt<T: Persist>(v: Option<&T>, w: &mut Writer) {
    match v {
        None => 0u8.put(w),
        Some(x) => {
            1u8.put(w);
            x.put(w);
        }
    }
}

// ---------------------------------------------------------------------------
// Byte-level writer / reader
// ---------------------------------------------------------------------------

/// Append-only payload writer.
///
/// Public (with [`Reader`] and [`Persist`]) so first-party crates can layer
/// other framed formats on the same codec — the daemon's wire protocol
/// encodes its messages with exactly this machinery. The writer carries the
/// *format version* being produced: version-gated fields check it in their
/// `put`, which is how one codebase writes both current and
/// back-compatible payloads.
pub struct Writer {
    buf: Vec<u8>,
    version: u32,
}

impl Default for Writer {
    fn default() -> Self {
        Writer::new()
    }
}

impl Writer {
    /// A writer producing the current [`SNAPSHOT_VERSION`] layout.
    pub fn new() -> Self {
        Writer::with_version(SNAPSHOT_VERSION)
    }

    /// A writer producing a specific format version's layout.
    pub fn with_version(version: u32) -> Self {
        Writer {
            buf: Vec::new(),
            version,
        }
    }

    /// The format version this writer produces.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The encoded payload so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// LEB128 varint: 7 value bits per byte, high bit = continuation.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }
}

/// Bounds-checked payload reader; carries the format version of the file
/// being decoded so version-gated fields know whether to expect their
/// bytes.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    version: u32,
}

impl<'a> Reader<'a> {
    /// A reader assuming the current [`SNAPSHOT_VERSION`] layout.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader::with_version(buf, SNAPSHOT_VERSION)
    }

    /// A reader decoding a specific format version's layout.
    pub fn with_version(buf: &'a [u8], version: u32) -> Self {
        Reader {
            buf,
            pos: 0,
            version,
        }
    }

    /// The format version being decoded.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                CsnakeError::SnapshotCorrupt(format!(
                    "payload truncated: wanted {n} bytes at offset {}",
                    self.pos
                ))
            })?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// `true` once every payload byte has been consumed.
    pub fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Decodes one LEB128 varint with truncation and overflow checks.
    pub fn take_varint(&mut self) -> Result<u64> {
        let mut out: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.take(1)?[0];
            let bits = (byte & 0x7F) as u64;
            if shift == 63 && bits > 1 {
                break; // falls through to the overflow error below
            }
            out |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(out);
            }
        }
        Err(CsnakeError::SnapshotCorrupt(
            "varint exceeds 64 bits".into(),
        ))
    }

    /// Varint bounded to `u32`, for id newtypes.
    pub fn take_varint_u32(&mut self) -> Result<u32> {
        let v = self.take_varint()?;
        u32::try_from(v)
            .map_err(|_| CsnakeError::SnapshotCorrupt(format!("id varint {v} exceeds u32")))
    }
}

// ---------------------------------------------------------------------------
// Delta-coded sorted-id helpers (the dense-id layer of format version 2)
// ---------------------------------------------------------------------------

/// Encodes a strictly-increasing id sequence as first-value + deltas.
fn put_id_deltas(ids: impl ExactSizeIterator<Item = u32>, w: &mut Writer) {
    w.put_varint(ids.len() as u64);
    let mut prev: u64 = 0;
    for (i, id) in ids.enumerate() {
        let id = id as u64;
        debug_assert!(i == 0 || id > prev, "ids must be strictly increasing");
        w.put_varint(id - prev);
        prev = id;
    }
}

/// Decodes a [`put_id_deltas`] sequence, re-checking strict monotonicity
/// (a zero delta after the first element means a corrupt or duplicate
/// key that a map insert would otherwise silently swallow).
fn load_id_deltas(r: &mut Reader<'_>) -> Result<Vec<u32>> {
    let n = usize::load(r)?;
    let mut out = Vec::with_capacity(n.min(r.buf.len().saturating_sub(r.pos)));
    let mut prev: u64 = 0;
    for i in 0..n {
        let delta = r.take_varint()?;
        if i > 0 && delta == 0 {
            return Err(CsnakeError::SnapshotCorrupt(
                "duplicate id in delta-coded sequence".into(),
            ));
        }
        let id = prev
            .checked_add(delta)
            .ok_or_else(|| CsnakeError::SnapshotCorrupt("delta-coded id overflows u64".into()))?;
        prev = id;
        out.push(u32::try_from(id).map_err(|_| {
            CsnakeError::SnapshotCorrupt(format!("delta-coded id {id} exceeds u32"))
        })?);
    }
    Ok(out)
}

/// Encodes a map keyed by a dense id as delta-coded keys + values.
fn put_id_map<V: Persist>(map: &BTreeMap<FaultId, V>, w: &mut Writer) {
    put_id_deltas(map.keys().map(|k| k.0), w);
    for v in map.values() {
        v.put(w);
    }
}

fn load_id_map<V: Persist>(r: &mut Reader<'_>) -> Result<BTreeMap<FaultId, V>> {
    let keys = load_id_deltas(r)?;
    let mut out = BTreeMap::new();
    for k in keys {
        out.insert(FaultId(k), V::load(r)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// The Persist codec
// ---------------------------------------------------------------------------

/// Field-by-field binary encoding for snapshot payloads — and for any
/// other first-party framed format that wants the same wire discipline
/// (the daemon's coordinator/worker protocol reuses it wholesale).
pub trait Persist: Sized {
    /// Appends the value's encoding to the writer.
    fn put(&self, w: &mut Writer);
    /// Decodes one value, consuming exactly the bytes `put` produced.
    fn load(r: &mut Reader<'_>) -> Result<Self>;
}

macro_rules! persist_le_scalar {
    ($t:ty, $n:expr) => {
        impl Persist for $t {
            fn put(&self, w: &mut Writer) {
                w.put_bytes(&self.to_le_bytes());
            }
            fn load(r: &mut Reader<'_>) -> Result<Self> {
                let b = r.take($n)?;
                Ok(<$t>::from_le_bytes(b.try_into().expect("sized take")))
            }
        }
    };
}

persist_le_scalar!(u8, 1);
persist_le_scalar!(u32, 4);
persist_le_scalar!(u64, 8);

impl Persist for usize {
    fn put(&self, w: &mut Writer) {
        w.put_varint(*self as u64);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        let v = r.take_varint()?;
        usize::try_from(v)
            .map_err(|_| CsnakeError::SnapshotCorrupt(format!("length {v} exceeds usize")))
    }
}

impl Persist for bool {
    fn put(&self, w: &mut Writer) {
        (*self as u8).put(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        match u8::load(r)? {
            0 => Ok(false),
            1 => Ok(true),
            n => Err(CsnakeError::SnapshotCorrupt(format!("bad bool tag {n}"))),
        }
    }
}

impl Persist for f64 {
    fn put(&self, w: &mut Writer) {
        self.to_bits().put(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(f64::from_bits(u64::load(r)?))
    }
}

impl Persist for String {
    fn put(&self, w: &mut Writer) {
        self.len().put(w);
        w.put_bytes(self.as_bytes());
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        let n = usize::load(r)?;
        let b = r.take(n)?;
        String::from_utf8(b.to_vec())
            .map_err(|_| CsnakeError::SnapshotCorrupt("non-UTF-8 string".into()))
    }
}

impl<T: Persist> Persist for Option<T> {
    fn put(&self, w: &mut Writer) {
        match self {
            None => 0u8.put(w),
            Some(v) => {
                1u8.put(w);
                v.put(w);
            }
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        match u8::load(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            n => Err(CsnakeError::SnapshotCorrupt(format!("bad option tag {n}"))),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn put(&self, w: &mut Writer) {
        self.len().put(w);
        for v in self {
            v.put(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        let n = usize::load(r)?;
        // Guard allocation against absurd lengths in corrupt payloads: each
        // element needs at least one payload byte.
        let mut out = Vec::with_capacity(n.min(r.buf.len().saturating_sub(r.pos)));
        for _ in 0..n {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Persist + Ord> Persist for BTreeSet<T> {
    fn put(&self, w: &mut Writer) {
        self.len().put(w);
        for v in self {
            v.put(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        let n = usize::load(r)?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(T::load(r)?);
        }
        Ok(out)
    }
}

impl<K: Persist + Ord, V: Persist> Persist for BTreeMap<K, V> {
    fn put(&self, w: &mut Writer) {
        self.len().put(w);
        for (k, v) in self {
            k.put(w);
            v.put(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        let n = usize::load(r)?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::load(r)?;
            let v = V::load(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn put(&self, w: &mut Writer) {
        self.0.put(w);
        self.1.put(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn put(&self, w: &mut Writer) {
        self.0.put(w);
        self.1.put(w);
        self.2.put(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

impl Persist for [u64; 4] {
    /// xoshiro256++ state words are high-entropy; fixed-width encoding.
    fn put(&self, w: &mut Writer) {
        for word in self {
            word.put(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        let mut out = [0u64; 4];
        for word in &mut out {
            *word = u64::load(r)?;
        }
        Ok(out)
    }
}

macro_rules! persist_u32_newtype {
    ($t:ty) => {
        impl Persist for $t {
            fn put(&self, w: &mut Writer) {
                w.put_varint(self.0 as u64);
            }
            fn load(r: &mut Reader<'_>) -> Result<Self> {
                Ok(Self(r.take_varint_u32()?))
            }
        }
    };
}

persist_u32_newtype!(FaultId);
persist_u32_newtype!(TestId);
persist_u32_newtype!(FnId);
persist_u32_newtype!(BranchId);

impl Persist for VirtualTime {
    fn put(&self, w: &mut Writer) {
        w.put_varint(self.as_micros());
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(VirtualTime::from_micros(r.take_varint()?))
    }
}

impl Persist for CallStack2 {
    /// Slot packing: `None` → `0`, `Some(f)` → `f + 1`, one varint per
    /// level — the same injective packing `stack_key` uses.
    fn put(&self, w: &mut Writer) {
        for slot in self {
            w.put_varint(slot.map(|f| f.0 as u64 + 1).unwrap_or(0));
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        let mut out: CallStack2 = [None, None];
        for slot in &mut out {
            *slot = match r.take_varint()? {
                0 => None,
                v => Some(FnId(u32::try_from(v - 1).map_err(|_| {
                    CsnakeError::SnapshotCorrupt(format!("stack slot {v} exceeds u32"))
                })?)),
            };
        }
        Ok(out)
    }
}

impl Persist for Occurrence {
    fn put(&self, w: &mut Writer) {
        self.stack.put(w);
        // Branch-trace entries pack `(branch << 1) | outcome` in one
        // varint — branch ids are dense and small.
        w.put_varint(self.local_trace.len() as u64);
        for (b, o) in &self.local_trace {
            w.put_varint(((b.0 as u64) << 1) | (*o as u64));
        }
        self.sig.put(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        let stack = CallStack2::load(r)?;
        let n = usize::load(r)?;
        let mut local_trace = Vec::with_capacity(n.min(r.buf.len().saturating_sub(r.pos)));
        for _ in 0..n {
            let packed = r.take_varint()?;
            let b = u32::try_from(packed >> 1).map_err(|_| {
                CsnakeError::SnapshotCorrupt(format!("branch id {} exceeds u32", packed >> 1))
            })?;
            local_trace.push((BranchId(b), packed & 1 == 1));
        }
        let sig = u64::load(r)?;
        // The signature is derived from stack + trace; storing it keeps the
        // roundtrip exact, re-deriving would silently mask corruption.
        if Occurrence::signature(&stack, &local_trace) != sig {
            return Err(CsnakeError::SnapshotCorrupt(
                "occurrence signature does not match its stack/trace".into(),
            ));
        }
        Ok(Occurrence {
            stack,
            local_trace,
            sig,
        })
    }
}

impl Persist for LoopState {
    fn put(&self, w: &mut Writer) {
        self.entry_stacks.put(w);
        self.iter_sigs.put(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(LoopState {
            entry_stacks: BTreeSet::load(r)?,
            iter_sigs: BTreeSet::load(r)?,
        })
    }
}

impl Persist for RunTrace {
    /// The hot payload of every snapshot: coverage, occurrence and loop
    /// maps are keyed by dense sorted [`FaultId`]s, so keys are
    /// delta-coded; loop iteration counts and run counters are varints.
    fn put(&self, w: &mut Writer) {
        put_id_deltas(self.coverage.iter().map(|f| f.0), w);
        put_id_map(&self.occurrences, w);
        put_id_deltas(self.loop_counts.keys().map(|f| f.0), w);
        for count in self.loop_counts.values() {
            w.put_varint(*count);
        }
        put_id_map(&self.loop_states, w);
        self.injected.put(w);
        self.call_edges.put(w);
        w.put_varint(self.hook_count);
        self.flags.put(w);
        self.end_time.put(w);
        w.put_varint(self.events);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        let coverage = load_id_deltas(r)?.into_iter().map(FaultId).collect();
        let occurrences = load_id_map(r)?;
        let loop_keys = load_id_deltas(r)?;
        let mut loop_counts = BTreeMap::new();
        for k in loop_keys {
            loop_counts.insert(FaultId(k), r.take_varint()?);
        }
        Ok(RunTrace {
            coverage,
            occurrences,
            loop_counts,
            loop_states: load_id_map(r)?,
            injected: Option::load(r)?,
            call_edges: BTreeSet::load(r)?,
            hook_count: r.take_varint()?,
            flags: BTreeSet::load(r)?,
            end_time: VirtualTime::load(r)?,
            events: r.take_varint()?,
        })
    }
}

impl Persist for EdgeKind {
    fn put(&self, w: &mut Writer) {
        let tag: u8 = match self {
            EdgeKind::ED => 0,
            EdgeKind::SD => 1,
            EdgeKind::EI => 2,
            EdgeKind::SI => 3,
            EdgeKind::Icfg => 4,
            EdgeKind::Cfg => 5,
        };
        tag.put(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match u8::load(r)? {
            0 => EdgeKind::ED,
            1 => EdgeKind::SD,
            2 => EdgeKind::EI,
            3 => EdgeKind::SI,
            4 => EdgeKind::Icfg,
            5 => EdgeKind::Cfg,
            n => {
                return Err(CsnakeError::SnapshotCorrupt(format!(
                    "bad edge-kind tag {n}"
                )))
            }
        })
    }
}

impl Persist for CompatState {
    fn put(&self, w: &mut Writer) {
        match self {
            CompatState::Occurrences(occs) => {
                0u8.put(w);
                occs.put(w);
            }
            CompatState::Loop(st) => {
                1u8.put(w);
                st.put(w);
            }
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        match u8::load(r)? {
            0 => Ok(CompatState::Occurrences(Vec::load(r)?)),
            1 => Ok(CompatState::Loop(LoopState::load(r)?)),
            n => Err(CsnakeError::SnapshotCorrupt(format!(
                "bad compat-state tag {n}"
            ))),
        }
    }
}

impl Persist for CausalEdge {
    fn put(&self, w: &mut Writer) {
        self.cause.put(w);
        self.effect.put(w);
        self.kind.put(w);
        self.test.put(w);
        self.phase.put(w);
        self.cause_state.put(w);
        self.effect_state.put(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(CausalEdge {
            cause: FaultId::load(r)?,
            effect: FaultId::load(r)?,
            kind: EdgeKind::load(r)?,
            test: TestId::load(r)?,
            phase: u8::load(r)?,
            cause_state: CompatState::load(r)?,
            effect_state: CompatState::load(r)?,
        })
    }
}

impl Persist for ExperimentOutcome {
    fn put(&self, w: &mut Writer) {
        self.fault.put(w);
        self.test.put(w);
        self.interference.put(w);
        self.edges.put(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(ExperimentOutcome {
            fault: FaultId::load(r)?,
            test: TestId::load(r)?,
            interference: BTreeSet::load(r)?,
            edges: Vec::load(r)?,
        })
    }
}

impl Persist for AllocationResult {
    fn put(&self, w: &mut Writer) {
        // The database's hash indexes are derived state; persist the edge
        // list and rebuild via `from_edges` (push order reproduces both the
        // edge vector and the per-cause index exactly).
        self.db.edges().to_vec().put(w);
        self.outcomes.put(w);
        self.clusters.put(w);
        self.cluster_of.put(w);
        self.sim_scores.put(w);
        self.experiments_run.put(w);
        self.budget.put(w);
        self.gaps.put(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(AllocationResult {
            db: CausalDb::from_edges(Vec::load(r)?),
            outcomes: Vec::load(r)?,
            clusters: Vec::load(r)?,
            cluster_of: BTreeMap::load(r)?,
            sim_scores: Vec::load(r)?,
            experiments_run: usize::load(r)?,
            budget: usize::load(r)?,
            gaps: Vec::load(r)?,
        })
    }
}

impl Persist for ShardSpan {
    fn put(&self, w: &mut Writer) {
        self.shard.put(w);
        self.start.put(w);
        self.outcomes.put(w);
        self.gaps.put(w);
        self.runs.put(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(ShardSpan {
            shard: u32::load(r)?,
            start: usize::load(r)?,
            outcomes: Vec::load(r)?,
            gaps: Vec::load(r)?,
            runs: usize::load(r)?,
        })
    }
}

impl Persist for MidPhaseState {
    fn put(&self, w: &mut Writer) {
        self.phase.put(w);
        self.rng_state.put(w);
        self.used_at_phase_start.put(w);
        self.spent_at_phase_start.put(w);
        self.executed_in_phase.put(w);
        self.phase1_len.put(w);
        self.outcomes.put(w);
        self.gaps.put(w);
        self.runs_executed.put(w);
        // The shard islands joined in format version 5; a v4 writer must
        // not be asked to drop completed work silently.
        if w.version >= 5 {
            self.shard_spans.put(w);
        } else {
            debug_assert!(
                self.shard_spans.is_empty(),
                "shard spans cannot be represented in a v4 snapshot"
            );
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(MidPhaseState {
            phase: u8::load(r)?,
            rng_state: <[u64; 4]>::load(r)?,
            used_at_phase_start: Vec::load(r)?,
            spent_at_phase_start: usize::load(r)?,
            executed_in_phase: usize::load(r)?,
            phase1_len: usize::load(r)?,
            outcomes: Vec::load(r)?,
            gaps: Vec::load(r)?,
            runs_executed: usize::load(r)?,
            shard_spans: if r.version >= 5 {
                Vec::load(r)?
            } else {
                Vec::new()
            },
        })
    }
}

impl Persist for Cycle {
    fn put(&self, w: &mut Writer) {
        self.edges.put(w);
        self.score.put(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Cycle {
            edges: Vec::load(r)?,
            score: f64::load(r)?,
        })
    }
}

impl Persist for CycleCluster {
    fn put(&self, w: &mut Writer) {
        self.key.put(w);
        self.cycle_idxs.put(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(CycleCluster {
            key: Vec::load(r)?,
            cycle_idxs: Vec::load(r)?,
        })
    }
}

impl Persist for StitchedCycles {
    fn put(&self, w: &mut Writer) {
        self.cycles.put(w);
        self.clusters.put(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(StitchedCycles {
            cycles: Vec::load(r)?,
            clusters: Vec::load(r)?,
        })
    }
}

impl Persist for FcaConfig {
    fn put(&self, w: &mut Writer) {
        self.p_value.put(w);
        self.presence_fraction.put(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(FcaConfig {
            p_value: f64::load(r)?,
            presence_fraction: f64::load(r)?,
        })
    }
}

impl Persist for AnalysisConfig {
    fn put(&self, w: &mut Writer) {
        self.short_loop_fraction.put(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(AnalysisConfig {
            short_loop_fraction: f64::load(r)?,
        })
    }
}

impl Persist for RetryConfig {
    fn put(&self, w: &mut Writer) {
        self.max_retries.put(w);
        self.backoff_base_ms.put(w);
        self.backoff_cap_ms.put(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(RetryConfig {
            max_retries: u32::load(r)?,
            backoff_base_ms: u64::load(r)?,
            backoff_cap_ms: u64::load(r)?,
        })
    }
}

impl Persist for ChaosConfig {
    fn put(&self, w: &mut Writer) {
        self.seed.put(w);
        self.experiment_panic.put(w);
        self.experiment_stall.put(w);
        self.snapshot_io.put(w);
        self.transient_attempts.put(w);
        self.permanent.put(w);
        self.stall_ms.put(w);
        // The wire rates joined in format version 5; v4 layouts stop here.
        if w.version >= 5 {
            self.wire_drop.put(w);
            self.wire_stall.put(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        let mut cfg = ChaosConfig {
            seed: u64::load(r)?,
            experiment_panic: f64::load(r)?,
            experiment_stall: f64::load(r)?,
            snapshot_io: f64::load(r)?,
            transient_attempts: u32::load(r)?,
            permanent: bool::load(r)?,
            stall_ms: u64::load(r)?,
            wire_drop: 0.0,
            wire_stall: 0.0,
        };
        if r.version >= 5 {
            cfg.wire_drop = f64::load(r)?;
            cfg.wire_stall = f64::load(r)?;
        }
        Ok(cfg)
    }
}

impl Persist for DriverConfig {
    fn put(&self, w: &mut Writer) {
        self.reps.put(w);
        self.delay_values_ms.put(w);
        self.fca.put(w);
        self.analysis.put(w);
        self.base_seed.put(w);
        self.parallel.put(w);
        self.cache_injections.put(w);
        self.retry.put(w);
        self.chaos.put(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(DriverConfig {
            reps: usize::load(r)?,
            delay_values_ms: Vec::load(r)?,
            fca: FcaConfig::load(r)?,
            analysis: AnalysisConfig::load(r)?,
            base_seed: u64::load(r)?,
            parallel: bool::load(r)?,
            cache_injections: bool::load(r)?,
            retry: RetryConfig::load(r)?,
            chaos: ChaosConfig::load(r)?,
        })
    }
}

impl Persist for ThreePhaseConfig {
    fn put(&self, w: &mut Writer) {
        self.budget_per_fault.put(w);
        self.cluster_threshold.put(w);
        self.epsilon.put(w);
        self.seed.put(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(ThreePhaseConfig {
            budget_per_fault: usize::load(r)?,
            cluster_threshold: f64::load(r)?,
            epsilon: f64::load(r)?,
            seed: u64::load(r)?,
        })
    }
}

impl Persist for BeamConfig {
    fn put(&self, w: &mut Writer) {
        self.beam_size.put(w);
        self.max_len.put(w);
        self.max_delay_injections.put(w);
        self.threads.put(w);
        self.compatibility_check.put(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(BeamConfig {
            beam_size: usize::load(r)?,
            max_len: usize::load(r)?,
            max_delay_injections: Option::load(r)?,
            threads: usize::load(r)?,
            compatibility_check: bool::load(r)?,
        })
    }
}

impl Persist for DetectConfig {
    fn put(&self, w: &mut Writer) {
        self.driver.put(w);
        self.alloc.put(w);
        self.beam.put(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self> {
        Ok(DetectConfig {
            driver: DriverConfig::load(r)?,
            alloc: ThreePhaseConfig::load(r)?,
            beam: BeamConfig::load(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// The snapshot container
// ---------------------------------------------------------------------------

/// Everything a session has computed up to a stage boundary.
///
/// Sections are populated cumulatively: a post-allocation snapshot carries
/// the profile section too, so any later stage can resume from it.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Name of the target system the session was driving.
    pub target: String,
    /// [`registry_fingerprint`] of the target's fault-point inventory,
    /// re-checked on resume.
    pub registry_fp: u64,
    /// The full detection configuration (including every seed, so resumed
    /// allocation and stitching replay bit-identically).
    pub cfg: DetectConfig,
    /// The stage boundary the snapshot was taken at.
    pub stage: Stage,
    /// Simulator runs executed so far (profile + injection).
    pub runs_executed: usize,
    /// Cached profile traces per test (present from [`Stage::Profiled`]).
    pub profiles: Option<BTreeMap<TestId, Vec<RunTrace>>>,
    /// Name of the allocation strategy that produced `alloc`.
    pub strategy: Option<String>,
    /// The allocation result (present from [`Stage::Allocated`]).
    pub alloc: Option<AllocationResult>,
    /// Stitched cycles and their clusters (present from [`Stage::Stitched`]).
    pub stitched: Option<StitchedCycles>,
    /// Mid-phase 3PA checkpoint (present only in supervisor checkpoints
    /// written *inside* the allocation stage; stage boundaries clear it).
    pub mid_phase: Option<MidPhaseState>,
}

/// Borrowed view of a snapshot's fields: the encoding path the session's
/// `checkpoint()` uses, so writing a checkpoint never deep-clones the heavy
/// profile/allocation/stitch sections (they dominate session memory).
/// Produces bytes identical to [`Snapshot::to_bytes`] over the same data.
pub(crate) struct SnapshotFields<'a> {
    pub target: &'a str,
    pub registry_fp: u64,
    pub cfg: &'a DetectConfig,
    pub stage: Stage,
    pub runs_executed: usize,
    pub profiles: Option<&'a BTreeMap<TestId, Vec<RunTrace>>>,
    pub strategy: Option<&'a String>,
    pub alloc: Option<&'a AllocationResult>,
    pub stitched: Option<&'a StitchedCycles>,
    pub mid_phase: Option<&'a MidPhaseState>,
}

/// Wraps an encoded payload in the magic/version/length/checksum container.
fn seal_container(payload: Vec<u8>, version: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a_bytes(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

impl SnapshotFields<'_> {
    /// Encodes into the versioned container format.
    pub(crate) fn to_bytes(&self) -> Vec<u8> {
        self.to_bytes_versioned(SNAPSHOT_VERSION)
    }

    /// Encodes a specific (still-supported) format version's layout; the
    /// back-compat tests write v4 files with it.
    pub(crate) fn to_bytes_versioned(&self, version: u32) -> Vec<u8> {
        let mut w = Writer::with_version(version);
        put_str(self.target, &mut w);
        self.registry_fp.put(&mut w);
        self.cfg.put(&mut w);
        self.stage.tag().put(&mut w);
        self.runs_executed.put(&mut w);
        put_opt(self.profiles, &mut w);
        put_opt(self.strategy, &mut w);
        put_opt(self.alloc, &mut w);
        put_opt(self.stitched, &mut w);
        put_opt(self.mid_phase, &mut w);
        seal_container(w.buf, version)
    }
}

/// Pre-encoded mid-phase checkpoint assembler.
///
/// The session builds one per allocation campaign, encoding the heavy
/// profile block exactly once; each checkpoint then costs only the fresh
/// [`MidPhaseState`] plus a memcpy of the cached blocks. The output is
/// byte-identical to a [`Snapshot`] at [`Stage::Profiled`] carrying the
/// same profiles, strategy name and mid-phase section.
pub(crate) struct MidPhaseCheckpointEncoder {
    /// `target + registry_fp + cfg + stage tag` — everything before the
    /// per-checkpoint `runs_executed` counter.
    head: Vec<u8>,
    /// `opt(profiles) + opt(strategy)` — everything between the counter
    /// and the per-checkpoint tail sections.
    sections: Vec<u8>,
}

impl MidPhaseCheckpointEncoder {
    pub(crate) fn new(
        target: &str,
        registry_fp: u64,
        cfg: &DetectConfig,
        profiles: &BTreeMap<TestId, Vec<RunTrace>>,
        strategy: &str,
    ) -> Self {
        let mut head = Writer::new();
        put_str(target, &mut head);
        registry_fp.put(&mut head);
        cfg.put(&mut head);
        Stage::Profiled.tag().put(&mut head);
        let mut sections = Writer::new();
        put_opt(Some(profiles), &mut sections);
        let strategy = strategy.to_string();
        put_opt(Some(&strategy), &mut sections);
        MidPhaseCheckpointEncoder {
            head: head.buf,
            sections: sections.buf,
        }
    }

    /// Full container bytes for one checkpoint.
    pub(crate) fn encode(&self, mid: &MidPhaseState) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_bytes(&self.head);
        mid.runs_executed.put(&mut w);
        w.put_bytes(&self.sections);
        put_opt::<AllocationResult>(None, &mut w);
        put_opt::<StitchedCycles>(None, &mut w);
        put_opt(Some(mid), &mut w);
        seal_container(w.buf, SNAPSHOT_VERSION)
    }
}

/// Writes already-encoded bytes to a file with typed I/O errors.
///
/// The write is atomic: bytes are staged in a `<path>.csnake.tmp` sibling,
/// `fsync`ed, and renamed into place. A crash at any point leaves either
/// the previous file intact or the complete new one — never a torn
/// snapshot (the rename is atomic on POSIX filesystems). A stale `.tmp`
/// left by a crash is overwritten by the next write and never read.
///
/// Public so sibling crates persisting derived artifacts (the telemetry
/// flight recorder's Chrome traces and digests) share the exact same
/// atomicity discipline as snapshots.
pub fn write_file_bytes(path: &Path, bytes: &[u8]) -> Result<()> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".csnake.tmp");
    let tmp = std::path::PathBuf::from(tmp_name);
    let staged = (|| {
        use std::io::Write as _;
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)
    })();
    staged.map_err(|source| {
        let _ = std::fs::remove_file(&tmp);
        CsnakeError::Io {
            path: path.to_path_buf(),
            source,
        }
    })
}

impl Snapshot {
    /// Encodes the snapshot into the versioned container format.
    pub fn to_bytes(&self) -> Vec<u8> {
        SnapshotFields {
            target: &self.target,
            registry_fp: self.registry_fp,
            cfg: &self.cfg,
            stage: self.stage,
            runs_executed: self.runs_executed,
            profiles: self.profiles.as_ref(),
            strategy: self.strategy.as_ref(),
            alloc: self.alloc.as_ref(),
            stitched: self.stitched.as_ref(),
            mid_phase: self.mid_phase.as_ref(),
        }
        .to_bytes()
    }

    /// Decodes and integrity-checks a snapshot container.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot> {
        // Not-a-snapshot beats torn-snapshot: a wrong magic is diagnosed as
        // corruption even when the file is also short.
        if bytes.len() >= 4 && bytes[0..4] != SNAPSHOT_MAGIC {
            return Err(CsnakeError::SnapshotCorrupt(
                "bad magic (not a .csnake snapshot)".into(),
            ));
        }
        if bytes.len() < 24 {
            return Err(CsnakeError::SnapshotTorn {
                expected: 24,
                found: bytes.len() as u64,
            });
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("sized"));
        if !(SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION).contains(&version) {
            return Err(CsnakeError::SnapshotVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let len = u64::from_le_bytes(bytes[8..16].try_into().expect("sized")) as usize;
        let check = u64::from_le_bytes(bytes[16..24].try_into().expect("sized"));
        let payload = &bytes[24..];
        // Shorter than the header promises → the write was interrupted;
        // longer → trailing junk from something other than a torn write.
        if payload.len() < len {
            return Err(CsnakeError::SnapshotTorn {
                expected: 24 + len as u64,
                found: bytes.len() as u64,
            });
        }
        if payload.len() > len {
            return Err(CsnakeError::SnapshotCorrupt(format!(
                "payload length mismatch: header says {len}, file has {}",
                payload.len()
            )));
        }
        if fnv1a_bytes(payload) != check {
            return Err(CsnakeError::SnapshotCorrupt("checksum mismatch".into()));
        }

        let mut r = Reader::with_version(payload, version);
        let snap = Snapshot {
            target: String::load(&mut r)?,
            registry_fp: u64::load(&mut r)?,
            cfg: DetectConfig::load(&mut r)?,
            stage: Stage::from_tag(u8::load(&mut r)?)?,
            runs_executed: usize::load(&mut r)?,
            profiles: Option::load(&mut r)?,
            strategy: Option::load(&mut r)?,
            alloc: Option::load(&mut r)?,
            stitched: Option::load(&mut r)?,
            mid_phase: Option::load(&mut r)?,
        };
        if !r.finished() {
            return Err(CsnakeError::SnapshotCorrupt(format!(
                "{} trailing bytes after payload",
                payload.len() - r.pos
            )));
        }
        Ok(snap)
    }

    /// Writes the snapshot to a file (conventionally `*.csnake`).
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<()> {
        write_file_bytes(path.as_ref(), &self.to_bytes())
    }

    /// Reads and decodes a snapshot file.
    pub fn read_file(path: impl AsRef<Path>) -> Result<Snapshot> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|source| CsnakeError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        Snapshot::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn occurrence(tag: u32) -> Occurrence {
        Occurrence::new(
            [Some(FnId(tag)), None],
            vec![(BranchId(tag), tag.is_multiple_of(2))],
        )
    }

    fn sample_trace() -> RunTrace {
        let mut t = RunTrace::default();
        t.coverage.insert(FaultId(1));
        t.coverage.insert(FaultId(9));
        t.occurrences.insert(FaultId(1), vec![occurrence(7)]);
        t.loop_counts.insert(FaultId(2), 41);
        let mut st = LoopState::default();
        st.entry_stacks.insert([Some(FnId(3)), Some(FnId(4))]);
        st.iter_sigs.insert(123456);
        t.loop_states.insert(FaultId(2), st);
        t.injected = Some((FaultId(1), occurrence(7)));
        t.call_edges.insert((FnId(1), FnId(2)));
        t.hook_count = 99;
        t.flags.insert("data-loss".into());
        t.end_time = VirtualTime::from_millis(1234);
        t.events = 500;
        t
    }

    fn sample_edge(kind: EdgeKind) -> CausalEdge {
        CausalEdge {
            cause: FaultId(1),
            effect: FaultId(2),
            kind,
            test: TestId(3),
            phase: 2,
            cause_state: CompatState::Occurrences(vec![occurrence(1)]),
            effect_state: CompatState::Loop(LoopState::default()),
        }
    }

    fn sample_snapshot(stage: Stage) -> Snapshot {
        let edges = vec![sample_edge(EdgeKind::ED), sample_edge(EdgeKind::SI)];
        let mut profiles = BTreeMap::new();
        profiles.insert(TestId(0), vec![sample_trace(), RunTrace::default()]);
        Snapshot {
            target: "toy".into(),
            registry_fp: 0xFEED_F00D,
            cfg: DetectConfig::default(),
            stage,
            runs_executed: 17,
            profiles: Some(profiles),
            strategy: Some("three-phase".into()),
            alloc: Some(AllocationResult {
                db: CausalDb::from_edges(edges.clone()),
                outcomes: vec![ExperimentOutcome {
                    fault: FaultId(1),
                    test: TestId(0),
                    interference: [FaultId(2)].into_iter().collect(),
                    edges,
                }],
                clusters: vec![vec![FaultId(1)], vec![FaultId(2)]],
                cluster_of: [(FaultId(1), 0), (FaultId(2), 1)].into_iter().collect(),
                sim_scores: vec![0.5, 1.0],
                experiments_run: 1,
                budget: 8,
                gaps: vec![(FaultId(5), TestId(0), 3)],
            }),
            stitched: Some(StitchedCycles {
                cycles: vec![Cycle {
                    edges: vec![0, 1],
                    score: 0.75,
                }],
                clusters: vec![CycleCluster {
                    key: vec![0, 1],
                    cycle_idxs: vec![0],
                }],
            }),
            mid_phase: Some(MidPhaseState {
                phase: 2,
                rng_state: [1, 2, 3, u64::MAX],
                used_at_phase_start: vec![(FaultId(1), TestId(0)), (FaultId(2), TestId(0))],
                spent_at_phase_start: 5,
                executed_in_phase: 3,
                phase1_len: 4,
                outcomes: vec![ExperimentOutcome {
                    fault: FaultId(2),
                    test: TestId(0),
                    interference: BTreeSet::new(),
                    edges: Vec::new(),
                }],
                gaps: vec![(FaultId(9), TestId(0), 2)],
                runs_executed: 40,
                shard_spans: vec![ShardSpan {
                    shard: 3,
                    start: 7,
                    outcomes: vec![ExperimentOutcome {
                        fault: FaultId(4),
                        test: TestId(1),
                        interference: [FaultId(6)].into_iter().collect(),
                        edges: Vec::new(),
                    }],
                    gaps: vec![(FaultId(4), TestId(2), 2)],
                    runs: 6,
                }],
            }),
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let snap = sample_snapshot(Stage::Stitched);
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).expect("roundtrip");
        // Canonical comparison: re-encoding the decoded snapshot must be
        // byte-identical (Debug comparison would trip over the per-instance
        // iteration order of the database's derived hash indexes).
        assert_eq!(bytes, back.to_bytes());
        // The rebuilt causal database also reproduces its derived index.
        let db = &back.alloc.as_ref().unwrap().db;
        assert_eq!(db.edges_from(FaultId(1)).len(), 2);
    }

    #[test]
    fn truncated_and_garbled_inputs_are_rejected_typed() {
        let bytes = sample_snapshot(Stage::Profiled).to_bytes();

        // Too short for a header → torn (an interrupted write).
        match Snapshot::from_bytes(&bytes[..10]) {
            Err(CsnakeError::SnapshotTorn { expected, found }) => {
                assert_eq!(expected, 24);
                assert_eq!(found, 10);
            }
            other => panic!("expected SnapshotTorn, got {other:?}"),
        }
        // Bad magic → corrupt, even when also short.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(&bad),
            Err(CsnakeError::SnapshotCorrupt(_))
        ));
        assert!(matches!(
            Snapshot::from_bytes(&bad[..10]),
            Err(CsnakeError::SnapshotCorrupt(_))
        ));
        // Truncated payload → torn, with the full expected size reported.
        match Snapshot::from_bytes(&bytes[..bytes.len() - 5]) {
            Err(CsnakeError::SnapshotTorn { expected, found }) => {
                assert_eq!(expected, bytes.len() as u64);
                assert_eq!(found, bytes.len() as u64 - 5);
            }
            other => panic!("expected SnapshotTorn, got {other:?}"),
        }
        // Trailing junk → corrupt, not torn.
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            Snapshot::from_bytes(&long),
            Err(CsnakeError::SnapshotCorrupt(_))
        ));
        // Flipped payload byte → checksum mismatch.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        assert!(matches!(
            Snapshot::from_bytes(&flipped),
            Err(CsnakeError::SnapshotCorrupt(_))
        ));
    }

    /// Every prefix of a valid snapshot must decode to a typed error —
    /// never a panic, never a wrong-but-plausible snapshot. This is the
    /// kill-at-any-byte contract the atomic writer backs up.
    #[test]
    fn every_truncation_point_is_a_typed_error() {
        let bytes = sample_snapshot(Stage::Allocated).to_bytes();
        for cut in 0..bytes.len() {
            match Snapshot::from_bytes(&bytes[..cut]) {
                Err(CsnakeError::SnapshotTorn { found, .. }) => {
                    assert_eq!(found, cut as u64);
                }
                Err(CsnakeError::SnapshotCorrupt(_)) => {}
                other => panic!("cut at {cut}: expected typed error, got {other:?}"),
            }
        }
    }

    #[test]
    fn mid_phase_section_roundtrips() {
        let snap = sample_snapshot(Stage::Profiled);
        let back = Snapshot::from_bytes(&snap.to_bytes()).expect("roundtrip");
        let mp = back.mid_phase.expect("mid-phase section present");
        assert_eq!(mp, snap.mid_phase.unwrap());

        let mut bare = sample_snapshot(Stage::Profiled);
        bare.mid_phase = None;
        let back = Snapshot::from_bytes(&bare.to_bytes()).expect("roundtrip");
        assert!(back.mid_phase.is_none());
    }

    #[test]
    fn atomic_write_leaves_no_temp_file() {
        let path = std::env::temp_dir().join(format!(
            "csnake-atomic-write-test-{}.csnake",
            std::process::id()
        ));
        let snap = sample_snapshot(Stage::Profiled);
        snap.write_file(&path).expect("write");
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".csnake.tmp");
        assert!(!std::path::PathBuf::from(tmp_name).exists());
        let back = Snapshot::read_file(&path).expect("read back");
        assert_eq!(snap.to_bytes(), back.to_bytes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn varints_roundtrip_across_widths() {
        let mut w = Writer::new();
        let values = [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        for v in values {
            w.put_varint(v);
        }
        let mut r = Reader::new(&w.buf);
        for v in values {
            assert_eq!(r.take_varint().unwrap(), v);
        }
        assert!(r.finished());
        // Truncated and over-long varints are typed corruption.
        let mut r = Reader::new(&[0x80]);
        assert!(matches!(
            r.take_varint(),
            Err(CsnakeError::SnapshotCorrupt(_))
        ));
        let eleven = [0xFFu8; 11];
        let mut r = Reader::new(&eleven);
        assert!(matches!(
            r.take_varint(),
            Err(CsnakeError::SnapshotCorrupt(_))
        ));
    }

    #[test]
    fn duplicate_delta_keys_are_rejected() {
        let mut w = Writer::new();
        w.put_varint(2); // two ids
        w.put_varint(5); // first = 5
        w.put_varint(0); // delta 0 → duplicate
        let mut r = Reader::new(&w.buf);
        assert!(matches!(
            load_id_deltas(&mut r),
            Err(CsnakeError::SnapshotCorrupt(_))
        ));
    }

    #[test]
    fn overflowing_delta_keys_are_rejected_not_wrapped() {
        // A hostile delta near u64::MAX must not wrap back into u32 range.
        let mut w = Writer::new();
        w.put_varint(2);
        w.put_varint(7); // first = 7
        w.put_varint(u64::MAX - 6); // 7 + delta wraps to 0 if unchecked
        let mut r = Reader::new(&w.buf);
        assert!(matches!(
            load_id_deltas(&mut r),
            Err(CsnakeError::SnapshotCorrupt(_))
        ));
    }

    /// The marginal cost of the dense-id sections (the ROADMAP
    /// "snapshot size" item): 2000 coverage ids + 2000 loop counts must
    /// encode in a few bytes each, not the 4–8 fixed-width bytes of
    /// format version 1 (which spent 16 bytes per (id, count) entry and
    /// 4 per coverage id — ≈40 KiB for this trace).
    #[test]
    fn dense_id_sections_encode_severalfold_smaller_than_fixed_width() {
        let empty = RunTrace::default();
        let mut dense = RunTrace::default();
        for i in 0..2000u32 {
            dense.coverage.insert(FaultId(i));
            dense.loop_counts.insert(FaultId(i), (i % 90) as u64);
        }
        let size_of = |t: &RunTrace| {
            let mut w = Writer::new();
            t.put(&mut w);
            w.buf.len()
        };
        let marginal = size_of(&dense) - size_of(&empty);
        assert!(
            marginal < 9_000,
            "2000 coverage ids + 2000 loop counts took {marginal} bytes"
        );
        // And the encoding stays exact.
        let mut w = Writer::new();
        dense.put(&mut w);
        let mut r = Reader::new(&w.buf);
        let back = RunTrace::load(&mut r).unwrap();
        assert!(r.finished());
        assert_eq!(dense.coverage, back.coverage);
        assert_eq!(dense.loop_counts, back.loop_counts);
    }

    #[test]
    fn version_1_files_are_rejected_typed() {
        let mut bytes = sample_snapshot(Stage::Profiled).to_bytes();
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        match Snapshot::from_bytes(&bytes) {
            Err(CsnakeError::SnapshotVersion { found, supported }) => {
                assert_eq!(found, 1);
                assert_eq!(supported, SNAPSHOT_VERSION);
            }
            other => panic!("expected SnapshotVersion, got {other:?}"),
        }
    }

    /// Pre-daemon v4 checkpoints must keep resuming: the v5-only fields
    /// (shard islands, wire chaos rates) decode as empty/zero, everything
    /// else byte-for-byte as before.
    #[test]
    fn version_4_files_still_decode_with_defaulted_v5_fields() {
        let mut snap = sample_snapshot(Stage::Profiled);
        // A v4 file cannot carry the v5-only state; clear it before
        // encoding the old layout.
        snap.mid_phase.as_mut().unwrap().shard_spans.clear();
        let v4_bytes = SnapshotFields {
            target: &snap.target,
            registry_fp: snap.registry_fp,
            cfg: &snap.cfg,
            stage: snap.stage,
            runs_executed: snap.runs_executed,
            profiles: snap.profiles.as_ref(),
            strategy: snap.strategy.as_ref(),
            alloc: snap.alloc.as_ref(),
            stitched: snap.stitched.as_ref(),
            mid_phase: snap.mid_phase.as_ref(),
        }
        .to_bytes_versioned(4);
        assert_eq!(u32::from_le_bytes(v4_bytes[4..8].try_into().unwrap()), 4);

        let back = Snapshot::from_bytes(&v4_bytes).expect("v4 file must still decode");
        let mp = back.mid_phase.as_ref().expect("mid-phase section");
        assert!(mp.shard_spans.is_empty());
        assert_eq!(back.cfg.driver.chaos.wire_drop, 0.0);
        assert_eq!(back.cfg.driver.chaos.wire_stall, 0.0);
        // Semantically identical to the v5 re-encode of the same state.
        assert_eq!(back.to_bytes(), snap.to_bytes());
    }

    #[test]
    fn v4_and_v5_encodings_differ_only_by_the_gated_fields() {
        let mut snap = sample_snapshot(Stage::Profiled);
        snap.mid_phase.as_mut().unwrap().shard_spans.clear();
        let fields = |s: &Snapshot, v: u32| {
            SnapshotFields {
                target: &s.target,
                registry_fp: s.registry_fp,
                cfg: &s.cfg,
                stage: s.stage,
                runs_executed: s.runs_executed,
                profiles: s.profiles.as_ref(),
                strategy: s.strategy.as_ref(),
                alloc: s.alloc.as_ref(),
                stitched: s.stitched.as_ref(),
                mid_phase: s.mid_phase.as_ref(),
            }
            .to_bytes_versioned(v)
        };
        let v4 = fields(&snap, 4);
        let v5 = fields(&snap, 5);
        // v5 adds exactly: 2×8 bytes of wire rates per ChaosConfig (the
        // DetectConfig embeds one) + 1 varint byte for the empty
        // shard-span list.
        assert_eq!(v5.len(), v4.len() + 17);
    }

    #[test]
    fn version_3_files_are_rejected_typed() {
        let mut bytes = sample_snapshot(Stage::Profiled).to_bytes();
        bytes[4..8].copy_from_slice(&3u32.to_le_bytes());
        match Snapshot::from_bytes(&bytes) {
            Err(CsnakeError::SnapshotVersion { found, supported }) => {
                assert_eq!(found, 3);
                assert_eq!(supported, SNAPSHOT_VERSION);
            }
            other => panic!("expected SnapshotVersion, got {other:?}"),
        }
    }

    #[test]
    fn version_bump_is_a_typed_error() {
        let mut bytes = sample_snapshot(Stage::Profiled).to_bytes();
        bytes[4..8].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        match Snapshot::from_bytes(&bytes) {
            Err(CsnakeError::SnapshotVersion { found, supported }) => {
                assert_eq!(found, SNAPSHOT_VERSION + 1);
                assert_eq!(supported, SNAPSHOT_VERSION);
            }
            other => panic!("expected SnapshotVersion, got {other:?}"),
        }
    }

    #[test]
    fn file_roundtrip_and_io_errors() {
        let snap = sample_snapshot(Stage::Allocated);
        let path = std::env::temp_dir().join(format!(
            "csnake-snapshot-test-{}.csnake",
            std::process::id()
        ));
        snap.write_file(&path).expect("write");
        let back = Snapshot::read_file(&path).expect("read");
        assert_eq!(snap.to_bytes(), back.to_bytes());
        std::fs::remove_file(&path).ok();

        match Snapshot::read_file(&path) {
            Err(CsnakeError::Io { path: p, .. }) => assert_eq!(p, path),
            other => panic!("expected Io error, got {other:?}"),
        }
    }
}
