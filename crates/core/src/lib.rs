//! CSnake core: detecting self-sustaining cascading failures via causal
//! stitching of fault propagations.
//!
//! # The staged `Session` API
//!
//! The paper's pipeline (Fig. 3) is staged — profile runs → static
//! filtering → fault injection with FCA → causal stitching → report — and
//! the crate's primary entry point, [`Session`], exposes exactly those
//! stages:
//!
//! ```ignore
//! use std::sync::Arc;
//! use csnake_core::{DetectConfig, ProgressCollector, Session, ThreePhase};
//!
//! let target = csnake_targets::toy::ToySystem::new();
//! let progress = Arc::new(ProgressCollector::new());
//! let mut session = Session::builder(&target)
//!     .config(DetectConfig::default())
//!     .observer(progress.clone())
//!     .build()?;
//!
//! let profiled = session.profile()?;              // → `Profiled`
//! session.checkpoint("campaign.csnake")?;         // durable stage boundary
//! session.allocate(&ThreePhase::default())?;      // → `CampaignOutcome`
//! session.stitch()?;                              // → `StitchedCycles`
//! let report = session.report()?;                 // → `DetectionReport`
//! for m in &report.matches {
//!     println!("found {} ({}): {}", m.bug.id, m.bug.jira, m.composition);
//! }
//! ```
//!
//! Each stage returns a serializable artifact ([`Profiled`],
//! [`CampaignOutcome`], [`StitchedCycles`], [`DetectionReport`]); the heavy
//! intermediate state stays inside the session behind accessors. Three
//! extension points hang off the session:
//!
//! * **[`AllocationStrategy`]** — the campaign stage is parameterised by an
//!   object-safe budget-allocation policy over an [`ExperimentEngine`]:
//!   the paper's [`ThreePhase`] protocol, the [`RandomAllocation`]
//!   baseline, or external policies (`csnake_baselines::strategies`).
//! * **[`CampaignObserver`]** — a first-class event stream (stage/phase
//!   boundaries, experiment completions, causal edges as they enter the
//!   database, cycles as the stitcher reports them, budget movement), with
//!   a no-op default and a bundled [`ProgressCollector`]; see
//!   [`observer`] for the full vocabulary.
//! * **Checkpoint/resume** — [`Session::checkpoint`] writes a versioned
//!   `.csnake` snapshot at any stage boundary and [`Session::resume`]
//!   continues it later; resumed campaigns are bit-identical to
//!   uninterrupted ones (see [`snapshot`]). Misuse surfaces as typed
//!   [`CsnakeError`]s, never panics.
//!
//! The one-shot [`detect`] / [`detect_with_random_allocation`] calls remain
//! as thin shims over a staged session.
//!
//! # Operating campaigns
//!
//! Long campaigns fail in boring ways — a flaky target panics a worker, a
//! disk write is interrupted, the process is killed mid-phase — and the
//! session layer is built to survive all three without perturbing results:
//!
//! * **Per-batch isolation and retry.** The driver runs every experiment
//!   batch through a panic-isolating pool ([`pool`]); a panicking job
//!   quarantines only its own batch slot, which is retried on a bounded,
//!   deterministic exponential backoff schedule ([`RetryConfig`] —
//!   backoff paces wall-clock only and never enters results). Batches are
//!   merged in batch-index order, so a campaign that needed retries is
//!   bit-identical to one that never failed.
//! * **Graceful degradation.** A cell that fails every retry becomes a
//!   *gap*, not an abort: the campaign completes, the observer sees
//!   [`CampaignObserver::batch_failed`] and [`CampaignObserver::degraded`],
//!   and the final [`DetectionReport`] is annotated with the missing
//!   `(fault, test, phase)` cells
//!   ([`DetectionReport::missing_cells`] / [`DetectionReport::degraded`]).
//! * **Mid-phase checkpoints.** [`SessionBuilder::auto_checkpoint`]
//!   streams snapshot-v4 checkpoints *inside* the allocation stage (every
//!   `cadence` experiments): the 3PA planner's RNG state and used-set are
//!   captured at phase entry, so a resumed campaign replans the identical
//!   batch and skips the already-executed prefix. Every write is atomic —
//!   staged to a `.csnake.tmp` sibling, fsynced, then renamed — and a
//!   half-written file is rejected as typed [`CsnakeError::SnapshotTorn`]
//!   rather than resumed wrongly. Resume from *any* checkpoint reproduces
//!   the uninterrupted report Debug-identically
//!   (`tests/supervisor_recovery.rs` proves the full kill matrix).
//! * **Self-chaos harness.** [`chaos`] turns the supervisor on itself:
//!   a seeded, deterministic injector makes experiment jobs panic, stall
//!   past a deadline, or fail checkpoint IO — configured per-campaign via
//!   [`DriverConfig`]`::chaos` or globally via the `CSNAKE_CHAOS`
//!   environment variable (`seed=7,exp_panic=0.2,attempts=1,...`).
//!   Decisions key on experiment identity, not call order, so a chaotic
//!   run is reproducible and transient chaos provably leaves no trace in
//!   the report. Snapshot v5 adds *wire* chaos sites (`wire_drop`,
//!   `wire_stall`) that exercise the daemon's transport the same way.
//!   CI runs a chaos smoke campaign on every push.
//! * **Distributed campaigns.** The `csnake-daemon` crate runs the
//!   campaign stage across worker *processes*: a coordinator owns the
//!   staged session and the 3PA plan (via
//!   [`Session::allocate_with_engine`]), shards each phase's batch over
//!   workers speaking a [`snapshot::Persist`]-framed wire protocol, and
//!   merges results deterministically by batch index — bit-identical to
//!   the single-process run across worker counts. Workers hold bounded
//!   leases; a dead worker's shards are reassigned (observer events
//!   [`CampaignObserver::worker_lost`] /
//!   [`CampaignObserver::shard_reassigned`]), and per-shard progress
//!   lands in the mid-phase checkpoint as [`ShardSpan`] islands
//!   (snapshot v5) merged by [`MidPhaseState::normalize`], so even a
//!   killed *coordinator* resumes without re-running completed shards.
//!   Operationally: `csnake-daemon run -j 4 --target kafka-isr`, or
//!   `serve`/`work` for a coordinator and workers on separate hosts.
//!
//! # Pipeline internals
//!
//! * [`fca`] — **Fault Causality Analysis** (§4.3): counterfactual comparison
//!   of injection runs against profile runs; emits the six causal edge kinds
//!   of Table 1.
//! * [`alloc`] — the **Three-Phase Allocation protocol** (§5): IDF-based
//!   clustering of causally-equivalent faults, round-robin exploration, and
//!   conditional-causality-guided extension under a `4·|F|` test budget.
//! * [`cluster`] — **phase-one hierarchical clustering** (§5.2):
//!   average-linkage agglomeration over cosine distance, run over a
//!   sparse candidate graph (inverted index over vector dimensions plus
//!   exact-duplicate pre-grouping) — no pairwise matrix.
//! * [`compat`] — the **local compatibility check** (§6.2): 2-level call
//!   stacks + local branch traces approximate path-condition satisfiability.
//!   Occurrence lists are stored sorted by signature, so the check is a
//!   linear merge intersection.
//! * [`stitch`] — the **prepared stitch index**: an immutable search index
//!   compiled once per causal database. Interns compatibility states,
//!   precomputes the full edge-successor relation into CSR adjacency
//!   tables (one compatibility-checked, one identity-only for the ablation
//!   knob), and hosts the arena-based indexed beam search.
//! * [`beam`] — the **parallel beam search** (§6.3, Alg. 1) for causal
//!   cycles, plus clustering of reported cycles. [`beam_search`] compiles a
//!   [`StitchIndex`] and searches on it; [`beam_search_reference`] retains
//!   the straightforward implementation as the executable specification.
//! * [`driver`] / [`target`] — the workload driver and the abstraction over
//!   systems under test.
//! * [`pool`] — the scope-borrowed worker pool shared by the stitch search
//!   and the driver's parallel experiment execution.
//! * [`report`] — cycle composition, ground-truth matching and TP/FP
//!   accounting used by the evaluation harness.
//! * [`session`] / [`observer`] / [`snapshot`] / [`error`] — the staged
//!   public surface described above.
//!
//! # Campaign-path architecture and complexity
//!
//! A campaign is `E` experiments over a registry of `P` fault points
//! (`L` of them loops), `T` tests, and `r` repetitions per run set. The
//! hot path is organised around indexes built once per trace set
//! (`csnake_inject::TraceIndex`):
//!
//! * **Profile side, once per test** — [`fca::ProfileIndex`] carries dense
//!   occurrence-presence counts, the `L × r` loop-count matrix, and the
//!   per-loop sample moments the Welch tests reuse: `O(r · entries + L·r)`
//!   per test, amortised over all of the test's experiments.
//! * **Per experiment** — [`analyze_experiment`] builds the injection-side
//!   `TraceIndex` (`O(r · entries)`) and then touches only the points that
//!   occurred and the loops that were reached: `O(occurring +
//!   active_loops)` instead of the reference's `O(P · r)` trace re-walk.
//!   The batched one-sided Welch tests short-circuit on `t ≤ 0` (most
//!   loops are unaffected), paying the `betainc` continued fraction only
//!   for genuine candidates. [`fca::analyze_experiment_reference`] retains
//!   the straightforward implementation; `tests/campaign_equivalence.rs`
//!   proves byte-identical outcomes.
//! * **Experiment execution** — the 3PA planner emits each phase's
//!   `(fault, test)` picks *before* running them (picks never depend on
//!   outcomes within a phase), so [`Driver`] fans every phase batch out on
//!   the shared [`pool`] with deterministic, batch-ordered results.
//! * **Phase-one clustering** — [`cluster::hierarchical_cluster`]
//!   collapses exact-duplicate vectors, generates candidate pairs from an
//!   inverted index over nonzero dimensions (pairs sharing no dimension
//!   sit at cosine distance exactly 1 and can never merge below a
//!   threshold ≤ 1), and agglomerates over that sparse graph with a
//!   lazy-deletion heap (Lance–Williams average linkage): `O(n + E)`
//!   memory and near-linear time on deduplicated sparse campaign data,
//!   versus the retained `O(n³)`-time, `O(n²)`-memory greedy rescan —
//!   with identical dendrogram cuts.
//!   [`cluster::hierarchical_cluster_with_stats`] additionally reports
//!   the realized group/edge counts and the matrix bytes *not* allocated,
//!   surfaced through [`CampaignObserver::clustering`] and the BENCH
//!   artifacts.
//!
//! `cargo run --release -p csnake-bench --bin campaign_perf` regenerates
//! `BENCH_campaign.json` (stage medians; ≥5× vs the reference FCA path on
//! a 200-fault × 10-test campaign, clustering 2000 vectors).
//!
//! # Search-path complexity
//!
//! With `n` edges, `s` distinct compatibility states of size `k`, frontier
//! width `F` (≤ beam size `B`) and mean compatible fanout `d`:
//!
//! * **Index build** — canonicalise + intern all states in `O(n·k log k)`;
//!   edges grouped by (effect fault, effect state) so one successor list
//!   is stored per group, and the §6.2 verdicts are computed exactly once
//!   per distinct state pair in a shared table sharded over the workers
//!   (`O(q)` merges of `O(k)` each, no per-worker duplication); list
//!   assembly is `O(Σ_g out(f_g))` integer filtering.
//!   [`StitchIndex::build_reference`] retains the per-edge,
//!   per-worker-cache build; `tests/stitch_shared_cache.rs` proves the
//!   two byte-identical across thread counts.
//! * **Per search level** — expansion is `O(F·d)` integer work (arena
//!   membership walk ≤ `max_len`, O(1) chain extension, rolling 128-bit
//!   structural hash); frontier dedup is hash-set insertion per candidate;
//!   the beam cut is `select_nth_unstable` (`O(F·d)` expected) plus an
//!   `O(B log B)` sort of survivors only.
//! * **Equivalence** — `tests/beam_equivalence.rs` proves the indexed
//!   search byte-identical to [`beam_search_reference`] (cycles, scores,
//!   order) across randomized databases and both ablation knobs.

pub mod alloc;
pub mod beam;
pub mod chaos;
pub mod cluster;
pub mod compat;
pub mod driver;
pub mod edge;
pub mod error;
pub mod fca;
pub(crate) mod fxhash;
pub mod idf;
pub mod observer;
pub mod pool;
pub mod report;
pub mod session;
pub mod snapshot;
pub mod stats;
pub mod stitch;
pub mod target;
pub mod workload;

use serde::{Deserialize, Serialize};

pub use alloc::{
    run_planned, run_random_allocation, run_random_allocation_with, run_three_phase,
    run_three_phase_with, AllocationResult, AllocationStrategy, CheckpointSink, ExperimentEngine,
    MidPhaseState, RandomAllocation, RecoveryContext, ShardSpan, ThreePhase, ThreePhaseConfig,
};
pub use beam::{
    beam_search, beam_search_reference, cluster_cycles, BeamConfig, Cycle, CycleCluster,
};
pub use chaos::{ChaosConfig, ChaosInjector, ChaosSite};
pub use cluster::{
    hierarchical_cluster, hierarchical_cluster_reference, hierarchical_cluster_with_stats,
    verify_cut_quality, ClusterStats, Clustering,
};
pub use compat::compatible;
pub use driver::{Driver, DriverConfig, RetryConfig};
pub use edge::{CausalDb, CausalEdge, CompatState, EdgeKind};
pub use error::{CsnakeError, Result};
pub use fca::{
    analyze_experiment, analyze_experiment_indexed, analyze_experiment_reference,
    ExperimentOutcome, FcaConfig, ProfileIndex,
};
pub use observer::{
    CampaignObserver, FanoutObserver, ForwardedEvent, NoopObserver, ProgressCollector,
    ProgressSnapshot, WorkerProgress,
};
pub use report::{
    build_report, composition, BugMatch, ClusterVerdict, Composition, DetectionReport,
};
pub use session::{CampaignOutcome, Profiled, Session, SessionBuilder, Stage, StitchedCycles};
pub use snapshot::{
    fnv1a_bytes, registry_fingerprint, write_file_bytes, Persist, Reader, Snapshot, Writer,
    SNAPSHOT_MAGIC, SNAPSHOT_MIN_VERSION, SNAPSHOT_VERSION,
};
pub use stitch::{CompatStats, StitchIndex};
pub use target::{KnownBug, TargetSystem, TestCase};
pub use workload::{WorkloadSummary, WorkloadWindow, INFLECTION_FACTOR};

/// Configuration of a full detection campaign.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DetectConfig {
    /// Workload-driver knobs (repetitions, delay sweep, FCA thresholds).
    pub driver: DriverConfig,
    /// 3PA protocol knobs (budget, clustering threshold, ε).
    pub alloc: ThreePhaseConfig,
    /// Beam-search knobs (beam size, delay cap).
    pub beam: BeamConfig,
}

/// Result of a full detection campaign.
#[derive(Debug)]
pub struct Detection {
    /// Static-analysis result (active fault points, Table 2 counts).
    pub analysis: csnake_analyzer::Analysis,
    /// Everything the allocation strategy produced (edges, clusters,
    /// SimScores).
    pub alloc: AllocationResult,
    /// Cycles, clusters, verdicts and ground-truth matches.
    pub report: DetectionReport,
    /// Total individual simulator runs executed.
    pub runs_executed: usize,
}

/// Runs the complete CSnake pipeline against a target system — a thin shim
/// over a staged [`Session`] with the [`ThreePhase`] strategy:
/// profile runs → static filtering → 3PA fault injection with FCA →
/// beam search → cycle clustering → report.
///
/// # Panics
///
/// On an undrivable target (no workloads / no fault points). Use the
/// [`Session`] API directly for typed errors.
pub fn detect(target: &dyn TargetSystem, cfg: &DetectConfig) -> Detection {
    let strategy = ThreePhase::new(cfg.alloc.clone());
    detect_with_strategy(target, cfg, &strategy)
}

/// Same pipeline but with the random-allocation baseline in place of 3PA
/// (§8.1, Table 3 "Rnd.?" column). The budget matches what 3PA would get.
///
/// # Panics
///
/// On an undrivable target (no workloads / no fault points). Use the
/// [`Session`] API directly for typed errors.
pub fn detect_with_random_allocation(
    target: &dyn TargetSystem,
    cfg: &DetectConfig,
    seed: u64,
) -> Detection {
    let strategy = RandomAllocation::new(cfg.alloc.clone(), seed);
    detect_with_strategy(target, cfg, &strategy)
}

/// One-shot detection under an arbitrary allocation strategy.
///
/// # Panics
///
/// On an undrivable target (no workloads / no fault points). Use the
/// [`Session`] API directly for typed errors.
pub fn detect_with_strategy(
    target: &dyn TargetSystem,
    cfg: &DetectConfig,
    strategy: &dyn AllocationStrategy,
) -> Detection {
    let mut session = Session::builder(target)
        .config(cfg.clone())
        .build()
        .expect("detect(): target must be drivable");
    session
        .run_to_report(strategy)
        .expect("detect(): staged pipeline cannot misorder itself");
    session
        .into_detection()
        .expect("detect(): session is reported")
}
