//! CSnake core: detecting self-sustaining cascading failures via causal
//! stitching of fault propagations.
//!
//! This crate implements the paper's primary contribution end to end:
//!
//! * [`fca`] — **Fault Causality Analysis** (§4.3): counterfactual comparison
//!   of injection runs against profile runs; emits the six causal edge kinds
//!   of Table 1.
//! * [`alloc`] — the **Three-Phase Allocation protocol** (§5): IDF-based
//!   clustering of causally-equivalent faults, round-robin exploration, and
//!   conditional-causality-guided extension under a `4·|F|` test budget.
//! * [`cluster`] — **phase-one hierarchical clustering** (§5.2):
//!   average-linkage agglomeration over cosine distance, run as a
//!   nearest-neighbor chain over a cached distance matrix.
//! * [`compat`] — the **local compatibility check** (§6.2): 2-level call
//!   stacks + local branch traces approximate path-condition satisfiability.
//!   Occurrence lists are stored sorted by signature, so the check is a
//!   linear merge intersection.
//! * [`stitch`] — the **prepared stitch index**: an immutable search index
//!   compiled once per causal database. Interns compatibility states,
//!   precomputes the full edge-successor relation into CSR adjacency
//!   tables (one compatibility-checked, one identity-only for the ablation
//!   knob), and hosts the arena-based indexed beam search.
//! * [`beam`] — the **parallel beam search** (§6.3, Alg. 1) for causal
//!   cycles, plus clustering of reported cycles. [`beam_search`] compiles a
//!   [`StitchIndex`] and searches on it; [`beam_search_reference`] retains
//!   the straightforward implementation as the executable specification.
//! * [`driver`] / [`target`] — the workload driver and the abstraction over
//!   systems under test.
//! * [`pool`] — the scope-borrowed worker pool shared by the stitch search
//!   and the driver's parallel experiment execution.
//! * [`report`] — cycle composition, ground-truth matching and TP/FP
//!   accounting used by the evaluation harness.
//!
//! # Campaign-path architecture and complexity
//!
//! A campaign is `E` experiments over a registry of `P` fault points
//! (`L` of them loops), `T` tests, and `r` repetitions per run set. The
//! hot path is organised around indexes built once per trace set
//! (`csnake_inject::TraceIndex`):
//!
//! * **Profile side, once per test** — [`fca::ProfileIndex`] carries dense
//!   occurrence-presence counts, the `L × r` loop-count matrix, and the
//!   per-loop sample moments the Welch tests reuse: `O(r · entries + L·r)`
//!   per test, amortised over all of the test's experiments.
//! * **Per experiment** — [`analyze_experiment`] builds the injection-side
//!   `TraceIndex` (`O(r · entries)`) and then touches only the points that
//!   occurred and the loops that were reached: `O(occurring +
//!   active_loops)` instead of the reference's `O(P · r)` trace re-walk.
//!   The batched one-sided Welch tests short-circuit on `t ≤ 0` (most
//!   loops are unaffected), paying the `betainc` continued fraction only
//!   for genuine candidates. [`fca::analyze_experiment_reference`] retains
//!   the straightforward implementation; `tests/campaign_equivalence.rs`
//!   proves byte-identical outcomes.
//! * **Experiment execution** — the 3PA planner emits each phase's
//!   `(fault, test)` picks *before* running them (picks never depend on
//!   outcomes within a phase), so [`Driver`] fans every phase batch out on
//!   the shared [`pool`] with deterministic, batch-ordered results.
//! * **Phase-one clustering** — [`cluster::hierarchical_cluster`] is a
//!   nearest-neighbor chain over a cached `O(n²)` distance matrix
//!   (Lance–Williams average linkage): `O(n²)` total versus the retained
//!   `O(n³)` greedy rescan, with identical dendrogram cuts.
//!
//! `cargo run --release -p csnake-bench --bin campaign_perf` regenerates
//! `BENCH_campaign.json` (stage medians; ≥5× vs the reference FCA path on
//! a 200-fault × 10-test campaign, clustering 2000 vectors).
//!
//! # Search-path complexity
//!
//! With `n` edges, `s` distinct compatibility states of size `k`, frontier
//! width `F` (≤ beam size `B`) and mean compatible fanout `d`:
//!
//! * **Index build** — canonicalise + intern all states in `O(n·k log k)`;
//!   successor tables via per-pair merge checks, each distinct state pair
//!   checked once (`O(k)` merge, cached), `O(Σ_f in(f)·out(f))` pair
//!   lookups total, parallelised over edge chunks.
//! * **Per search level** — expansion is `O(F·d)` integer work (arena
//!   membership walk ≤ `max_len`, O(1) chain extension, rolling 128-bit
//!   structural hash); frontier dedup is hash-set insertion per candidate;
//!   the beam cut is `select_nth_unstable` (`O(F·d)` expected) plus an
//!   `O(B log B)` sort of survivors only.
//! * **Equivalence** — `tests/beam_equivalence.rs` proves the indexed
//!   search byte-identical to [`beam_search_reference`] (cycles, scores,
//!   order) across randomized databases and both ablation knobs.
//!
//! # Examples
//!
//! Running the whole pipeline against a target system takes one call:
//!
//! ```ignore
//! use csnake_core::{detect, DetectConfig};
//!
//! let target = csnake_targets::toy::ToySystem::new();
//! let detection = detect(&target, &DetectConfig::default());
//! for m in &detection.report.matches {
//!     println!("found {} ({}): {}", m.bug.id, m.bug.jira, m.composition);
//! }
//! ```

pub mod alloc;
pub mod beam;
pub mod cluster;
pub mod compat;
pub mod driver;
pub mod edge;
pub mod fca;
pub mod idf;
pub mod pool;
pub mod report;
pub mod stats;
pub mod stitch;
pub mod target;

use serde::{Deserialize, Serialize};

pub use alloc::{run_random_allocation, run_three_phase, AllocationResult, ThreePhaseConfig};
pub use beam::{
    beam_search, beam_search_reference, cluster_cycles, BeamConfig, Cycle, CycleCluster,
};
pub use cluster::{hierarchical_cluster, hierarchical_cluster_reference, Clustering};
pub use compat::compatible;
pub use driver::{Driver, DriverConfig};
pub use edge::{CausalDb, CausalEdge, CompatState, EdgeKind};
pub use fca::{
    analyze_experiment, analyze_experiment_indexed, analyze_experiment_reference,
    ExperimentOutcome, FcaConfig, ProfileIndex,
};
pub use report::{
    build_report, composition, BugMatch, ClusterVerdict, Composition, DetectionReport,
};
pub use stitch::StitchIndex;
pub use target::{KnownBug, TargetSystem, TestCase};

/// Configuration of a full detection campaign.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DetectConfig {
    /// Workload-driver knobs (repetitions, delay sweep, FCA thresholds).
    pub driver: DriverConfig,
    /// 3PA protocol knobs (budget, clustering threshold, ε).
    pub alloc: ThreePhaseConfig,
    /// Beam-search knobs (beam size, delay cap).
    pub beam: BeamConfig,
}

/// Result of a full detection campaign.
#[derive(Debug)]
pub struct Detection {
    /// Static-analysis result (active fault points, Table 2 counts).
    pub analysis: csnake_analyzer::Analysis,
    /// Everything the 3PA protocol produced (edges, clusters, SimScores).
    pub alloc: AllocationResult,
    /// Cycles, clusters, verdicts and ground-truth matches.
    pub report: DetectionReport,
    /// Total individual simulator runs executed.
    pub runs_executed: usize,
}

/// Runs the complete CSnake pipeline against a target system:
/// profile runs → static filtering → 3PA fault injection with FCA →
/// beam search → cycle clustering → report.
pub fn detect(target: &dyn TargetSystem, cfg: &DetectConfig) -> Detection {
    let mut driver = Driver::new(target, cfg.driver.clone());
    let alloc = run_three_phase(&mut driver, &cfg.alloc);
    finish_detection(target, driver, alloc, cfg)
}

/// Same pipeline but with the random-allocation baseline in place of 3PA
/// (§8.1, Table 3 "Rnd.?" column). The budget matches what 3PA would get.
pub fn detect_with_random_allocation(
    target: &dyn TargetSystem,
    cfg: &DetectConfig,
    seed: u64,
) -> Detection {
    let mut driver = Driver::new(target, cfg.driver.clone());
    let budget = cfg.alloc.budget_per_fault * driver.analysis.injectable.len();
    let alloc = run_random_allocation(&mut driver, budget, seed);
    finish_detection(target, driver, alloc, cfg)
}

fn finish_detection(
    target: &dyn TargetSystem,
    driver: Driver<'_>,
    alloc: AllocationResult,
    cfg: &DetectConfig,
) -> Detection {
    let sim_of = |f| alloc.sim_score_of(f);
    let cycles = beam_search(&alloc.db, &sim_of, &cfg.beam);
    let clusters = cluster_cycles(&cycles, &alloc.db, &alloc.cluster_of);
    let report = build_report(target, &alloc, cycles, clusters);
    Detection {
        analysis: driver.analysis.clone(),
        runs_executed: driver.runs_executed,
        alloc,
        report,
    }
}
