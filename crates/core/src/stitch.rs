//! The prepared causal-stitching index and the indexed beam search (§6.3).
//!
//! [`beam_search`](crate::beam::beam_search) used to re-run the §6.2
//! compatibility check for every (edge, edge) pair at every beam level,
//! clone a `Vec<usize>` chain per extension, and fully sort the frontier
//! before truncating to the beam width. This module hoists all pairwise
//! work out of the search loop into an immutable [`StitchIndex`] compiled
//! once per [`CausalDb`], so the per-level loop is pure integer adjacency
//! traversal:
//!
//! * **State interning** — every distinct [`CompatState`] is canonicalised
//!   (occurrence signatures sorted + deduped, loop stacks/iteration
//!   signatures flattened to sorted `u64` vectors) and interned; the §6.2
//!   check becomes a linear merge intersection over sorted slices.
//! * **Edge grouping + shared pair-verdict table** — an edge's successor
//!   list depends only on its *(effect fault, effect state)* pair, so
//!   edges are grouped by that key and one successor list is computed and
//!   stored **per group**, not per edge. The §6.2 verdicts the lists need
//!   are themselves deduplicated globally: every distinct
//!   *(effect-state, cause-state)* pair is collected once, the verdict
//!   merges run once per pair in parallel shards, and all group-list
//!   builders read the one shared verdict table. Earlier revisions gave
//!   each build worker a private cache, so a pair straddling `w` workers
//!   was re-decided `w` times and every edge carried its own successor
//!   list; on high-fanout graphs (many edges into the same effect state)
//!   both the duplicate merges and the duplicated lists dominated build
//!   cost. [`StitchIndex::build_reference`] retains the per-edge,
//!   per-worker-cache build as the executable specification, and
//!   [`StitchIndex::compat_stats`] reports the realized dedup ratios.
//! * **CSR successor tables** — the group successor lists live in one
//!   compressed-sparse-row table `succ(group) -> &[edge]` (edges reach it
//!   through `edge_group`), plus a separate identity-only table (grouping
//!   edges by cause fault) for the `compatibility_check: false` ablation.
//! * **Flat weight arrays** — per-edge delay weights and structural triples
//!   live in flat arrays; per-edge SimScores are materialised once per
//!   search call.
//! * **Chain arena** — chains are parent-pointer nodes (`(edge, parent)`
//!   pairs), so extension is O(1) and the membership test walks at most
//!   `max_len` parents. Nodes are only materialised for chains that survive
//!   beam selection, bounding the arena at `beam_size · max_len` entries.
//! * **Hashed dedup + top-B selection** — structural frontier dedup uses
//!   128-bit rolling hashes of the `(cause, effect, kind)` sequence instead
//!   of allocating a key `Vec` per chain, and the beam cut uses
//!   `select_nth_unstable_by` (O(n) expected) followed by a sort of the
//!   surviving `B` entries, which reproduces the reference semantics
//!   (stable score order) without sorting the whole frontier.
//! * **Persistent workers** — a scope-borrowed [`ScopedPool`] (the shared
//!   `csnake_core::pool` module, also used by the experiment driver) is
//!   spawned lazily (first level whose frontier is large enough to
//!   amortise the hand-off) and reused across *all* remaining levels;
//!   small frontiers expand inline. Workers receive **index ranges** into
//!   the shared frontier rather than copied chunks, so dispatch moves two
//!   words per job instead of memcpying `Frontier` entries.
//!
//! The search is observably equivalent to
//! [`beam_search_reference`](crate::beam::beam_search_reference) — same
//! cycles, same scores, same order — which `tests/beam_equivalence.rs`
//! checks on hundreds of randomised databases, and the grouped build is
//! byte-identical to the retained per-edge reference build
//! (`tests/stitch_shared_cache.rs`, across thread counts). Complexity:
//! with `n` edges, `g ≤ n` distinct (effect fault, effect state) groups
//! and `q` distinct state pairs, the build canonicalises + interns in
//! `O(n·k log k)`, runs exactly `q` verdict merges (each `O(k)`, sharded
//! over workers with no duplicated work), and assembles `g` successor
//! lists — `O(Σ_g out(f_g))` integer filtering — instead of `n` lists
//! with up to `w·q` merges. Per level the search does
//! `O(frontier · fanout)` integer work plus an `O(n)` selection, instead
//! of the old `O(n log n)` sort + `O(len)` clone + `O(s²)` compatibility
//! per candidate.

use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};
use std::ops::Range;
use std::sync::RwLock;

use csnake_inject::FaultId;

use crate::beam::{finalize_cycles, BeamConfig, Cycle, RawChain};
use crate::edge::{CausalDb, CompatState, EdgeKind};
use crate::fxhash::{FxHasher, FxMap};
use crate::pool::{chunk_ranges, run_ordered, ScopedPool};

/// Sentinel for "no parent" in the chain arena.
const NONE: u32 = u32::MAX;

/// What one frontier-range expansion returns: candidate extensions plus
/// discovered cycles.
type Expansion = (Vec<Candidate>, Vec<CycleRef>);

/// Frontiers below this size expand inline: the per-level hand-off to the
/// worker pool costs more than the expansion itself.
const PARALLEL_THRESHOLD: usize = 2048;

/// Databases below this edge count build sequentially: worker hand-off
/// costs more than the build itself.
const PARALLEL_BUILD_THRESHOLD: usize = 4096;

/// Pass-through hasher for keys that are already high-quality hashes
/// (the 128-bit structural chain keys): folding the halves beats
/// re-mixing 16 bytes through a general hasher.
#[derive(Default)]
struct PrehashedHasher {
    hash: u64,
}

impl Hasher for PrehashedHasher {
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("PrehashedHasher only accepts u128 keys");
    }
    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.hash = (v as u64) ^ ((v >> 64) as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type PrehashedSet = HashSet<u128, BuildHasherDefault<PrehashedHasher>>;

// ---------------------------------------------------------------------------
// State canonicalisation
// ---------------------------------------------------------------------------

/// Canonical, intern-able form of a [`CompatState`].
///
/// Two states are §6.2-compatible iff their canonical forms intersect
/// (occurrence signatures, or entry stacks *and* iteration signatures), so
/// sorted-slice merges decide compatibility exactly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum CanonState {
    /// Sorted, deduplicated occurrence signatures.
    Occ(Vec<u64>),
    /// Sorted entry stacks (each slot packed exactly into a `u64`) and
    /// sorted iteration signatures.
    Loop(Vec<(u64, u64)>, Vec<u64>),
}

fn canonicalize(state: &CompatState) -> CanonState {
    match state {
        CompatState::Occurrences(occs) => {
            CanonState::Occ(csnake_inject::occurrence_sigs_sorted(occs))
        }
        CompatState::Loop(l) => {
            // BTreeSet iteration is sorted, and the injective stack packing
            // is monotone, so both vectors come out sorted.
            let stacks: Vec<(u64, u64)> = l.stack_keys().collect();
            let sigs: Vec<u64> = l.iter_sigs.iter().copied().collect();
            CanonState::Loop(stacks, sigs)
        }
    }
}

/// Linear merge intersection test over two sorted slices.
fn sorted_intersects<T: Ord>(a: &[T], b: &[T]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// §6.2 compatibility over canonical states (exactly [`crate::compatible`]).
fn canon_compatible(a: &CanonState, b: &CanonState) -> bool {
    match (a, b) {
        (CanonState::Occ(xs), CanonState::Occ(ys)) => sorted_intersects(xs, ys),
        (CanonState::Loop(xstacks, xsigs), CanonState::Loop(ystacks, ysigs)) => {
            let stacks_meet = sorted_intersects(xstacks, ystacks);
            let iters_meet =
                sorted_intersects(xsigs, ysigs) || (xsigs.is_empty() && ysigs.is_empty());
            stacks_meet && iters_meet
        }
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// Structural chain hashing
// ---------------------------------------------------------------------------

/// 128-bit rolling structural hash (two independent FNV-1a-style streams).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Hash128 {
    h1: u64,
    h2: u64,
}

impl Hash128 {
    const SEED: Hash128 = Hash128 {
        h1: 0xcbf2_9ce4_8422_2325,
        h2: 0x6c62_272e_07bb_0142,
    };

    /// Extends the chain hash by one pre-mixed structural edge word pair.
    /// Order-sensitive: the running halves are multiplied before the next
    /// word lands, so permuted sequences hash differently.
    #[inline]
    fn extend(mut self, (w1, w2): (u64, u64)) -> Hash128 {
        self.h1 = (self.h1 ^ w1).wrapping_mul(0x1000_0000_01b3);
        self.h1 ^= self.h1 >> 29;
        self.h2 = (self.h2 ^ w2).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.h2 ^= self.h2 >> 31;
        self
    }

    /// Pre-mixes one structural `(cause, effect, kind)` triple into the
    /// pair of words the two rolling-hash streams consume (computed once
    /// per edge at index build). The words come from independently seeded
    /// mixes: a collision in one stream's word does not collide the other,
    /// keeping the combined key's entropy at genuinely 128 bits.
    fn edge_words(cause: FaultId, effect: FaultId, kind: EdgeKind) -> (u64, u64) {
        let mut a = FxHasher::default();
        a.write_u32(cause.0);
        a.write_u32(effect.0);
        a.write_u64(kind as u64);
        let mut b = FxHasher {
            hash: 0x6c62_272e_07bb_0142,
        };
        b.write_u64(kind as u64);
        b.write_u32(effect.0);
        b.write_u32(cause.0);
        (a.finish(), b.finish())
    }

    #[inline]
    fn key(self) -> u128 {
        (self.h1 as u128) << 64 | self.h2 as u128
    }
}

// ---------------------------------------------------------------------------
// The index
// ---------------------------------------------------------------------------

/// Size counters of one index build, for tracking the shared-cache /
/// grouping story in benchmark artifacts (all counts, no allocation
/// probes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompatStats {
    /// Indexed edges.
    pub edges: usize,
    /// Distinct (effect fault, effect state) edge groups — the number of
    /// successor lists actually stored. The reference build stores one
    /// per edge.
    pub edge_groups: usize,
    /// Distinct (effect-state, cause-state) pairs whose §6.2 verdict was
    /// computed — each exactly once, in the shared table. Zero for
    /// [`StitchIndex::build_reference`], whose per-worker caches do not
    /// track a global count.
    pub distinct_state_pairs: usize,
    /// Entries in the group-level successor CSR.
    pub group_succ_entries: usize,
    /// Entries a per-edge successor CSR would hold (`Σ_e |succ(e)|`) —
    /// the memory the grouping avoids.
    pub edge_succ_entries: u64,
}

impl CompatStats {
    /// Approximate bytes of the stored group-level successor table
    /// (targets + offsets + the per-edge group map).
    pub fn group_table_bytes(&self) -> u64 {
        4 * (self.group_succ_entries as u64 + self.edge_groups as u64 + 1 + self.edges as u64)
    }

    /// Approximate bytes the per-edge successor table would need
    /// (targets + offsets).
    pub fn edge_table_bytes(&self) -> u64 {
        4 * (self.edge_succ_entries + self.edges as u64 + 1)
    }
}

/// The immutable, prepared search index compiled once from a [`CausalDb`].
///
/// Holds flat per-edge arrays and both successor tables
/// (compatibility-checked and identity-only) — the search never touches
/// [`CompatState`]s again.
#[derive(Debug, Clone)]
pub struct StitchIndex {
    /// Raw cause fault per edge.
    cause: Vec<FaultId>,
    /// Raw effect fault per edge.
    effect: Vec<FaultId>,
    /// Edge kind per edge.
    kind: Vec<EdgeKind>,
    /// 1 for delay-cause injection edges (counts against the delay cap).
    delay_w: Vec<u8>,
    /// Pre-mixed structural hash word pair per edge (see
    /// [`Hash128::edge_words`]).
    struct_word: Vec<(u64, u64)>,
    /// Dense id of each edge's cause fault.
    cause_dense: Vec<u32>,
    /// Dense id of each edge's effect fault (index into `fault_out_off`).
    effect_dense: Vec<u32>,
    /// CSR offsets: edges grouped by dense cause fault (identity table).
    fault_out_off: Vec<u32>,
    /// CSR targets for `fault_out_off` (edge indices, ascending per fault).
    fault_out: Vec<u32>,
    /// Successor-list group of each edge: its (effect fault, effect state)
    /// class. The reference build uses the identity map.
    edge_group: Vec<u32>,
    /// CSR offsets of the group-level compatibility successor table.
    group_succ_off: Vec<u32>,
    /// CSR targets: `group_succ(edge_group[i])` = edges that §6.2-continue
    /// edge `i` (ascending edge order per group).
    group_succ: Vec<u32>,
    /// Build-size counters (see [`CompatStats`]).
    stats: CompatStats,
}

/// The per-edge flat arrays and interning tables both builds share.
struct BuildPrelude {
    cause: Vec<FaultId>,
    effect: Vec<FaultId>,
    kind: Vec<EdgeKind>,
    delay_w: Vec<u8>,
    struct_word: Vec<(u64, u64)>,
    cause_dense: Vec<u32>,
    effect_dense: Vec<u32>,
    fault_out_off: Vec<u32>,
    fault_out: Vec<u32>,
    effect_sid: Vec<u32>,
    cause_sid: Vec<u32>,
    canon_states: Vec<CanonState>,
}

fn build_prelude(db: &CausalDb) -> BuildPrelude {
    let n = db.len();
    assert!(n < NONE as usize, "edge count exceeds u32 index space");
    let mut cause = Vec::with_capacity(n);
    let mut effect = Vec::with_capacity(n);
    let mut kind = Vec::with_capacity(n);
    let mut delay_w = Vec::with_capacity(n);
    let mut struct_word = Vec::with_capacity(n);
    for e in db.edges() {
        cause.push(e.cause);
        effect.push(e.effect);
        kind.push(e.kind);
        delay_w.push(u8::from(e.kind.is_injection() && e.kind.cause_is_delay()));
        struct_word.push(Hash128::edge_words(e.cause, e.effect, e.kind));
    }

    // Dense fault interning (order of first appearance).
    let mut fault_ids: FxMap<FaultId, u32> = FxMap::default();
    let dense = |f: FaultId, ids: &mut FxMap<FaultId, u32>| -> u32 {
        let next = ids.len() as u32;
        *ids.entry(f).or_insert(next)
    };
    let cause_dense: Vec<u32> = cause.iter().map(|&f| dense(f, &mut fault_ids)).collect();
    let effect_dense: Vec<u32> = effect.iter().map(|&f| dense(f, &mut fault_ids)).collect();
    let n_faults = fault_ids.len();

    // Identity table: counting-sort edges by dense cause fault. Edge
    // order within a fault stays ascending, matching
    // `CausalDb::edges_from`.
    let mut fault_out_off = vec![0u32; n_faults + 1];
    for &c in &cause_dense {
        fault_out_off[c as usize + 1] += 1;
    }
    for i in 0..n_faults {
        fault_out_off[i + 1] += fault_out_off[i];
    }
    let mut cursor = fault_out_off.clone();
    let mut fault_out = vec![0u32; n];
    for (i, &c) in cause_dense.iter().enumerate() {
        fault_out[cursor[c as usize] as usize] = i as u32;
        cursor[c as usize] += 1;
    }

    // State interning: one canonical state per distinct CompatState.
    let mut canon_ids: FxMap<CanonState, u32> = FxMap::default();
    let mut canon_states: Vec<CanonState> = Vec::new();
    let mut intern = |s: &CompatState| -> u32 {
        use std::collections::hash_map::Entry;
        let c = canonicalize(s);
        match canon_ids.entry(c) {
            Entry::Occupied(o) => *o.get(),
            Entry::Vacant(v) => {
                let id = canon_states.len() as u32;
                canon_states.push(v.key().clone());
                v.insert(id);
                id
            }
        }
    };
    let effect_sid: Vec<u32> = db.edges().iter().map(|e| intern(&e.effect_state)).collect();
    let cause_sid: Vec<u32> = db.edges().iter().map(|e| intern(&e.cause_state)).collect();

    BuildPrelude {
        cause,
        effect,
        kind,
        delay_w,
        struct_word,
        cause_dense,
        effect_dense,
        fault_out_off,
        fault_out,
        effect_sid,
        cause_sid,
        canon_states,
    }
}

impl StitchIndex {
    /// Number of indexed edges.
    pub fn len(&self) -> usize {
        self.cause.len()
    }

    /// `true` when the index covers no edges.
    pub fn is_empty(&self) -> bool {
        self.cause.is_empty()
    }

    /// Build-size counters: edge-group and state-pair dedup ratios, stored
    /// vs avoided successor-table entries.
    pub fn compat_stats(&self) -> CompatStats {
        self.stats
    }

    /// Compatibility-checked successors of edge `i` (ascending edge
    /// order). Shared by every edge in `i`'s (effect fault, effect state)
    /// group.
    #[inline]
    pub fn successors(&self, i: u32) -> &[u32] {
        let g = self.edge_group[i as usize] as usize;
        &self.group_succ[self.group_succ_off[g] as usize..self.group_succ_off[g + 1] as usize]
    }

    /// Identity-only successors of edge `i` (the ablation table).
    #[inline]
    pub fn identity_successors(&self, i: u32) -> &[u32] {
        let f = self.effect_dense[i as usize] as usize;
        &self.fault_out[self.fault_out_off[f] as usize..self.fault_out_off[f + 1] as usize]
    }

    #[inline]
    fn succ_of(&self, i: u32, use_compat: bool) -> &[u32] {
        if use_compat {
            self.successors(i)
        } else {
            self.identity_successors(i)
        }
    }

    /// `true` if edge `j` continues edge `i` under the given mode (the
    /// `match` predicate of Algorithm 1; also the cycle-closure test).
    #[inline]
    pub fn continues(&self, i: u32, j: u32, use_compat: bool) -> bool {
        // Successor lists only hold edges whose cause is `i`'s effect, so a
        // dense-fault mismatch rejects without touching the list.
        if self.effect_dense[i as usize] != self.cause_dense[j as usize] {
            return false;
        }
        if use_compat {
            let succ = self.successors(i);
            if succ.len() <= 16 {
                succ.contains(&j)
            } else {
                succ.binary_search(&j).is_ok()
            }
        } else {
            true
        }
    }

    /// Builds the index from a database with `threads` workers.
    ///
    /// Successor lists are computed once per (effect fault, effect state)
    /// *group*, and the §6.2 verdicts they consume are computed once per
    /// distinct (effect-state, cause-state) pair in a shared table
    /// sharded across the workers — see the module docs. Byte-identical
    /// to [`StitchIndex::build_reference`] at any thread count.
    pub fn build(db: &CausalDb, threads: usize) -> StitchIndex {
        let p = build_prelude(db);
        let n = p.cause.len();
        let threads = threads.max(1).min(crate::pool::hardware_threads());
        let parts = |items: usize| {
            if threads <= 1 || n < PARALLEL_BUILD_THRESHOLD {
                1
            } else {
                threads.min(items.max(1))
            }
        };

        // Group edges by (effect fault, effect state): same key ⇒ same
        // candidate set and same verdicts ⇒ identical successor list.
        // Group ids follow first-seen edge order.
        let mut group_ids: FxMap<u64, u32> = FxMap::default();
        let mut edge_group: Vec<u32> = Vec::with_capacity(n);
        let mut group_rep: Vec<u32> = Vec::new();
        let mut group_members: Vec<u32> = Vec::new();
        for i in 0..n {
            let key = (p.effect_dense[i] as u64) << 32 | p.effect_sid[i] as u64;
            let next = group_rep.len() as u32;
            let gid = *group_ids.entry(key).or_insert(next);
            if gid == next {
                group_rep.push(i as u32);
                group_members.push(1);
            } else {
                group_members[gid as usize] += 1;
            }
            edge_group.push(gid);
        }
        drop(group_ids);
        let g = group_rep.len();

        // The shared compat table: every distinct (effect-state,
        // cause-state) pair any group can reach, collected once.
        let mut pair_ids: FxMap<u64, u32> = FxMap::default();
        let mut pair_list: Vec<(u32, u32)> = Vec::new();
        for &r in &group_rep {
            let f = p.effect_dense[r as usize] as usize;
            let si = p.effect_sid[r as usize];
            for &j in &p.fault_out[p.fault_out_off[f] as usize..p.fault_out_off[f + 1] as usize] {
                let sj = p.cause_sid[j as usize];
                let key = (si as u64) << 32 | sj as u64;
                let next = pair_list.len() as u32;
                if *pair_ids.entry(key).or_insert(next) == next {
                    pair_list.push((si, sj));
                }
            }
        }

        // Verdicts: exactly one §6.2 merge per distinct pair, sharded
        // over the workers (each shard owns a disjoint slice — no
        // duplicated merges, no locking).
        let canon_states = &p.canon_states;
        let verdicts: Vec<bool> = run_ordered(
            chunk_ranges(pair_list.len(), parts(pair_list.len())),
            threads,
            |r: Range<usize>| {
                pair_list[r]
                    .iter()
                    .map(|&(si, sj)| {
                        canon_compatible(&canon_states[si as usize], &canon_states[sj as usize])
                    })
                    .collect::<Vec<bool>>()
            },
        )
        .into_iter()
        .flatten()
        .collect();

        // Group successor lists, filtered through the shared verdict
        // table (read-only from here). Candidate order is ascending, so
        // lists stay sorted for `continues`'s binary search.
        let pair_ids = &pair_ids;
        let verdicts = &verdicts;
        let pref = &p;
        let group_rep_ref = &group_rep;
        let per_group: Vec<Vec<u32>> =
            run_ordered(chunk_ranges(g, parts(g)), threads, |range: Range<usize>| {
                let mut lists = Vec::with_capacity(range.len());
                for gid in range {
                    let r = group_rep_ref[gid] as usize;
                    let f = pref.effect_dense[r] as usize;
                    let si = pref.effect_sid[r];
                    let candidates = &pref.fault_out
                        [pref.fault_out_off[f] as usize..pref.fault_out_off[f + 1] as usize];
                    let list: Vec<u32> = candidates
                        .iter()
                        .copied()
                        .filter(|&j| {
                            let sj = pref.cause_sid[j as usize];
                            verdicts[pair_ids[&((si as u64) << 32 | sj as u64)] as usize]
                        })
                        .collect();
                    lists.push(list);
                }
                lists
            })
            .into_iter()
            .flatten()
            .collect();

        let mut group_succ_off = Vec::with_capacity(g + 1);
        group_succ_off.push(0u32);
        let total: usize = per_group.iter().map(|l| l.len()).sum();
        assert!(
            total < u32::MAX as usize,
            "successor table exceeds u32 offset space ({total} entries)"
        );
        let mut group_succ = Vec::with_capacity(total);
        for list in &per_group {
            group_succ.extend_from_slice(list);
            group_succ_off.push(group_succ.len() as u32);
        }
        let edge_succ_entries: u64 = per_group
            .iter()
            .zip(&group_members)
            .map(|(l, &m)| l.len() as u64 * m as u64)
            .sum();
        let stats = CompatStats {
            edges: n,
            edge_groups: g,
            distinct_state_pairs: pair_list.len(),
            group_succ_entries: total,
            edge_succ_entries,
        };

        StitchIndex {
            cause: p.cause,
            effect: p.effect,
            kind: p.kind,
            delay_w: p.delay_w,
            struct_word: p.struct_word,
            cause_dense: p.cause_dense,
            effect_dense: p.effect_dense,
            fault_out_off: p.fault_out_off,
            fault_out: p.fault_out,
            edge_group,
            group_succ_off,
            group_succ,
            stats,
        }
    }

    /// The retained per-edge build — the executable specification of
    /// [`StitchIndex::build`]: one successor list per edge, computed in
    /// parallel over edge chunks with a **private** verdict cache per
    /// worker (the pre-shared-table formulation). `O(w·q)` merges worst
    /// case across `w` workers; kept for the byte-identity tests and as
    /// the baseline the BENCH artifacts compare against.
    pub fn build_reference(db: &CausalDb, threads: usize) -> StitchIndex {
        let p = build_prelude(db);
        let n = p.cause.len();
        let canon_states = &p.canon_states;
        let build_range = |range: Range<usize>| -> Vec<Vec<u32>> {
            let mut cache: FxMap<u64, bool> = FxMap::default();
            let mut lists = Vec::with_capacity(range.len());
            for i in range {
                let f = p.effect_dense[i] as usize;
                let candidates =
                    &p.fault_out[p.fault_out_off[f] as usize..p.fault_out_off[f + 1] as usize];
                let si = p.effect_sid[i];
                let mut list = Vec::new();
                for &j in candidates {
                    let sj = p.cause_sid[j as usize];
                    let ok = *cache
                        .entry((si as u64) << 32 | sj as u64)
                        .or_insert_with(|| {
                            canon_compatible(&canon_states[si as usize], &canon_states[sj as usize])
                        });
                    if ok {
                        list.push(j);
                    }
                }
                lists.push(list);
            }
            lists
        };
        let threads = threads.max(1).min(crate::pool::hardware_threads());
        let per_edge: Vec<Vec<u32>> = if threads <= 1 || n < PARALLEL_BUILD_THRESHOLD {
            build_range(0..n)
        } else {
            run_ordered(chunk_ranges(n, threads), threads, build_range)
                .into_iter()
                .flatten()
                .collect()
        };
        let mut succ_off = Vec::with_capacity(n + 1);
        succ_off.push(0u32);
        let total: usize = per_edge.iter().map(|l| l.len()).sum();
        assert!(
            total < u32::MAX as usize,
            "successor table exceeds u32 offset space ({total} entries)"
        );
        let mut succ = Vec::with_capacity(total);
        for list in &per_edge {
            succ.extend_from_slice(list);
            succ_off.push(succ.len() as u32);
        }
        let stats = CompatStats {
            edges: n,
            edge_groups: n,
            distinct_state_pairs: 0, // per-worker caches: no global count
            group_succ_entries: total,
            edge_succ_entries: total as u64,
        };

        StitchIndex {
            cause: p.cause,
            effect: p.effect,
            kind: p.kind,
            delay_w: p.delay_w,
            struct_word: p.struct_word,
            cause_dense: p.cause_dense,
            effect_dense: p.effect_dense,
            fault_out_off: p.fault_out_off,
            fault_out: p.fault_out,
            edge_group: (0..n as u32).collect(),
            group_succ_off: succ_off,
            group_succ: succ,
            stats,
        }
    }

    /// Runs the indexed beam search; observably equivalent to
    /// [`beam_search_reference`](crate::beam::beam_search_reference).
    pub fn search(&self, sim_of: &(dyn Fn(FaultId) -> f64 + Sync), cfg: &BeamConfig) -> Vec<Cycle> {
        let raw = self.search_raw(sim_of, cfg);
        finalize_cycles(raw, |i| (self.cause[i], self.effect[i], self.kind[i] as u8))
    }

    /// The search loop, returning raw chains before structural cycle
    /// deduplication.
    fn search_raw(
        &self,
        sim_of: &(dyn Fn(FaultId) -> f64 + Sync),
        cfg: &BeamConfig,
    ) -> Vec<RawChain> {
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        // Chain lengths are stored in a byte; the paper's configurations
        // cap chains at single digits, so 255 is far beyond practical use.
        assert!(
            cfg.max_len <= u8::MAX as usize,
            "beam_search supports max_len up to 255 (got {})",
            cfg.max_len
        );
        let use_compat = cfg.compatibility_check;
        // Chain length (and so delay count) is capped at u8 range; a cap
        // beyond 255 can never bind.
        let cap = cfg
            .max_delay_injections
            .map(|c| u8::try_from(c).unwrap_or(u8::MAX));

        // Per-search flat score array (the SimScore map is a search-time
        // argument, so it cannot live in the immutable index).
        let sim: Vec<f64> = (0..n)
            .map(|i| {
                if self.kind[i].is_injection() {
                    sim_of(self.cause[i])
                } else {
                    0.0
                }
            })
            .collect();

        let shared = Shared {
            idx: self,
            sim: &sim,
            use_compat,
            max_len: cfg.max_len,
            cap,
            arena: RwLock::new(ChainArena::default()),
            frontier: RwLock::new(Vec::new()),
        };

        // Level 1: every edge seeds a chain (Alg. 1 line 2); self-matching
        // edges are already cycles. No beam cut before the first expansion,
        // matching the reference.
        let mut cycles: Vec<CycleRef> = Vec::new();
        {
            let mut arena = shared.arena.write().expect("arena lock");
            let mut frontier = shared.frontier.write().expect("frontier lock");
            for i in 0..n as u32 {
                let d = self.delay_w[i as usize];
                if cap.is_some_and(|c| d > c) {
                    continue;
                }
                if self.continues(i, i, use_compat) {
                    cycles.push(CycleRef {
                        parent: NONE,
                        edge: i,
                        len: 1,
                        score_sum: sim[i as usize],
                    });
                } else {
                    let node = arena.push(i, NONE);
                    frontier.push(Frontier {
                        node,
                        last_edge: i,
                        first_edge: i,
                        len: 1,
                        delays: d,
                        score_sum: sim[i as usize],
                        hash: Hash128::SEED.extend(self.struct_word[i as usize]),
                    });
                }
            }
        }

        // Workers expand disjoint index ranges of the shared frontier; the
        // dispatch moves a `Range<usize>` per job instead of memcpying
        // `Frontier` chunks, and the pool reassembles results in range
        // order, so parallel expansion stays bit-identical to sequential.
        let expand_range = |range: Range<usize>| -> Expansion {
            let frontier = shared.frontier.read().expect("frontier lock");
            expand_chunk(&shared, &frontier[range])
        };

        // Run the levels inside one scope so lazily-spawned workers can
        // borrow `shared` and persist across levels. The sequential path
        // reuses its expansion and selection buffers level to level. The
        // pool is capped at the hardware's parallelism: extra workers on a
        // saturated machine only add hand-off and context-switch cost.
        let workers = cfg.threads.min(crate::pool::hardware_threads());
        std::thread::scope(|scope| {
            let mut pool: Option<ScopedPool<'_, Range<usize>, Expansion>> = None;
            let mut children: Vec<Candidate> = Vec::new();
            let mut level_cycles: Vec<CycleRef> = Vec::new();
            let mut select = SelectBuffers::default();
            // Ops hook: CSNAKE_STITCH_PROF=1 prints per-level timings.
            let prof = std::env::var_os("CSNAKE_STITCH_PROF").is_some();
            loop {
                let nf = shared.frontier.read().expect("frontier lock").len();
                if nf == 0 {
                    break;
                }
                let t0 = prof.then(std::time::Instant::now);
                children.clear();
                level_cycles.clear();
                let parallel = workers > 1 && nf >= PARALLEL_THRESHOLD;
                if parallel {
                    let pool = pool
                        .get_or_insert_with(|| ScopedPool::spawn(scope, &expand_range, workers));
                    // Over-partition for load balance; order is restored by
                    // the pool's tagged reassembly.
                    let chunks = (workers * 4).min(nf).max(1);
                    for (c, cy) in pool.map(chunk_ranges(nf, chunks)) {
                        children.extend(c);
                        level_cycles.extend(cy);
                    }
                } else {
                    let frontier = shared.frontier.read().expect("frontier lock");
                    expand_into(&shared, &frontier, &mut children, &mut level_cycles);
                }
                let t1 = prof.then(std::time::Instant::now);
                cycles.extend_from_slice(&level_cycles);
                let nc = children.len();
                let next = select_top_b(&shared, &children, cfg.beam_size, &mut select);
                *shared.frontier.write().expect("frontier lock") = next;
                if let (Some(t0), Some(t1)) = (t0, t1) {
                    eprintln!(
                        "stitch level: frontier={nf} children={nc} cycles={} expand={:?} select={:?}",
                        level_cycles.len(),
                        t1 - t0,
                        t1.elapsed()
                    );
                }
            }
            // Dropping the pool closes the job channel; workers exit before
            // the scope joins them.
            drop(pool);
        });

        // Materialise chains from the arena (edge paths root → leaf).
        let arena = shared.arena.read().expect("arena lock");
        cycles
            .into_iter()
            .map(|c| {
                let mut edges = Vec::with_capacity(c.len as usize);
                edges.push(c.edge as usize);
                let mut node = c.parent;
                while node != NONE {
                    let (edge, parent) = arena.nodes[node as usize];
                    edges.push(edge as usize);
                    node = parent;
                }
                edges.reverse();
                RawChain {
                    edges,
                    score_sum: c.score_sum,
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Search machinery
// ---------------------------------------------------------------------------

/// Parent-pointer chain arena: O(1) extension, membership by walking at
/// most `max_len` parents. Only beam survivors are materialised.
#[derive(Debug, Default)]
struct ChainArena {
    /// `(edge, parent)` pairs, interleaved so a membership walk touches one
    /// cache line per node.
    nodes: Vec<(u32, u32)>,
}

impl ChainArena {
    fn push(&mut self, edge: u32, parent: u32) -> u32 {
        let id = self.nodes.len();
        assert!(id < NONE as usize, "chain arena exceeds u32 node space");
        self.nodes.push((edge, parent));
        id as u32
    }

    /// `true` if `needle` occurs on the chain ending at `node`.
    #[inline]
    fn contains(&self, mut node: u32, needle: u32) -> bool {
        while node != NONE {
            let (edge, parent) = self.nodes[node as usize];
            if edge == needle {
                return true;
            }
            node = parent;
        }
        false
    }
}

/// One live chain on the beam frontier.
#[derive(Debug, Clone, Copy)]
struct Frontier {
    /// Arena node of the chain's last edge.
    node: u32,
    last_edge: u32,
    first_edge: u32,
    len: u8,
    delays: u8,
    score_sum: f64,
    hash: Hash128,
}

/// A candidate extension produced by one expansion (not yet materialised).
#[derive(Debug, Clone, Copy)]
struct Candidate {
    /// Arena node of the *parent* chain's last edge.
    parent: u32,
    edge: u32,
    first_edge: u32,
    len: u8,
    delays: u8,
    score_sum: f64,
    hash: Hash128,
}

/// A discovered cycle: parent node plus closing edge.
#[derive(Debug, Clone, Copy)]
struct CycleRef {
    parent: u32,
    edge: u32,
    len: u8,
    score_sum: f64,
}

/// Search-wide state shared between the level loop and the workers.
struct Shared<'a> {
    idx: &'a StitchIndex,
    sim: &'a [f64],
    use_compat: bool,
    max_len: usize,
    cap: Option<u8>,
    /// Read by workers during expansion; extended by the level loop during
    /// selection (the two phases never overlap, the lock just proves it).
    arena: RwLock<ChainArena>,
    /// The live frontier. Workers read disjoint index ranges of it during
    /// expansion; the level loop replaces it during selection (again, the
    /// phases never overlap).
    frontier: RwLock<Vec<Frontier>>,
}

/// Expands a frontier chunk; candidate and cycle order follows (chain,
/// successor) order, which keeps parallel runs deterministic after
/// chunk-ordered concatenation.
fn expand_chunk(shared: &Shared<'_>, chunk: &[Frontier]) -> (Vec<Candidate>, Vec<CycleRef>) {
    let mut out = Vec::with_capacity(chunk.len() * 2);
    let mut cycles = Vec::new();
    expand_into(shared, chunk, &mut out, &mut cycles);
    (out, cycles)
}

/// Expansion into caller-owned buffers (the sequential level loop reuses
/// its buffers across levels to avoid per-level allocation).
fn expand_into(
    shared: &Shared<'_>,
    chunk: &[Frontier],
    out: &mut Vec<Candidate>,
    cycles: &mut Vec<CycleRef>,
) {
    let idx = shared.idx;
    let arena = shared.arena.read().expect("arena lock");
    for chain in chunk {
        for &j in idx.succ_of(chain.last_edge, shared.use_compat) {
            if arena.contains(chain.node, j) {
                continue;
            }
            let delays = chain.delays + idx.delay_w[j as usize];
            if shared.cap.is_some_and(|c| delays > c) {
                continue;
            }
            let len = chain.len + 1;
            let score_sum = chain.score_sum + shared.sim[j as usize];
            if idx.continues(j, chain.first_edge, shared.use_compat) {
                cycles.push(CycleRef {
                    parent: chain.node,
                    edge: j,
                    len,
                    score_sum,
                });
            } else if (len as usize) < shared.max_len {
                out.push(Candidate {
                    parent: chain.node,
                    edge: j,
                    first_edge: chain.first_edge,
                    len,
                    delays,
                    score_sum,
                    hash: chain.hash.extend(idx.struct_word[j as usize]),
                });
            }
        }
    }
}

/// Reusable selection scratch (cleared, not reallocated, per level).
#[derive(Default)]
struct SelectBuffers {
    seen: PrehashedSet,
    /// `(score, candidate index)` sort keys; indices ascend in insertion
    /// order, so the pair comparator is the reference's stable score order.
    order: Vec<(f64, u32)>,
}

/// Structurally dedups candidates (first occurrence wins), cuts the beam to
/// the `B` lowest-score chains with `select_nth_unstable_by`, restores the
/// reference's stable score order, and materialises survivors as arena
/// nodes. Only 16-byte sort keys move during selection; surviving
/// candidates are gathered by index afterwards.
fn select_top_b(
    shared: &Shared<'_>,
    children: &[Candidate],
    beam_size: usize,
    buf: &mut SelectBuffers,
) -> Vec<Frontier> {
    // Dedup in insertion order: same 128-bit structural key ⇒ same score
    // and delay profile, so the reference's sort-then-retain keeps exactly
    // the first-inserted representative too.
    let seen = &mut buf.seen;
    let order = &mut buf.order;
    seen.clear();
    seen.reserve(children.len());
    order.clear();
    order.reserve(children.len());
    for (i, c) in children.iter().enumerate() {
        if seen.insert(c.hash.key()) {
            order.push((c.score_sum / c.len as f64, i as u32));
        }
    }

    let cmp = |a: &(f64, u32), b: &(f64, u32)| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1));
    if beam_size == 0 {
        order.clear();
    } else if order.len() > beam_size {
        order.select_nth_unstable_by(beam_size - 1, cmp);
        order.truncate(beam_size);
    }
    // (score, insertion) is a total order, so sorting the survivors
    // reproduces the reference's stable full sort exactly.
    order.sort_unstable_by(cmp);

    let mut arena = shared.arena.write().expect("arena lock");
    order
        .iter()
        .map(|&(_, i)| {
            let c = children[i as usize];
            let node = arena.push(c.edge, c.parent);
            Frontier {
                node,
                last_edge: c.edge,
                first_edge: c.first_edge,
                len: c.len,
                delays: c.delays,
                score_sum: c.score_sum,
                hash: c.hash,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::CausalEdge;
    use csnake_inject::{FnId, Occurrence, TestId};

    fn state(tag: u32) -> CompatState {
        CompatState::Occurrences(vec![Occurrence::new([Some(FnId(tag)), None], vec![])])
    }

    fn edge(cause: u32, effect: u32, cs: u32, es: u32) -> CausalEdge {
        CausalEdge {
            cause: FaultId(cause),
            effect: FaultId(effect),
            kind: EdgeKind::EI,
            test: TestId(0),
            phase: 1,
            cause_state: state(cs),
            effect_state: state(es),
        }
    }

    #[test]
    fn successor_tables_respect_compatibility() {
        // 0→1 feeds 1→2 (states 7/7 match) but not 1→3 (7 vs 8).
        let db = CausalDb::from_edges(vec![edge(0, 1, 1, 7), edge(1, 2, 7, 2), edge(1, 3, 8, 3)]);
        let idx = StitchIndex::build(&db, 2);
        assert_eq!(idx.successors(0), &[1]);
        assert_eq!(idx.identity_successors(0), &[1, 2]);
        assert!(idx.continues(0, 1, true));
        assert!(!idx.continues(0, 2, true));
        assert!(idx.continues(0, 2, false));
    }

    #[test]
    fn grouped_build_matches_reference_build() {
        // High fanout with shared effect states: edges 10·c→x all share
        // per-cause effect states, so grouping collapses lists.
        let mut edges = Vec::new();
        for c in 0..20u32 {
            for k in 0..5 {
                edges.push(edge(c, (c + k + 1) % 20, c % 4, (c + k + 1) % 4));
            }
        }
        let db = CausalDb::from_edges(edges);
        let fast = StitchIndex::build(&db, 3);
        let slow = StitchIndex::build_reference(&db, 3);
        assert_eq!(fast.len(), slow.len());
        for i in 0..fast.len() as u32 {
            assert_eq!(fast.successors(i), slow.successors(i), "edge {i}");
            assert_eq!(fast.identity_successors(i), slow.identity_successors(i));
        }
        let stats = fast.compat_stats();
        assert!(
            stats.edge_groups < stats.edges,
            "shared effect states must collapse groups: {stats:?}"
        );
        assert!(stats.distinct_state_pairs > 0);
        assert_eq!(
            stats.edge_succ_entries,
            slow.compat_stats().edge_succ_entries,
            "avoided per-edge entries must equal what the reference stores"
        );
        assert!(stats.group_table_bytes() <= stats.edge_table_bytes());
    }

    #[test]
    fn canonical_states_intern_and_merge() {
        let a = canonicalize(&state(5));
        let b = canonicalize(&state(5));
        let c = canonicalize(&state(6));
        assert_eq!(a, b);
        assert!(canon_compatible(&a, &b));
        assert!(!canon_compatible(&a, &c));
    }

    #[test]
    fn sorted_intersects_is_exact() {
        assert!(sorted_intersects(&[1u64, 4, 9], &[2, 4]));
        assert!(!sorted_intersects(&[1u64, 4, 9], &[2, 5]));
        assert!(!sorted_intersects::<u64>(&[], &[1]));
        assert!(!sorted_intersects::<u64>(&[], &[]));
    }

    #[test]
    fn hash128_is_order_sensitive_and_streams_are_independent() {
        let w1 = Hash128::edge_words(FaultId(1), FaultId(2), EdgeKind::EI);
        let w2 = Hash128::edge_words(FaultId(2), FaultId(1), EdgeKind::EI);
        assert_ne!(w1, w2);
        // The two stream words come from independently seeded mixes.
        assert_ne!(w1.0, w1.1);
        let a = Hash128::SEED.extend(w1).extend(w2);
        let b = Hash128::SEED.extend(w2).extend(w1);
        assert_ne!(a.key(), b.key());
        assert_ne!(
            Hash128::edge_words(FaultId(1), FaultId(2), EdgeKind::EI),
            Hash128::edge_words(FaultId(1), FaultId(2), EdgeKind::SI)
        );
    }

    #[test]
    fn arena_membership_walks_parents() {
        let mut a = ChainArena::default();
        let n0 = a.push(10, NONE);
        let n1 = a.push(11, n0);
        let n2 = a.push(12, n1);
        assert!(a.contains(n2, 10));
        assert!(a.contains(n2, 12));
        assert!(!a.contains(n2, 13));
        assert!(!a.contains(n0, 11));
    }

    #[test]
    fn indexed_search_finds_the_two_edge_cycle() {
        let db = CausalDb::from_edges(vec![edge(1, 2, 3, 7), edge(2, 1, 7, 3)]);
        let idx = StitchIndex::build(&db, 2);
        let cycles = idx.search(&|_| 0.5, &BeamConfig::default());
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].edges.len(), 2);
    }

    #[test]
    fn worker_pool_matches_sequential_expansion() {
        // The pool only engages organically on machines with spare cores
        // and big frontiers; drive it directly so range-order reassembly is
        // covered everywhere.
        let mut edges = Vec::new();
        for c in 0..40u32 {
            for k in 0..3 {
                edges.push(edge(c, (c + k + 1) % 40, c, (c + k + 1) % 40));
            }
        }
        let db = CausalDb::from_edges(edges);
        let idx = StitchIndex::build(&db, 1);
        let sim: Vec<f64> = (0..idx.len()).map(|i| (i % 7) as f64 / 7.0).collect();
        let shared = Shared {
            idx: &idx,
            sim: &sim,
            use_compat: true,
            max_len: 4,
            cap: None,
            arena: RwLock::new(ChainArena::default()),
            frontier: RwLock::new(Vec::new()),
        };
        let n = {
            let mut arena = shared.arena.write().unwrap();
            let mut frontier = shared.frontier.write().unwrap();
            for i in 0..idx.len() as u32 {
                frontier.push(Frontier {
                    node: arena.push(i, NONE),
                    last_edge: i,
                    first_edge: i,
                    len: 1,
                    delays: 0,
                    score_sum: sim[i as usize],
                    hash: Hash128::SEED.extend(idx.struct_word[i as usize]),
                });
            }
            frontier.len()
        };
        let (seq_c, seq_cy) = {
            let frontier = shared.frontier.read().unwrap();
            expand_chunk(&shared, &frontier)
        };
        let expand_range = |range: Range<usize>| {
            let frontier = shared.frontier.read().unwrap();
            expand_chunk(&shared, &frontier[range])
        };
        std::thread::scope(|scope| {
            let mut pool = ScopedPool::spawn(scope, &expand_range, 3);
            let results = pool.map(chunk_ranges(n, 7));
            let (mut par_c, mut par_cy) = (Vec::new(), Vec::new());
            for (c, cy) in results {
                par_c.extend(c);
                par_cy.extend(cy);
            }
            let key = |c: &Candidate| (c.parent, c.edge, c.score_sum.to_bits(), c.hash.key());
            assert_eq!(
                seq_c.iter().map(key).collect::<Vec<_>>(),
                par_c.iter().map(key).collect::<Vec<_>>()
            );
            assert_eq!(seq_cy.len(), par_cy.len());
        });
    }
}
