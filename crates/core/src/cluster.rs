//! Agglomerative hierarchical clustering (§5.2 phase one).
//!
//! CSnake clusters faults whose phase-one interference vectors are similar
//! ("causally equivalent faults") with hierarchical clustering over cosine
//! distance, using average linkage via the Lance–Williams update and
//! cutting the dendrogram at a distance threshold.
//!
//! [`hierarchical_cluster`] runs the **nearest-neighbor-chain** algorithm
//! over a cached pairwise distance matrix: `O(n²)` time and memory, so
//! phase-one clustering scales to tens of thousands of fault vectors.
//! Average linkage is *reducible* (`d(i∪j, k) ≥ min(d(i,k), d(j,k))`),
//! which gives the two properties the rewrite leans on:
//!
//! * any reciprocal-nearest-neighbor pair may be merged first — the full
//!   dendrogram (merge set + heights) equals the greedy closest-pair
//!   algorithm's;
//! * the dendrogram is *monotone* (heights never decrease along merges),
//!   so "stop when the closest pair is ≥ threshold" equals "apply every
//!   merge whose height is < threshold".
//!
//! [`hierarchical_cluster_reference`] retains the greedy `O(n³)`
//! closest-pair rescan as the executable specification;
//! `tests/campaign_equivalence.rs` proves identical dendrogram cuts across
//! randomized vector sets and thresholds.
//!
//! One floating-point caveat on that contract: the two algorithms apply
//! the Lance–Williams updates in different merge orders, which is equal in
//! exact arithmetic but can differ by an ulp in `f64` when a cluster's
//! association order differs. A divergent cut therefore requires a merge
//! height within ~1 ulp of the threshold — vanishingly unlikely for
//! data-derived cosine distances against round thresholds like 0.5, and
//! never observed across the randomized suites, but callers comparing the
//! two implementations on adversarial inputs should treat heights straddling
//! the threshold within float error as ties, not bugs.

use crate::idf::{cosine_distance, SparseVec};

/// Result of clustering `n` items: `assignment[i]` is the cluster index of
/// item `i`; cluster indices are dense (`0..n_clusters`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Cluster index per item.
    pub assignment: Vec<usize>,
    /// Number of clusters.
    pub n_clusters: usize,
}

impl Clustering {
    /// Items grouped by cluster, in cluster-index order.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut g = vec![Vec::new(); self.n_clusters];
        for (item, &c) in self.assignment.iter().enumerate() {
            g[c].push(item);
        }
        g
    }
}

/// Average-linkage agglomerative clustering cut at `threshold` —
/// nearest-neighbor-chain over a cached distance matrix, `O(n²)`.
///
/// Produces the same dendrogram cuts as
/// [`hierarchical_cluster_reference`] (see the module docs for why), with
/// cluster ids densified in the same first-seen order: ascending by each
/// cluster's smallest member index.
pub fn hierarchical_cluster(vectors: &[SparseVec], threshold: f64) -> Clustering {
    let n = vectors.len();
    if n == 0 {
        return Clustering {
            assignment: Vec::new(),
            n_clusters: 0,
        };
    }
    // Cached pairwise cosine-distance matrix, row-major. Computed once;
    // Lance–Williams updates touch one row+column per merge.
    let mut dist = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = cosine_distance(&vectors[i], &vectors[j]);
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }

    let mut active = vec![true; n];
    let mut size = vec![1.0f64; n];
    let mut remaining = n;
    // The NN-chain: each element is the nearest active neighbor of its
    // predecessor. The last two swap places as reciprocal nearest
    // neighbors and merge; reducibility keeps the rest of the chain valid.
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    // Full dendrogram: (smaller rep, larger rep, height). The merged
    // cluster keeps the smaller representative index, matching the
    // reference's "merge j into i, i < j".
    let mut merges: Vec<(usize, usize, f64)> = Vec::with_capacity(n.saturating_sub(1));

    while remaining > 1 {
        if chain.is_empty() {
            let seed = (0..n).find(|&i| active[i]).expect("remaining > 1");
            chain.push(seed);
        }
        loop {
            let a = *chain.last().expect("chain non-empty");
            // Nearest active neighbor of `a`; ties break toward the
            // smallest index (deterministic).
            let row = &dist[a * n..(a + 1) * n];
            let mut nn = None;
            let mut best = f64::INFINITY;
            for (c, &d) in row.iter().enumerate() {
                if c != a && active[c] && d < best {
                    best = d;
                    nn = Some(c);
                }
            }
            let b = nn.expect("an active neighbor exists while remaining > 1");
            if chain.len() >= 2 && chain[chain.len() - 2] == b {
                // Reciprocal nearest neighbors: merge.
                chain.pop();
                chain.pop();
                let (i, j) = (a.min(b), a.max(b));
                merges.push((i, j, dist[i * n + j]));
                // Lance–Williams average-linkage update into `i`:
                // d(i∪j, k) = (|i| d(i,k) + |j| d(j,k)) / (|i| + |j|).
                let (si, sj) = (size[i], size[j]);
                for k in 0..n {
                    if k == i || k == j || !active[k] {
                        continue;
                    }
                    let nd = (si * dist[i * n + k] + sj * dist[j * n + k]) / (si + sj);
                    dist[i * n + k] = nd;
                    dist[k * n + i] = nd;
                }
                size[i] += sj;
                active[j] = false;
                remaining -= 1;
                break;
            }
            chain.push(b);
        }
    }

    // Cut: apply every merge below the threshold. Monotonicity guarantees
    // no sub-threshold merge ever builds on a supra-threshold one, so a
    // plain union-find over the filtered merges reproduces the greedy
    // early stop. Union by smaller root keeps the reference's
    // representative-is-min-member invariant.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for &(i, j, d) in &merges {
        if d < threshold {
            let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
            if ri != rj {
                let (lo, hi) = (ri.min(rj), ri.max(rj));
                parent[hi] = lo;
            }
        }
    }

    // Densify cluster ids in first-seen order: scanning items ascending,
    // each cluster is first seen at its minimum member (= its root).
    let mut assignment = vec![0usize; n];
    let mut id_of_root = vec![usize::MAX; n];
    let mut n_clusters = 0usize;
    for (item, slot) in assignment.iter_mut().enumerate() {
        let r = find(&mut parent, item);
        if id_of_root[r] == usize::MAX {
            id_of_root[r] = n_clusters;
            n_clusters += 1;
        }
        *slot = id_of_root[r];
    }
    Clustering {
        assignment,
        n_clusters,
    }
}

/// The retained greedy closest-pair implementation — the executable
/// specification of [`hierarchical_cluster`]. `O(n³)` worst case: every
/// merge rescans all active pairs.
pub fn hierarchical_cluster_reference(vectors: &[SparseVec], threshold: f64) -> Clustering {
    let n = vectors.len();
    if n == 0 {
        return Clustering {
            assignment: Vec::new(),
            n_clusters: 0,
        };
    }
    // Distance matrix between active clusters.
    let mut dist = vec![vec![0.0_f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = cosine_distance(&vectors[i], &vectors[j]);
            dist[i][j] = d;
            dist[j][i] = d;
        }
    }
    let mut active: Vec<bool> = vec![true; n];
    let mut size: Vec<f64> = vec![1.0; n];
    // members[c] lists original item indices in cluster c.
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

    loop {
        // Find the closest active pair.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            if !active[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !active[j] {
                    continue;
                }
                let d = dist[i][j];
                if best.map(|(_, _, bd)| d < bd).unwrap_or(true) {
                    best = Some((i, j, d));
                }
            }
        }
        let Some((i, j, d)) = best else { break };
        if d >= threshold {
            break;
        }
        // Merge j into i; Lance–Williams average-linkage update:
        // d(i∪j, k) = (|i| d(i,k) + |j| d(j,k)) / (|i| + |j|).
        let (si, sj) = (size[i], size[j]);
        for k in 0..n {
            if k == i || k == j || !active[k] {
                continue;
            }
            let nd = (si * dist[i][k] + sj * dist[j][k]) / (si + sj);
            dist[i][k] = nd;
            dist[k][i] = nd;
        }
        size[i] += size[j];
        let moved = std::mem::take(&mut members[j]);
        members[i].extend(moved);
        active[j] = false;
    }

    // Densify cluster ids in first-seen order for determinism.
    let mut assignment = vec![0usize; n];
    let mut n_clusters = 0;
    for c in 0..n {
        if !active[c] {
            continue;
        }
        for &item in &members[c] {
            assignment[item] = n_clusters;
        }
        n_clusters += 1;
    }
    Clustering {
        assignment,
        n_clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idf::IdfVectorizer;
    use csnake_inject::FaultId;
    use std::collections::BTreeSet;

    fn vecs(docs: &[&[u32]]) -> Vec<SparseVec> {
        let sets: Vec<BTreeSet<FaultId>> = docs
            .iter()
            .map(|d| d.iter().map(|i| FaultId(*i)).collect())
            .collect();
        let m = IdfVectorizer::fit(&sets);
        sets.iter().map(|s| m.vectorize(s)).collect()
    }

    #[test]
    fn identical_vectors_merge() {
        let v = vecs(&[&[1, 2], &[1, 2], &[5, 6], &[5, 6]]);
        let c = hierarchical_cluster(&v, 0.5);
        assert_eq!(c.n_clusters, 2);
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_eq!(c.assignment[2], c.assignment[3]);
        assert_ne!(c.assignment[0], c.assignment[2]);
    }

    #[test]
    fn disjoint_vectors_stay_apart() {
        let v = vecs(&[&[1], &[2], &[3]]);
        let c = hierarchical_cluster(&v, 0.5);
        assert_eq!(c.n_clusters, 3);
    }

    #[test]
    fn threshold_one_merges_everything_overlapping() {
        // Chain of pairwise-overlapping docs all below distance 1.
        let v = vecs(&[&[1, 2], &[2, 3], &[3, 4]]);
        let c = hierarchical_cluster(&v, 1.0 + 1e-9);
        assert_eq!(c.n_clusters, 1);
    }

    #[test]
    fn threshold_zero_keeps_all_singletons_when_distinct() {
        let v = vecs(&[&[1, 2], &[2, 3]]);
        let c = hierarchical_cluster(&v, 1e-12);
        assert_eq!(c.n_clusters, 2);
    }

    #[test]
    fn zero_vectors_cluster_together() {
        // Two docs containing only the ubiquitous fault vectorize to zero
        // and should land in the same cluster (distance 0).
        let v = vecs(&[&[1], &[1], &[1, 2]]);
        let c = hierarchical_cluster(&v, 0.5);
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_ne!(c.assignment[0], c.assignment[2]);
    }

    #[test]
    fn empty_input() {
        let c = hierarchical_cluster(&[], 0.5);
        assert_eq!(c.n_clusters, 0);
        assert!(c.assignment.is_empty());
    }

    #[test]
    fn nn_chain_matches_reference_on_fixtures() {
        let fixtures: Vec<Vec<&[u32]>> = vec![
            vec![&[1, 2], &[1, 2], &[5, 6], &[5, 6]],
            vec![&[1], &[2], &[3]],
            vec![&[1, 2], &[2, 3], &[3, 4]],
            vec![&[1], &[1], &[1, 2]],
            vec![&[1, 2, 3], &[2, 3, 4], &[9], &[9, 10], &[2, 3], &[1, 3]],
        ];
        for docs in fixtures {
            let v = vecs(&docs);
            for thr in [1e-12, 0.3, 0.5, 0.9, 1.0 + 1e-9] {
                let fast = hierarchical_cluster(&v, thr);
                let slow = hierarchical_cluster_reference(&v, thr);
                assert_eq!(fast, slow, "docs {docs:?} threshold {thr}");
            }
        }
    }

    #[test]
    fn reference_handles_empty_input() {
        let c = hierarchical_cluster_reference(&[], 0.5);
        assert_eq!(c.n_clusters, 0);
    }

    #[test]
    fn groups_partition_items() {
        let v = vecs(&[&[1, 2], &[1, 2], &[5], &[6], &[5]]);
        let c = hierarchical_cluster(&v, 0.5);
        let groups = c.groups();
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 5);
        for g in &groups {
            assert!(!g.is_empty());
        }
    }
}
