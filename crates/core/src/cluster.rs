//! Agglomerative hierarchical clustering (§5.2 phase one) — sparse
//! neighborhoods, no `O(n²)` distance matrix.
//!
//! CSnake clusters faults whose phase-one interference vectors are similar
//! ("causally equivalent faults") with hierarchical clustering over cosine
//! distance, using average linkage via the Lance–Williams update and
//! cutting the dendrogram at a distance threshold.
//!
//! Earlier revisions ran a nearest-neighbor chain over a cached pairwise
//! distance matrix: `O(n²)` time **and memory** — an 8·n² byte ceiling
//! that capped campaigns near 100k vectors. [`hierarchical_cluster`] now
//! exploits the structure of the data instead of materializing all pairs:
//!
//! 1. **Exact-duplicate pre-grouping.** Identical fault-profile vectors
//!    are extremely common (most faults interfere with the same few
//!    neighbors, unreachable faults all vectorize to zero). Bitwise-equal
//!    vectors are collapsed into one weighted group *before any distance
//!    is computed*; under average linkage a group of `k` identical
//!    vectors behaves exactly like one vector of size-weight `k`, and the
//!    intra-group merges all sit at height 0 — below any positive
//!    threshold.
//! 2. **Inverted-index candidate generation.** IDF components are
//!    non-negative, so `cosine_distance < 1` **iff** two vectors share a
//!    nonzero dimension. An inverted index over dimensions emits exactly
//!    those pairs, with each pair's dot product accumulated in ascending
//!    dimension order (bit-identical to [`cosine_distance`]). Pairs
//!    without a shared dimension sit at distance *exactly* 1.0 — and a
//!    Lance–Williams average of all-1.0 entries stays exactly 1.0 — so
//!    the sparse graph is exact, not an approximation: a merge below any
//!    threshold ≤ 1 can only happen along a graph edge.
//! 3. **Hot-posting caps.** A *near-ubiquitous* dimension — one whose
//!    posting list exceeds `max(256, groups/8)` — would alone make the
//!    candidate graph quadratic, even though its IDF weight (and thus its
//!    contribution to any distance) is typically tiny. Hot dimensions are
//!    split out of the inverted index: pair enumeration runs over the
//!    cold dimensions only, each discovered pair's dot product is
//!    completed exactly from the two groups' hot components, and the few
//!    pairs that could sit below the threshold *through hot dimensions
//!    alone* are recovered by a Cauchy–Schwarz sweep over hot-mass-heavy
//!    groups (`‖hotₐ‖·‖hot_b‖ ≤ 1−θ` proves a pair super-threshold
//!    without touching it). Everything else stays implicit: per-cluster
//!    hot-component *sums* give the exact average-linkage distance of any
//!    unmaterialized pair on demand — `1 − (Sₐ·S_b)/(|A||B|)` — and the
//!    Lance–Williams average of two such implicit distances is exactly
//!    the implicit distance of the merged sums, so absent edges never
//!    need materializing. The result is still the exact dendrogram, but
//!    the candidate-edge count is driven by the *cold* co-occurrence
//!    structure instead of the hottest posting list's square.
//! 4. **Sparse agglomeration.** Cluster adjacency lives in per-cluster
//!    neighbor maps. A lazy-deletion min-heap orders candidate merges by
//!    `(height, smaller-representative, larger-representative)` — the
//!    greedy reference's exact scan order, ties included — and stops at
//!    the first height ≥ threshold: average linkage is *reducible*
//!    (`d(i∪j, k) ≥ min(d(i,k), d(j,k))`), so once the global minimum
//!    reaches the threshold no later merge can drop below it. Absent
//!    edges contribute the implicit distance 1.0 to updates. By the same
//!    stopping rule, a distance at or above the threshold can never be
//!    popped as a merge — so such entries are kept out of the heap
//!    entirely (the adjacency still holds them for the averages), which
//!    typically shrinks the heap by an order of magnitude.
//!
//! Complexity: `O(Σ_cold p_dim²)` candidate generation over the cold
//! dimensions (output-sensitive: the number of genuinely overlapping
//! pairs; fanned out on the worker
//! pool past `CLUSTER_PARALLEL_MIN_GROUPS` groups — distances are
//! bit-identical regardless of which worker computes them) plus
//! `O(E log E)` agglomeration over `E` graph edges — memory `O(n + E)`
//! instead of `O(n²)`. Set `CSNAKE_CLUSTER_TRACE=1` to print per-stage
//! wall times. [`hierarchical_cluster_with_stats`] reports the realized
//! counts (groups, edges, the matrix bytes that were *not* allocated) so
//! benchmarks track the memory claim instead of asserting it.
//!
//! [`hierarchical_cluster_reference`] retains the greedy `O(n³)`
//! closest-pair rescan as the executable specification;
//! `tests/campaign_equivalence.rs` and `tests/cluster_sparse.rs` prove
//! identical dendrogram cuts across randomized vector sets and
//! thresholds, and [`verify_cut_quality`] checks the two cut-quality
//! bounds (no cluster whose mean intra-distance ≥ threshold, no cluster
//! pair whose mean cross-distance < threshold) at scales the reference
//! cannot reach.
//!
//! One floating-point caveat on the equivalence contract: the sparse
//! agglomeration applies Lance–Williams updates in a different merge
//! order than the greedy rescan (pre-grouped duplicates merge "for free",
//! heap order differs from rescan order between equal-height runs, and
//! when hot dimensions are split out a pair's dot product sums its cold
//! terms before its hot terms instead of in one ascending pass),
//! which is equal in exact arithmetic but can differ by an ulp in `f64`.
//! A divergent cut therefore requires a merge height within ~1 ulp of the
//! threshold — vanishingly unlikely for data-derived cosine distances
//! against round thresholds like 0.5, and never observed across the
//! randomized suites — but callers comparing implementations on
//! adversarial inputs should treat heights straddling the threshold
//! within float error as ties, not bugs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::fxhash::FxMap;
use crate::idf::{cosine_distance, SparseVec};

/// Group count above which candidate-edge generation fans out on the
/// worker pool; below it the per-call thread spawn costs more than the
/// dot products it would split.
const CLUSTER_PARALLEL_MIN_GROUPS: usize = 1024;

/// Absolute floor of the hot-posting cap: dimensions never count as
/// near-ubiquitous below this posting length, so small inputs (every
/// unit and property test at reference scale) take the uncapped path
/// bit-for-bit.
const CLUSTER_HOT_POSTING_FLOOR: usize = 256;

/// Absolute slack on the Cauchy–Schwarz prune in the hot-pair sweep:
/// a pair is skipped only when its hot-mass product is below the cutoff
/// by more than this, so accumulated rounding in the mass computation
/// cannot hide a genuinely sub-threshold pair.
const HOT_PRUNE_SLACK: f64 = 1e-12;

/// Default hot-posting cap for `groups` distinct vectors: a dimension is
/// near-ubiquitous when it appears in more than an eighth of all groups
/// (and at least [`CLUSTER_HOT_POSTING_FLOOR`] of them).
fn default_hot_cap(groups: usize) -> usize {
    (groups / 8).max(CLUSTER_HOT_POSTING_FLOOR)
}

/// Dot product of two sparse component lists sorted ascending by
/// dimension, accumulated in ascending dimension order (the same order
/// [`cosine_distance`] uses over shared keys).
fn hot_dot(a: &[(u32, f64)], b: &[(u32, f64)]) -> f64 {
    let (mut i, mut j, mut dot) = (0usize, 0usize, 0.0f64);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                dot += a[i].1 * b[j].1;
                i += 1;
                j += 1;
            }
        }
    }
    dot
}

/// Merges cluster hot-component sums: `a += b`, both sorted ascending by
/// dimension.
fn hot_sum_add(a: &mut Vec<(u32, f64)>, b: Vec<(u32, f64)>) {
    if b.is_empty() {
        return;
    }
    if a.is_empty() {
        *a = b;
        return;
    }
    let mut merged = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&(da, wa)), Some(&(db, wb))) => match da.cmp(&db) {
                std::cmp::Ordering::Less => {
                    merged.push((da, wa));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push((db, wb));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push((da, wa + wb));
                    i += 1;
                    j += 1;
                }
            },
            (Some(&(da, wa)), None) => {
                merged.push((da, wa));
                i += 1;
            }
            (None, Some(&(db, wb))) => {
                merged.push((db, wb));
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    *a = merged;
}

/// Exact average-linkage distance of an *unmaterialized* cluster pair —
/// one whose member pairs all share either nothing (distance exactly 1)
/// or only hot dimensions. `sum_*` are the clusters' size-weighted hot
/// component sums and `wa`/`wb` the cluster sizes, so the mean cross
/// dot product is `(Sₐ·S_b)/(|A||B|)`. With no hot components at all
/// this is exactly the legacy implicit 1.0.
fn implicit_distance(sum_a: &[(u32, f64)], sum_b: &[(u32, f64)], wa: f64, wb: f64) -> f64 {
    if sum_a.is_empty() || sum_b.is_empty() {
        return 1.0;
    }
    let dot = hot_dot(sum_a, sum_b);
    if dot == 0.0 {
        1.0
    } else {
        (1.0 - dot / (wa * wb)).clamp(0.0, 1.0)
    }
}

/// Result of clustering `n` items: `assignment[i]` is the cluster index of
/// item `i`; cluster indices are dense (`0..n_clusters`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Cluster index per item.
    pub assignment: Vec<usize>,
    /// Number of clusters.
    pub n_clusters: usize,
}

impl Clustering {
    /// Items grouped by cluster, in cluster-index order.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut g = vec![Vec::new(); self.n_clusters];
        for (item, &c) in self.assignment.iter().enumerate() {
            g[c].push(item);
        }
        g
    }
}

/// Size counters of one sparse clustering run, for tracking the memory
/// story in benchmark artifacts (all counts, no allocation probes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Input vectors.
    pub vectors: usize,
    /// Distinct vectors after exact-duplicate pre-grouping.
    pub groups: usize,
    /// Initial sparse-graph edges (group pairs sharing a cold dimension,
    /// plus materialized hot-only pairs).
    pub candidate_edges: usize,
    /// Near-ubiquitous dimensions split out of pair enumeration (posting
    /// list longer than the hot cap).
    pub hot_dims: usize,
    /// Hot-only sub-threshold pairs materialized by the Cauchy–Schwarz
    /// sweep (already counted in `candidate_edges`).
    pub hot_pairs: usize,
    /// Sub-threshold merges applied (excluding duplicate pre-grouping).
    pub merges: usize,
    /// What the dense pairwise matrix would have cost: `8·n²` bytes.
    pub matrix_bytes: u64,
    /// Peak sparse working-set estimate, computed from counts: two
    /// adjacency entries of ~12 bytes plus one 24-byte heap entry per
    /// candidate edge, plus ~16 bytes of per-group scratch.
    pub sparse_graph_bytes: u64,
}

impl ClusterStats {
    fn new(n: usize) -> ClusterStats {
        ClusterStats {
            vectors: n,
            matrix_bytes: 8 * (n as u64) * (n as u64),
            ..ClusterStats::default()
        }
    }

    fn finish(mut self, candidate_edges: usize) -> ClusterStats {
        self.candidate_edges = candidate_edges;
        self.sparse_graph_bytes =
            (candidate_edges as u64) * (2 * 12 + 24) + (self.groups as u64) * 16;
        self
    }
}

/// One pending merge in the lazy-deletion heap. Ordered by `(height,
/// smaller group, larger group)` — group ids ascend with their minimum
/// member index, so this reproduces the greedy reference's tie-breaking
/// scan order exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MergeEntry {
    d: f64,
    a: u32,
    b: u32,
}

impl Eq for MergeEntry {}

impl Ord for MergeEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.d
            .total_cmp(&other.d)
            .then(self.a.cmp(&other.a))
            .then(self.b.cmp(&other.b))
    }
}

impl PartialOrd for MergeEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Average-linkage agglomerative clustering cut at `threshold` — the
/// sparse-neighborhood formulation (see the module docs): `O(n + E)`
/// memory, no pairwise matrix.
///
/// Produces the same dendrogram cuts as
/// [`hierarchical_cluster_reference`], with cluster ids densified in the
/// same first-seen order: ascending by each cluster's smallest member
/// index.
pub fn hierarchical_cluster(vectors: &[SparseVec], threshold: f64) -> Clustering {
    hierarchical_cluster_with_stats(vectors, threshold).0
}

/// [`hierarchical_cluster`] plus the size counters of the run.
pub fn hierarchical_cluster_with_stats(
    vectors: &[SparseVec],
    threshold: f64,
) -> (Clustering, ClusterStats) {
    cluster_impl(vectors, threshold, None)
}

/// [`hierarchical_cluster_with_stats`] with an explicit hot-posting cap:
/// dimensions whose posting list exceeds `hot_cap` groups are split out
/// of pair enumeration (module docs, step 3). The cut is the same for
/// every cap — the cap is a performance knob, not an approximation — so
/// this exists for tests and benchmarks that need to force the hot path
/// on small inputs or tune it on pathological ones.
pub fn hierarchical_cluster_with_stats_capped(
    vectors: &[SparseVec],
    threshold: f64,
    hot_cap: usize,
) -> (Clustering, ClusterStats) {
    cluster_impl(vectors, threshold, Some(hot_cap))
}

fn cluster_impl(
    vectors: &[SparseVec],
    threshold: f64,
    hot_cap: Option<usize>,
) -> (Clustering, ClusterStats) {
    let n = vectors.len();
    let mut stats = ClusterStats::new(n);
    if n == 0 {
        return (
            Clustering {
                assignment: Vec::new(),
                n_clusters: 0,
            },
            stats,
        );
    }
    // Distances are ≥ 0, so a non-positive (or NaN) threshold admits no
    // merge at all: every item is its own cluster.
    if threshold.is_nan() || threshold <= 0.0 {
        stats.groups = n;
        return (
            Clustering {
                assignment: (0..n).collect(),
                n_clusters: n,
            },
            stats,
        );
    }
    // Distances are ≤ 1, so a threshold above 1 merges everything: the
    // greedy reference keeps taking sub-threshold pairs (Lance–Williams
    // averages stay within [0, 1]) until one cluster remains.
    if threshold > 1.0 {
        stats.groups = 1;
        return (
            Clustering {
                assignment: vec![0; n],
                n_clusters: 1,
            },
            stats,
        );
    }

    // ---- 1. Exact-duplicate pre-grouping. Bitwise-equal component maps
    // land in one group; group ids ascend with their first (= minimum)
    // member index. All zero vectors share the empty key: pairwise
    // distance 0 among themselves, exactly 1 to everything else, so the
    // group merges internally and never across.
    let trace = std::env::var_os("CSNAKE_CLUSTER_TRACE").is_some();
    let t0 = std::time::Instant::now();
    let mut group_ids: FxMap<Vec<(u32, u64)>, u32> = FxMap::default();
    let mut group_of_item: Vec<u32> = Vec::with_capacity(n);
    let mut rep: Vec<u32> = Vec::new();
    let mut gsize: Vec<f64> = Vec::new();
    for (i, v) in vectors.iter().enumerate() {
        let key: Vec<(u32, u64)> = v
            .components()
            .iter()
            .map(|(f, w)| (f.0, w.to_bits()))
            .collect();
        let next = rep.len() as u32;
        let gid = *group_ids.entry(key).or_insert(next);
        if gid == next {
            rep.push(i as u32);
            gsize.push(1.0);
        } else {
            gsize[gid as usize] += 1.0;
        }
        group_of_item.push(gid);
    }
    drop(group_ids);
    let g = rep.len();
    stats.groups = g;

    if trace {
        eprintln!("  [trace] dedup: {:?}", t0.elapsed());
    }
    let t1 = std::time::Instant::now();
    // ---- 2. Inverted index over nonzero dimensions; postings ascend by
    // group id because groups are scanned in id order.
    let mut postings: FxMap<u32, Vec<(u32, f64)>> = FxMap::default();
    for (gid, &r) in rep.iter().enumerate() {
        for (f, w) in vectors[r as usize].components() {
            postings.entry(f.0).or_default().push((gid as u32, *w));
        }
    }

    // ---- 2b. Hot-posting caps (module docs, step 3). Dimensions whose
    // posting list exceeds the cap leave the inverted index; their
    // contribution to any pair's dot product comes from the per-group
    // hot-component lists instead.
    let hot_cap = hot_cap.unwrap_or_else(|| default_hot_cap(g));
    let mut hot_dims: Vec<u32> = postings
        .iter()
        .filter(|(_, p)| p.len() > hot_cap)
        .map(|(&f, _)| f)
        .collect();
    hot_dims.sort_unstable();
    stats.hot_dims = hot_dims.len();
    let has_hot = !hot_dims.is_empty();
    let hot_set: crate::fxhash::FxSet<u32> = hot_dims.iter().copied().collect();
    // Per-group hot components, ascending by dimension (`components()` is
    // a BTreeMap walk).
    let hot_part: Vec<Vec<(u32, f64)>> = if has_hot {
        rep.iter()
            .map(|&r| {
                vectors[r as usize]
                    .components()
                    .iter()
                    .filter(|(f, _)| hot_set.contains(&f.0))
                    .map(|(f, w)| (f.0, *w))
                    .collect()
            })
            .collect()
    } else {
        vec![Vec::new(); g]
    };

    // ---- 3. Candidate pairs + initial distances. For each group `a`,
    // dot products against all co-dimensional groups `b > a` accumulate
    // into a dense scratch slot in ascending dimension order — the same
    // add sequence `cosine_distance` performs over the shared keys, so
    // the resulting distances are bit-identical to the matrix the
    // reference builds. The per-group edge lists depend only on the
    // read-only postings, so past `CLUSTER_PARALLEL_MIN_GROUPS` they are
    // computed on the worker pool (each worker owns its scratch arrays;
    // values are identical regardless of who computes them).
    let gen_range = |range: std::ops::Range<usize>| -> Vec<Vec<(u32, f64)>> {
        let mut scratch: Vec<f64> = vec![0.0; g];
        let mut mark: Vec<u32> = vec![0; g];
        let mut touched: Vec<u32> = Vec::new();
        let mut out: Vec<Vec<(u32, f64)>> = Vec::with_capacity(range.len());
        for a in range {
            let a = a as u32;
            let epoch = a + 1;
            for (f, wa) in vectors[rep[a as usize] as usize].components() {
                if has_hot && hot_set.contains(&f.0) {
                    continue;
                }
                let post = &postings[&f.0];
                let start = post.partition_point(|&(gid, _)| gid <= a);
                for &(b, wb) in &post[start..] {
                    let slot = b as usize;
                    if mark[slot] != epoch {
                        mark[slot] = epoch;
                        scratch[slot] = 0.0;
                        touched.push(b);
                    }
                    scratch[slot] += wa * wb;
                }
            }
            // Cold accumulation done; complete each discovered pair's dot
            // product with its hot terms so explicit edges carry the full
            // exact distance.
            let ha = &hot_part[a as usize];
            let mut edges: Vec<(u32, f64)> = Vec::with_capacity(touched.len());
            for &b in &touched {
                let mut dot = scratch[b as usize];
                if !ha.is_empty() {
                    dot += hot_dot(ha, &hot_part[b as usize]);
                }
                edges.push((b, (1.0 - dot).clamp(0.0, 1.0)));
            }
            touched.clear();
            out.push(edges);
        }
        out
    };
    let threads = crate::pool::hardware_threads();
    let per_group: Vec<Vec<(u32, f64)>> = if threads > 1 && g >= CLUSTER_PARALLEL_MIN_GROUPS {
        crate::pool::run_ordered(crate::pool::chunk_ranges(g, threads), threads, gen_range)
            .into_iter()
            .flatten()
            .collect()
    } else {
        gen_range(0..g)
    };
    drop(postings);

    // ---- 3b. Hot-only pair recovery. A pair sharing *only* hot
    // dimensions can still sit below the threshold (e.g. a vector that is
    // one hot dimension, against a near-copy) — those merges must be on
    // the heap. Their dot product is bounded by the product of the two
    // groups' hot-part norms (Cauchy–Schwarz), so scanning groups in
    // descending hot-mass order and stopping once the mass product proves
    // the pair super-threshold visits only the hot-heavy corner, not the
    // posting list's square. In the worst case that motivates the cap —
    // a near-ubiquitous dimension with a tiny IDF weight — every mass is
    // tiny and the sweep exits immediately.
    let mut hot_only: Vec<MergeEntry> = Vec::new();
    if has_hot {
        let cutoff = 1.0 - threshold;
        let mut heavy: Vec<(u32, f64)> = hot_part
            .iter()
            .enumerate()
            .filter(|(_, h)| !h.is_empty())
            .map(|(gid, h)| {
                let mass = h.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
                (gid as u32, mass)
            })
            .collect();
        heavy.sort_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
        for i in 0..heavy.len() {
            let (a, ma) = heavy[i];
            if ma * ma <= cutoff - HOT_PRUNE_SLACK {
                break;
            }
            for &(b, mb) in &heavy[i + 1..] {
                if ma * mb <= cutoff - HOT_PRUNE_SLACK {
                    break;
                }
                let d =
                    (1.0 - hot_dot(&hot_part[a as usize], &hot_part[b as usize])).clamp(0.0, 1.0);
                if d < threshold {
                    hot_only.push(MergeEntry {
                        d,
                        a: a.min(b),
                        b: a.max(b),
                    });
                }
            }
        }
    }

    // Assemble the adjacency (both directions, capacity known up front)
    // and the initial heap. Entries at or above the threshold never merge
    // — the pop loop stops at the first one — so only sub-threshold
    // distances enter the heap; the adjacency keeps every candidate edge
    // because super-threshold distances still participate in the
    // Lance–Williams averages.
    let mut degree: Vec<usize> = per_group.iter().map(|e| e.len()).collect();
    for edges in &per_group {
        for &(b, _) in edges {
            degree[b as usize] += 1;
        }
    }
    let mut adj: Vec<FxMap<u32, f64>> = degree
        .iter()
        .map(|&d| FxMap::with_capacity_and_hasher(d, Default::default()))
        .collect();
    let mut candidate_edges = 0usize;
    let mut initial: Vec<Reverse<MergeEntry>> = Vec::new();
    for (a, edges) in per_group.iter().enumerate() {
        let a = a as u32;
        for &(b, d) in edges {
            adj[a as usize].insert(b, d);
            adj[b as usize].insert(a, d);
            if d < threshold {
                initial.push(Reverse(MergeEntry { d, a, b }));
            }
            candidate_edges += 1;
        }
    }
    drop(per_group);
    // Hot-only pairs join the graph unless a cold dimension already
    // discovered them (in which case the cold edge carries the full dot
    // product, while the sweep's value covers hot terms only). Every
    // entry is sub-threshold by construction, so all of them go on the
    // heap; super-threshold hot-only pairs stay implicit — their exact
    // distance is recomputed from cluster hot sums whenever an update
    // needs it.
    for e in hot_only {
        if adj[e.a as usize].contains_key(&e.b) {
            continue;
        }
        adj[e.a as usize].insert(e.b, e.d);
        adj[e.b as usize].insert(e.a, e.d);
        initial.push(Reverse(e));
        candidate_edges += 1;
        stats.hot_pairs += 1;
    }
    // Size-weighted per-cluster hot-component sums: a group of `k`
    // identical vectors contributes `k·w` per hot dimension. Merges add
    // sums, so `1 − (Sₐ·S_b)/(|A||B|)` is always the exact mean hot-only
    // cross distance of the live clusters.
    let mut hot_sum: Vec<Vec<(u32, f64)>> = hot_part
        .iter()
        .zip(&gsize)
        .map(|(h, &k)| h.iter().map(|&(dim, w)| (dim, w * k)).collect())
        .collect();
    drop(hot_part);
    // Heapify in one pass; pop order is the unique (d, a, b) total order
    // either way.
    let mut heap: BinaryHeap<Reverse<MergeEntry>> = BinaryHeap::from(initial);
    stats = stats.finish(candidate_edges);
    if trace {
        eprintln!("  [trace] candidates: {:?}", t1.elapsed());
    }
    let t2 = std::time::Instant::now();

    // ---- 4. Sparse agglomeration: repeatedly merge the globally closest
    // pair while it is below the threshold. Heap entries are validated
    // lazily against the live adjacency (bitwise distance match), so
    // superseded entries fall through. Reducibility makes the first
    // at-or-above-threshold pop final: no later merge can go lower.
    let mut active = vec![true; g];
    let mut parent: Vec<u32> = (0..g as u32).collect();
    let mut neighbor_scratch: Vec<(u32, f64)> = Vec::new();
    while let Some(Reverse(e)) = heap.pop() {
        if e.d >= threshold {
            break;
        }
        let (a, b) = (e.a as usize, e.b as usize);
        if !active[a] || !active[b] {
            continue;
        }
        match adj[a].get(&e.b) {
            Some(d) if d.to_bits() == e.d.to_bits() => {}
            _ => continue, // superseded by a Lance–Williams update
        }
        // Merge b into a: a has the smaller id, hence the smaller
        // representative — matching the reference's "merge j into i,
        // i < j", including the operand order of the update below.
        stats.merges += 1;
        let (sa, sb) = (gsize[a], gsize[b]);
        adj[a].remove(&e.b);
        adj[b].remove(&e.a);
        let bmap = std::mem::take(&mut adj[b]);
        neighbor_scratch.clear();
        neighbor_scratch.extend(adj[a].iter().map(|(&k, &d)| (k, d)));
        // Neighbors of a (shared neighbors read b's entry, exclusive
        // ones use the implicit distance — exactly 1.0 unless b and k
        // share hot dimensions)…
        for &(k, dak) in &neighbor_scratch {
            let dbk = match bmap.get(&k) {
                Some(&d) => d,
                None => implicit_distance(&hot_sum[b], &hot_sum[k as usize], sb, gsize[k as usize]),
            };
            let nd = (sa * dak + sb * dbk) / (sa + sb);
            adj[a].insert(k, nd);
            let km = &mut adj[k as usize];
            km.remove(&e.b);
            km.insert(e.a, nd);
            if nd < threshold {
                heap.push(Reverse(MergeEntry {
                    d: nd,
                    a: e.a.min(k),
                    b: e.a.max(k),
                }));
            }
        }
        // …then neighbors of b alone, where a contributes its implicit
        // distance. The Lance–Williams average of two implicit distances
        // is exactly the implicit distance of the merged hot sums (and
        // 1.0 stays 1.0 with no hot terms), so untouched non-edges stay
        // consistent without ever being materialized.
        for (k, dbk) in bmap {
            if k == e.a || adj[a].contains_key(&k) {
                continue;
            }
            let dak = implicit_distance(&hot_sum[a], &hot_sum[k as usize], sa, gsize[k as usize]);
            let nd = (sa * dak + sb * dbk) / (sa + sb);
            adj[a].insert(k, nd);
            let km = &mut adj[k as usize];
            km.remove(&e.b);
            km.insert(e.a, nd);
            if nd < threshold {
                heap.push(Reverse(MergeEntry {
                    d: nd,
                    a: e.a.min(k),
                    b: e.a.max(k),
                }));
            }
        }
        let bsum = std::mem::take(&mut hot_sum[b]);
        hot_sum_add(&mut hot_sum[a], bsum);
        gsize[a] += sb;
        active[b] = false;
        parent[b] = e.a;
    }

    if trace {
        eprintln!("  [trace] agglomerate: {:?}", t2.elapsed());
    }
    // ---- 5. Cut + densify. Scanning items ascending, each cluster is
    // first seen at its minimum member (roots keep the smallest id), so
    // ids densify in the reference's first-seen order.
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let mut assignment = vec![0usize; n];
    let mut id_of_root = vec![u32::MAX; g];
    let mut n_clusters = 0usize;
    for (item, slot) in assignment.iter_mut().enumerate() {
        let r = find(&mut parent, group_of_item[item]) as usize;
        if id_of_root[r] == u32::MAX {
            id_of_root[r] = n_clusters as u32;
            n_clusters += 1;
        }
        *slot = id_of_root[r] as usize;
    }
    (
        Clustering {
            assignment,
            n_clusters,
        },
        stats,
    )
}

/// Checks the two §5.2 cut-quality bounds on a clustering, by direct
/// recomputation from the vectors (independent of the algorithm that
/// produced the cut):
///
/// * **no over-merge** — every cluster's mean pairwise cosine distance is
///   `< threshold` (each agglomerative merge happened below the
///   threshold, and a weighted average of sub-threshold means stays
///   sub-threshold), and every cluster is connected under
///   shared-dimension/duplicate edges;
/// * **no under-merge** — for distinct clusters, the mean cross-pair
///   cosine distance is `≥ threshold` (the terminal average-linkage
///   distance *is* that mean, and agglomeration only stops once every
///   pair of live clusters sits at or above the threshold).
///
/// Exhaustive checking is quadratic, which is exactly what the sparse
/// path exists to avoid, so the bounds are verified on a deterministic
/// sample: up to `sample` clusters (largest first) and up to `sample`
/// adjacent cluster pairs discovered through shared dimensions, each
/// capped at `PAIR_CAP` member pairs. Only meaningful for thresholds in
/// `(0, 1]`. Returns a description of the first violation.
pub fn verify_cut_quality(
    vectors: &[SparseVec],
    clustering: &Clustering,
    threshold: f64,
    sample: usize,
) -> Result<(), String> {
    const PAIR_CAP: usize = 200_000;
    const SLACK: f64 = 1e-9;
    assert!(
        threshold > 0.0 && threshold <= 1.0,
        "cut-quality bounds are defined for thresholds in (0, 1]"
    );
    assert_eq!(vectors.len(), clustering.assignment.len());
    let groups = clustering.groups();

    // Largest clusters are where an over-merge would hide.
    let mut by_size: Vec<usize> = (0..groups.len()).collect();
    by_size.sort_by_key(|&c| (Reverse(groups[c].len()), c));

    for &c in by_size.iter().take(sample) {
        let members = &groups[c];
        if members.len() < 2 || members.len() * members.len() > PAIR_CAP {
            continue;
        }
        let (mut sum, mut cnt) = (0.0f64, 0usize);
        for (i, &x) in members.iter().enumerate() {
            for &y in &members[i + 1..] {
                sum += cosine_distance(&vectors[x], &vectors[y]);
                cnt += 1;
            }
        }
        let mean = sum / cnt as f64;
        if mean >= threshold + SLACK {
            return Err(format!(
                "over-merge: cluster {c} ({} members) has mean intra-distance {mean:.6} ≥ threshold {threshold}",
                members.len()
            ));
        }
        if !cluster_is_connected(vectors, members) {
            return Err(format!(
                "over-merge: cluster {c} ({} members) is not connected under shared-dimension/duplicate edges",
                members.len()
            ));
        }
    }

    // Adjacent cluster pairs (sharing a dimension) are the only ones that
    // could sit below the threshold: disjoint-support pairs have every
    // cross distance — hence the mean — exactly 1.
    let mut dim_cluster: FxMap<u32, u32> = FxMap::default();
    let mut checked: crate::fxhash::FxSet<u64> = crate::fxhash::FxSet::default();
    'outer: for (i, v) in vectors.iter().enumerate() {
        let ci = clustering.assignment[i] as u32;
        for f in v.components().keys() {
            let prev = *dim_cluster.entry(f.0).or_insert(ci);
            if prev == ci {
                continue;
            }
            let key = ((prev.min(ci) as u64) << 32) | prev.max(ci) as u64;
            if !checked.insert(key) {
                continue;
            }
            let (a, b) = (&groups[prev as usize], &groups[ci as usize]);
            if a.len() * b.len() <= PAIR_CAP {
                let (mut sum, mut cnt) = (0.0f64, 0usize);
                for &x in a {
                    for &y in b {
                        sum += cosine_distance(&vectors[x], &vectors[y]);
                        cnt += 1;
                    }
                }
                let mean = sum / cnt as f64;
                if mean < threshold - SLACK {
                    return Err(format!(
                        "under-merge: clusters {prev} and {ci} have mean cross-distance {mean:.6} < threshold {threshold}"
                    ));
                }
            }
            if checked.len() >= sample {
                break 'outer;
            }
        }
    }
    Ok(())
}

/// `true` if the member items form one component under "shares a nonzero
/// dimension or is an exact duplicate" edges. Duplicates matter because
/// zero vectors (distance 0 pairwise) share no dimensions at all.
fn cluster_is_connected(vectors: &[SparseVec], members: &[usize]) -> bool {
    if members.len() < 2 {
        return true;
    }
    // Collapse exact duplicates first (bitwise component equality).
    let mut node_of: FxMap<Vec<(u32, u64)>, usize> = FxMap::default();
    let mut node_of_member: Vec<usize> = Vec::with_capacity(members.len());
    for &m in members {
        let key: Vec<(u32, u64)> = vectors[m]
            .components()
            .iter()
            .map(|(f, w)| (f.0, w.to_bits()))
            .collect();
        let next = node_of.len();
        node_of_member.push(*node_of.entry(key).or_insert(next));
    }
    let nodes = node_of.len();
    if nodes == 1 {
        return true;
    }
    let mut dim_nodes: FxMap<u32, Vec<usize>> = FxMap::default();
    for (i, &m) in members.iter().enumerate() {
        for f in vectors[m].components().keys() {
            dim_nodes.entry(f.0).or_default().push(node_of_member[i]);
        }
    }
    let mut seen = vec![false; nodes];
    let mut stack = vec![node_of_member[0]];
    seen[node_of_member[0]] = true;
    let mut reached = 1usize;
    // Adjacency by dimension: visiting a node visits every co-dimensional
    // node. Rebuilding per-node dim lists is avoided by scanning members.
    let mut dims_of_node: Vec<Vec<u32>> = vec![Vec::new(); nodes];
    for (i, &m) in members.iter().enumerate() {
        let node = node_of_member[i];
        if dims_of_node[node].is_empty() {
            dims_of_node[node] = vectors[m].components().keys().map(|f| f.0).collect();
        }
    }
    while let Some(node) = stack.pop() {
        for &dim in &dims_of_node[node] {
            for &other in &dim_nodes[&dim] {
                if !seen[other] {
                    seen[other] = true;
                    reached += 1;
                    stack.push(other);
                }
            }
        }
    }
    reached == nodes
}

/// The retained greedy closest-pair implementation — the executable
/// specification of [`hierarchical_cluster`]. `O(n³)` worst case: every
/// merge rescans all active pairs over a dense distance matrix.
pub fn hierarchical_cluster_reference(vectors: &[SparseVec], threshold: f64) -> Clustering {
    let n = vectors.len();
    if n == 0 {
        return Clustering {
            assignment: Vec::new(),
            n_clusters: 0,
        };
    }
    // Distance matrix between active clusters.
    let mut dist = vec![vec![0.0_f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = cosine_distance(&vectors[i], &vectors[j]);
            dist[i][j] = d;
            dist[j][i] = d;
        }
    }
    let mut active: Vec<bool> = vec![true; n];
    let mut size: Vec<f64> = vec![1.0; n];
    // members[c] lists original item indices in cluster c.
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

    loop {
        // Find the closest active pair.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            if !active[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !active[j] {
                    continue;
                }
                let d = dist[i][j];
                if best.map(|(_, _, bd)| d < bd).unwrap_or(true) {
                    best = Some((i, j, d));
                }
            }
        }
        let Some((i, j, d)) = best else { break };
        if d >= threshold {
            break;
        }
        // Merge j into i; Lance–Williams average-linkage update:
        // d(i∪j, k) = (|i| d(i,k) + |j| d(j,k)) / (|i| + |j|).
        let (si, sj) = (size[i], size[j]);
        for k in 0..n {
            if k == i || k == j || !active[k] {
                continue;
            }
            let nd = (si * dist[i][k] + sj * dist[j][k]) / (si + sj);
            dist[i][k] = nd;
            dist[k][i] = nd;
        }
        size[i] += size[j];
        let moved = std::mem::take(&mut members[j]);
        members[i].extend(moved);
        active[j] = false;
    }

    // Densify cluster ids in first-seen order for determinism.
    let mut assignment = vec![0usize; n];
    let mut n_clusters = 0;
    for c in 0..n {
        if !active[c] {
            continue;
        }
        for &item in &members[c] {
            assignment[item] = n_clusters;
        }
        n_clusters += 1;
    }
    Clustering {
        assignment,
        n_clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idf::IdfVectorizer;
    use csnake_inject::FaultId;
    use std::collections::BTreeSet;

    fn vecs(docs: &[&[u32]]) -> Vec<SparseVec> {
        let sets: Vec<BTreeSet<FaultId>> = docs
            .iter()
            .map(|d| d.iter().map(|i| FaultId(*i)).collect())
            .collect();
        let m = IdfVectorizer::fit(&sets);
        sets.iter().map(|s| m.vectorize(s)).collect()
    }

    #[test]
    fn identical_vectors_merge() {
        let v = vecs(&[&[1, 2], &[1, 2], &[5, 6], &[5, 6]]);
        let c = hierarchical_cluster(&v, 0.5);
        assert_eq!(c.n_clusters, 2);
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_eq!(c.assignment[2], c.assignment[3]);
        assert_ne!(c.assignment[0], c.assignment[2]);
    }

    #[test]
    fn disjoint_vectors_stay_apart() {
        let v = vecs(&[&[1], &[2], &[3]]);
        let c = hierarchical_cluster(&v, 0.5);
        assert_eq!(c.n_clusters, 3);
    }

    #[test]
    fn threshold_one_merges_everything_overlapping() {
        // Chain of pairwise-overlapping docs all below distance 1.
        let v = vecs(&[&[1, 2], &[2, 3], &[3, 4]]);
        let c = hierarchical_cluster(&v, 1.0 + 1e-9);
        assert_eq!(c.n_clusters, 1);
    }

    #[test]
    fn threshold_zero_keeps_all_singletons_when_distinct() {
        let v = vecs(&[&[1, 2], &[2, 3]]);
        let c = hierarchical_cluster(&v, 1e-12);
        assert_eq!(c.n_clusters, 2);
    }

    #[test]
    fn zero_vectors_cluster_together() {
        // Two docs containing only the ubiquitous fault vectorize to zero
        // and should land in the same cluster (distance 0).
        let v = vecs(&[&[1], &[1], &[1, 2]]);
        let c = hierarchical_cluster(&v, 0.5);
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_ne!(c.assignment[0], c.assignment[2]);
    }

    #[test]
    fn empty_input() {
        let c = hierarchical_cluster(&[], 0.5);
        assert_eq!(c.n_clusters, 0);
        assert!(c.assignment.is_empty());
    }

    #[test]
    fn sparse_matches_reference_on_fixtures() {
        let fixtures: Vec<Vec<&[u32]>> = vec![
            vec![&[1, 2], &[1, 2], &[5, 6], &[5, 6]],
            vec![&[1], &[2], &[3]],
            vec![&[1, 2], &[2, 3], &[3, 4]],
            vec![&[1], &[1], &[1, 2]],
            vec![&[1, 2, 3], &[2, 3, 4], &[9], &[9, 10], &[2, 3], &[1, 3]],
        ];
        for docs in fixtures {
            let v = vecs(&docs);
            for thr in [1e-12, 0.3, 0.5, 0.9, 1.0 + 1e-9] {
                let fast = hierarchical_cluster(&v, thr);
                let slow = hierarchical_cluster_reference(&v, thr);
                assert_eq!(fast, slow, "docs {docs:?} threshold {thr}");
            }
        }
    }

    #[test]
    fn stats_track_dedup_and_matrix_avoidance() {
        let v = vecs(&[&[1, 2], &[1, 2], &[1, 2], &[5, 6], &[5, 6], &[7]]);
        let (c, stats) = hierarchical_cluster_with_stats(&v, 0.5);
        assert_eq!(stats.vectors, 6);
        // Three distinct component maps.
        assert_eq!(stats.groups, 3);
        assert_eq!(stats.matrix_bytes, 8 * 36);
        // Disjoint supports: no candidate pairs, no merges beyond dedup.
        assert_eq!(stats.candidate_edges, 0);
        assert_eq!(stats.merges, 0);
        assert_eq!(c.n_clusters, 3);
    }

    #[test]
    fn all_zero_input_is_one_cluster() {
        let v = vecs(&[&[1], &[1], &[1]]);
        assert!(v.iter().all(|x| x.is_zero()));
        let c = hierarchical_cluster(&v, 0.5);
        assert_eq!(c.n_clusters, 1);
        assert_eq!(
            c,
            hierarchical_cluster_reference(&v, 0.5),
            "zero-vector handling must match the reference"
        );
    }

    #[test]
    fn cut_quality_accepts_reference_cuts_and_rejects_garbled_ones() {
        let v = vecs(&[
            &[1, 2, 3],
            &[1, 2, 3],
            &[2, 3, 4],
            &[9, 10],
            &[9, 10, 11],
            &[20],
            &[21],
        ]);
        let c = hierarchical_cluster(&v, 0.5);
        assert_eq!(c, hierarchical_cluster_reference(&v, 0.5));
        verify_cut_quality(&v, &c, 0.5, 64).expect("a real cut passes its own bounds");

        // Garble: force two far-apart clusters together.
        let mut over = c.clone();
        let far = over.assignment[5];
        let merged: Vec<usize> = over
            .assignment
            .iter()
            .map(|&a| if a == far { over.assignment[0] } else { a })
            .collect();
        // Re-densify.
        let mut remap = std::collections::BTreeMap::new();
        over.assignment = merged
            .iter()
            .map(|&a| {
                let next = remap.len();
                *remap.entry(a).or_insert(next)
            })
            .collect();
        over.n_clusters = remap.len();
        assert!(verify_cut_quality(&v, &over, 0.5, 64).is_err());
    }

    #[test]
    fn capped_path_matches_reference_on_fixtures() {
        // Force the hot-dimension machinery on tiny inputs: cap 0 makes
        // every dimension hot (no cold discovery at all — pairs come from
        // the Cauchy–Schwarz sweep alone); small caps mix cold and hot.
        let fixtures: Vec<Vec<&[u32]>> = vec![
            vec![&[1, 2], &[1, 2], &[5, 6], &[5, 6]],
            vec![&[1], &[2], &[3]],
            vec![&[1, 2], &[2, 3], &[3, 4]],
            vec![&[1], &[1], &[1, 2]],
            vec![&[1, 2, 3], &[2, 3, 4], &[9], &[9, 10], &[2, 3], &[1, 3]],
            vec![&[1], &[1, 2], &[1, 3], &[1, 2, 3], &[4], &[1, 4]],
        ];
        for docs in fixtures {
            let v = vecs(&docs);
            for thr in [1e-12, 0.3, 0.5, 0.7, 0.9, 1.0 + 1e-9] {
                let slow = hierarchical_cluster_reference(&v, thr);
                for cap in [0usize, 1, 2] {
                    let (fast, _) = hierarchical_cluster_with_stats_capped(&v, thr, cap);
                    assert_eq!(fast, slow, "docs {docs:?} threshold {thr} cap {cap}");
                }
            }
        }
    }

    #[test]
    fn hot_only_subthreshold_pairs_still_merge() {
        // {1} and {1, 2} are near-parallel *through dimension 1 alone*.
        // With cap 0 that dimension is hot, so no cold edge connects them
        // — the sweep has to recover the pair or the merge is lost.
        let v = vecs(&[&[1], &[1, 2], &[3], &[4]]);
        let thr = 0.7;
        let (c, stats) = hierarchical_cluster_with_stats_capped(&v, thr, 0);
        assert_eq!(c, hierarchical_cluster_reference(&v, thr));
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert!(
            stats.hot_pairs >= 1,
            "sweep must materialize the pair: {stats:?}"
        );
    }

    #[test]
    fn near_ubiquitous_dimension_stops_costing_its_square() {
        // 36 of 40 docs share dimension 0 (tiny IDF weight, huge posting
        // list); each also carries a unique rare dimension. Capped, the
        // hot dimension leaves enumeration and the sweep proves every
        // hot-only pair super-threshold from the masses — zero candidate
        // edges. Uncapped, the same input pays the posting list's square.
        let docs: Vec<Vec<u32>> = (0..40u32)
            .map(|i| {
                if i < 36 {
                    vec![0, 100 + i]
                } else {
                    vec![200 + i]
                }
            })
            .collect();
        let refs: Vec<&[u32]> = docs.iter().map(|d| d.as_slice()).collect();
        let v = vecs(&refs);
        let (capped, stats) = hierarchical_cluster_with_stats_capped(&v, 0.5, 8);
        assert_eq!(stats.hot_dims, 1);
        assert_eq!(stats.hot_pairs, 0);
        assert_eq!(
            stats.candidate_edges, 0,
            "no cold co-occurrence, no heavy pairs: {stats:?}"
        );
        let (uncapped, ustats) = hierarchical_cluster_with_stats(&v, 0.5);
        assert_eq!(
            ustats.candidate_edges,
            36 * 35 / 2,
            "the square the cap avoids"
        );
        assert_eq!(capped, uncapped);
        assert_eq!(capped, hierarchical_cluster_reference(&v, 0.5));
    }

    #[test]
    fn reference_handles_empty_input() {
        let c = hierarchical_cluster_reference(&[], 0.5);
        assert_eq!(c.n_clusters, 0);
    }

    #[test]
    fn groups_partition_items() {
        let v = vecs(&[&[1, 2], &[1, 2], &[5], &[6], &[5]]);
        let c = hierarchical_cluster(&v, 0.5);
        let groups = c.groups();
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 5);
        for g in &groups {
            assert!(!g.is_empty());
        }
    }
}
