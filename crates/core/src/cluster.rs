//! Agglomerative hierarchical clustering (§5.2 phase one).
//!
//! CSnake clusters faults whose phase-one interference vectors are similar
//! ("causally equivalent faults") with hierarchical clustering over cosine
//! distance. This implementation uses average linkage via the
//! Lance–Williams update and cuts the dendrogram at a distance threshold.

use crate::idf::{cosine_distance, SparseVec};

/// Result of clustering `n` items: `assignment[i]` is the cluster index of
/// item `i`; cluster indices are dense (`0..n_clusters`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// Cluster index per item.
    pub assignment: Vec<usize>,
    /// Number of clusters.
    pub n_clusters: usize,
}

impl Clustering {
    /// Items grouped by cluster, in cluster-index order.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut g = vec![Vec::new(); self.n_clusters];
        for (item, &c) in self.assignment.iter().enumerate() {
            g[c].push(item);
        }
        g
    }
}

/// Average-linkage agglomerative clustering cut at `threshold`.
///
/// Merges the closest pair of clusters while their average-linkage distance
/// is below `threshold`. Complexity is O(n³) worst case, which is fine for
/// the per-system fault counts this reproduction works with.
pub fn hierarchical_cluster(vectors: &[SparseVec], threshold: f64) -> Clustering {
    let n = vectors.len();
    if n == 0 {
        return Clustering {
            assignment: Vec::new(),
            n_clusters: 0,
        };
    }
    // Distance matrix between active clusters.
    let mut dist = vec![vec![0.0_f64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = cosine_distance(&vectors[i], &vectors[j]);
            dist[i][j] = d;
            dist[j][i] = d;
        }
    }
    let mut active: Vec<bool> = vec![true; n];
    let mut size: Vec<f64> = vec![1.0; n];
    // members[c] lists original item indices in cluster c.
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

    loop {
        // Find the closest active pair.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            if !active[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !active[j] {
                    continue;
                }
                let d = dist[i][j];
                if best.map(|(_, _, bd)| d < bd).unwrap_or(true) {
                    best = Some((i, j, d));
                }
            }
        }
        let Some((i, j, d)) = best else { break };
        if d >= threshold {
            break;
        }
        // Merge j into i; Lance–Williams average-linkage update:
        // d(i∪j, k) = (|i| d(i,k) + |j| d(j,k)) / (|i| + |j|).
        let (si, sj) = (size[i], size[j]);
        for k in 0..n {
            if k == i || k == j || !active[k] {
                continue;
            }
            let nd = (si * dist[i][k] + sj * dist[j][k]) / (si + sj);
            dist[i][k] = nd;
            dist[k][i] = nd;
        }
        size[i] += size[j];
        let moved = std::mem::take(&mut members[j]);
        members[i].extend(moved);
        active[j] = false;
    }

    // Densify cluster ids in first-seen order for determinism.
    let mut assignment = vec![0usize; n];
    let mut n_clusters = 0;
    for c in 0..n {
        if !active[c] {
            continue;
        }
        for &item in &members[c] {
            assignment[item] = n_clusters;
        }
        n_clusters += 1;
    }
    Clustering {
        assignment,
        n_clusters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::idf::IdfVectorizer;
    use csnake_inject::FaultId;
    use std::collections::BTreeSet;

    fn vecs(docs: &[&[u32]]) -> Vec<SparseVec> {
        let sets: Vec<BTreeSet<FaultId>> = docs
            .iter()
            .map(|d| d.iter().map(|i| FaultId(*i)).collect())
            .collect();
        let m = IdfVectorizer::fit(&sets);
        sets.iter().map(|s| m.vectorize(s)).collect()
    }

    #[test]
    fn identical_vectors_merge() {
        let v = vecs(&[&[1, 2], &[1, 2], &[5, 6], &[5, 6]]);
        let c = hierarchical_cluster(&v, 0.5);
        assert_eq!(c.n_clusters, 2);
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_eq!(c.assignment[2], c.assignment[3]);
        assert_ne!(c.assignment[0], c.assignment[2]);
    }

    #[test]
    fn disjoint_vectors_stay_apart() {
        let v = vecs(&[&[1], &[2], &[3]]);
        let c = hierarchical_cluster(&v, 0.5);
        assert_eq!(c.n_clusters, 3);
    }

    #[test]
    fn threshold_one_merges_everything_overlapping() {
        // Chain of pairwise-overlapping docs all below distance 1.
        let v = vecs(&[&[1, 2], &[2, 3], &[3, 4]]);
        let c = hierarchical_cluster(&v, 1.0 + 1e-9);
        assert_eq!(c.n_clusters, 1);
    }

    #[test]
    fn threshold_zero_keeps_all_singletons_when_distinct() {
        let v = vecs(&[&[1, 2], &[2, 3]]);
        let c = hierarchical_cluster(&v, 1e-12);
        assert_eq!(c.n_clusters, 2);
    }

    #[test]
    fn zero_vectors_cluster_together() {
        // Two docs containing only the ubiquitous fault vectorize to zero
        // and should land in the same cluster (distance 0).
        let v = vecs(&[&[1], &[1], &[1, 2]]);
        let c = hierarchical_cluster(&v, 0.5);
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_ne!(c.assignment[0], c.assignment[2]);
    }

    #[test]
    fn empty_input() {
        let c = hierarchical_cluster(&[], 0.5);
        assert_eq!(c.n_clusters, 0);
        assert!(c.assignment.is_empty());
    }

    #[test]
    fn groups_partition_items() {
        let v = vecs(&[&[1, 2], &[1, 2], &[5], &[6], &[5]]);
        let c = hierarchical_cluster(&v, 0.5);
        let groups = c.groups();
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 5);
        for g in &groups {
            assert!(!g.is_empty());
        }
    }
}
