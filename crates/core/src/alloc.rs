//! The Three-Phase Allocation (3PA) protocol of test budget (§5, §A).
//!
//! Given a budget of `4·|F|` experiments (25% / 50% / 25% across phases):
//!
//! 1. **Causally-equivalent fault detection** — inject every fault once into
//!    the reaching workload with the highest code coverage; IDF-vectorize the
//!    interference lists and hierarchically cluster the faults.
//! 2. **Causality exploration** — hand quotas to clusters round-robin; each
//!    quota injects a *random* fault of the cluster into a *new* workload.
//!    Leftover quota of an exhausted cluster transfers to a larger cluster.
//! 3. **Conditional-causality-guided extension** — weighted random
//!    allocation by `max(ε, 1 − SimScore(G))`: clusters whose members showed
//!    *diverse* (conditional) interferences get more budget. Quota landing on
//!    an exhausted cluster moves to the non-exhausted cluster with the
//!    smallest weight.

use std::collections::{BTreeMap, BTreeSet};

use csnake_inject::{FaultId, TestId};
use csnake_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::cluster::hierarchical_cluster_with_stats;
use crate::edge::CausalDb;
use crate::fca::ExperimentOutcome;
use crate::idf::{cosine_distance, IdfVectorizer, SparseVec};
use crate::observer::{CampaignObserver, NoopObserver};

/// Abstraction over "run one injection experiment"; implemented by the real
/// [`crate::driver::Driver`] and by mocks in tests.
pub trait ExperimentEngine {
    /// Faults eligible for injection (after static filtering).
    fn faults(&self) -> Vec<FaultId>;

    /// Tests whose profile runs cover the fault's program location.
    fn tests_reaching(&self, f: FaultId) -> Vec<TestId>;

    /// Code-coverage size of a test (number of fault points covered).
    fn coverage_size(&self, t: TestId) -> usize;

    /// Runs the `(fault, test)` experiment (injection runs + FCA).
    fn run_experiment(&mut self, f: FaultId, t: TestId, phase: u8) -> ExperimentOutcome;

    /// Runs a batch of *independent* experiments, returning outcomes in
    /// batch order.
    ///
    /// The default runs them sequentially; engines with parallel capacity
    /// (the real driver) override it and fan the batch out on a worker
    /// pool while keeping the result order deterministic. The 3PA planner
    /// exploits that every phase's `(fault, test)` picks depend only on
    /// prior-phase results — never on outcomes within the phase — so each
    /// phase plans its full batch first and executes it in one call.
    fn run_experiments(&mut self, batch: &[(FaultId, TestId, u8)]) -> Vec<ExperimentOutcome> {
        batch
            .iter()
            .map(|&(f, t, p)| self.run_experiment(f, t, p))
            .collect()
    }

    /// Runs a batch like [`run_experiments`](ExperimentEngine::run_experiments),
    /// additionally reporting partial progress through `progress` so the
    /// caller can checkpoint *inside* the batch.
    ///
    /// Engines that complete work out of order (the daemon's sharded
    /// coordinator) invoke `progress` whenever a contiguous run of
    /// outcomes lands, passing every completed [`ShardSpan`] with
    /// batch-relative `start` offsets. The default ignores the callback —
    /// in-process engines finish a batch atomically, so the per-chunk
    /// checkpoint in the runner is already as fine-grained as it gets.
    fn run_experiments_checkpointed(
        &mut self,
        batch: &[(FaultId, TestId, u8)],
        progress: &mut dyn FnMut(&[ShardSpan]),
    ) -> Vec<ExperimentOutcome> {
        let _ = progress;
        self.run_experiments(batch)
    }

    /// Drains the `(fault, test, phase)` cells whose experiments
    /// permanently failed since the last drain. Engines without a retry
    /// supervisor (mocks, baselines) never produce gaps; the real driver
    /// records a gap when a job exhausts its retry budget and the batch
    /// continues without it.
    fn take_gaps(&mut self) -> Vec<(FaultId, TestId, u8)> {
        Vec::new()
    }

    /// Total simulator runs executed so far, for checkpoint accounting.
    /// Engines that don't track runs report zero.
    fn runs_executed(&self) -> usize {
        0
    }

    /// Attaches an observer for engine-level supervision events
    /// (batch retries, abandoned cells, worker lifecycle). The default
    /// ignores it; the real driver and the daemon's distributed engine
    /// forward their supervisor events through it.
    fn attach_observer(&mut self, observer: std::sync::Arc<dyn CampaignObserver>) {
        let _ = observer;
    }

    /// `(hits, misses)` of the engine's injection-run cache so far.
    /// Engines without a cache (mocks, baselines) report `(0, 0)`; the
    /// real driver reports its counter pair and the daemon's distributed
    /// engine sums the latest per-worker figures, so the session can emit
    /// the same `trace_cache` observer event on every execution path.
    fn trace_cache_stats(&self) -> (usize, usize) {
        (0, 0)
    }
}

/// 3PA knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreePhaseConfig {
    /// Budget multiplier: total = `budget_per_fault · |F|` (paper: 4).
    pub budget_per_fault: usize,
    /// Dendrogram cut threshold on cosine distance for phase-one clustering.
    pub cluster_threshold: f64,
    /// Minimum cluster weight ε in phase three (paper: 0.01).
    pub epsilon: f64,
    /// RNG seed for the protocol's random picks.
    pub seed: u64,
}

impl Default for ThreePhaseConfig {
    fn default() -> Self {
        ThreePhaseConfig {
            budget_per_fault: 4,
            cluster_threshold: 0.5,
            epsilon: 0.01,
            seed: 0xC5_AA_5E,
        }
    }
}

impl ThreePhaseConfig {
    /// The total experiment budget for a campaign over `n_faults` injectable
    /// faults: `budget_per_fault · |F|` (§5). The single place this product
    /// is computed — the 3PA protocol, the random baseline and the shims all
    /// derive their budgets here.
    pub fn total_budget(&self, n_faults: usize) -> usize {
        self.budget_per_fault * n_faults
    }
}

/// A pluggable experiment-budget allocation policy: given an engine that can
/// run `(fault, test)` experiments, produce the campaign's
/// [`AllocationResult`].
///
/// The trait is object-safe, so sessions and harnesses can carry
/// `&dyn AllocationStrategy`. Bundled implementations:
///
/// * [`ThreePhase`] — the paper's Three-Phase Allocation protocol (§5);
/// * [`RandomAllocation`] — the §8.1 "Rnd.?" uniform baseline;
/// * `csnake_baselines::strategies` — exhaustive and coverage-greedy
///   comparison policies.
///
/// Implementations must be deterministic given the engine and their own
/// configuration (seeds live in the strategy), and should emit progress
/// through the observer (phase boundaries, experiment completions, new
/// edges, budget movement) — see [`crate::observer`] for the vocabulary.
pub trait AllocationStrategy {
    /// Short stable policy name, recorded in campaign artifacts and
    /// snapshots (e.g. `"three-phase"`, `"random"`).
    fn name(&self) -> &'static str;

    /// Runs the policy's full campaign against the engine.
    fn run(
        &self,
        engine: &mut dyn ExperimentEngine,
        observer: &dyn CampaignObserver,
    ) -> AllocationResult;

    /// Runs the policy with supervisor recovery: a checkpoint sink to
    /// stream mid-phase state to, a checkpoint cadence (experiments per
    /// checkpoint), and optionally a [`MidPhaseState`] to resume from.
    ///
    /// The default ignores recovery entirely and delegates to
    /// [`run`](AllocationStrategy::run) — correct for strategies whose
    /// plans are cheap to redo from the stage boundary. [`ThreePhase`]
    /// overrides it with the genuinely resumable runner.
    fn run_with_recovery(
        &self,
        engine: &mut dyn ExperimentEngine,
        observer: &dyn CampaignObserver,
        recovery: RecoveryContext<'_>,
    ) -> AllocationResult {
        let _ = recovery;
        self.run(engine, observer)
    }
}

/// Receives mid-phase checkpoint state from a resumable allocation runner.
///
/// Implementations own durability (atomic writes, IO-failure retries) and
/// report success/failure back; the runner treats a failed write as a
/// missed checkpoint — the campaign continues, resume is just coarser.
pub trait CheckpointSink {
    /// Persists `state`; returns `true` when the checkpoint safely
    /// reached disk.
    fn write(&self, state: &MidPhaseState) -> bool;
}

/// Recovery wiring handed to [`AllocationStrategy::run_with_recovery`].
#[derive(Default)]
pub struct RecoveryContext<'a> {
    /// Where to stream mid-phase checkpoints (`None`: don't checkpoint).
    pub sink: Option<&'a dyn CheckpointSink>,
    /// Experiments per checkpoint; the runner executes each phase batch in
    /// sub-chunks of this size and checkpoints after every chunk. Zero is
    /// treated as "whole phase in one chunk".
    pub cadence: usize,
    /// Mid-phase state to resume from (from a v4 snapshot), if any.
    pub resume: Option<MidPhaseState>,
}

/// Everything the 3PA runner needs to continue a phase from the middle.
///
/// The state deliberately stores *inputs* of the current phase's planning
/// (RNG state and used-set as they were when planning started) rather than
/// the planned batch itself: planning is deterministic in those inputs plus
/// the outcome prefix, so resume replans the identical batch and simply
/// skips the first `executed_in_phase` entries. Clusters and similarity
/// scores are likewise recomputed from the outcome prefix instead of being
/// persisted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MidPhaseState {
    /// The allocation phase being executed (3PA: 1–3).
    pub phase: u8,
    /// RNG state captured when the current phase's planning started.
    pub rng_state: [u64; 4],
    /// `(fault, test)` combinations used when planning started.
    pub used_at_phase_start: Vec<(FaultId, TestId)>,
    /// Budget spent when planning started.
    pub spent_at_phase_start: usize,
    /// Experiments of the current phase already executed (and present in
    /// `outcomes`).
    pub executed_in_phase: usize,
    /// Length of the phase-one batch — the outcome prefix clustering is
    /// derived from.
    pub phase1_len: usize,
    /// Every outcome executed so far, across all phases, in order.
    pub outcomes: Vec<ExperimentOutcome>,
    /// Permanently failed cells recorded so far.
    pub gaps: Vec<(FaultId, TestId, u8)>,
    /// The engine's run counter at checkpoint time.
    pub runs_executed: usize,
    /// Out-of-order completed islands of the current phase (snapshot v5):
    /// shard results that landed *beyond* the contiguous executed prefix.
    /// Empty for in-process engines, whose batches complete in order; the
    /// daemon's sharded coordinator records each completed shard here so
    /// a mid-batch kill never re-runs finished shards. Spans are
    /// phase-batch-relative, disjoint, and sorted by `start` — see
    /// [`MidPhaseState::normalize`] for the merge rule.
    pub shard_spans: Vec<ShardSpan>,
}

/// A contiguous run of outcomes a sharded engine completed out of order:
/// shard `shard` covered phase-batch positions `start ..
/// start + outcomes.len()`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSpan {
    /// Ordinal of the shard that produced this span (provenance only;
    /// results are merged purely by position).
    pub shard: u32,
    /// Offset of the span's first experiment in the phase batch.
    pub start: usize,
    /// The span's outcomes, in batch order.
    pub outcomes: Vec<ExperimentOutcome>,
    /// Permanently failed cells of this span, in batch order.
    pub gaps: Vec<(FaultId, TestId, u8)>,
    /// Simulator runs the span's experiments executed.
    pub runs: usize,
}

impl ShardSpan {
    /// One past the last phase-batch position the span covers.
    pub fn end(&self) -> usize {
        self.start + self.outcomes.len()
    }
}

impl MidPhaseState {
    /// The shard/gap merge rule: folds every span that touches the
    /// contiguous executed prefix into it and keeps the rest as islands.
    ///
    /// Spans are sorted by `start`; a span with `start ≤ executed_in_phase`
    /// extends the prefix (outcomes append after trimming any overlap, its
    /// gaps and run counter merge in span order — which *is* global batch
    /// order, since shards partition the batch by contiguous index
    /// ranges), and the fold repeats until the next span no longer
    /// touches. Remaining islands stay in `shard_spans` for
    /// [`run_three_phase_resumable`] to splice once execution reaches
    /// them. Folding is idempotent and order-insensitive, so a state
    /// normalizes identically no matter how many checkpoint/resume hops
    /// it went through.
    pub fn normalize(&mut self) {
        if self.shard_spans.is_empty() {
            return;
        }
        self.shard_spans.sort_by_key(|s| s.start);
        let mut islands = Vec::new();
        for mut span in std::mem::take(&mut self.shard_spans) {
            if span.start > self.executed_in_phase {
                islands.push(span);
                continue;
            }
            if span.end() <= self.executed_in_phase {
                // Entirely inside the prefix: already folded by an earlier
                // checkpoint hop (its gaps/runs are accounted for there).
                continue;
            }
            let end = span.end();
            let overlap = self.executed_in_phase - span.start;
            self.outcomes.extend(span.outcomes.drain(..).skip(overlap));
            self.executed_in_phase = end;
            self.gaps.append(&mut span.gaps);
            self.runs_executed += span.runs;
        }
        self.shard_spans = islands;
    }
}

/// The paper's Three-Phase Allocation protocol as a strategy object.
#[derive(Debug, Clone, Default)]
pub struct ThreePhase {
    /// Protocol knobs (budget multiplier, clustering threshold, ε, seed).
    pub cfg: ThreePhaseConfig,
}

impl ThreePhase {
    /// A 3PA strategy with the given knobs.
    pub fn new(cfg: ThreePhaseConfig) -> Self {
        ThreePhase { cfg }
    }
}

impl AllocationStrategy for ThreePhase {
    fn name(&self) -> &'static str {
        "three-phase"
    }

    fn run(
        &self,
        engine: &mut dyn ExperimentEngine,
        observer: &dyn CampaignObserver,
    ) -> AllocationResult {
        run_three_phase_with(engine, &self.cfg, observer)
    }

    fn run_with_recovery(
        &self,
        engine: &mut dyn ExperimentEngine,
        observer: &dyn CampaignObserver,
        recovery: RecoveryContext<'_>,
    ) -> AllocationResult {
        run_three_phase_resumable(engine, &self.cfg, observer, recovery)
    }
}

/// The uniform random-allocation baseline as a strategy object
/// (§8.1 Table 3 "Rnd.?"): same total budget as 3PA would get, uniformly
/// random `(fault, reaching-test)` combinations without repetition.
#[derive(Debug, Clone)]
pub struct RandomAllocation {
    /// Budget knobs; only `budget_per_fault` is used (the total is
    /// [`ThreePhaseConfig::total_budget`] over the engine's fault count).
    pub cfg: ThreePhaseConfig,
    /// RNG seed for the uniform draw.
    pub seed: u64,
}

impl RandomAllocation {
    /// A random baseline matching the budget of the given 3PA knobs.
    pub fn new(cfg: ThreePhaseConfig, seed: u64) -> Self {
        RandomAllocation { cfg, seed }
    }
}

impl AllocationStrategy for RandomAllocation {
    fn name(&self) -> &'static str {
        "random"
    }

    fn run(
        &self,
        engine: &mut dyn ExperimentEngine,
        observer: &dyn CampaignObserver,
    ) -> AllocationResult {
        let budget = self.cfg.total_budget(engine.faults().len());
        run_random_allocation_with(engine, budget, self.seed, observer)
    }
}

/// Everything the protocol produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocationResult {
    /// All causal relationships discovered, indexed for the beam search.
    pub db: CausalDb,
    /// Interference outcome of every experiment run.
    pub outcomes: Vec<ExperimentOutcome>,
    /// Fault clusters ("causally equivalent faults"), phase one.
    pub clusters: Vec<Vec<FaultId>>,
    /// Cluster index per fault.
    pub cluster_of: BTreeMap<FaultId, usize>,
    /// Intra-cluster interference similarity score per cluster (Eq. 6).
    pub sim_scores: Vec<f64>,
    /// Experiments actually run (≤ budget).
    pub experiments_run: usize,
    /// The configured total budget.
    pub budget: usize,
    /// `(fault, test, phase)` cells whose experiments permanently failed
    /// (exhausted the supervisor's retries); empty on a clean campaign.
    /// A gap's cell still contributes an *empty* outcome to `outcomes`,
    /// keeping batch order and budget accounting identical — the gap list
    /// is what the report surfaces as missing.
    pub gaps: Vec<(FaultId, TestId, u8)>,
}

impl AllocationResult {
    /// SimScore of the cluster containing fault `f` (1.0 if unknown).
    pub fn sim_score_of(&self, f: FaultId) -> f64 {
        self.cluster_of
            .get(&f)
            .map(|&c| self.sim_scores[c])
            .unwrap_or(1.0)
    }
}

/// Tracks which `(fault, test)` combinations have been exercised.
struct UsedSet {
    used: BTreeSet<(FaultId, TestId)>,
}

impl UsedSet {
    fn new() -> Self {
        UsedSet {
            used: BTreeSet::new(),
        }
    }

    fn from_pairs(pairs: &[(FaultId, TestId)]) -> Self {
        UsedSet {
            used: pairs.iter().copied().collect(),
        }
    }

    fn pairs(&self) -> Vec<(FaultId, TestId)> {
        self.used.iter().copied().collect()
    }

    fn mark(&mut self, f: FaultId, t: TestId) {
        self.used.insert((f, t));
    }

    fn unused_tests(&self, engine: &dyn ExperimentEngine, f: FaultId) -> Vec<TestId> {
        engine
            .tests_reaching(f)
            .into_iter()
            .filter(|t| !self.used.contains(&(f, *t)))
            .collect()
    }

    /// `true` if no (fault, test) combination in the cluster remains.
    fn cluster_exhausted(&self, engine: &dyn ExperimentEngine, cluster: &[FaultId]) -> bool {
        cluster
            .iter()
            .all(|f| self.unused_tests(engine, *f).is_empty())
    }
}

/// Picks a random fault of `cluster` that still has an unused reaching test,
/// and a random such test.
fn pick_from_cluster(
    engine: &dyn ExperimentEngine,
    used: &UsedSet,
    cluster: &[FaultId],
    rng: &mut SimRng,
) -> Option<(FaultId, TestId)> {
    let mut candidates: Vec<FaultId> = cluster.to_vec();
    while !candidates.is_empty() {
        let i = rng.pick(candidates.len());
        let f = candidates.swap_remove(i);
        let tests = used.unused_tests(engine, f);
        if !tests.is_empty() {
            let t = tests[rng.pick(tests.len())];
            return Some((f, t));
        }
    }
    None
}

/// Runs the full 3PA protocol against an engine (no observer).
pub fn run_three_phase(
    engine: &mut dyn ExperimentEngine,
    cfg: &ThreePhaseConfig,
) -> AllocationResult {
    run_three_phase_with(engine, cfg, &NoopObserver)
}

/// Runs the full 3PA protocol against an engine, streaming progress events
/// (phase boundaries, experiment completions, new edges, budget movement)
/// to the observer. Observers never influence the protocol: event order is
/// deterministic and identical to the unobserved run.
pub fn run_three_phase_with(
    engine: &mut dyn ExperimentEngine,
    cfg: &ThreePhaseConfig,
    observer: &dyn CampaignObserver,
) -> AllocationResult {
    run_three_phase_resumable(engine, cfg, observer, RecoveryContext::default())
}

/// Per-phase execution context: the planning *inputs* a mid-phase
/// checkpoint must capture to make the phase replannable on resume.
struct PhaseCtx {
    phase: u8,
    rng_at_start: [u64; 4],
    used_at_start: Vec<(FaultId, TestId)>,
    spent_at_start: usize,
    phase1_len: usize,
}

/// Executes one phase's planned batch, skipping an already-executed prefix
/// (resume), splicing already-completed out-of-order islands (per-shard
/// checkpoints) without re-running them, folding outcomes into the database
/// in batch order, draining engine gaps, and checkpointing after every
/// `cadence` experiments.
#[allow(clippy::too_many_arguments)]
fn execute_phase(
    engine: &mut dyn ExperimentEngine,
    batch: &[(FaultId, TestId, u8)],
    skip: usize,
    resume_islands: &[ShardSpan],
    ctx: &PhaseCtx,
    recovery: &RecoveryContext<'_>,
    observer: &dyn CampaignObserver,
    outcomes: &mut Vec<ExperimentOutcome>,
    db: &mut CausalDb,
    gaps: &mut Vec<(FaultId, TestId, u8)>,
) {
    observer.phase_started(ctx.phase, batch.len());
    let chunk_size = match (recovery.sink.is_some(), recovery.cadence) {
        (true, c) if c > 0 => c,
        // No sink (or cadence 0): the whole remainder is one chunk, which
        // keeps the engine's batch boundaries identical to the
        // pre-supervisor runner.
        _ => batch.len().saturating_sub(skip).max(1),
    };
    let mut executed = skip;
    // Islands a previous process completed beyond the executed prefix,
    // sorted by start; spliced into place when execution reaches them.
    let mut islands: std::collections::VecDeque<ShardSpan> = resume_islands.to_vec().into();
    islands.make_contiguous().sort_by_key(|s| s.start);
    while executed < batch.len() || islands.front().is_some() {
        // Splice every island the prefix has reached: push its outcomes
        // and gaps in batch order — edges enter the database exactly as a
        // live run would push them, but without re-emitting observer
        // events for work a previous process already reported.
        while islands.front().is_some_and(|s| s.start <= executed) {
            let span = islands.pop_front().expect("peeked island");
            let overlap = executed - span.start;
            for out in span.outcomes.into_iter().skip(overlap) {
                for e in &out.edges {
                    db.push(e.clone());
                }
                outcomes.push(out);
                executed += 1;
            }
            gaps.extend(span.gaps);
        }
        if executed >= batch.len() {
            break;
        }
        // The next live segment runs up to the next island (exclusive) in
        // cadence-sized chunks.
        let seg_end = islands
            .front()
            .map(|s| s.start)
            .unwrap_or(batch.len())
            .min(batch.len());
        let chunk = &batch[executed..(executed + chunk_size).min(seg_end)];
        let chunk_base = executed;
        let runs_at_chunk_start = engine.runs_executed();
        {
            // Mid-chunk progress from out-of-order sharded engines: build
            // a span-bearing state (chunk-relative spans shifted to phase
            // offsets, plus any islands still ahead), normalize, and
            // stream it to the sink like any other checkpoint.
            let mut progress = |spans: &[ShardSpan]| {
                let Some(sink) = recovery.sink else { return };
                let mut state = MidPhaseState {
                    phase: ctx.phase,
                    rng_state: ctx.rng_at_start,
                    used_at_phase_start: ctx.used_at_start.clone(),
                    spent_at_phase_start: ctx.spent_at_start,
                    executed_in_phase: chunk_base,
                    phase1_len: ctx.phase1_len,
                    outcomes: outcomes.clone(),
                    gaps: gaps.clone(),
                    runs_executed: runs_at_chunk_start,
                    shard_spans: spans
                        .iter()
                        .cloned()
                        .map(|mut s| {
                            s.start += chunk_base;
                            s
                        })
                        .chain(islands.iter().cloned())
                        .collect(),
                };
                state.normalize();
                sink.write(&state);
            };
            for out in engine.run_experiments_checkpointed(chunk, &mut progress) {
                for e in &out.edges {
                    if db.push(e.clone()) {
                        observer.edge_emitted(e);
                    }
                }
                observer.experiment_completed(&out);
                outcomes.push(out);
            }
        }
        executed += chunk.len();
        gaps.extend(engine.take_gaps());
        if let Some(sink) = recovery.sink {
            let state = MidPhaseState {
                phase: ctx.phase,
                rng_state: ctx.rng_at_start,
                used_at_phase_start: ctx.used_at_start.clone(),
                spent_at_phase_start: ctx.spent_at_start,
                executed_in_phase: executed,
                phase1_len: ctx.phase1_len,
                outcomes: outcomes.clone(),
                gaps: gaps.clone(),
                runs_executed: engine.runs_executed(),
                shard_spans: islands.iter().cloned().collect(),
            };
            // A failed write is a missed checkpoint, not a failed
            // campaign: the sink already retried, resume just falls back
            // to the previous checkpoint.
            sink.write(&state);
        }
    }
    observer.phase_finished(ctx.phase, batch.len());
}

/// The resumable 3PA runner behind [`run_three_phase_with`] and
/// [`ThreePhase::run_with_recovery`](AllocationStrategy::run_with_recovery).
///
/// With a default [`RecoveryContext`] this is *exactly* the classic runner:
/// each phase plans its full batch up front and executes it in one engine
/// call. With a sink, phase batches execute in cadence-sized sub-chunks —
/// order-preserving, so outcomes stay bit-identical — and every sub-chunk
/// boundary streams a [`MidPhaseState`] to the sink. With a resume state,
/// completed phases are reconstructed from the checkpointed outcome prefix
/// (clusters and similarity scores are recomputed, never trusted from
/// disk), the interrupted phase is replanned from its checkpointed RNG
/// state and used-set — reproducing the identical batch — and execution
/// continues after the already-executed prefix.
pub fn run_three_phase_resumable(
    engine: &mut dyn ExperimentEngine,
    cfg: &ThreePhaseConfig,
    observer: &dyn CampaignObserver,
    recovery: RecoveryContext<'_>,
) -> AllocationResult {
    let faults = engine.faults();
    let budget = cfg.total_budget(faults.len());

    // ---- State: fresh, or restored from a mid-phase checkpoint.
    let resume = recovery.resume.clone();
    let resume_phase = resume.as_ref().map(|s| s.phase).unwrap_or(0);
    let mut rng;
    let mut used;
    let mut outcomes: Vec<ExperimentOutcome>;
    let mut db = CausalDb::default();
    let mut spent;
    let mut gaps: Vec<(FaultId, TestId, u8)>;
    let mut resume_skip = 0usize;
    let mut phase1_len = 0usize;
    let mut resume_islands: Vec<ShardSpan> = Vec::new();
    if let Some(mut st) = resume {
        // Fold any shard islands adjacent to the executed prefix first
        // (gap merge rule); islands still ahead of the prefix are spliced
        // in during execution.
        st.normalize();
        resume_islands = std::mem::take(&mut st.shard_spans);
        rng = SimRng::from_state(st.rng_state);
        used = UsedSet::from_pairs(&st.used_at_phase_start);
        spent = st.spent_at_phase_start;
        gaps = st.gaps;
        resume_skip = st.executed_in_phase;
        phase1_len = st.phase1_len;
        outcomes = st.outcomes;
        // Rebuild the edge database by replaying the checkpointed outcomes
        // in order — same pushes, same dedup, same content as the
        // uninterrupted run (without re-emitting observer events for work
        // a previous process already reported).
        for out in &outcomes {
            for e in &out.edges {
                db.push(e.clone());
            }
        }
    } else {
        rng = SimRng::new(cfg.seed);
        used = UsedSet::new();
        spent = 0;
        gaps = Vec::new();
        outcomes = Vec::new();
    }

    // ---- Phase one: one probe per fault, highest-coverage reaching test.
    // Picks depend only on coverage — planning consumes no randomness, so
    // a phase-one resume replans from the empty used-set.
    if resume_phase <= 1 {
        let ctx_rng = rng.state();
        let ctx_used = used.pairs();
        let ctx_spent = spent;
        let phase1_cap = ctx_spent + (budget / 4).max(faults.len().min(budget));
        let mut batch: Vec<(FaultId, TestId, u8)> = Vec::new();
        for &f in &faults {
            if spent >= phase1_cap {
                break;
            }
            let mut tests = engine.tests_reaching(f);
            if tests.is_empty() {
                continue;
            }
            // Highest coverage, lowest id on ties (deterministic).
            tests.sort_by_key(|t| (std::cmp::Reverse(engine.coverage_size(*t)), *t));
            let t = tests[0];
            used.mark(f, t);
            batch.push((f, t, 1));
            spent += 1;
        }
        phase1_len = batch.len();
        let ctx = PhaseCtx {
            phase: 1,
            rng_at_start: ctx_rng,
            used_at_start: ctx_used,
            spent_at_start: ctx_spent,
            phase1_len,
        };
        let skip = if resume_phase == 1 { resume_skip } else { 0 };
        let islands: &[ShardSpan] = if resume_phase == 1 {
            &resume_islands
        } else {
            &[]
        };
        execute_phase(
            engine,
            &batch,
            skip,
            islands,
            &ctx,
            &recovery,
            observer,
            &mut outcomes,
            &mut db,
            &mut gaps,
        );
        observer.budget_spent(spent, budget);
    }

    // Cluster faults by phase-one interference vectors. Faults that never
    // ran (unreachable) get zero vectors and land with the non-impactful
    // cluster. On resume past phase one this recomputes — deterministically
    // — from the checkpointed outcome prefix.
    let phase1_interference: BTreeMap<FaultId, BTreeSet<FaultId>> = outcomes[..phase1_len]
        .iter()
        .map(|o| (o.fault, o.interference.clone()))
        .collect();
    let docs: Vec<BTreeSet<FaultId>> = faults
        .iter()
        .map(|f| phase1_interference.get(f).cloned().unwrap_or_default())
        .collect();
    let idf1 = IdfVectorizer::fit(&docs);
    let vectors: Vec<SparseVec> = docs.iter().map(|d| idf1.vectorize(d)).collect();
    let (clustering, cluster_stats) =
        hierarchical_cluster_with_stats(&vectors, cfg.cluster_threshold);
    observer.clustering(&cluster_stats);
    let mut clusters: Vec<Vec<FaultId>> = vec![Vec::new(); clustering.n_clusters];
    let mut cluster_of: BTreeMap<FaultId, usize> = BTreeMap::new();
    for (i, &f) in faults.iter().enumerate() {
        let c = clustering.assignment[i];
        clusters[c].push(f);
        cluster_of.insert(f, c);
    }

    // ---- Phase two: round-robin over clusters, random member into a new
    // workload. Picks depend only on the RNG and the used-set (never on
    // outcomes within the phase), so the plan/execute split preserves the
    // exact sequential pick sequence — and a resume replans the identical
    // batch from the checkpointed RNG state and used-set.
    if resume_phase <= 2 {
        let ctx_rng = rng.state();
        let ctx_used = used.pairs();
        let ctx_spent = spent;
        let phase2_cap = spent + budget / 2;
        let mut batch: Vec<(FaultId, TestId, u8)> = Vec::new();
        if !clusters.is_empty() {
            let mut rr = 0usize;
            let mut stall = 0usize;
            while spent < phase2_cap && stall < clusters.len() {
                let c = rr % clusters.len();
                rr += 1;
                let pick = pick_from_cluster(engine, &used, &clusters[c], &mut rng).or_else(|| {
                    // Quota transfer: exhausted cluster hands its quota to a
                    // random larger, non-exhausted cluster.
                    let larger: Vec<usize> = (0..clusters.len())
                        .filter(|&d| {
                            d != c
                                && clusters[d].len() > clusters[c].len()
                                && !used.cluster_exhausted(engine, &clusters[d])
                        })
                        .collect();
                    let fallback: Vec<usize> = if larger.is_empty() {
                        (0..clusters.len())
                            .filter(|&d| !used.cluster_exhausted(engine, &clusters[d]))
                            .collect()
                    } else {
                        larger
                    };
                    if fallback.is_empty() {
                        None
                    } else {
                        let d = fallback[rng.pick(fallback.len())];
                        pick_from_cluster(engine, &used, &clusters[d], &mut rng)
                    }
                });
                let Some((f, t)) = pick else {
                    stall += 1;
                    continue;
                };
                stall = 0;
                used.mark(f, t);
                batch.push((f, t, 2));
                spent += 1;
            }
        }
        let ctx = PhaseCtx {
            phase: 2,
            rng_at_start: ctx_rng,
            used_at_start: ctx_used,
            spent_at_start: ctx_spent,
            phase1_len,
        };
        let skip = if resume_phase == 2 { resume_skip } else { 0 };
        let islands: &[ShardSpan] = if resume_phase == 2 {
            &resume_islands
        } else {
            &[]
        };
        execute_phase(
            engine,
            &batch,
            skip,
            islands,
            &ctx,
            &recovery,
            observer,
            &mut outcomes,
            &mut db,
            &mut gaps,
        );
        observer.budget_spent(spent, budget);
    }

    // ---- Intra-cluster interference similarity (Eq. 6), from a second IDF
    // model fitted on both phases. A phase-three resume excludes the
    // phase-three prefix already executed — the scores must be the ones the
    // original process computed *before* phase three started.
    let sim_upto = if resume_phase == 3 {
        outcomes.len() - resume_skip
    } else {
        outcomes.len()
    };
    let all_docs: Vec<BTreeSet<FaultId>> = outcomes[..sim_upto]
        .iter()
        .map(|o| o.interference.clone())
        .collect();
    let idf2 = IdfVectorizer::fit(&all_docs);
    let outcome_vecs: Vec<SparseVec> = all_docs.iter().map(|d| idf2.vectorize(d)).collect();
    let sim_scores: Vec<f64> = clusters
        .iter()
        .map(|members| cluster_sim_score(members, &outcomes[..sim_upto], &outcome_vecs))
        .collect();

    // ---- Phase three: weighted random allocation by max(ε, 1 − SimScore).
    // Weights are fixed before the phase starts, so this phase also plans
    // its full batch first.
    {
        let ctx_rng = rng.state();
        let ctx_used = used.pairs();
        let ctx_spent = spent;
        let weights: Vec<f64> = sim_scores
            .iter()
            .map(|s| (1.0 - s).max(cfg.epsilon))
            .collect();
        let mut batch: Vec<(FaultId, TestId, u8)> = Vec::new();
        while spent < budget && !clusters.is_empty() {
            let viable: Vec<usize> = (0..clusters.len())
                .filter(|&c| !used.cluster_exhausted(engine, &clusters[c]))
                .collect();
            if viable.is_empty() {
                break;
            }
            let total_w: f64 = viable.iter().map(|&c| weights[c]).sum();
            let mut roll = rng.unit() * total_w;
            let mut chosen = viable[0];
            for &c in &viable {
                roll -= weights[c];
                if roll <= 0.0 {
                    chosen = c;
                    break;
                }
            }
            // Unused budget moves toward the smallest-weight viable cluster if
            // the draw somehow cannot produce a pick.
            let pick =
                pick_from_cluster(engine, &used, &clusters[chosen], &mut rng).or_else(|| {
                    let min = viable
                        .iter()
                        .copied()
                        .min_by(|a, b| weights[*a].total_cmp(&weights[*b]))?;
                    pick_from_cluster(engine, &used, &clusters[min], &mut rng)
                });
            let Some((f, t)) = pick else { break };
            used.mark(f, t);
            batch.push((f, t, 3));
            spent += 1;
        }
        let ctx = PhaseCtx {
            phase: 3,
            rng_at_start: ctx_rng,
            used_at_start: ctx_used,
            spent_at_start: ctx_spent,
            phase1_len,
        };
        let skip = if resume_phase == 3 { resume_skip } else { 0 };
        let islands: &[ShardSpan] = if resume_phase == 3 {
            &resume_islands
        } else {
            &[]
        };
        execute_phase(
            engine,
            &batch,
            skip,
            islands,
            &ctx,
            &recovery,
            observer,
            &mut outcomes,
            &mut db,
            &mut gaps,
        );
        observer.budget_spent(spent, budget);
    }

    AllocationResult {
        db,
        outcomes,
        clusters,
        cluster_of,
        sim_scores,
        experiments_run: spent,
        budget,
        gaps,
    }
}

/// Average pairwise cosine *similarity* of the cluster's experiment vectors
/// (Eq. 6): pairs are taken between experiments of *different* faults; when
/// the cluster has only one fault, pairs between its different workloads are
/// used; with fewer than two experiments the score is 1.0 (no evidence of
/// conditional behaviour).
fn cluster_sim_score(
    members: &[FaultId],
    outcomes: &[ExperimentOutcome],
    outcome_vecs: &[SparseVec],
) -> f64 {
    let member_set: BTreeSet<FaultId> = members.iter().copied().collect();
    let idxs: Vec<usize> = outcomes
        .iter()
        .enumerate()
        .filter(|(_, o)| member_set.contains(&o.fault))
        .map(|(i, _)| i)
        .collect();
    if idxs.len() < 2 {
        return 1.0;
    }
    let mut cross_sum = 0.0;
    let mut cross_n = 0usize;
    let mut any_sum = 0.0;
    let mut any_n = 0usize;
    for (a, &i) in idxs.iter().enumerate() {
        for &j in &idxs[a + 1..] {
            let sim = 1.0 - cosine_distance(&outcome_vecs[i], &outcome_vecs[j]);
            any_sum += sim;
            any_n += 1;
            if outcomes[i].fault != outcomes[j].fault {
                cross_sum += sim;
                cross_n += 1;
            }
        }
    }
    if cross_n > 0 {
        cross_sum / cross_n as f64
    } else if any_n > 0 {
        any_sum / any_n as f64
    } else {
        1.0
    }
}

/// Random-allocation baseline (§8.1 "Rnd.?" column): same budget, uniformly
/// random `(fault, reaching-test)` combinations without repetition.
pub fn run_random_allocation(
    engine: &mut dyn ExperimentEngine,
    budget: usize,
    seed: u64,
) -> AllocationResult {
    run_random_allocation_with(engine, budget, seed, &NoopObserver)
}

/// Observer-streaming variant of [`run_random_allocation`]; the whole
/// campaign is one planned batch reported as phase 0.
pub fn run_random_allocation_with(
    engine: &mut dyn ExperimentEngine,
    budget: usize,
    seed: u64,
    observer: &dyn CampaignObserver,
) -> AllocationResult {
    let faults = engine.faults();
    let mut rng = SimRng::new(seed);
    let mut combos: Vec<(FaultId, TestId)> = Vec::new();
    for &f in &faults {
        for t in engine.tests_reaching(f) {
            combos.push((f, t));
        }
    }
    // Fisher–Yates shuffle.
    for i in (1..combos.len()).rev() {
        let j = rng.pick(i + 1);
        combos.swap(i, j);
    }
    combos.truncate(budget);

    let batch: Vec<(FaultId, TestId, u8)> = combos.into_iter().map(|(f, t)| (f, t, 0)).collect();
    run_planned(engine, &batch, budget, observer)
}

/// Executes a fully pre-planned experiment batch and assembles the
/// baseline-shaped [`AllocationResult`]: singleton fault clusters and
/// SimScore 1.0 everywhere (no conditionality evidence is collected).
///
/// The building block for [`AllocationStrategy`] implementations whose
/// picks don't depend on outcomes — the random baseline above and the
/// `csnake_baselines::strategies` policies. Observer events mirror the 3PA
/// runner: one `phase_started`/`phase_finished` pair per contiguous run of
/// equal phase labels in the batch, experiment/edge events per outcome, a
/// final `budget_spent`.
pub fn run_planned(
    engine: &mut dyn ExperimentEngine,
    batch: &[(FaultId, TestId, u8)],
    budget: usize,
    observer: &dyn CampaignObserver,
) -> AllocationResult {
    let faults = engine.faults();
    let mut db = CausalDb::default();
    let mut outcomes: Vec<ExperimentOutcome> = Vec::new();
    let mut gaps: Vec<(FaultId, TestId, u8)> = Vec::new();
    let mut start = 0usize;
    while start < batch.len() {
        let phase = batch[start].2;
        let end = batch[start..]
            .iter()
            .position(|&(_, _, p)| p != phase)
            .map(|k| start + k)
            .unwrap_or(batch.len());
        let chunk = &batch[start..end];
        observer.phase_started(phase, chunk.len());
        for out in engine.run_experiments(chunk) {
            for e in &out.edges {
                if db.push(e.clone()) {
                    observer.edge_emitted(e);
                }
            }
            observer.experiment_completed(&out);
            outcomes.push(out);
        }
        gaps.extend(engine.take_gaps());
        observer.phase_finished(phase, chunk.len());
        start = end;
    }
    let n = outcomes.len();
    observer.budget_spent(n, budget);
    AllocationResult {
        db,
        outcomes,
        clusters: faults.iter().map(|f| vec![*f]).collect(),
        cluster_of: faults.iter().enumerate().map(|(i, f)| (*f, i)).collect(),
        sim_scores: vec![1.0; faults.len()],
        experiments_run: n,
        budget,
        gaps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::{CausalEdge, CompatState, EdgeKind};

    /// Mock engine: a scripted interference function over (fault, test).
    struct MockEngine {
        faults: Vec<FaultId>,
        tests: Vec<TestId>,
        /// (fault, test) → interference list.
        script: BTreeMap<(u32, u32), Vec<u32>>,
        log: Vec<(FaultId, TestId, u8)>,
    }

    impl MockEngine {
        fn new(n_faults: u32, n_tests: u32) -> Self {
            MockEngine {
                faults: (0..n_faults).map(FaultId).collect(),
                tests: (0..n_tests).map(TestId).collect(),
                script: BTreeMap::new(),
                log: Vec::new(),
            }
        }

        fn on(&mut self, f: u32, t: u32, effects: &[u32]) {
            self.script.insert((f, t), effects.to_vec());
        }
    }

    impl ExperimentEngine for MockEngine {
        fn faults(&self) -> Vec<FaultId> {
            self.faults.clone()
        }
        fn tests_reaching(&self, _f: FaultId) -> Vec<TestId> {
            self.tests.clone()
        }
        fn coverage_size(&self, t: TestId) -> usize {
            // Test 0 has the highest coverage.
            100 - t.0 as usize
        }
        fn run_experiment(&mut self, f: FaultId, t: TestId, phase: u8) -> ExperimentOutcome {
            self.log.push((f, t, phase));
            let effects = self.script.get(&(f.0, t.0)).cloned().unwrap_or_default();
            let interference: BTreeSet<FaultId> = effects.iter().map(|e| FaultId(*e)).collect();
            let edges = interference
                .iter()
                .map(|&e| CausalEdge {
                    cause: f,
                    effect: e,
                    kind: EdgeKind::EI,
                    test: t,
                    phase,
                    cause_state: CompatState::empty(),
                    effect_state: CompatState::empty(),
                })
                .collect();
            ExperimentOutcome {
                fault: f,
                test: t,
                interference,
                edges,
            }
        }
    }

    fn cfg() -> ThreePhaseConfig {
        ThreePhaseConfig::default()
    }

    #[test]
    fn budget_is_respected_and_phases_ordered() {
        let mut eng = MockEngine::new(6, 8);
        let res = run_three_phase(&mut eng, &cfg());
        assert_eq!(res.budget, 24);
        assert!(res.experiments_run <= 24);
        assert_eq!(res.experiments_run, eng.log.len());
        // Phase labels are monotonically non-decreasing.
        let phases: Vec<u8> = eng.log.iter().map(|(_, _, p)| *p).collect();
        let mut sorted = phases.clone();
        sorted.sort_unstable();
        assert_eq!(phases, sorted);
        // Phase one ran exactly one experiment per fault.
        assert_eq!(phases.iter().filter(|&&p| p == 1).count(), 6);
    }

    #[test]
    fn phase_one_uses_highest_coverage_test() {
        let mut eng = MockEngine::new(3, 4);
        run_three_phase(&mut eng, &cfg());
        for (_, t, p) in &eng.log {
            if *p == 1 {
                assert_eq!(*t, TestId(0), "phase 1 must pick max-coverage test");
            }
        }
    }

    #[test]
    fn no_duplicate_fault_test_combinations() {
        let mut eng = MockEngine::new(5, 5);
        run_three_phase(&mut eng, &cfg());
        let mut combos: Vec<(FaultId, TestId)> = eng.log.iter().map(|(f, t, _)| (*f, *t)).collect();
        let before = combos.len();
        combos.sort_unstable();
        combos.dedup();
        assert_eq!(combos.len(), before, "a (fault, test) pair was repeated");
    }

    #[test]
    fn causally_equivalent_faults_cluster_together() {
        let mut eng = MockEngine::new(4, 6);
        // Faults 0 and 1 both trigger {10, 11}; faults 2, 3 trigger nothing.
        for t in 0..6 {
            eng.on(0, t, &[10, 11]);
            eng.on(1, t, &[10, 11]);
        }
        let res = run_three_phase(&mut eng, &cfg());
        assert_eq!(res.cluster_of[&FaultId(0)], res.cluster_of[&FaultId(1)]);
        assert_eq!(res.cluster_of[&FaultId(2)], res.cluster_of[&FaultId(3)]);
        assert_ne!(res.cluster_of[&FaultId(0)], res.cluster_of[&FaultId(2)]);
    }

    #[test]
    fn conditional_cluster_gets_low_sim_score() {
        let mut eng = MockEngine::new(4, 6);
        // Fault 0: different interference per test (conditional).
        for t in 0..6 {
            eng.on(0, t, &[20 + t]);
        }
        // Faults 1,2: identical everywhere (unconditional).
        for t in 0..6 {
            eng.on(1, t, &[40, 41]);
            eng.on(2, t, &[40, 41]);
        }
        let res = run_three_phase(&mut eng, &cfg());
        let c_conditional = res.cluster_of[&FaultId(0)];
        let c_stable = res.cluster_of[&FaultId(1)];
        assert!(
            res.sim_scores[c_conditional] < res.sim_scores[c_stable],
            "conditional {} !< stable {}",
            res.sim_scores[c_conditional],
            res.sim_scores[c_stable]
        );
    }

    #[test]
    fn edges_accumulate_in_db() {
        let mut eng = MockEngine::new(2, 3);
        for t in 0..3 {
            eng.on(0, t, &[5]);
            eng.on(1, t, &[6]);
        }
        let res = run_three_phase(&mut eng, &cfg());
        assert!(res.db.len() >= 2);
        assert!(!res.db.edges_from(FaultId(0)).is_empty());
    }

    #[test]
    fn stops_when_all_combinations_exhausted() {
        // 2 faults × 2 tests = 4 combos < budget 8.
        let mut eng = MockEngine::new(2, 2);
        let res = run_three_phase(&mut eng, &cfg());
        assert_eq!(res.experiments_run, 4);
    }

    #[test]
    fn random_allocation_uses_budget_without_repeats() {
        let mut eng = MockEngine::new(4, 4);
        let res = run_random_allocation(&mut eng, 10, 7);
        assert_eq!(res.experiments_run, 10);
        let mut combos: Vec<(FaultId, TestId)> = eng.log.iter().map(|(f, t, _)| (*f, *t)).collect();
        combos.sort_unstable();
        combos.dedup();
        assert_eq!(combos.len(), 10);
    }

    #[test]
    fn random_allocation_caps_at_available_combos() {
        let mut eng = MockEngine::new(2, 2);
        let res = run_random_allocation(&mut eng, 100, 7);
        assert_eq!(res.experiments_run, 4);
    }

    #[test]
    fn sim_score_of_unknown_fault_defaults_high() {
        let mut eng = MockEngine::new(2, 2);
        let res = run_three_phase(&mut eng, &cfg());
        assert_eq!(res.sim_score_of(FaultId(99)), 1.0);
    }

    /// Sink that archives every mid-phase state it is handed.
    struct RecordingSink {
        states: std::cell::RefCell<Vec<MidPhaseState>>,
    }

    impl RecordingSink {
        fn new() -> Self {
            RecordingSink {
                states: std::cell::RefCell::new(Vec::new()),
            }
        }
    }

    impl CheckpointSink for RecordingSink {
        fn write(&self, state: &MidPhaseState) -> bool {
            self.states.borrow_mut().push(state.clone());
            true
        }
    }

    fn scripted_engine() -> MockEngine {
        let mut eng = MockEngine::new(7, 5);
        for t in 0..5 {
            eng.on(0, t, &[1, 2]);
            eng.on(1, t, &[2]);
            eng.on(3, t, &[0, 4]);
            eng.on(5, t, if t % 2 == 0 { &[6] } else { &[] });
        }
        eng
    }

    fn assert_results_identical(a: &AllocationResult, b: &AllocationResult) {
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.db.edges(), b.db.edges());
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.cluster_of, b.cluster_of);
        assert_eq!(a.sim_scores, b.sim_scores);
        assert_eq!(a.experiments_run, b.experiments_run);
        assert_eq!(a.budget, b.budget);
        assert_eq!(a.gaps, b.gaps);
    }

    #[test]
    fn checkpointing_does_not_perturb_the_campaign() {
        let mut plain = scripted_engine();
        let baseline = run_three_phase(&mut plain, &cfg());

        for cadence in [1, 2, 3] {
            let mut eng = scripted_engine();
            let sink = RecordingSink::new();
            let res = run_three_phase_resumable(
                &mut eng,
                &cfg(),
                &crate::observer::NoopObserver,
                RecoveryContext {
                    sink: Some(&sink),
                    cadence,
                    resume: None,
                },
            );
            assert_results_identical(&baseline, &res);
            assert_eq!(plain.log, eng.log, "cadence {cadence} changed execution");
            assert!(!sink.states.borrow().is_empty());
        }
    }

    /// The tentpole invariant: resuming from *every* checkpoint a campaign
    /// ever wrote reproduces the uninterrupted campaign exactly — same
    /// outcome sequence, same edges, same clusters, same scores.
    #[test]
    fn resume_from_every_checkpoint_is_bit_identical() {
        let mut plain = scripted_engine();
        let baseline = run_three_phase(&mut plain, &cfg());

        let mut eng = scripted_engine();
        let sink = RecordingSink::new();
        run_three_phase_resumable(
            &mut eng,
            &cfg(),
            &crate::observer::NoopObserver,
            RecoveryContext {
                sink: Some(&sink),
                cadence: 1,
                resume: None,
            },
        );
        let states = sink.states.borrow().clone();
        assert!(states.len() >= baseline.experiments_run);

        for (i, state) in states.iter().enumerate() {
            let mut resumed_eng = scripted_engine();
            let res = run_three_phase_resumable(
                &mut resumed_eng,
                &cfg(),
                &crate::observer::NoopObserver,
                RecoveryContext {
                    sink: None,
                    cadence: 0,
                    resume: Some(state.clone()),
                },
            );
            assert_results_identical(&baseline, &res);
            // The resumed engine only executed the suffix.
            assert_eq!(
                resumed_eng.log.len(),
                baseline.experiments_run - state.outcomes.len(),
                "checkpoint {i} replayed already-executed experiments"
            );
        }
    }

    #[test]
    fn default_recovery_context_is_the_classic_runner() {
        let mut a = scripted_engine();
        let classic = run_three_phase(&mut a, &cfg());
        let mut b = scripted_engine();
        let via_recovery = ThreePhase::default().run_with_recovery(
            &mut b,
            &crate::observer::NoopObserver,
            RecoveryContext::default(),
        );
        assert_results_identical(&classic, &via_recovery);
        assert_eq!(a.log, b.log);
    }

    /// A minimal outcome for span-merge tests: fault id doubles as the
    /// payload, so sequences are easy to assert on.
    fn out(f: u32) -> ExperimentOutcome {
        ExperimentOutcome {
            fault: FaultId(f),
            test: TestId(0),
            interference: BTreeSet::new(),
            edges: Vec::new(),
        }
    }

    fn span(shard: u32, start: usize, faults: &[u32], runs: usize) -> ShardSpan {
        ShardSpan {
            shard,
            start,
            outcomes: faults.iter().copied().map(out).collect(),
            gaps: Vec::new(),
            runs,
        }
    }

    fn mid_state(executed: usize, faults: &[u32], spans: Vec<ShardSpan>) -> MidPhaseState {
        MidPhaseState {
            phase: 2,
            rng_state: [1, 2, 3, 4],
            used_at_phase_start: Vec::new(),
            spent_at_phase_start: 0,
            executed_in_phase: executed,
            phase1_len: 0,
            outcomes: faults.iter().copied().map(out).collect(),
            gaps: Vec::new(),
            runs_executed: 10,
            shard_spans: spans,
        }
    }

    #[test]
    fn normalize_folds_adjacent_spans_and_keeps_islands() {
        // Prefix covers [0, 2); spans cover [2, 4) and [6, 7): the first is
        // adjacent and folds, the second stays an island.
        let mut st = mid_state(
            2,
            &[0, 1],
            vec![span(1, 6, &[6], 3), span(0, 2, &[2, 3], 5)],
        );
        st.normalize();
        assert_eq!(st.executed_in_phase, 4);
        let seq: Vec<u32> = st.outcomes.iter().map(|o| o.fault.0).collect();
        assert_eq!(seq, vec![0, 1, 2, 3]);
        assert_eq!(st.runs_executed, 15);
        assert_eq!(st.shard_spans.len(), 1);
        assert_eq!(st.shard_spans[0].start, 6);
    }

    #[test]
    fn normalize_trims_overlap_and_chains_folds() {
        // Span [1, 4) overlaps the prefix [0, 2) by one outcome; after the
        // trim+fold the prefix reaches 4 and the next span [4, 5) chains.
        let mut st = mid_state(
            2,
            &[0, 1],
            vec![span(0, 1, &[1, 2, 3], 7), span(1, 4, &[4], 2)],
        );
        st.normalize();
        assert_eq!(st.executed_in_phase, 5);
        let seq: Vec<u32> = st.outcomes.iter().map(|o| o.fault.0).collect();
        assert_eq!(seq, vec![0, 1, 2, 3, 4]);
        assert_eq!(st.runs_executed, 19);
        assert!(st.shard_spans.is_empty());
    }

    #[test]
    fn normalize_drops_spans_inside_the_prefix_and_is_idempotent() {
        let mut st = mid_state(
            3,
            &[0, 1, 2],
            vec![span(0, 0, &[0, 1], 9), span(1, 5, &[5], 1)],
        );
        st.normalize();
        assert_eq!(st.executed_in_phase, 3);
        assert_eq!(
            st.runs_executed, 10,
            "folded-before span must not re-count runs"
        );
        assert_eq!(st.shard_spans.len(), 1);
        let again = st.clone();
        st.normalize();
        assert_eq!(st, again);
    }

    /// Engine wrapper that completes the *second* half of every chunk
    /// first and streams it through `progress` as an out-of-order shard
    /// span — the access pattern of the daemon's sharded coordinator.
    struct ShardedEngine {
        inner: MockEngine,
    }

    impl ExperimentEngine for ShardedEngine {
        fn faults(&self) -> Vec<FaultId> {
            self.inner.faults()
        }
        fn tests_reaching(&self, f: FaultId) -> Vec<TestId> {
            self.inner.tests_reaching(f)
        }
        fn coverage_size(&self, t: TestId) -> usize {
            self.inner.coverage_size(t)
        }
        fn run_experiment(&mut self, f: FaultId, t: TestId, phase: u8) -> ExperimentOutcome {
            self.inner.run_experiment(f, t, phase)
        }
        fn run_experiments_checkpointed(
            &mut self,
            batch: &[(FaultId, TestId, u8)],
            progress: &mut dyn FnMut(&[ShardSpan]),
        ) -> Vec<ExperimentOutcome> {
            let mid = batch.len() / 2;
            if mid == 0 {
                return self.inner.run_experiments(batch);
            }
            let tail: Vec<ExperimentOutcome> = batch[mid..]
                .iter()
                .map(|&(f, t, p)| self.inner.run_experiment(f, t, p))
                .collect();
            progress(&[span_of(1, mid, &tail)]);
            let mut head: Vec<ExperimentOutcome> = batch[..mid]
                .iter()
                .map(|&(f, t, p)| self.inner.run_experiment(f, t, p))
                .collect();
            progress(&[span_of(0, 0, &head), span_of(1, mid, &tail)]);
            head.extend(tail);
            head
        }
    }

    fn span_of(shard: u32, start: usize, outcomes: &[ExperimentOutcome]) -> ShardSpan {
        ShardSpan {
            shard,
            start,
            outcomes: outcomes.to_vec(),
            gaps: Vec::new(),
            runs: 0,
        }
    }

    #[test]
    fn out_of_order_shard_completion_does_not_perturb_results() {
        let mut plain = scripted_engine();
        let baseline = run_three_phase(&mut plain, &cfg());

        for cadence in [2, 3, 5] {
            let mut eng = ShardedEngine {
                inner: scripted_engine(),
            };
            let sink = RecordingSink::new();
            let res = run_three_phase_resumable(
                &mut eng,
                &cfg(),
                &crate::observer::NoopObserver,
                RecoveryContext {
                    sink: Some(&sink),
                    cadence,
                    resume: None,
                },
            );
            assert_results_identical(&baseline, &res);
            assert!(
                sink.states
                    .borrow()
                    .iter()
                    .any(|s| !s.shard_spans.is_empty()),
                "cadence {cadence} never wrote a span-bearing checkpoint"
            );
        }
    }

    /// The daemon invariant on top of the supervisor one: resuming from
    /// *every* checkpoint a sharded (out-of-order) campaign wrote — island
    /// states included — reproduces the uninterrupted campaign exactly,
    /// and outcomes a shard already completed are never re-run.
    #[test]
    fn resume_from_span_bearing_checkpoints_is_bit_identical() {
        let mut plain = scripted_engine();
        let baseline = run_three_phase(&mut plain, &cfg());

        let mut eng = ShardedEngine {
            inner: scripted_engine(),
        };
        let sink = RecordingSink::new();
        run_three_phase_resumable(
            &mut eng,
            &cfg(),
            &crate::observer::NoopObserver,
            RecoveryContext {
                sink: Some(&sink),
                cadence: 4,
                resume: None,
            },
        );
        let states = sink.states.borrow().clone();
        assert!(states.iter().any(|s| !s.shard_spans.is_empty()));

        for (i, state) in states.iter().enumerate() {
            let banked: usize = state.outcomes.len()
                + state
                    .shard_spans
                    .iter()
                    .map(|s| s.outcomes.len())
                    .sum::<usize>();
            let mut resumed_eng = scripted_engine();
            let res = run_three_phase_resumable(
                &mut resumed_eng,
                &cfg(),
                &crate::observer::NoopObserver,
                RecoveryContext {
                    sink: None,
                    cadence: 0,
                    resume: Some(state.clone()),
                },
            );
            assert_results_identical(&baseline, &res);
            assert_eq!(
                resumed_eng.log.len(),
                baseline.experiments_run - banked,
                "checkpoint {i} re-ran work a shard already completed"
            );
        }
    }
}
