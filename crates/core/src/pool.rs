//! Scope-borrowed worker pool shared by the stitch search and the
//! experiment driver.
//!
//! Both hot paths fan identical-shaped jobs out to a fixed set of worker
//! threads and need the results back **in job order** so parallel runs are
//! bit-identical to sequential ones. The pool is deliberately minimal:
//!
//! * workers are spawned inside a caller-provided [`std::thread::scope`],
//!   so jobs may borrow stack data (the stitch search's shared index, the
//!   driver's profile caches) without `Arc`-wrapping it;
//! * jobs are tagged with their index on dispatch and reassembled by tag,
//!   so completion order never leaks into results;
//! * the job channel closes when the pool drops, which is how workers
//!   learn to exit before the scope joins them.
//!
//! [`run_ordered`] is the one-shot convenience for callers that do not
//! need to reuse the pool across rounds; the stitch search keeps a
//! [`ScopedPool`] alive across beam levels to amortise thread spawning.

use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::Scope;

/// A persistent pool of scoped worker threads mapping jobs `J` to results
/// `R` through a shared worker function.
pub struct ScopedPool<'env, J, R> {
    job_tx: Sender<(usize, J)>,
    result_rx: Receiver<(usize, std::thread::Result<R>)>,
    threads: usize,
    _marker: PhantomData<&'env ()>,
}

impl<'env, J: Send + 'env, R: Send + 'env> ScopedPool<'env, J, R> {
    /// Spawns `threads` workers on the scope, each running `work` on every
    /// job it receives. `work` is borrowed for the whole scope, so it may
    /// itself borrow anything that outlives the scope.
    pub fn spawn<'scope, W>(
        scope: &'scope Scope<'scope, 'env>,
        work: &'scope W,
        threads: usize,
    ) -> ScopedPool<'env, J, R>
    where
        W: Fn(J) -> R + Sync,
        J: 'scope,
        R: 'scope,
    {
        let threads = threads.max(1);
        let (job_tx, job_rx) = channel::<(usize, J)>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) = channel();
        let poisoned = Arc::new(AtomicBool::new(false));
        for _ in 0..threads {
            let job_rx = Arc::clone(&job_rx);
            let result_tx = result_tx.clone();
            let poisoned = Arc::clone(&poisoned);
            scope.spawn(move || loop {
                // The guard drops as soon as `recv` returns, so other
                // workers can pick up the next job immediately.
                let job = { job_rx.lock().expect("job queue").recv() };
                let Ok((idx, job)) = job else { break };
                // Once poisoned, drain remaining queued jobs without
                // executing them — fail-fast means not running a
                // campaign's worth of doomed work first. The dispatcher
                // never deadlocks on a skipped job's missing result
                // because the panicking worker's Err send below is
                // unconditional and the channel unbounded: the Err always
                // reaches the dispatcher, which re-raises on receiving it
                // and stops waiting for further results.
                if poisoned.load(Ordering::Relaxed) {
                    continue;
                }
                // A panicking job must not starve `map`'s result loop (the
                // dispatcher would deadlock inside the scope, which cannot
                // join the panicked worker until the dispatcher returns).
                // Ship the payload instead; `map` re-raises it.
                let out = catch_unwind(AssertUnwindSafe(|| work(job)));
                if out.is_err() {
                    poisoned.store(true, Ordering::Relaxed);
                }
                if result_tx.send((idx, out)).is_err() {
                    break;
                }
            });
        }
        ScopedPool {
            job_tx,
            result_rx,
            threads,
            _marker: PhantomData,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Dispatches all jobs across the pool and returns results in job
    /// order, regardless of completion order.
    ///
    /// Takes `&mut self`: job tags and the result channel are per-pool,
    /// so two concurrent `map` calls on one pool would cross-deliver
    /// results — the exclusive borrow rules that out at compile time.
    ///
    /// # Panics
    ///
    /// Re-raises the first job panic it receives, preserving the
    /// fail-fast behaviour of running the jobs inline. (Workers drain —
    /// but no longer execute — jobs queued after a panic, so the scope
    /// joins promptly.)
    pub fn map(&mut self, jobs: impl IntoIterator<Item = J>) -> Vec<R> {
        let mut sent = 0usize;
        for j in jobs {
            self.job_tx.send((sent, j)).expect("worker pool alive");
            sent += 1;
        }
        let mut slots: Vec<Option<R>> = (0..sent).map(|_| None).collect();
        for _ in 0..sent {
            let (idx, r) = self.result_rx.recv().expect("worker result");
            match r {
                Ok(v) => slots[idx] = Some(v),
                Err(payload) => resume_unwind(payload),
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("all jobs returned"))
            .collect()
    }
}

/// The machine's hardware parallelism (1 when unknown).
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Splits `0..n` into at most `parts` contiguous, non-empty, near-equal
/// ranges — the standard chunking for ordered parallel fan-out (stitch
/// index build, pair-verdict sharding). Covers `0..n` exactly, in order.
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let size = n.div_ceil(parts);
    (0..parts)
        .map(|p| (p * size).min(n)..((p + 1) * size).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}

/// One-shot ordered parallel map: runs `work` over `jobs` on up to
/// `threads` workers (capped at the hardware parallelism and the job
/// count) and returns results in job order. Falls back to a plain
/// sequential map when one worker would do, keeping results identical
/// either way.
pub fn run_ordered<J, R, W>(jobs: Vec<J>, threads: usize, work: W) -> Vec<R>
where
    J: Send,
    R: Send,
    W: Fn(J) -> R + Sync,
{
    let threads = threads
        .max(1)
        .min(jobs.len().max(1))
        .min(hardware_threads());
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(work).collect();
    }
    std::thread::scope(|scope| {
        let mut pool = ScopedPool::spawn(scope, &work, threads);
        pool.map(jobs)
        // Dropping the pool closes the job channel; workers exit before
        // the scope joins them.
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_job_order() {
        let work = |x: usize| {
            // Invert completion order: later jobs finish first.
            std::thread::sleep(std::time::Duration::from_millis((20 - x as u64) % 20));
            x * 10
        };
        std::thread::scope(|scope| {
            let mut pool = ScopedPool::spawn(scope, &work, 4);
            let out = pool.map(0..16);
            assert_eq!(out, (0..16).map(|x| x * 10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn pool_is_reusable_across_rounds() {
        let work = |x: u64| x + 1;
        std::thread::scope(|scope| {
            let mut pool = ScopedPool::spawn(scope, &work, 3);
            for round in 0..5u64 {
                let out = pool.map(round * 10..round * 10 + 7);
                assert_eq!(
                    out,
                    (round * 10..round * 10 + 7)
                        .map(|x| x + 1)
                        .collect::<Vec<_>>()
                );
            }
        });
    }

    #[test]
    fn jobs_may_borrow_stack_data() {
        let data: Vec<u64> = (0..100).collect();
        let work = |i: usize| data[i] * 2;
        let out = run_ordered((0..100).collect(), 8, work);
        assert_eq!(out, data.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_ordered_matches_sequential() {
        let work = |x: u32| x.wrapping_mul(0x9E37_79B9);
        let seq: Vec<u32> = (0..257).map(work).collect();
        let par = run_ordered((0..257).collect(), 6, work);
        assert_eq!(seq, par);
    }

    #[test]
    fn job_panic_propagates_instead_of_deadlocking() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
        let result = std::panic::catch_unwind(|| {
            run_ordered((0..64usize).collect(), 4, |x| {
                if x == 17 {
                    panic!("job 17 exploded");
                }
                x
            })
        });
        std::panic::set_hook(prev);
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("exploded"), "unexpected payload: {msg:?}");
    }

    #[test]
    fn chunk_ranges_cover_exactly_in_order() {
        for n in [0usize, 1, 2, 7, 64, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(n, parts);
                assert!(ranges.len() <= parts.max(1));
                let mut covered = 0;
                for r in &ranges {
                    assert_eq!(r.start, covered, "contiguous in order");
                    assert!(!r.is_empty());
                    covered = r.end;
                }
                assert_eq!(covered, n, "n={n} parts={parts}");
            }
        }
    }

    #[test]
    fn run_ordered_handles_empty_and_single() {
        let out: Vec<u32> = run_ordered(Vec::<u32>::new(), 4, |x| x);
        assert!(out.is_empty());
        assert_eq!(run_ordered(vec![7u32], 4, |x| x + 1), vec![8]);
    }
}
