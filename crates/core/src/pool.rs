//! Scope-borrowed worker pool shared by the stitch search and the
//! experiment driver.
//!
//! Both hot paths fan identical-shaped jobs out to a fixed set of worker
//! threads and need the results back **in job order** so parallel runs are
//! bit-identical to sequential ones. The pool is deliberately minimal:
//!
//! * workers are spawned inside a caller-provided [`std::thread::scope`],
//!   so jobs may borrow stack data (the stitch search's shared index, the
//!   driver's profile caches) without `Arc`-wrapping it;
//! * jobs are tagged with their index on dispatch and reassembled by tag,
//!   so completion order never leaks into results;
//! * the job channel closes when the pool drops, which is how workers
//!   learn to exit before the scope joins them.
//!
//! [`run_ordered`] is the one-shot convenience for callers that do not
//! need to reuse the pool across rounds; the stitch search keeps a
//! [`ScopedPool`] alive across beam levels to amortise thread spawning.

use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::Scope;

/// A persistent pool of scoped worker threads mapping jobs `J` to results
/// `R` through a shared worker function.
pub struct ScopedPool<'env, J, R> {
    job_tx: Sender<(usize, J)>,
    result_rx: Receiver<(usize, std::thread::Result<R>)>,
    threads: usize,
    /// Shared with workers: when set, a job panic is delivered as an `Err`
    /// result instead of poisoning the pool (see [`ScopedPool::map_caught`]).
    isolate: Arc<AtomicBool>,
    poisoned: Arc<AtomicBool>,
    /// Monotonic per-pool batch counter; each `map`/`map_caught` call is one
    /// batch, and the id is carried in re-raised panic messages so a failure
    /// deep in a campaign names the round it happened in.
    batch: usize,
    _marker: PhantomData<&'env ()>,
}

impl<'env, J: Send + 'env, R: Send + 'env> ScopedPool<'env, J, R> {
    /// Spawns `threads` workers on the scope, each running `work` on every
    /// job it receives. `work` is borrowed for the whole scope, so it may
    /// itself borrow anything that outlives the scope.
    pub fn spawn<'scope, W>(
        scope: &'scope Scope<'scope, 'env>,
        work: &'scope W,
        threads: usize,
    ) -> ScopedPool<'env, J, R>
    where
        W: Fn(J) -> R + Sync,
        J: 'scope,
        R: 'scope,
    {
        let threads = threads.max(1);
        let (job_tx, job_rx) = channel::<(usize, J)>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) = channel();
        let poisoned = Arc::new(AtomicBool::new(false));
        let isolate = Arc::new(AtomicBool::new(false));
        for _ in 0..threads {
            let job_rx = Arc::clone(&job_rx);
            let result_tx = result_tx.clone();
            let poisoned = Arc::clone(&poisoned);
            let isolate = Arc::clone(&isolate);
            scope.spawn(move || loop {
                // The guard drops as soon as `recv` returns, so other
                // workers can pick up the next job immediately.
                let job = { job_rx.lock().expect("job queue").recv() };
                let Ok((idx, job)) = job else { break };
                // Once poisoned, drain remaining queued jobs without
                // executing them — fail-fast means not running a
                // campaign's worth of doomed work first. The dispatcher
                // never deadlocks on a skipped job's missing result
                // because the panicking worker's Err send below is
                // unconditional and the channel unbounded: the Err always
                // reaches the dispatcher, which re-raises on receiving it
                // and stops waiting for further results.
                if poisoned.load(Ordering::Relaxed) {
                    continue;
                }
                // A panicking job must not starve `map`'s result loop (the
                // dispatcher would deadlock inside the scope, which cannot
                // join the panicked worker until the dispatcher returns).
                // Ship the payload instead; `map` re-raises it.
                let out = catch_unwind(AssertUnwindSafe(|| work(job)));
                // In isolation mode a panic is one job's result, not the
                // round's fate: keep executing the rest of the batch.
                if out.is_err() && !isolate.load(Ordering::Relaxed) {
                    poisoned.store(true, Ordering::Relaxed);
                }
                if result_tx.send((idx, out)).is_err() {
                    break;
                }
            });
        }
        ScopedPool {
            job_tx,
            result_rx,
            threads,
            isolate,
            poisoned,
            batch: 0,
            _marker: PhantomData,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Dispatches all jobs across the pool and returns results in job
    /// order, regardless of completion order.
    ///
    /// Takes `&mut self`: job tags and the result channel are per-pool,
    /// so two concurrent `map` calls on one pool would cross-deliver
    /// results — the exclusive borrow rules that out at compile time.
    ///
    /// # Panics
    ///
    /// Re-raises the first job panic it receives, preserving the
    /// fail-fast behaviour of running the jobs inline. The re-raised
    /// payload is a `String` naming the failing job index and the pool's
    /// batch id, with the original panic message appended — so a failure
    /// ten batches into a campaign says *which* job of *which* round died.
    /// (Workers drain — but no longer execute — jobs queued after a
    /// panic, so the scope joins promptly. A pool whose `map` panicked
    /// should not be reused; start a fresh scope instead.)
    pub fn map(&mut self, jobs: impl IntoIterator<Item = J>) -> Vec<R> {
        let batch = self.begin_batch(false);
        let mut sent = 0usize;
        for j in jobs {
            self.job_tx.send((sent, j)).expect("worker pool alive");
            sent += 1;
        }
        let mut slots: Vec<Option<R>> = (0..sent).map(|_| None).collect();
        for _ in 0..sent {
            let (idx, r) = self.result_rx.recv().expect("worker result");
            match r {
                Ok(v) => slots[idx] = Some(v),
                Err(payload) => resume_unwind(Box::new(format!(
                    "pool job {idx} of {sent} (batch {batch}) panicked: {}",
                    panic_message(payload.as_ref())
                ))),
            }
        }
        slots
            .into_iter()
            .map(|s| s.expect("all jobs returned"))
            .collect()
    }

    /// Like [`ScopedPool::map`], but with per-job isolation: a panicking
    /// job becomes an `Err` slot in the returned vector while every other
    /// job still executes and returns. Nothing is poisoned — the pool
    /// remains usable for further rounds, which is what a retrying
    /// supervisor needs to quarantine and re-run just the failed jobs.
    pub fn map_caught(&mut self, jobs: impl IntoIterator<Item = J>) -> Vec<std::thread::Result<R>> {
        self.begin_batch(true);
        let mut sent = 0usize;
        for j in jobs {
            self.job_tx.send((sent, j)).expect("worker pool alive");
            sent += 1;
        }
        let mut slots: Vec<Option<std::thread::Result<R>>> = (0..sent).map(|_| None).collect();
        for _ in 0..sent {
            let (idx, r) = self.result_rx.recv().expect("worker result");
            slots[idx] = Some(r);
        }
        self.isolate.store(false, Ordering::Relaxed);
        slots
            .into_iter()
            .map(|s| s.expect("all jobs returned"))
            .collect()
    }

    /// Starts a new dispatch round: bumps the batch id, clears any stale
    /// poison from a previous round and sets the isolation mode workers
    /// consult for this round's jobs. Safe because `map`/`map_caught`
    /// take `&mut self` and fully drain their results before returning.
    fn begin_batch(&mut self, isolate: bool) -> usize {
        self.poisoned.store(false, Ordering::Relaxed);
        self.isolate.store(isolate, Ordering::Relaxed);
        let batch = self.batch;
        self.batch += 1;
        batch
    }
}

/// Best-effort extraction of a panic payload's human-readable message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// The machine's hardware parallelism (1 when unknown).
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// Splits `0..n` into at most `parts` contiguous, non-empty, near-equal
/// ranges — the standard chunking for ordered parallel fan-out (stitch
/// index build, pair-verdict sharding). Covers `0..n` exactly, in order.
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let size = n.div_ceil(parts);
    (0..parts)
        .map(|p| (p * size).min(n)..((p + 1) * size).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}

/// One-shot ordered parallel map: runs `work` over `jobs` on up to
/// `threads` workers (capped at the hardware parallelism and the job
/// count) and returns results in job order. Falls back to a plain
/// sequential map when one worker would do, keeping results identical
/// either way.
pub fn run_ordered<J, R, W>(jobs: Vec<J>, threads: usize, work: W) -> Vec<R>
where
    J: Send,
    R: Send,
    W: Fn(J) -> R + Sync,
{
    let threads = threads
        .max(1)
        .min(jobs.len().max(1))
        .min(hardware_threads());
    if threads <= 1 || jobs.len() <= 1 {
        // Sequential fallback keeps the pooled path's panic provenance so a
        // one-core machine reports failures the same way a many-core one
        // does.
        let n = jobs.len();
        return jobs
            .into_iter()
            .enumerate()
            .map(
                |(idx, j)| match catch_unwind(AssertUnwindSafe(|| work(j))) {
                    Ok(v) => v,
                    Err(payload) => resume_unwind(Box::new(format!(
                        "pool job {idx} of {n} (batch 0) panicked: {}",
                        panic_message(payload.as_ref())
                    ))),
                },
            )
            .collect();
    }
    std::thread::scope(|scope| {
        let mut pool = ScopedPool::spawn(scope, &work, threads);
        pool.map(jobs)
        // Dropping the pool closes the job channel; workers exit before
        // the scope joins them.
    })
}

/// One-shot ordered parallel map with per-job isolation: every job runs,
/// panics are captured as `Err` slots instead of propagating, and results
/// come back in job order. The sequential fallback catches panics the same
/// way, so callers see identical shapes at any thread count.
pub fn run_ordered_caught<J, R, W>(
    jobs: Vec<J>,
    threads: usize,
    work: W,
) -> Vec<std::thread::Result<R>>
where
    J: Send,
    R: Send,
    W: Fn(J) -> R + Sync,
{
    let threads = threads
        .max(1)
        .min(jobs.len().max(1))
        .min(hardware_threads());
    if threads <= 1 || jobs.len() <= 1 {
        return jobs
            .into_iter()
            .map(|j| catch_unwind(AssertUnwindSafe(|| work(j))))
            .collect();
    }
    std::thread::scope(|scope| {
        let mut pool = ScopedPool::spawn(scope, &work, threads);
        pool.map_caught(jobs)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_job_order() {
        let work = |x: usize| {
            // Invert completion order: later jobs finish first.
            std::thread::sleep(std::time::Duration::from_millis((20 - x as u64) % 20));
            x * 10
        };
        std::thread::scope(|scope| {
            let mut pool = ScopedPool::spawn(scope, &work, 4);
            let out = pool.map(0..16);
            assert_eq!(out, (0..16).map(|x| x * 10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn pool_is_reusable_across_rounds() {
        let work = |x: u64| x + 1;
        std::thread::scope(|scope| {
            let mut pool = ScopedPool::spawn(scope, &work, 3);
            for round in 0..5u64 {
                let out = pool.map(round * 10..round * 10 + 7);
                assert_eq!(
                    out,
                    (round * 10..round * 10 + 7)
                        .map(|x| x + 1)
                        .collect::<Vec<_>>()
                );
            }
        });
    }

    #[test]
    fn jobs_may_borrow_stack_data() {
        let data: Vec<u64> = (0..100).collect();
        let work = |i: usize| data[i] * 2;
        let out = run_ordered((0..100).collect(), 8, work);
        assert_eq!(out, data.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn run_ordered_matches_sequential() {
        let work = |x: u32| x.wrapping_mul(0x9E37_79B9);
        let seq: Vec<u32> = (0..257).map(work).collect();
        let par = run_ordered((0..257).collect(), 6, work);
        assert_eq!(seq, par);
    }

    #[test]
    fn job_panic_propagates_instead_of_deadlocking() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
        let result = std::panic::catch_unwind(|| {
            run_ordered((0..64usize).collect(), 4, |x| {
                if x == 17 {
                    panic!("job 17 exploded");
                }
                x
            })
        });
        std::panic::set_hook(prev);
        let payload = result.expect_err("panic must propagate");
        let msg = panic_message(payload.as_ref());
        assert!(msg.contains("exploded"), "unexpected payload: {msg:?}");
        // Provenance: the re-raise names the failing job and the batch.
        assert!(msg.contains("pool job 17"), "missing job index: {msg:?}");
        assert!(msg.contains("batch 0"), "missing batch id: {msg:?}");
    }

    #[test]
    fn map_panic_provenance_tracks_batch_counter() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let work = |x: usize| {
            if x == 5 {
                panic!("boom");
            }
            x
        };
        let msg = std::thread::scope(|scope| {
            let mut pool = ScopedPool::spawn(scope, &work, 2);
            assert_eq!(pool.map(0..4), vec![0, 1, 2, 3]); // batch 0
            assert_eq!(pool.map(0..4), vec![0, 1, 2, 3]); // batch 1
            let payload = std::panic::catch_unwind(AssertUnwindSafe(|| pool.map(0..8)))
                .expect_err("job 5 panics");
            panic_message(payload.as_ref())
        });
        std::panic::set_hook(prev);
        assert!(msg.contains("pool job 5 of 8"), "{msg:?}");
        assert!(msg.contains("batch 2"), "{msg:?}");
        assert!(msg.contains("boom"), "{msg:?}");
    }

    #[test]
    fn map_caught_isolates_panics_and_keeps_pool_usable() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let work = |x: usize| {
            if x % 3 == 1 {
                panic!("job {x} down");
            }
            x * 2
        };
        std::thread::scope(|scope| {
            let mut pool = ScopedPool::spawn(scope, &work, 4);
            let out = pool.map_caught(0..9);
            assert_eq!(out.len(), 9);
            for (i, r) in out.iter().enumerate() {
                if i % 3 == 1 {
                    let msg = panic_message(r.as_ref().expect_err("isolated panic").as_ref());
                    assert!(msg.contains(&format!("job {i} down")), "{msg:?}");
                } else {
                    assert_eq!(*r.as_ref().expect("survivor"), i * 2);
                }
            }
            // The pool is not poisoned: a follow-up round still executes
            // every job (this is the quarantine-and-retry contract).
            let retry = pool.map_caught(vec![0usize, 3, 6]);
            assert_eq!(
                retry.into_iter().map(|r| r.unwrap()).collect::<Vec<_>>(),
                vec![0, 6, 12]
            );
            // And fail-fast mode still works on the same pool afterwards.
            assert_eq!(pool.map(vec![0usize, 3]), vec![0, 6]);
        });
        std::panic::set_hook(prev);
    }

    #[test]
    fn run_ordered_caught_matches_at_any_thread_count() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let work = |x: u32| {
            if x == 2 {
                panic!("two");
            }
            x + 100
        };
        for threads in [1usize, 4] {
            let out = run_ordered_caught((0..6).collect(), threads, work);
            let shape: Vec<Option<u32>> = out.into_iter().map(|r| r.ok()).collect();
            assert_eq!(
                shape,
                vec![Some(100), Some(101), None, Some(103), Some(104), Some(105)],
                "threads={threads}"
            );
        }
        std::panic::set_hook(prev);
    }

    #[test]
    fn chunk_ranges_cover_exactly_in_order() {
        for n in [0usize, 1, 2, 7, 64, 100] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = chunk_ranges(n, parts);
                assert!(ranges.len() <= parts.max(1));
                let mut covered = 0;
                for r in &ranges {
                    assert_eq!(r.start, covered, "contiguous in order");
                    assert!(!r.is_empty());
                    covered = r.end;
                }
                assert_eq!(covered, n, "n={n} parts={parts}");
            }
        }
    }

    #[test]
    fn run_ordered_handles_empty_and_single() {
        let out: Vec<u32> = run_ordered(Vec::<u32>::new(), 4, |x| x);
        assert!(out.is_empty());
        assert_eq!(run_ordered(vec![7u32], 4, |x| x + 1), vec![8]);
    }
}
