//! Causal edges between faults and the database the beam search runs over.

use std::collections::{HashMap, HashSet};
use std::fmt;

use csnake_inject::{FaultId, LoopState, Occurrence, Registry, TestId};
use serde::{Deserialize, Serialize};

/// The six causal-relationship types of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeKind {
    /// `E(D)` — delay injection causes an exception/negation.
    ED,
    /// `S+(D)` — delay injection causes a loop-iteration increase.
    SD,
    /// `E(I)` — exception/negation injection causes an exception/negation.
    EI,
    /// `S+(I)` — exception/negation injection causes a loop increase.
    SI,
    /// `ICFG` — a loop delay propagates to its parent loop (batching).
    Icfg,
    /// `CFG` — a parent-loop delay propagates to the next sibling loop.
    Cfg,
}

impl EdgeKind {
    /// `true` for the four kinds produced directly by an injection
    /// (everything except the structural `ICFG`/`CFG` edges).
    pub fn is_injection(self) -> bool {
        !matches!(self, EdgeKind::Icfg | EdgeKind::Cfg)
    }

    /// `true` if the *cause* side is a delay (loop) fault.
    pub fn cause_is_delay(self) -> bool {
        matches!(
            self,
            EdgeKind::ED | EdgeKind::SD | EdgeKind::Icfg | EdgeKind::Cfg
        )
    }

    /// `true` if the *effect* side is a delay (loop) fault.
    pub fn effect_is_delay(self) -> bool {
        matches!(
            self,
            EdgeKind::SD | EdgeKind::SI | EdgeKind::Icfg | EdgeKind::Cfg
        )
    }
}

impl fmt::Display for EdgeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EdgeKind::ED => "E(D)",
            EdgeKind::SD => "S+(D)",
            EdgeKind::EI => "E(I)",
            EdgeKind::SI => "S+(I)",
            EdgeKind::Icfg => "ICFG",
            EdgeKind::Cfg => "CFG",
        };
        f.write_str(s)
    }
}

/// Local-compatibility state of one fault in one test (§6.2): either the
/// occurrence set of an exception/negation or the loop state of a delay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CompatState {
    /// Exception/negation: distinct occurrences (deduped by signature).
    Occurrences(Vec<Occurrence>),
    /// Delay/loop fault: entry stacks + per-iteration signatures.
    Loop(LoopState),
}

impl CompatState {
    /// An empty occurrence-style state (used by tests and synthetic edges).
    pub fn empty() -> Self {
        CompatState::Occurrences(Vec::new())
    }
}

/// One causal relationship `cause → effect` discovered in one test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CausalEdge {
    /// The cause fault (the injected one, for injection edges).
    pub cause: FaultId,
    /// The effect fault (the additional fault triggered).
    pub effect: FaultId,
    /// Relationship type.
    pub kind: EdgeKind,
    /// Test workload the relationship was observed in.
    pub test: TestId,
    /// 3PA phase in which the relationship was discovered (1, 2 or 3;
    /// 0 when produced outside the protocol).
    pub phase: u8,
    /// Compatibility state of the cause in this test.
    pub cause_state: CompatState,
    /// Compatibility state of the effect in this test.
    pub effect_state: CompatState,
}

impl CausalEdge {
    /// Human-readable rendering using registry names.
    pub fn describe(&self, reg: &Registry) -> String {
        format!(
            "{} --{}--> {}  (in {}, phase {})",
            reg.point(self.cause).label,
            self.kind,
            reg.point(self.effect).label,
            self.test,
            self.phase
        )
    }
}

/// All causal relationships discovered in a campaign, indexed for the
/// beam search.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CausalDb {
    edges: Vec<CausalEdge>,
    // The two index fields are derived from `edges`; skip them in
    // serialization (hash iteration order is nondeterministic) and rebuild
    // via `from_edges` when loading a persisted database.
    #[serde(skip)]
    by_cause: HashMap<FaultId, Vec<usize>>,
    #[serde(skip)]
    dedup: HashSet<(FaultId, FaultId, EdgeKind, TestId)>,
}

impl CausalDb {
    /// Builds a database from a list of edges.
    pub fn from_edges(edges: Vec<CausalEdge>) -> Self {
        let mut db = CausalDb::default();
        for e in edges {
            db.push(e);
        }
        db
    }

    /// Appends an edge, deduplicating exact `(cause, effect, kind, test)`
    /// repeats (which arise from the delay-length sweep). Amortised O(1):
    /// dedup is one hash-set probe and `by_cause` one hash-map append,
    /// instead of the old linear scan over all prior edges of the cause.
    ///
    /// Returns `true` when the edge was new (observers use this to report
    /// only genuinely emitted edges, not sweep repeats).
    pub fn push(&mut self, e: CausalEdge) -> bool {
        if !self.dedup.insert((e.cause, e.effect, e.kind, e.test)) {
            return false;
        }
        let idx = self.edges.len();
        self.by_cause.entry(e.cause).or_default().push(idx);
        self.edges.push(e);
        true
    }

    /// All edges.
    pub fn edges(&self) -> &[CausalEdge] {
        &self.edges
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` when no edges were discovered.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Indices of edges whose cause is `f`.
    pub fn edges_from(&self, f: FaultId) -> &[usize] {
        self.by_cause.get(&f).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The edge at an index.
    pub fn edge(&self, idx: usize) -> &CausalEdge {
        &self.edges[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(cause: u32, effect: u32, kind: EdgeKind, test: u32) -> CausalEdge {
        CausalEdge {
            cause: FaultId(cause),
            effect: FaultId(effect),
            kind,
            test: TestId(test),
            phase: 1,
            cause_state: CompatState::empty(),
            effect_state: CompatState::empty(),
        }
    }

    #[test]
    fn kind_predicates() {
        assert!(EdgeKind::ED.is_injection());
        assert!(!EdgeKind::Icfg.is_injection());
        assert!(EdgeKind::ED.cause_is_delay());
        assert!(!EdgeKind::EI.cause_is_delay());
        assert!(EdgeKind::SI.effect_is_delay());
        assert!(!EdgeKind::EI.effect_is_delay());
        assert!(EdgeKind::Cfg.cause_is_delay() && EdgeKind::Cfg.effect_is_delay());
    }

    #[test]
    fn db_indexes_by_cause() {
        let db = CausalDb::from_edges(vec![
            edge(1, 2, EdgeKind::EI, 0),
            edge(1, 3, EdgeKind::SI, 0),
            edge(2, 1, EdgeKind::EI, 1),
        ]);
        assert_eq!(db.len(), 3);
        assert_eq!(db.edges_from(FaultId(1)).len(), 2);
        assert_eq!(db.edges_from(FaultId(2)).len(), 1);
        assert!(db.edges_from(FaultId(9)).is_empty());
    }

    #[test]
    fn db_dedups_same_relationship_same_test() {
        let mut db = CausalDb::default();
        db.push(edge(1, 2, EdgeKind::ED, 0));
        db.push(edge(1, 2, EdgeKind::ED, 0)); // sweep repeat
        db.push(edge(1, 2, EdgeKind::ED, 1)); // different test: kept
        db.push(edge(1, 2, EdgeKind::EI, 0)); // different kind: kept
        assert_eq!(db.len(), 3);
    }

    #[test]
    fn db_dedup_ignores_phase_and_state() {
        // Dedup is keyed on (cause, effect, kind, test) only — a sweep
        // repeat with a different phase or state is still a repeat.
        let mut db = CausalDb::default();
        let mut a = edge(1, 2, EdgeKind::ED, 0);
        a.phase = 1;
        let mut b = edge(1, 2, EdgeKind::ED, 0);
        b.phase = 3;
        db.push(a);
        db.push(b);
        assert_eq!(db.len(), 1);
        assert_eq!(db.edge(0).phase, 1, "first push wins");
    }

    #[test]
    fn db_push_keeps_per_cause_index_in_insertion_order() {
        let mut db = CausalDb::default();
        for t in 0..100u32 {
            db.push(edge(1, t % 7, EdgeKind::EI, t));
        }
        let idxs = db.edges_from(FaultId(1));
        assert_eq!(idxs.len(), 100);
        assert!(idxs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn display_kinds_match_paper_notation() {
        assert_eq!(EdgeKind::ED.to_string(), "E(D)");
        assert_eq!(EdgeKind::SD.to_string(), "S+(D)");
        assert_eq!(EdgeKind::EI.to_string(), "E(I)");
        assert_eq!(EdgeKind::SI.to_string(), "S+(I)");
        assert_eq!(EdgeKind::Icfg.to_string(), "ICFG");
        assert_eq!(EdgeKind::Cfg.to_string(), "CFG");
    }
}
