//! Fault Causality Analysis (§4.3): counterfactual trace comparison.
//!
//! FCA compares the execution traces of an injection run against the profile
//! runs of the same workload (the counterfactual) and emits causal edges for
//! every *additional* fault triggered:
//!
//! * **Execution-trace interference** — a throw statement reached or an error
//!   detector negated in the injection runs but never in the profile runs.
//! * **Iteration-count interference** — a loop whose iteration count
//!   statistically increases (one-sided t-test, p < 0.1).
//!
//! Both run sets are repeated (five times in the paper) to absorb
//! non-determinism. Nested/consecutive workload loops additionally produce
//! the structural `ICFG`/`CFG` edges of Table 1.
//!
//! # Hot path
//!
//! [`analyze_experiment`] runs on [`TraceIndex`]es: the profile side is
//! prepared once per test ([`ProfileIndex`], including per-loop sample
//! moments for the batched Welch tests), the injection side once per
//! experiment. Per experiment the analysis then touches only the points
//! that actually occurred and the loops that were actually reached —
//! `O(occurring + active_loops)` instead of `O(points × runs)` trace
//! re-walks. [`analyze_experiment_reference`] retains the straightforward
//! implementation as the executable specification;
//! `tests/campaign_equivalence.rs` proves the two byte-identical across
//! randomized experiments.

use std::collections::BTreeSet;

use csnake_inject::{
    merged_loop_state, merged_occurrences, FaultId, FaultKind, InjectionPlan, Registry, RunTrace,
    TestId, TraceIndex,
};
use serde::{Deserialize, Serialize};

use crate::edge::{CausalEdge, CompatState, EdgeKind};
use crate::stats::{sample_stats, welch_batch_significant, welch_one_sided_p, SampleStats};

/// FCA thresholds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FcaConfig {
    /// One-sided t-test threshold for loop-count increases (paper: 0.1).
    pub p_value: f64,
    /// Fraction of injection runs in which an exception/negation must occur
    /// to count as triggered (absorbs non-determinism across the five runs).
    pub presence_fraction: f64,
}

impl Default for FcaConfig {
    fn default() -> Self {
        FcaConfig {
            p_value: 0.1,
            presence_fraction: 0.6,
        }
    }
}

/// Result of one injection experiment `(fault, test)` after FCA.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentOutcome {
    /// The injected fault.
    pub fault: FaultId,
    /// The workload it was injected into.
    pub test: TestId,
    /// The interference list `I(f, t)`: additional faults triggered.
    pub interference: BTreeSet<FaultId>,
    /// Causal edges discovered (injection edges + structural loop edges).
    pub edges: Vec<CausalEdge>,
}

/// Compatibility state of the injected fault itself across injection runs.
fn cause_state(
    registry: &Registry,
    injection: &[RunTrace],
    plan: InjectionPlan,
) -> Option<CompatState> {
    let point = registry.point(plan.target);
    if point.kind == FaultKind::LoopPoint {
        merged_loop_state(injection, plan.target).map(CompatState::Loop)
    } else {
        let mut seen = BTreeSet::new();
        let mut occs = Vec::new();
        for t in injection {
            if let Some((f, occ)) = &t.injected {
                if *f == plan.target && seen.insert(occ.sig) {
                    occs.push(occ.clone());
                }
            }
        }
        if occs.is_empty() {
            None
        } else {
            // Sorted by signature: the compatibility-check merge invariant.
            occs.sort_unstable_by_key(|o| o.sig);
            Some(CompatState::Occurrences(occs))
        }
    }
}

/// Profile-side state prepared once per test and shared across every
/// experiment on that test: the trace index plus the per-loop sample
/// moments the batched Welch tests reuse.
#[derive(Debug, Clone)]
pub struct ProfileIndex {
    index: TraceIndex,
    loop_stats: Vec<SampleStats>,
}

impl ProfileIndex {
    /// Indexes one test's profile runs.
    pub fn build(registry: &Registry, traces: &[RunTrace]) -> ProfileIndex {
        let index = TraceIndex::build(registry, traces);
        let loop_stats = (0..index.loop_points().len())
            .map(|s| sample_stats(index.loop_counts_row(s)))
            .collect();
        ProfileIndex { index, loop_stats }
    }

    /// The underlying trace index.
    pub fn index(&self) -> &TraceIndex {
        &self.index
    }

    /// Per-loop-slot sample moments of the profile iteration counts.
    pub fn loop_stats(&self) -> &[SampleStats] {
        &self.loop_stats
    }
}

/// Runs FCA over one experiment: profile runs vs. injection runs of the same
/// test, and extracts all causal edges (Table 1).
///
/// Returns an outcome with no edges when the injection never fired (the
/// fault was not reached — such injections are automatically deprioritized
/// by the 3PA protocol).
///
/// This is the indexed hot path (see the module docs); it builds both
/// indexes itself, which is convenient for one-off calls. Campaign drivers
/// should build the [`ProfileIndex`] once per test and call
/// [`analyze_experiment_indexed`].
pub fn analyze_experiment(
    registry: &Registry,
    profile: &[RunTrace],
    injection: &[RunTrace],
    plan: InjectionPlan,
    test: TestId,
    phase: u8,
    cfg: &FcaConfig,
) -> ExperimentOutcome {
    let prof = ProfileIndex::build(registry, profile);
    analyze_experiment_indexed(registry, &prof, injection, plan, test, phase, cfg)
}

/// The indexed FCA hot path: a prepared profile index (shared across the
/// test's experiments) against one experiment's injection runs.
///
/// Byte-identical to [`analyze_experiment_reference`] — same interference
/// set, same edges in the same order, same states.
pub fn analyze_experiment_indexed(
    registry: &Registry,
    profile: &ProfileIndex,
    injection: &[RunTrace],
    plan: InjectionPlan,
    test: TestId,
    phase: u8,
    cfg: &FcaConfig,
) -> ExperimentOutcome {
    let inj = TraceIndex::build(registry, injection);
    analyze_experiment_prepared(registry, profile, &inj, injection, plan, test, phase, cfg)
}

/// The fully-prepared FCA path: both sides' indexes prebuilt by the
/// caller. The driver's injection-run cache
/// (`DriverConfig::cache_injections`) stores `(traces, TraceIndex)` per
/// `(test, plan)` and calls this to skip the index rebuild when a
/// combination is revisited — results are identical to
/// [`analyze_experiment_indexed`] on the same traces.
#[allow(clippy::too_many_arguments)]
pub fn analyze_experiment_prepared(
    registry: &Registry,
    profile: &ProfileIndex,
    inj: &TraceIndex,
    injection: &[RunTrace],
    plan: InjectionPlan,
    test: TestId,
    phase: u8,
    cfg: &FcaConfig,
) -> ExperimentOutcome {
    let cause = plan.target;
    let mut outcome = ExperimentOutcome {
        fault: cause,
        test,
        interference: BTreeSet::new(),
        edges: Vec::new(),
    };
    if inj.injected().is_empty() || inj.n_runs() == 0 {
        return outcome;
    }
    // The cause-state derivation is a per-run walk either way (the fired
    // injections are one entry per trace), so both paths share it.
    let Some(cstate) = cause_state(registry, injection, plan) else {
        return outcome;
    };
    let cause_is_delay = plan.action.is_delay();
    let needed = ((cfg.presence_fraction * inj.n_runs() as f64).ceil() as usize).max(1);

    // 1. Execution-trace interference. Only points that occurred in some
    //    injection run can clear the presence threshold, so the sparse
    //    occurring list (ascending id = registry order) replaces the dense
    //    registry scan.
    for &p in inj.occurring_points() {
        if p == cause || registry.point(p).kind == FaultKind::LoopPoint {
            continue;
        }
        if inj.occ_runs(p) as usize >= needed && !profile.index.occurred(p) {
            let kind = if cause_is_delay {
                EdgeKind::ED
            } else {
                EdgeKind::EI
            };
            outcome.interference.insert(p);
            outcome.edges.push(CausalEdge {
                cause,
                effect: p,
                kind,
                test,
                phase,
                cause_state: cstate.clone(),
                // Merged on demand — only edge-emitting points need the
                // union (see `csnake_inject::merged_occurrences`).
                effect_state: CompatState::Occurrences(merged_occurrences(injection, p)),
            });
        }
    }

    // 2. Iteration-count interference, batched: candidate loops are the
    //    ones reached in some injection run (the reference's all-zero skip);
    //    profile moments come precomputed from the ProfileIndex.
    let mut cand_slots: Vec<u32> = Vec::with_capacity(inj.active_loop_slots().len());
    let mut prof_stats = Vec::with_capacity(inj.active_loop_slots().len());
    let mut inj_stats = Vec::with_capacity(inj.active_loop_slots().len());
    for &s in inj.active_loop_slots() {
        if inj.loop_points()[s as usize] == cause {
            continue;
        }
        cand_slots.push(s);
        prof_stats.push(profile.loop_stats[s as usize]);
        inj_stats.push(sample_stats(inj.loop_counts_row(s as usize)));
    }
    let significant = welch_batch_significant(&prof_stats, &inj_stats, cfg.p_value);
    let mut s_plus_loops = Vec::new();
    for (k, &s) in cand_slots.iter().enumerate() {
        if !significant[k] {
            continue;
        }
        let l = inj.loop_points()[s as usize];
        let kind = if cause_is_delay {
            EdgeKind::SD
        } else {
            EdgeKind::SI
        };
        // Loop-state merges are on demand (few loops emit edges; see
        // `csnake_inject::merged_loop_state`), exactly like the reference.
        let Some(effect_state) = merged_loop_state(injection, l) else {
            continue;
        };
        outcome.interference.insert(l);
        outcome.edges.push(CausalEdge {
            cause,
            effect: l,
            kind,
            test,
            phase,
            cause_state: cstate.clone(),
            effect_state: CompatState::Loop(effect_state),
        });
        s_plus_loops.push(l);
    }

    // 3. Structural loop edges (Table 1 rows 5–6), shared with the
    //    reference.
    push_structural_loop_edges(
        registry,
        injection,
        &s_plus_loops,
        test,
        phase,
        &mut outcome,
    );

    outcome
}

/// Emits the structural `ICFG`/`CFG` edges (Table 1 rows 5–6) for every
/// statistically-increased loop: a delayed inner loop propagates to its
/// parent and, through the parent, to its next sibling. Shared by the
/// indexed and reference paths so the equivalence contract has one copy.
fn push_structural_loop_edges(
    registry: &Registry,
    injection: &[RunTrace],
    s_plus_loops: &[FaultId],
    test: TestId,
    phase: u8,
    outcome: &mut ExperimentOutcome,
) {
    for &l in s_plus_loops {
        let meta = registry
            .point(l)
            .loop_meta
            .as_ref()
            .expect("loop point has meta");
        let Some(parent) = meta.parent else { continue };
        let Some(l_state) = merged_loop_state(injection, l) else {
            continue;
        };
        if let Some(parent_state) = merged_loop_state(injection, parent) {
            outcome.edges.push(CausalEdge {
                cause: l,
                effect: parent,
                kind: EdgeKind::Icfg,
                test,
                phase,
                cause_state: CompatState::Loop(l_state),
                effect_state: CompatState::Loop(parent_state.clone()),
            });
            if let Some(sib) = meta.next_sibling {
                if let Some(sib_state) = merged_loop_state(injection, sib) {
                    outcome.edges.push(CausalEdge {
                        cause: parent,
                        effect: sib,
                        kind: EdgeKind::Cfg,
                        test,
                        phase,
                        cause_state: CompatState::Loop(parent_state),
                        effect_state: CompatState::Loop(sib_state),
                    });
                }
            }
        }
    }
}

/// The retained straightforward implementation — the executable
/// specification the indexed path is proven against. Re-walks every trace
/// for every registry point (`O(points × runs)` per experiment).
pub fn analyze_experiment_reference(
    registry: &Registry,
    profile: &[RunTrace],
    injection: &[RunTrace],
    plan: InjectionPlan,
    test: TestId,
    phase: u8,
    cfg: &FcaConfig,
) -> ExperimentOutcome {
    let cause = plan.target;
    let mut outcome = ExperimentOutcome {
        fault: cause,
        test,
        interference: BTreeSet::new(),
        edges: Vec::new(),
    };
    let fired = injection.iter().any(|t| t.injected.is_some());
    if !fired || injection.is_empty() {
        return outcome;
    }
    let Some(cstate) = cause_state(registry, injection, plan) else {
        return outcome;
    };
    let cause_is_delay = plan.action.is_delay();
    let needed = ((cfg.presence_fraction * injection.len() as f64).ceil() as usize).max(1);

    // 1. Execution-trace interference: additional exceptions/negations.
    for p in registry.points() {
        if p.id == cause || p.kind == FaultKind::LoopPoint {
            continue;
        }
        let n_inj = injection.iter().filter(|t| t.occurred(p.id)).count();
        // For the cause's own injected occurrence we must not count the
        // injection itself; that is excluded above by `p.id == cause`.
        let in_profile = profile.iter().any(|t| t.occurred(p.id));
        if n_inj >= needed && !in_profile {
            let kind = if cause_is_delay {
                EdgeKind::ED
            } else {
                EdgeKind::EI
            };
            outcome.interference.insert(p.id);
            outcome.edges.push(CausalEdge {
                cause,
                effect: p.id,
                kind,
                test,
                phase,
                cause_state: cstate.clone(),
                effect_state: CompatState::Occurrences(merged_occurrences(injection, p.id)),
            });
        }
    }

    // 2. Iteration-count interference: statistically increased loops.
    let mut s_plus_loops = Vec::new();
    for p in registry.points() {
        if p.id == cause || p.kind != FaultKind::LoopPoint {
            continue;
        }
        let prof: Vec<f64> = profile.iter().map(|t| t.loop_count(p.id) as f64).collect();
        let inj: Vec<f64> = injection
            .iter()
            .map(|t| t.loop_count(p.id) as f64)
            .collect();
        if inj.iter().all(|&c| c == 0.0) {
            continue;
        }
        if welch_one_sided_p(&prof, &inj) < cfg.p_value {
            let kind = if cause_is_delay {
                EdgeKind::SD
            } else {
                EdgeKind::SI
            };
            let Some(effect_state) = merged_loop_state(injection, p.id) else {
                continue;
            };
            outcome.interference.insert(p.id);
            outcome.edges.push(CausalEdge {
                cause,
                effect: p.id,
                kind,
                test,
                phase,
                cause_state: cstate.clone(),
                effect_state: CompatState::Loop(effect_state),
            });
            s_plus_loops.push(p.id);
        }
    }

    // 3. Structural loop edges for batch processing (Table 1 rows 5–6):
    //    a delayed inner loop propagates to its parent (ICFG) and, through
    //    the parent, to its next sibling (CFG).
    push_structural_loop_edges(
        registry,
        injection,
        &s_plus_loops,
        test,
        phase,
        &mut outcome,
    );

    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use csnake_inject::{
        BoolSource, ExceptionCategory, FnId, LoopState, Occurrence, RegistryBuilder,
    };
    use csnake_sim::VirtualTime;

    struct Fx {
        reg: Registry,
        tp: FaultId,
        np: FaultId,
        inner: FaultId,
        outer: FaultId,
        sibling: FaultId,
    }

    fn fx() -> Fx {
        let mut b = RegistryBuilder::new("t");
        let f = b.func("X.f");
        let tp = b.throw_point(f, 1, "IOException", ExceptionCategory::SystemSpecific, "tp");
        let np = b.negation_point(f, 2, true, BoolSource::ErrorDetector, "np");
        let outer = b.workload_loop(f, 3, false, "outer");
        let inner = b.workload_loop(f, 4, false, "inner");
        let sibling = b.workload_loop(f, 5, false, "sibling");
        b.set_parent(inner, outer);
        b.set_parent(sibling, outer);
        b.set_sibling(inner, sibling);
        Fx {
            reg: b.build(),
            tp,
            np,
            inner,
            outer,
            sibling,
        }
    }

    fn occ(sig_seed: u32) -> Occurrence {
        Occurrence::new([Some(FnId(sig_seed)), None], vec![])
    }

    fn trace_with(
        occurrences: &[(FaultId, u32)],
        loops: &[(FaultId, u64)],
        injected: Option<FaultId>,
    ) -> RunTrace {
        let mut t = RunTrace::default();
        for (p, seed) in occurrences {
            t.occurrences.entry(*p).or_default().push(occ(*seed));
        }
        for (l, c) in loops {
            t.loop_counts.insert(*l, *c);
            let mut st = LoopState::default();
            st.entry_stacks.insert([None, None]);
            st.iter_sigs.insert(*c % 3); // a few shared signatures
            t.loop_states.insert(*l, st);
        }
        if let Some(f) = injected {
            t.injected = Some((f, occ(99)));
        }
        t
    }

    fn cfgd() -> FcaConfig {
        FcaConfig::default()
    }

    #[test]
    fn no_edges_when_injection_never_fired() {
        let fx = fx();
        let profile = vec![trace_with(&[], &[], None); 5];
        let inj = vec![trace_with(&[(fx.np, 1)], &[], None); 5];
        let out = analyze_experiment(
            &fx.reg,
            &profile,
            &inj,
            InjectionPlan::throw(fx.tp),
            TestId(0),
            1,
            &cfgd(),
        );
        assert!(out.edges.is_empty());
        assert!(out.interference.is_empty());
    }

    #[test]
    fn additional_exception_yields_ei_edge() {
        let fx = fx();
        let profile = vec![trace_with(&[], &[], None); 5];
        // Injecting np (negation) consistently triggers tp.
        let inj = vec![trace_with(&[(fx.tp, 1)], &[], Some(fx.np)); 5];
        let out = analyze_experiment(
            &fx.reg,
            &profile,
            &inj,
            InjectionPlan::negate(fx.np),
            TestId(0),
            2,
            &cfgd(),
        );
        assert_eq!(out.edges.len(), 1);
        let e = &out.edges[0];
        assert_eq!(e.kind, EdgeKind::EI);
        assert_eq!(e.cause, fx.np);
        assert_eq!(e.effect, fx.tp);
        assert_eq!(e.phase, 2);
        assert!(out.interference.contains(&fx.tp));
    }

    #[test]
    fn exception_present_in_profile_is_not_additional() {
        let fx = fx();
        // tp occurs naturally in one profile run → counterfactual fails.
        let mut profile = vec![trace_with(&[], &[], None); 4];
        profile.push(trace_with(&[(fx.tp, 1)], &[], None));
        let inj = vec![trace_with(&[(fx.tp, 1)], &[], Some(fx.np)); 5];
        let out = analyze_experiment(
            &fx.reg,
            &profile,
            &inj,
            InjectionPlan::negate(fx.np),
            TestId(0),
            1,
            &cfgd(),
        );
        assert!(out.edges.is_empty());
    }

    #[test]
    fn flaky_exception_below_presence_fraction_is_ignored() {
        let fx = fx();
        let profile = vec![trace_with(&[], &[], None); 5];
        // Occurs in only 2 of 5 injection runs (< 60%).
        let mut inj = vec![trace_with(&[], &[], Some(fx.np)); 3];
        inj.push(trace_with(&[(fx.tp, 1)], &[], Some(fx.np)));
        inj.push(trace_with(&[(fx.tp, 1)], &[], Some(fx.np)));
        let out = analyze_experiment(
            &fx.reg,
            &profile,
            &inj,
            InjectionPlan::negate(fx.np),
            TestId(0),
            1,
            &cfgd(),
        );
        assert!(out.edges.is_empty());
    }

    #[test]
    fn loop_increase_yields_sd_edge_with_delay_cause() {
        let fx = fx();
        let profile: Vec<RunTrace> = (0..5)
            .map(|i| {
                trace_with(
                    &[],
                    &[(fx.inner, 100 + i), (fx.outer, 10), (fx.sibling, 5)],
                    None,
                )
            })
            .collect();
        let inj: Vec<RunTrace> = (0..5)
            .map(|i| {
                trace_with(
                    &[],
                    &[(fx.inner, 200 + i), (fx.outer, 10), (fx.sibling, 5)],
                    Some(fx.sibling),
                )
            })
            .collect();
        let plan = InjectionPlan::delay(fx.sibling, VirtualTime::from_millis(100));
        let out = analyze_experiment(&fx.reg, &profile, &inj, plan, TestId(1), 3, &cfgd());
        // inner went 100→200 (S+); outer unchanged. inner has parent outer →
        // also an ICFG edge, and inner's sibling is `sibling` (the cause, but
        // structural edges don't exclude it) → CFG edge outer→sibling.
        let kinds: Vec<EdgeKind> = out.edges.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EdgeKind::SD), "{kinds:?}");
        assert!(kinds.contains(&EdgeKind::Icfg), "{kinds:?}");
        let sd = out.edges.iter().find(|e| e.kind == EdgeKind::SD).unwrap();
        assert_eq!(sd.effect, fx.inner);
        assert!(matches!(sd.effect_state, CompatState::Loop(_)));
        assert!(out.interference.contains(&fx.inner));
        assert!(!out.interference.contains(&fx.outer));
    }

    #[test]
    fn unreached_loop_in_injection_runs_is_skipped() {
        let fx = fx();
        // Loop count 0 in all injection runs but >0 in profile: no edge
        // (and no false S+ from the reversed direction either).
        let profile: Vec<RunTrace> = (0..5)
            .map(|_| trace_with(&[], &[(fx.inner, 50)], None))
            .collect();
        let inj: Vec<RunTrace> = (0..5).map(|_| trace_with(&[], &[], Some(fx.np))).collect();
        let out = analyze_experiment(
            &fx.reg,
            &profile,
            &inj,
            InjectionPlan::negate(fx.np),
            TestId(0),
            1,
            &cfgd(),
        );
        assert!(out.edges.is_empty());
    }

    #[test]
    fn indexed_path_matches_reference_on_fixtures() {
        let fx = fx();
        let cases: Vec<(Vec<RunTrace>, Vec<RunTrace>, InjectionPlan)> = vec![
            // Additional exception.
            (
                vec![trace_with(&[], &[], None); 5],
                vec![trace_with(&[(fx.tp, 1)], &[], Some(fx.np)); 5],
                InjectionPlan::negate(fx.np),
            ),
            // Never fired.
            (
                vec![trace_with(&[], &[], None); 5],
                vec![trace_with(&[(fx.np, 1)], &[], None); 5],
                InjectionPlan::throw(fx.tp),
            ),
            // Loop increase with structural edges.
            (
                (0..5)
                    .map(|_| {
                        trace_with(
                            &[],
                            &[(fx.inner, 100), (fx.outer, 10), (fx.sibling, 100)],
                            None,
                        )
                    })
                    .collect(),
                (0..5)
                    .map(|i| {
                        trace_with(
                            &[],
                            &[(fx.inner, 300 + i), (fx.outer, 10), (fx.sibling, 100)],
                            Some(fx.np),
                        )
                    })
                    .collect(),
                InjectionPlan::negate(fx.np),
            ),
        ];
        for (profile, inj, plan) in cases {
            let fast = analyze_experiment(&fx.reg, &profile, &inj, plan, TestId(0), 1, &cfgd());
            let slow =
                analyze_experiment_reference(&fx.reg, &profile, &inj, plan, TestId(0), 1, &cfgd());
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn icfg_and_cfg_edges_connect_nested_and_sibling_loops() {
        let fx = fx();
        let profile: Vec<RunTrace> = (0..5)
            .map(|_| {
                trace_with(
                    &[],
                    &[(fx.inner, 100), (fx.outer, 10), (fx.sibling, 100)],
                    None,
                )
            })
            .collect();
        let inj: Vec<RunTrace> = (0..5)
            .map(|i| {
                trace_with(
                    &[],
                    &[(fx.inner, 300 + i), (fx.outer, 10), (fx.sibling, 100)],
                    Some(fx.np),
                )
            })
            .collect();
        let out = analyze_experiment(
            &fx.reg,
            &profile,
            &inj,
            InjectionPlan::negate(fx.np),
            TestId(0),
            1,
            &cfgd(),
        );
        let icfg = out.edges.iter().find(|e| e.kind == EdgeKind::Icfg).unwrap();
        assert_eq!((icfg.cause, icfg.effect), (fx.inner, fx.outer));
        let cfg_edge = out.edges.iter().find(|e| e.kind == EdgeKind::Cfg).unwrap();
        assert_eq!((cfg_edge.cause, cfg_edge.effect), (fx.outer, fx.sibling));
        // Structural edges are not part of the interference list.
        assert!(!out.interference.contains(&fx.outer));
    }
}
