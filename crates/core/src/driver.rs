//! The workload driver: runs profile and injection experiments against a
//! target system and feeds the 3PA protocol.
//!
//! Responsibilities (Fig. 3, step 2):
//!
//! * run every integration test's *profile runs* (no injection, repeated
//!   `reps` times) and cache the traces — these are the counterfactuals;
//! * derive per-test coverage (which fault points each test reaches) so that
//!   injections only use reaching tests;
//! * build the dynamic call graph from profile traces and run the static
//!   analyzer's filters (§4.1, §B.1);
//! * for each `(fault, test)` experiment, run the injection runs (sweeping
//!   delay lengths for loop faults) and hand the traces to FCA.

use std::collections::BTreeMap;
use std::sync::Arc;

use csnake_analyzer::{analyze, Analysis, AnalysisConfig, CallGraph};
use csnake_inject::{FaultId, FaultKind, InjectionPlan, Registry, RunTrace, TestId};
use csnake_sim::VirtualTime;
use serde::{Deserialize, Serialize};

use crate::alloc::ExperimentEngine;
use crate::fca::{analyze_experiment, ExperimentOutcome, FcaConfig};
use crate::target::TargetSystem;

/// Driver knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriverConfig {
    /// Repetitions of every profile and injection run (paper: 5).
    pub reps: usize,
    /// Delay lengths swept per delay injection, in milliseconds
    /// (paper: seven values, 100 ms – 8 s; default here is a 3-point sweep
    /// for speed — use [`csnake_inject::fault::PAPER_DELAY_SWEEP_MS`] for
    /// the full set).
    pub delay_values_ms: Vec<u64>,
    /// FCA thresholds.
    pub fca: FcaConfig,
    /// Static-analysis knobs.
    pub analysis: AnalysisConfig,
    /// Base seed; every `(test, rep)` derives its own run seed.
    pub base_seed: u64,
    /// Run repetitions on worker threads.
    pub parallel: bool,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            reps: 5,
            delay_values_ms: vec![100, 800, 3200],
            fca: FcaConfig::default(),
            analysis: AnalysisConfig::default(),
            base_seed: 0xCA5CADE,
            parallel: true,
        }
    }
}

/// Deterministic per-(test, rep) seed derivation.
///
/// Profile and injection runs of the same `(test, rep)` share a seed so the
/// comparison is paired: the only difference is the injected fault.
pub fn seed_for(base: u64, test: TestId, rep: usize) -> u64 {
    let mut h = base ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(test.0 as u64 + 1);
    h ^= (rep as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 31;
    h.wrapping_mul(0x94D0_49BB_1331_11EB)
}

/// The experiment engine over one target system.
pub struct Driver<'a> {
    target: &'a dyn TargetSystem,
    registry: Arc<Registry>,
    cfg: DriverConfig,
    /// Static-analysis result (filters applied).
    pub analysis: Analysis,
    /// Cached profile traces per test.
    profiles: BTreeMap<TestId, Vec<RunTrace>>,
    /// Tests whose profile coverage includes each fault point.
    reaching: BTreeMap<FaultId, Vec<TestId>>,
    /// Number of fault points covered per test.
    coverage_size: BTreeMap<TestId, usize>,
    /// Total individual runs executed (profile + injection).
    pub runs_executed: usize,
}

impl<'a> Driver<'a> {
    /// Profiles every test, builds coverage and the dynamic call graph, and
    /// applies the static filters.
    pub fn new(target: &'a dyn TargetSystem, cfg: DriverConfig) -> Self {
        let registry = target.registry();
        let tests = target.tests();
        let mut profiles: BTreeMap<TestId, Vec<RunTrace>> = BTreeMap::new();
        let mut runs = 0usize;
        for tc in &tests {
            let traces = run_batch(target, tc.id, None, &cfg, cfg.reps);
            runs += traces.len();
            profiles.insert(tc.id, traces);
        }

        // Coverage: a test reaches a fault point if any profile rep did.
        let mut reaching: BTreeMap<FaultId, Vec<TestId>> = BTreeMap::new();
        let mut coverage_size: BTreeMap<TestId, usize> = BTreeMap::new();
        for (tid, traces) in &profiles {
            let mut union = std::collections::BTreeSet::new();
            for t in traces {
                union.extend(t.coverage.iter().copied());
            }
            coverage_size.insert(*tid, union.len());
            for f in union {
                reaching.entry(f).or_default().push(*tid);
            }
        }

        let cg = CallGraph::from_traces(profiles.values().flatten());
        let analysis = analyze(&registry, &cg, &cfg.analysis);

        Driver {
            target,
            registry,
            cfg,
            analysis,
            profiles,
            reaching,
            coverage_size,
            runs_executed: runs,
        }
    }

    /// The registry of the target under test.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Cached profile traces of a test.
    pub fn profile(&self, t: TestId) -> &[RunTrace] {
        self.profiles.get(&t).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The driver configuration.
    pub fn config(&self) -> &DriverConfig {
        &self.cfg
    }

    fn plans_for(&self, f: FaultId) -> Vec<InjectionPlan> {
        match self.registry.point(f).kind {
            FaultKind::LoopPoint => self
                .cfg
                .delay_values_ms
                .iter()
                .map(|ms| InjectionPlan::delay(f, VirtualTime::from_millis(*ms)))
                .collect(),
            FaultKind::Throw | FaultKind::LibCall => vec![InjectionPlan::throw(f)],
            FaultKind::Negation => vec![InjectionPlan::negate(f)],
        }
    }
}

/// Runs `reps` repetitions of a workload (optionally threaded).
fn run_batch(
    target: &dyn TargetSystem,
    test: TestId,
    plan: Option<InjectionPlan>,
    cfg: &DriverConfig,
    reps: usize,
) -> Vec<RunTrace> {
    if !cfg.parallel || reps <= 1 {
        return (0..reps)
            .map(|rep| target.run(test, plan, seed_for(cfg.base_seed, test, rep)))
            .collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..reps)
            .map(|rep| {
                let seed = seed_for(cfg.base_seed, test, rep);
                scope.spawn(move || target.run(test, plan, seed))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("target run panicked"))
            .collect()
    })
}

impl ExperimentEngine for Driver<'_> {
    fn faults(&self) -> Vec<FaultId> {
        self.analysis.injectable.clone()
    }

    fn tests_reaching(&self, f: FaultId) -> Vec<TestId> {
        self.reaching.get(&f).cloned().unwrap_or_default()
    }

    fn coverage_size(&self, t: TestId) -> usize {
        self.coverage_size.get(&t).copied().unwrap_or(0)
    }

    fn run_experiment(&mut self, f: FaultId, t: TestId, phase: u8) -> ExperimentOutcome {
        let profile = self.profiles.get(&t).cloned().unwrap_or_default();
        let mut merged: Option<ExperimentOutcome> = None;
        for plan in self.plans_for(f) {
            let traces = run_batch(self.target, t, Some(plan), &self.cfg, self.cfg.reps);
            self.runs_executed += traces.len();
            let out = analyze_experiment(
                &self.registry,
                &profile,
                &traces,
                plan,
                t,
                phase,
                &self.cfg.fca,
            );
            match &mut merged {
                None => merged = Some(out),
                Some(m) => {
                    m.interference.extend(out.interference.iter().copied());
                    // Causal relationships found at any delay length count
                    // (§4.2: the sweep "maximizes discovery"); the CausalDb
                    // deduplicates repeats.
                    m.edges.extend(out.edges);
                }
            }
        }
        merged.unwrap_or(ExperimentOutcome {
            fault: f,
            test: t,
            interference: Default::default(),
            edges: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct_across_tests_and_reps() {
        let mut seen = std::collections::BTreeSet::new();
        for t in 0..10u32 {
            for rep in 0..10usize {
                assert!(seen.insert(seed_for(42, TestId(t), rep)));
            }
        }
        // And stable.
        assert_eq!(seed_for(42, TestId(3), 2), seed_for(42, TestId(3), 2));
        assert_ne!(seed_for(42, TestId(3), 2), seed_for(43, TestId(3), 2));
    }
}
