//! The workload driver: runs profile and injection experiments against a
//! target system and feeds the 3PA protocol.
//!
//! Responsibilities (Fig. 3, step 2):
//!
//! * run every integration test's *profile runs* (no injection, repeated
//!   `reps` times) and cache the traces — these are the counterfactuals;
//! * derive per-test coverage (which fault points each test reaches) so that
//!   injections only use reaching tests;
//! * build the dynamic call graph from profile traces and run the static
//!   analyzer's filters (§4.1, §B.1);
//! * for each `(fault, test)` experiment, run the injection runs (sweeping
//!   delay lengths for loop faults) and hand the traces to FCA.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use csnake_analyzer::{analyze, Analysis, AnalysisConfig, CallGraph};
use csnake_inject::{
    FaultId, FaultKind, InjectAction, InjectionPlan, Registry, RunTrace, TestId, TraceIndex,
};
use csnake_sim::VirtualTime;
use serde::{Deserialize, Serialize};

use crate::alloc::ExperimentEngine;
use crate::chaos::{ChaosConfig, ChaosInjector};
use crate::fca::{
    analyze_experiment_indexed, analyze_experiment_prepared, ExperimentOutcome, FcaConfig,
    ProfileIndex,
};
use crate::observer::CampaignObserver;
use crate::pool;
use crate::target::TargetSystem;

/// Supervisor retry knobs: what happens when an experiment job panics or
/// stalls.
///
/// Failed jobs are quarantined and retried with bounded exponential
/// backoff: attempt `k` (1-based) waits `min(backoff_base_ms · 2^(k-1),
/// backoff_cap_ms)` before re-running. The schedule is deterministic and
/// paces wall-clock execution only — no timing ever enters campaign
/// results, so a retried campaign stays bit-identical to an unfailed one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryConfig {
    /// Retry rounds after the initial attempt before a job becomes a gap.
    pub max_retries: u32,
    /// Base backoff before the first retry, in milliseconds.
    pub backoff_base_ms: u64,
    /// Upper bound on any single backoff pause, in milliseconds.
    pub backoff_cap_ms: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            max_retries: 2,
            backoff_base_ms: 10,
            backoff_cap_ms: 1_000,
        }
    }
}

impl RetryConfig {
    /// The deterministic backoff before retry `attempt` (1-based), in
    /// milliseconds.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let factor = 1u64 << attempt.saturating_sub(1).min(20);
        self.backoff_base_ms
            .saturating_mul(factor)
            .min(self.backoff_cap_ms)
    }
}

/// Driver knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriverConfig {
    /// Repetitions of every profile and injection run (paper: 5).
    pub reps: usize,
    /// Delay lengths swept per delay injection, in milliseconds
    /// (paper: seven values, 100 ms – 8 s; default here is a 3-point sweep
    /// for speed — use [`csnake_inject::fault::PAPER_DELAY_SWEEP_MS`] for
    /// the full set).
    pub delay_values_ms: Vec<u64>,
    /// FCA thresholds.
    pub fca: FcaConfig,
    /// Static-analysis knobs.
    pub analysis: AnalysisConfig,
    /// Base seed; every `(test, rep)` derives its own run seed.
    pub base_seed: u64,
    /// Run repetitions on worker threads.
    pub parallel: bool,
    /// Cache injection-side run sets (traces + [`TraceIndex`]) keyed by
    /// `(test, plan)`, so a `(fault, test)` combination revisited later —
    /// a comparison strategy over the same profiled driver, adaptive
    /// repetitions — reuses the recorded runs instead of re-simulating
    /// and re-indexing. Off by default: the cache pins every injection
    /// trace for the driver's lifetime, a real memory cost on large
    /// campaigns. Results are identical either way (run seeds are pure
    /// functions of `(test, rep)`); only `runs_executed` stops growing
    /// on hits. Hit/miss counters surface through
    /// [`CampaignObserver::trace_cache`].
    pub cache_injections: bool,
    /// Supervisor retry schedule for panicked or stalled experiment jobs.
    pub retry: RetryConfig,
    /// Self-fault-injection harness configuration (disabled by default).
    /// The `CSNAKE_CHAOS` environment variable, when set, overrides this
    /// at driver construction — see [`ChaosConfig::from_env`].
    pub chaos: ChaosConfig,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            reps: 5,
            delay_values_ms: vec![100, 800, 3200],
            fca: FcaConfig::default(),
            analysis: AnalysisConfig::default(),
            base_seed: 0xCA5CADE,
            parallel: true,
            cache_injections: false,
            retry: RetryConfig::default(),
            chaos: ChaosConfig::default(),
        }
    }
}

impl DriverConfig {
    /// The paper's evaluation settings: 5 repetitions per run set and the
    /// full seven-point 100 ms – 8 s delay sweep
    /// ([`csnake_inject::fault::PAPER_DELAY_SWEEP_MS`]). Slower than the
    /// default (which trims the sweep for day-to-day runs) but maximises
    /// discovery, per §4.2.
    pub fn paper() -> Self {
        DriverConfig {
            reps: 5,
            delay_values_ms: csnake_inject::fault::PAPER_DELAY_SWEEP_MS.to_vec(),
            ..Default::default()
        }
    }
}

/// Deterministic per-(test, rep) seed derivation.
///
/// Profile and injection runs of the same `(test, rep)` share a seed so the
/// comparison is paired: the only difference is the injected fault.
pub fn seed_for(base: u64, test: TestId, rep: usize) -> u64 {
    let mut h = base ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(test.0 as u64 + 1);
    h ^= (rep as u64 + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 31;
    h.wrapping_mul(0x94D0_49BB_1331_11EB)
}

/// One cached injection-side run set: the recorded traces plus the
/// [`TraceIndex`] FCA builds over them.
struct InjRunSet {
    traces: Vec<RunTrace>,
    index: TraceIndex,
}

/// Cache key: the `(test, plan)` pair, with the plan flattened into
/// `(fault, action tag, delay µs)` so it orders/hashes cheaply.
type InjKey = (TestId, FaultId, u8, u64);

fn inj_key(test: TestId, plan: InjectionPlan) -> InjKey {
    let (tag, delay_us) = match plan.action {
        InjectAction::Throw => (0u8, 0u64),
        InjectAction::Negate => (1, 0),
        InjectAction::Delay(d) => (2, d.as_micros()),
    };
    (test, plan.target, tag, delay_us)
}

/// The experiment engine over one target system.
pub struct Driver<'a> {
    target: &'a dyn TargetSystem,
    registry: Arc<Registry>,
    cfg: DriverConfig,
    /// Static-analysis result (filters applied).
    pub analysis: Analysis,
    /// Cached profile traces per test.
    profiles: BTreeMap<TestId, Vec<RunTrace>>,
    /// Prepared profile index per test (presence counts, loop-count matrix,
    /// per-loop sample moments) — shared by every experiment on the test.
    profile_idx: BTreeMap<TestId, ProfileIndex>,
    /// Tests whose profile coverage includes each fault point.
    reaching: BTreeMap<FaultId, Vec<TestId>>,
    /// Number of fault points covered per test.
    coverage_size: BTreeMap<TestId, usize>,
    /// Injection run sets cached per `(test, plan)` when
    /// `cfg.cache_injections` is set (interior-mutable: experiments fan
    /// out over `&self` on the worker pool).
    inj_cache: Mutex<HashMap<InjKey, Arc<InjRunSet>>>,
    cache_hits: AtomicUsize,
    cache_misses: AtomicUsize,
    /// Total individual runs executed (profile + injection).
    pub runs_executed: usize,
    /// Self-fault-injection harness; disabled unless configured via
    /// [`DriverConfig::chaos`] or the `CSNAKE_CHAOS` environment variable.
    chaos: ChaosInjector,
    /// Observer for supervisor events (`batch_retried` / `batch_failed`);
    /// `None` keeps them silent.
    observer: Option<Arc<dyn CampaignObserver>>,
    /// Experiment cells abandoned after the retry budget was exhausted,
    /// drained by [`ExperimentEngine::take_gaps`].
    gaps: Vec<(FaultId, TestId, u8)>,
    /// Monotonic batch ordinal for supervisor-event provenance.
    batch_counter: usize,
}

impl<'a> Driver<'a> {
    /// Profiles every test, builds coverage and the dynamic call graph, and
    /// applies the static filters.
    pub fn new(target: &'a dyn TargetSystem, cfg: DriverConfig) -> Self {
        let tests = target.tests();
        let mut profiles: BTreeMap<TestId, Vec<RunTrace>> = BTreeMap::new();
        let mut runs = 0usize;
        for tc in &tests {
            let traces = run_batch(target, tc.id, None, &cfg, cfg.reps, cfg.parallel);
            runs += traces.len();
            profiles.insert(tc.id, traces);
        }
        Self::from_profiles(target, cfg, profiles, runs)
    }

    /// Rebuilds a driver from previously recorded profile traces without
    /// touching the simulator — the resume path of session snapshots.
    ///
    /// All derived state (coverage, the dynamic call graph, the static
    /// filters, the per-test profile indexes) is recomputed here; since the
    /// computation is deterministic in `profiles` and `cfg`, a driver
    /// restored this way is indistinguishable from the one that recorded
    /// the traces. `runs_executed` carries the run counter across the
    /// checkpoint so campaign accounting stays exact.
    pub fn from_profiles(
        target: &'a dyn TargetSystem,
        cfg: DriverConfig,
        profiles: BTreeMap<TestId, Vec<RunTrace>>,
        runs_executed: usize,
    ) -> Self {
        let registry = target.registry();
        let runs = runs_executed;

        // Coverage: a test reaches a fault point if any profile rep did.
        let mut reaching: BTreeMap<FaultId, Vec<TestId>> = BTreeMap::new();
        let mut coverage_size: BTreeMap<TestId, usize> = BTreeMap::new();
        for (tid, traces) in &profiles {
            let mut union = std::collections::BTreeSet::new();
            for t in traces {
                union.extend(t.coverage.iter().copied());
            }
            coverage_size.insert(*tid, union.len());
            for f in union {
                reaching.entry(f).or_default().push(*tid);
            }
        }

        let cg = CallGraph::from_traces(profiles.values().flatten());
        let analysis = analyze(&registry, &cg, &cfg.analysis);

        let profile_idx: BTreeMap<TestId, ProfileIndex> = profiles
            .iter()
            .map(|(tid, traces)| (*tid, ProfileIndex::build(&registry, traces)))
            .collect();

        let chaos =
            ChaosInjector::new(ChaosConfig::from_env().unwrap_or_else(|| cfg.chaos.clone()));
        // Profiling (or a resumed snapshot's earlier life) may have left
        // workload latency summaries buffered in the target; the observer
        // stream covers experiments only, so clear them here.
        drop(target.drain_workload_summaries());
        Driver {
            target,
            registry,
            cfg,
            analysis,
            profiles,
            profile_idx,
            reaching,
            coverage_size,
            inj_cache: Mutex::new(HashMap::new()),
            cache_hits: AtomicUsize::new(0),
            cache_misses: AtomicUsize::new(0),
            runs_executed: runs,
            chaos,
            observer: None,
            gaps: Vec::new(),
            batch_counter: 0,
        }
    }

    /// Attaches an observer for supervisor events — retries
    /// ([`CampaignObserver::batch_retried`]) and abandoned cells
    /// ([`CampaignObserver::batch_failed`]). Stage-level events are
    /// emitted by the session, not the driver.
    pub fn set_observer(&mut self, observer: Arc<dyn CampaignObserver>) {
        self.observer = Some(observer);
    }

    /// The active self-fault-injection harness (disabled unless configured).
    pub fn chaos(&self) -> &ChaosInjector {
        &self.chaos
    }

    /// `(hits, misses)` of the injection-run cache so far; both zero when
    /// `cache_injections` is off. A hit means the experiment reused the
    /// recorded runs and their index without touching the simulator.
    pub fn trace_cache_stats(&self) -> (usize, usize) {
        (
            self.cache_hits.load(Ordering::Relaxed),
            self.cache_misses.load(Ordering::Relaxed),
        )
    }

    /// The registry of the target under test.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Cached profile traces of a test.
    pub fn profile(&self, t: TestId) -> &[RunTrace] {
        self.profiles.get(&t).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All cached profile traces, keyed by test — the expensive simulator
    /// output that session snapshots persist.
    pub fn profiles(&self) -> &BTreeMap<TestId, Vec<RunTrace>> {
        &self.profiles
    }

    /// The driver configuration.
    pub fn config(&self) -> &DriverConfig {
        &self.cfg
    }

    fn plans_for(&self, f: FaultId) -> Vec<InjectionPlan> {
        match self.registry.point(f).kind {
            FaultKind::LoopPoint => self
                .cfg
                .delay_values_ms
                .iter()
                .map(|ms| InjectionPlan::delay(f, VirtualTime::from_millis(*ms)))
                .collect(),
            FaultKind::Throw | FaultKind::LibCall => vec![InjectionPlan::throw(f)],
            FaultKind::Negation => vec![InjectionPlan::negate(f)],
        }
    }

    /// Runs one `(fault, test)` experiment — injection runs (sweeping delay
    /// lengths for loop faults) plus indexed FCA against the cached profile
    /// index — without touching driver state. Returns the outcome and the
    /// number of simulator runs executed.
    ///
    /// `parallel_reps` controls per-repetition threading; it is disabled
    /// when whole experiments already fan out on the worker pool, to avoid
    /// oversubscribing the machine.
    fn experiment_outcome(
        &self,
        f: FaultId,
        t: TestId,
        phase: u8,
        parallel_reps: bool,
    ) -> (ExperimentOutcome, usize) {
        // Chaos fires before any simulator work so a failed attempt
        // contributes zero runs — a retried campaign's `runs_executed`
        // matches an unfailed one exactly.
        self.chaos.experiment_hook(f, t);
        let fallback;
        let profile = match self.profile_idx.get(&t) {
            Some(p) => p,
            None => {
                fallback = ProfileIndex::build(&self.registry, &[]);
                &fallback
            }
        };
        let mut merged: Option<ExperimentOutcome> = None;
        let mut runs = 0usize;
        for plan in self.plans_for(f) {
            let out = if self.cfg.cache_injections {
                let key = inj_key(t, plan);
                let cached = self
                    .inj_cache
                    .lock()
                    .expect("injection cache poisoned")
                    .get(&key)
                    .cloned();
                let set = match cached {
                    Some(set) => {
                        self.cache_hits.fetch_add(1, Ordering::Relaxed);
                        set
                    }
                    None => {
                        self.cache_misses.fetch_add(1, Ordering::Relaxed);
                        let traces = run_batch(
                            self.target,
                            t,
                            Some(plan),
                            &self.cfg,
                            self.cfg.reps,
                            parallel_reps,
                        );
                        runs += traces.len();
                        let index = TraceIndex::build(&self.registry, &traces);
                        let set = Arc::new(InjRunSet { traces, index });
                        self.inj_cache
                            .lock()
                            .expect("injection cache poisoned")
                            .insert(key, Arc::clone(&set));
                        set
                    }
                };
                analyze_experiment_prepared(
                    &self.registry,
                    profile,
                    &set.index,
                    &set.traces,
                    plan,
                    t,
                    phase,
                    &self.cfg.fca,
                )
            } else {
                let traces = run_batch(
                    self.target,
                    t,
                    Some(plan),
                    &self.cfg,
                    self.cfg.reps,
                    parallel_reps,
                );
                runs += traces.len();
                analyze_experiment_indexed(
                    &self.registry,
                    profile,
                    &traces,
                    plan,
                    t,
                    phase,
                    &self.cfg.fca,
                )
            };
            match &mut merged {
                None => merged = Some(out),
                Some(m) => {
                    m.interference.extend(out.interference.iter().copied());
                    // Causal relationships found at any delay length count
                    // (§4.2: the sweep "maximizes discovery"); the CausalDb
                    // deduplicates repeats.
                    m.edges.extend(out.edges);
                }
            }
        }
        let outcome = merged.unwrap_or(ExperimentOutcome {
            fault: f,
            test: t,
            interference: Default::default(),
            edges: Vec::new(),
        });
        (outcome, runs)
    }
}

/// Runs `reps` repetitions of a workload (optionally threaded).
fn run_batch(
    target: &dyn TargetSystem,
    test: TestId,
    plan: Option<InjectionPlan>,
    cfg: &DriverConfig,
    reps: usize,
    parallel: bool,
) -> Vec<RunTrace> {
    if !parallel || reps <= 1 {
        return (0..reps)
            .map(|rep| target.run(test, plan, seed_for(cfg.base_seed, test, rep)))
            .collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..reps)
            .map(|rep| {
                let seed = seed_for(cfg.base_seed, test, rep);
                scope.spawn(move || target.run(test, plan, seed))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("target run panicked"))
            .collect()
    })
}

impl ExperimentEngine for Driver<'_> {
    fn faults(&self) -> Vec<FaultId> {
        self.analysis.injectable.clone()
    }

    fn tests_reaching(&self, f: FaultId) -> Vec<TestId> {
        self.reaching.get(&f).cloned().unwrap_or_default()
    }

    fn coverage_size(&self, t: TestId) -> usize {
        self.coverage_size.get(&t).copied().unwrap_or(0)
    }

    fn run_experiment(&mut self, f: FaultId, t: TestId, phase: u8) -> ExperimentOutcome {
        self.run_experiments(&[(f, t, phase)])
            .pop()
            .expect("one outcome per experiment")
    }

    /// Fans the batch's independent experiments out on the shared worker
    /// pool, supervising failures. Target runs are deterministic in
    /// `(test, plan, seed)` and results reassemble in batch order, so the
    /// outcome sequence is bit-identical to the sequential path.
    ///
    /// Jobs that panic (or are made to panic/stall by the chaos harness)
    /// are quarantined and retried per [`DriverConfig::retry`]; the backoff
    /// pauses pace wall-clock execution only and never enter results. A
    /// job still failing after the budget becomes a *gap*: it yields an
    /// empty [`ExperimentOutcome`] placeholder (preserving batch order and
    /// budget accounting), is reported via
    /// [`CampaignObserver::batch_failed`], and is recorded for
    /// [`ExperimentEngine::take_gaps`].
    fn run_experiments(&mut self, batch: &[(FaultId, TestId, u8)]) -> Vec<ExperimentOutcome> {
        let batch_id = self.batch_counter;
        self.batch_counter += 1;
        let threads = if self.cfg.parallel {
            pool::hardware_threads()
        } else {
            1
        };
        // Per-repetition threading is only worthwhile when the batch itself
        // cannot fan out — the historical sequential-path semantics.
        let parallel_reps = self.cfg.parallel && batch.len() <= 1;

        let mut slots: Vec<Option<(ExperimentOutcome, usize)>> =
            (0..batch.len()).map(|_| None).collect();
        let mut pending: Vec<usize> = (0..batch.len()).collect();
        let mut attempt = 0u32;
        loop {
            let jobs: Vec<(FaultId, TestId, u8)> = pending.iter().map(|&i| batch[i]).collect();
            let this = &*self;
            let results = pool::run_ordered_caught(jobs, threads, move |(f, t, p)| {
                this.experiment_outcome(f, t, p, parallel_reps)
            });
            let mut failed: Vec<(usize, String)> = Vec::new();
            for (res, &idx) in results.into_iter().zip(pending.iter()) {
                match res {
                    Ok(out) => slots[idx] = Some(out),
                    Err(payload) => failed.push((idx, pool::panic_message(payload.as_ref()))),
                }
            }
            if failed.is_empty() {
                break;
            }
            if attempt >= self.cfg.retry.max_retries {
                for (idx, reason) in &failed {
                    let (f, t, p) = batch[*idx];
                    self.gaps.push((f, t, p));
                    if let Some(obs) = &self.observer {
                        obs.batch_failed(batch_id, f, t, p, reason);
                    }
                    // Empty placeholder keeps batch order and budget
                    // accounting identical to a successful run; the cell is
                    // enumerated in the report's missing set instead.
                    slots[*idx] = Some((
                        ExperimentOutcome {
                            fault: f,
                            test: t,
                            interference: Default::default(),
                            edges: Vec::new(),
                        },
                        0,
                    ));
                }
                break;
            }
            attempt += 1;
            let backoff = self.cfg.retry.backoff_ms(attempt);
            if let Some(obs) = &self.observer {
                obs.batch_retried(batch_id, failed.len(), attempt, backoff);
            }
            if backoff > 0 {
                std::thread::sleep(std::time::Duration::from_millis(backoff));
            }
            pending = failed.into_iter().map(|(idx, _)| idx).collect();
        }

        let mut outcomes = Vec::with_capacity(batch.len());
        for slot in slots {
            let (out, runs) = slot.expect("every slot resolved");
            self.runs_executed += runs;
            outcomes.push(out);
        }

        // Open-loop workload targets buffer a latency summary per run; the
        // pool interleaves them nondeterministically, so drain once per
        // batch and re-emit sorted by (test, seed) — a deterministic stream
        // for telemetry. Ordinary targets return an empty vector.
        let mut summaries = self.target.drain_workload_summaries();
        if !summaries.is_empty() {
            summaries.sort_by_key(|s| (s.test, s.seed));
            if let Some(obs) = &self.observer {
                for s in &summaries {
                    obs.workload_summary(s);
                }
            }
        }
        outcomes
    }

    fn take_gaps(&mut self) -> Vec<(FaultId, TestId, u8)> {
        std::mem::take(&mut self.gaps)
    }

    fn runs_executed(&self) -> usize {
        self.runs_executed
    }

    fn attach_observer(&mut self, observer: Arc<dyn CampaignObserver>) {
        self.set_observer(observer);
    }

    fn trace_cache_stats(&self) -> (usize, usize) {
        Driver::trace_cache_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_distinct_across_tests_and_reps() {
        let mut seen = std::collections::BTreeSet::new();
        for t in 0..10u32 {
            for rep in 0..10usize {
                assert!(seen.insert(seed_for(42, TestId(t), rep)));
            }
        }
        // And stable.
        assert_eq!(seed_for(42, TestId(3), 2), seed_for(42, TestId(3), 2));
        assert_ne!(seed_for(42, TestId(3), 2), seed_for(43, TestId(3), 2));
    }
}
