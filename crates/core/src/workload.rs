//! Latency/throughput summaries produced by open-loop workload targets.
//!
//! The `csnake-workload` crate drives *open-loop* request streams (Poisson,
//! bursty, diurnal, or recorded-trace arrivals) through a simulated service
//! and measures per-request latency. Each run folds its measurements into
//! one [`WorkloadSummary`] — whole-run percentiles plus fixed-width
//! [`WorkloadWindow`]s over virtual time — which the target buffers and the
//! [`Driver`](crate::Driver) drains after each experiment batch via
//! [`TargetSystem::drain_workload_summaries`](crate::TargetSystem::drain_workload_summaries),
//! re-emitting them in deterministic `(test, seed)` order through
//! [`CampaignObserver::workload_summary`](crate::CampaignObserver::workload_summary).
//!
//! The windows are what makes an open-loop run diagnostic: under a
//! self-sustaining cascade the arrival rate does not yield (no closed-loop
//! back-pressure), so queueing delay compounds and the windowed p99 shows a
//! sharp *inflection* instead of a flat line —
//! [`WorkloadSummary::p99_inflection_milli`] locates it.

use csnake_inject::TestId;
use serde::Serialize;

/// One fixed-width virtual-time window of an open-loop run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct WorkloadWindow {
    /// Window start, in virtual milliseconds from run start.
    pub start_ms: u64,
    /// Requests that *completed* in this window.
    pub completed: u64,
    /// Median completion latency in the window, µs.
    pub p50_us: u64,
    /// 99th-percentile completion latency in the window, µs.
    pub p99_us: u64,
}

/// Whole-run latency/throughput summary of one open-loop workload run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct WorkloadSummary {
    /// The workload (test case) that ran.
    pub test: TestId,
    /// The run's seed.
    pub seed: u64,
    /// Requests the arrival process offered.
    pub offered: u64,
    /// Requests that completed service within the horizon.
    pub completed: u64,
    /// Requests shed by the service's bounded queue.
    pub dropped: u64,
    /// Whole-run median latency, µs.
    pub p50_us: u64,
    /// Whole-run 90th-percentile latency, µs.
    pub p90_us: u64,
    /// Whole-run 99th-percentile latency, µs.
    pub p99_us: u64,
    /// Worst completion latency, µs.
    pub max_us: u64,
    /// Fixed-width windows in virtual-time order.
    pub windows: Vec<WorkloadWindow>,
}

impl WorkloadSummary {
    /// Virtual millisecond at which the windowed p99 *inflects*: the start
    /// of the first window whose p99 is at least [`INFLECTION_FACTOR`]×
    /// the quietest non-empty window's p99. `None` when the run stayed
    /// flat (no cascade took hold) or produced fewer than two non-empty
    /// windows.
    pub fn p99_inflection_milli(&self) -> Option<u64> {
        let live: Vec<&WorkloadWindow> = self.windows.iter().filter(|w| w.completed > 0).collect();
        if live.len() < 2 {
            return None;
        }
        let baseline = live.iter().map(|w| w.p99_us).min().expect("non-empty");
        let threshold = baseline.saturating_mul(INFLECTION_FACTOR).max(1);
        live.iter()
            .find(|w| w.p99_us >= threshold)
            .map(|w| w.start_ms)
    }

    /// Completed requests per virtual second, over the whole run horizon
    /// implied by the windows (`0` for an empty run).
    pub fn throughput_rps(&self, window_ms: u64) -> u64 {
        let horizon_ms = (self.windows.len() as u64).saturating_mul(window_ms);
        if horizon_ms == 0 {
            return 0;
        }
        self.completed.saturating_mul(1000) / horizon_ms
    }
}

/// Multiplier over the quietest window's p99 that counts as an inflection.
pub const INFLECTION_FACTOR: u64 = 4;

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(p99s: &[(u64, u64)]) -> WorkloadSummary {
        WorkloadSummary {
            test: TestId(0),
            seed: 1,
            offered: 100,
            completed: p99s.iter().map(|&(c, _)| c).sum(),
            dropped: 0,
            p50_us: 10,
            p90_us: 20,
            p99_us: 40,
            max_us: 50,
            windows: p99s
                .iter()
                .enumerate()
                .map(|(i, &(completed, p99_us))| WorkloadWindow {
                    start_ms: i as u64 * 100,
                    completed,
                    p50_us: p99_us / 2,
                    p99_us,
                })
                .collect(),
        }
    }

    #[test]
    fn flat_run_has_no_inflection() {
        let s = summary(&[(10, 100), (10, 110), (10, 95), (10, 120)]);
        assert_eq!(s.p99_inflection_milli(), None);
    }

    #[test]
    fn cascade_inflects_at_the_first_blown_window() {
        let s = summary(&[(10, 100), (10, 110), (8, 900), (2, 5_000)]);
        assert_eq!(s.p99_inflection_milli(), Some(200));
    }

    #[test]
    fn empty_windows_are_ignored() {
        let s = summary(&[(10, 100), (0, 0), (10, 450)]);
        assert_eq!(s.p99_inflection_milli(), Some(200));
    }

    #[test]
    fn throughput_divides_by_the_window_horizon() {
        let s = summary(&[(500, 10), (500, 10)]);
        assert_eq!(s.throughput_rps(100), 5_000);
        assert_eq!(summary(&[]).throughput_rps(100), 0);
    }
}
