//! The campaign event layer: observe a detection session while it runs.
//!
//! A [`CampaignObserver`] receives the session's progress events — stage
//! transitions, 3PA phase boundaries, individual experiment completions,
//! causal edges as they enter the database, cycles as the stitcher reports
//! them, and budget consumption. The default implementation of every method
//! is a no-op, so observers implement only what they care about.
//!
//! Event vocabulary (all emitted on the session's coordinating thread, in
//! deterministic order — observers never affect campaign results):
//!
//! | event | emitted when |
//! |---|---|
//! | [`stage_started`] / [`stage_finished`] | a session stage begins / ends |
//! | [`phase_started`] / [`phase_finished`] | an allocation phase's planned batch begins / ends |
//! | [`experiment_completed`] | one `(fault, test)` experiment's FCA finished |
//! | [`edge_emitted`] | a *new* causal edge entered the database (sweep repeats are deduplicated first) |
//! | [`cycle_found`] | the stitcher reported a deduplicated cycle |
//! | [`budget_spent`] | the allocation strategy's spent/total counters moved |
//! | [`trace_cache`] | the driver's injection-run cache counters, after a campaign |
//! | [`clustering`] | the phase-one clustering ran (size counters, §5.2) |
//! | [`workload_summary`] | an open-loop workload run's latency summary was drained from the target |
//! | [`batch_retried`] | the supervisor quarantined failed jobs and scheduled a retry |
//! | [`batch_failed`] | a `(fault, test)` cell exhausted its retries and became a gap |
//! | [`checkpoint_written`] | a mid-phase checkpoint landed on disk (after the atomic rename) |
//! | [`degraded`] | the campaign completed with missing cells in its report |
//! | [`worker_connected`] / [`worker_lost`] | a daemon worker completed its handshake / missed its lease |
//! | [`shard_assigned`] / [`shard_reassigned`] | the daemon coordinator leased a shard / moved it off a dead worker |
//! | [`event_forwarded`] | the daemon coordinator relayed a worker-side event ([`ForwardedEvent`]) for live attribution |
//! | [`journal_flushed`] | a telemetry flight recorder flushed its journal to disk |
//!
//! The daemon/telemetry rows are *operational*: [`event_forwarded`] mirrors
//! work the deterministic stream already reports at merge time (with
//! worker attribution, as it happens on the fleet), and [`journal_flushed`]
//! describes the recorder itself. Neither feeds the deterministic
//! campaign-total counters, so forwarding can never double-count.
//!
//! [`stage_started`]: CampaignObserver::stage_started
//! [`stage_finished`]: CampaignObserver::stage_finished
//! [`phase_started`]: CampaignObserver::phase_started
//! [`phase_finished`]: CampaignObserver::phase_finished
//! [`experiment_completed`]: CampaignObserver::experiment_completed
//! [`edge_emitted`]: CampaignObserver::edge_emitted
//! [`cycle_found`]: CampaignObserver::cycle_found
//! [`budget_spent`]: CampaignObserver::budget_spent
//! [`trace_cache`]: CampaignObserver::trace_cache
//! [`clustering`]: CampaignObserver::clustering
//! [`workload_summary`]: CampaignObserver::workload_summary
//! [`batch_retried`]: CampaignObserver::batch_retried
//! [`batch_failed`]: CampaignObserver::batch_failed
//! [`checkpoint_written`]: CampaignObserver::checkpoint_written
//! [`degraded`]: CampaignObserver::degraded
//! [`worker_connected`]: CampaignObserver::worker_connected
//! [`worker_lost`]: CampaignObserver::worker_lost
//! [`shard_assigned`]: CampaignObserver::shard_assigned
//! [`shard_reassigned`]: CampaignObserver::shard_reassigned
//! [`event_forwarded`]: CampaignObserver::event_forwarded
//! [`journal_flushed`]: CampaignObserver::journal_flushed

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use csnake_inject::{FaultId, TestId};

use crate::beam::Cycle;
use crate::cluster::ClusterStats;
use crate::edge::CausalEdge;
use crate::fca::ExperimentOutcome;
use crate::session::Stage;
use crate::workload::WorkloadSummary;

/// A worker-side observer event relayed to the coordinator by the daemon's
/// `Event` wire frame and re-emitted through
/// [`CampaignObserver::event_forwarded`] with worker attribution.
///
/// Forwarded events exist for *liveness*: the deterministic event stream
/// ([`experiment_completed`](CampaignObserver::experiment_completed),
/// [`edge_emitted`](CampaignObserver::edge_emitted),
/// [`batch_retried`](CampaignObserver::batch_retried), …) is emitted
/// coordinator-side at shard-merge time, in deterministic order — which
/// means it lags the fleet by up to one in-flight shard per worker. The
/// forwarded copies arrive as the work happens, attributed to the worker
/// that did it, and deliberately carry only summaries (counts, ids) rather
/// than full outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForwardedEvent {
    /// A worker finished one `(fault, test)` experiment; `edges` is the
    /// number of causal edges its FCA produced (before coordinator-side
    /// deduplication against the campaign database).
    ExperimentCompleted {
        /// The injected fault.
        fault: FaultId,
        /// The workload the fault was injected into.
        test: TestId,
        /// Causal edges the experiment's FCA emitted.
        edges: usize,
    },
    /// A worker's retry supervisor quarantined failed jobs and scheduled a
    /// retry.
    BatchRetried {
        /// Jobs that failed and were re-queued.
        failed_jobs: usize,
        /// Retry attempt number (1-based).
        attempt: u32,
        /// Backoff pause before the retry.
        backoff_ms: u64,
    },
    /// A cell exhausted a worker's retry budget and became a gap.
    BatchFailed {
        /// The abandoned cell's fault.
        fault: FaultId,
        /// The abandoned cell's test.
        test: TestId,
        /// The abandoned cell's 3PA phase.
        phase: u8,
    },
    /// A worker's cumulative injection-run cache counters.
    TraceCache {
        /// Cache hits so far on that worker.
        hits: usize,
        /// Cache misses so far on that worker.
        misses: usize,
    },
}

/// Receives progress events from a running detection session.
///
/// All methods have no-op defaults. Implementations must be `Send + Sync`:
/// the session itself calls them from one thread at a time, but sessions
/// (and their observers) may be driven from worker threads.
pub trait CampaignObserver: Send + Sync {
    /// A session stage ([`Stage`]) started executing.
    fn stage_started(&self, stage: Stage) {
        let _ = stage;
    }

    /// A session stage finished executing.
    fn stage_finished(&self, stage: Stage) {
        let _ = stage;
    }

    /// An allocation phase is about to execute its planned batch.
    /// `phase` is the strategy's phase label (3PA: 1–3; baselines: 0),
    /// `planned` the number of experiments in the batch.
    fn phase_started(&self, phase: u8, planned: usize) {
        let _ = (phase, planned);
    }

    /// An allocation phase executed its batch; `executed` experiments ran.
    fn phase_finished(&self, phase: u8, executed: usize) {
        let _ = (phase, executed);
    }

    /// One `(fault, test)` experiment completed fault-causality analysis.
    fn experiment_completed(&self, outcome: &ExperimentOutcome) {
        let _ = outcome;
    }

    /// A new causal edge was accepted into the campaign database.
    fn edge_emitted(&self, edge: &CausalEdge) {
        let _ = edge;
    }

    /// The stitcher reported a (deduplicated) causal cycle.
    fn cycle_found(&self, cycle: &Cycle) {
        let _ = cycle;
    }

    /// The allocation strategy's budget counters moved.
    fn budget_spent(&self, spent: usize, total: usize) {
        let _ = (spent, total);
    }

    /// The driver's injection-run cache counters
    /// ([`DriverConfig::cache_injections`](crate::driver::DriverConfig::cache_injections)),
    /// emitted when an allocation stage finishes: `hits` experiments
    /// reused a recorded run set, `misses` simulated and indexed one.
    /// Both stay zero while the cache is disabled.
    fn trace_cache(&self, hits: usize, misses: usize) {
        let _ = (hits, misses);
    }

    /// The phase-one clustering ran; `stats` carries the sparse-run size
    /// counters (vectors, duplicate groups, candidate edges, and the
    /// matrix-vs-sparse-graph byte comparison). Emitted once per
    /// allocation stage, after the cluster cut.
    fn clustering(&self, stats: &ClusterStats) {
        let _ = stats;
    }

    /// An open-loop workload run's latency summary was drained from the
    /// target. Emitted by the [`Driver`](crate::Driver) after each
    /// experiment batch, in deterministic `(test, seed)` order. Summaries
    /// are telemetry only — they never feed FCA or campaign results.
    fn workload_summary(&self, summary: &WorkloadSummary) {
        let _ = summary;
    }

    /// The supervisor quarantined `failed_jobs` panicked/stalled jobs of
    /// experiment batch `batch` and scheduled retry attempt `attempt`
    /// (1-based) after a `backoff_ms` pause. The backoff paces wall-clock
    /// execution only; it never enters campaign results.
    fn batch_retried(&self, batch: usize, failed_jobs: usize, attempt: u32, backoff_ms: u64) {
        let _ = (batch, failed_jobs, attempt, backoff_ms);
    }

    /// A `(fault, test)` experiment exhausted its retry budget in batch
    /// `batch` and was recorded as a gap; `reason` is the final panic
    /// message. The campaign continues degraded — see
    /// [`degraded`](CampaignObserver::degraded).
    fn batch_failed(&self, batch: usize, fault: FaultId, test: TestId, phase: u8, reason: &str) {
        let _ = (batch, fault, test, phase, reason);
    }

    /// A mid-phase checkpoint reached disk: emitted *after* the atomic
    /// temp-file + rename completed, so by the time an observer sees the
    /// event the file at `path` is a complete, resumable snapshot covering
    /// `executed_in_phase` experiments of allocation phase `phase`.
    fn checkpoint_written(&self, path: &Path, phase: u8, executed_in_phase: usize) {
        let _ = (path, phase, executed_in_phase);
    }

    /// The campaign completed with permanently failed cells: `missing`
    /// enumerates every `(fault, test, phase)` whose experiment never
    /// produced an outcome. Emitted at most once, while the report stage
    /// assembles the annotated partial [`DetectionReport`](crate::DetectionReport).
    fn degraded(&self, missing: &[(FaultId, TestId, u8)]) {
        let _ = missing;
    }

    /// A daemon worker process completed its handshake and is ready for
    /// shard assignments. Operational telemetry only — worker membership
    /// never influences campaign results.
    fn worker_connected(&self, worker: u32) {
        let _ = worker;
    }

    /// A daemon worker's lease expired (stalled heartbeat) or its
    /// connection dropped; its unacknowledged shards will be reassigned.
    fn worker_lost(&self, worker: u32, reason: &str) {
        let _ = (worker, reason);
    }

    /// The daemon coordinator leased shard `shard` (`jobs` experiments) to
    /// `worker`.
    fn shard_assigned(&self, shard: u32, worker: u32, jobs: usize) {
        let _ = (shard, worker, jobs);
    }

    /// The daemon coordinator moved shard `shard` from a lost worker to
    /// `worker` (reassignment `attempt`, 1-based). Reassignment replays
    /// the identical jobs, so results are unaffected.
    fn shard_reassigned(&self, shard: u32, worker: u32, attempt: u32) {
        let _ = (shard, worker, attempt);
    }

    /// The daemon coordinator relayed a worker-side event as it happened on
    /// the fleet. Operational telemetry only: the deterministic stream
    /// reports the same work at merge time, so implementations must *not*
    /// fold forwarded events into campaign-total counters (that would
    /// double-count) — use them for per-worker attribution and liveness.
    fn event_forwarded(&self, worker: u32, event: &ForwardedEvent) {
        let _ = (worker, event);
    }

    /// A telemetry flight recorder flushed `records` journal records to
    /// `path`. Emitted by the recorder itself (not the session), after the
    /// corresponding bytes reached the file.
    fn journal_flushed(&self, path: &Path, records: usize) {
        let _ = (path, records);
    }
}

/// Fans every event out to a list of observers, in order.
///
/// Sessions accept exactly one observer; campaigns that want both the
/// counting [`ProgressCollector`] and a telemetry recorder (or any other
/// combination) wrap them in a fanout:
///
/// ```
/// use std::sync::Arc;
/// use csnake_core::{CampaignObserver, FanoutObserver, ProgressCollector};
///
/// let progress = Arc::new(ProgressCollector::new());
/// let observer: Arc<dyn CampaignObserver> =
///     Arc::new(FanoutObserver::new(vec![progress.clone()]));
/// observer.budget_spent(1, 8);
/// assert_eq!(progress.snapshot().budget_spent, 1);
/// ```
#[derive(Default)]
pub struct FanoutObserver {
    sinks: Vec<std::sync::Arc<dyn CampaignObserver>>,
}

impl FanoutObserver {
    /// A fanout over `sinks`; events are delivered in vector order.
    pub fn new(sinks: Vec<std::sync::Arc<dyn CampaignObserver>>) -> Self {
        FanoutObserver { sinks }
    }

    /// Appends another sink.
    pub fn push(&mut self, sink: std::sync::Arc<dyn CampaignObserver>) {
        self.sinks.push(sink);
    }
}

macro_rules! fanout {
    ($self:ident . $method:ident ( $($arg:expr),* )) => {
        for sink in &$self.sinks {
            sink.$method($($arg),*);
        }
    };
}

impl CampaignObserver for FanoutObserver {
    fn stage_started(&self, stage: Stage) {
        fanout!(self.stage_started(stage));
    }
    fn stage_finished(&self, stage: Stage) {
        fanout!(self.stage_finished(stage));
    }
    fn phase_started(&self, phase: u8, planned: usize) {
        fanout!(self.phase_started(phase, planned));
    }
    fn phase_finished(&self, phase: u8, executed: usize) {
        fanout!(self.phase_finished(phase, executed));
    }
    fn experiment_completed(&self, outcome: &ExperimentOutcome) {
        fanout!(self.experiment_completed(outcome));
    }
    fn edge_emitted(&self, edge: &CausalEdge) {
        fanout!(self.edge_emitted(edge));
    }
    fn cycle_found(&self, cycle: &Cycle) {
        fanout!(self.cycle_found(cycle));
    }
    fn budget_spent(&self, spent: usize, total: usize) {
        fanout!(self.budget_spent(spent, total));
    }
    fn trace_cache(&self, hits: usize, misses: usize) {
        fanout!(self.trace_cache(hits, misses));
    }
    fn clustering(&self, stats: &ClusterStats) {
        fanout!(self.clustering(stats));
    }
    fn workload_summary(&self, summary: &WorkloadSummary) {
        fanout!(self.workload_summary(summary));
    }
    fn batch_retried(&self, batch: usize, failed_jobs: usize, attempt: u32, backoff_ms: u64) {
        fanout!(self.batch_retried(batch, failed_jobs, attempt, backoff_ms));
    }
    fn batch_failed(&self, batch: usize, fault: FaultId, test: TestId, phase: u8, reason: &str) {
        fanout!(self.batch_failed(batch, fault, test, phase, reason));
    }
    fn checkpoint_written(&self, path: &Path, phase: u8, executed_in_phase: usize) {
        fanout!(self.checkpoint_written(path, phase, executed_in_phase));
    }
    fn degraded(&self, missing: &[(FaultId, TestId, u8)]) {
        fanout!(self.degraded(missing));
    }
    fn worker_connected(&self, worker: u32) {
        fanout!(self.worker_connected(worker));
    }
    fn worker_lost(&self, worker: u32, reason: &str) {
        fanout!(self.worker_lost(worker, reason));
    }
    fn shard_assigned(&self, shard: u32, worker: u32, jobs: usize) {
        fanout!(self.shard_assigned(shard, worker, jobs));
    }
    fn shard_reassigned(&self, shard: u32, worker: u32, attempt: u32) {
        fanout!(self.shard_reassigned(shard, worker, attempt));
    }
    fn event_forwarded(&self, worker: u32, event: &ForwardedEvent) {
        fanout!(self.event_forwarded(worker, event));
    }
    fn journal_flushed(&self, path: &Path, records: usize) {
        fanout!(self.journal_flushed(path, records));
    }
}

/// The default observer: ignores every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl CampaignObserver for NoopObserver {}

/// Monotonic counters of campaign progress, filled in by a
/// [`ProgressCollector`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Stages finished so far.
    pub stages_finished: usize,
    /// Allocation phases finished so far.
    pub phases_finished: usize,
    /// Experiments completed.
    pub experiments: usize,
    /// Causal edges accepted into the database.
    pub edges: usize,
    /// Cycles reported by the stitcher.
    pub cycles: usize,
    /// Budget spent (last seen value).
    pub budget_spent: usize,
    /// Total budget (last seen value).
    pub budget_total: usize,
    /// Injection-run cache hits (last seen value).
    pub trace_cache_hits: usize,
    /// Injection-run cache misses (last seen value).
    pub trace_cache_misses: usize,
    /// Largest vector count any clustering run saw.
    pub clustering_peak_vectors: usize,
    /// Peak `8·n²` bytes a dense distance matrix would have needed
    /// (what the sparse formulation avoids allocating).
    pub clustering_peak_matrix_bytes: u64,
    /// Peak sparse-graph working-set bytes actually implied by the run
    /// counts (see [`crate::ClusterStats::sparse_graph_bytes`]).
    pub clustering_peak_sparse_bytes: u64,
    /// Open-loop workload summaries drained from the target.
    pub workload_summaries: usize,
    /// Requests those workload runs completed, in total.
    pub workload_completed: u64,
    /// Worst whole-run p99 latency any workload summary reported, µs.
    pub workload_peak_p99_us: u64,
    /// Workload runs whose windowed p99 showed an inflection
    /// ([`WorkloadSummary::p99_inflection_milli`]).
    pub workload_inflections: usize,
    /// Retry rounds the supervisor scheduled.
    pub batch_retries: usize,
    /// `(fault, test)` cells that exhausted retries and became gaps.
    pub batch_failures: usize,
    /// Mid-phase checkpoints written to disk.
    pub checkpoints_written: usize,
    /// Whether a degraded completion was reported.
    pub degraded: bool,
    /// Daemon workers that completed their handshake.
    pub workers_connected: usize,
    /// Daemon workers lost to lease expiry or dropped connections.
    pub workers_lost: usize,
    /// Shards the daemon coordinator assigned (first leases only).
    pub shards_assigned: usize,
    /// Shards moved off dead workers.
    pub shards_reassigned: usize,
    /// Worker-side events relayed live by the daemon coordinator.
    pub events_forwarded: usize,
    /// Telemetry journal flushes reported by a flight recorder.
    pub journal_flushes: usize,
}

/// Per-worker live state accumulated by a [`ProgressCollector`] from the
/// daemon lifecycle and [`ForwardedEvent`] streams. Operational telemetry
/// only — none of it feeds campaign results.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerProgress {
    /// Whether the worker currently holds a live connection.
    pub connected: bool,
    /// Why the worker was lost, when it was (`None` while live).
    pub lost_reason: Option<String>,
    /// Shards ever leased to this worker (first leases + reassignments).
    pub shards_assigned: usize,
    /// The shard ordinal the worker was most recently leased.
    pub current_shard: Option<u32>,
    /// Experiments the worker has reported via forwarded events.
    pub experiments: usize,
    /// Causal edges the worker's experiments produced (pre-dedup).
    pub edges: usize,
    /// Retry rounds the worker's supervisor reported.
    pub retries: usize,
    /// Cells the worker abandoned as gaps.
    pub failures: usize,
    /// Last-seen injection-cache hit counter from the worker.
    pub cache_hits: usize,
    /// Last-seen injection-cache miss counter from the worker.
    pub cache_misses: usize,
}

/// The bundled metrics observer: counts events with atomics so a monitoring
/// thread can poll [`ProgressCollector::snapshot`] while the campaign runs.
#[derive(Debug, Default)]
pub struct ProgressCollector {
    stages_finished: AtomicUsize,
    phases_finished: AtomicUsize,
    experiments: AtomicUsize,
    edges: AtomicUsize,
    cycles: AtomicUsize,
    /// Budget `spent`/`total` packed into one word (`total` in the high 32
    /// bits, `spent` in the low 32) so a polling thread can never observe
    /// a torn pair — the two values always come from the same
    /// [`budget_spent`](CampaignObserver::budget_spent) event.
    budget: AtomicU64,
    trace_cache_hits: AtomicUsize,
    trace_cache_misses: AtomicUsize,
    clustering_peak_vectors: AtomicUsize,
    clustering_peak_matrix_bytes: AtomicU64,
    clustering_peak_sparse_bytes: AtomicU64,
    workload_summaries: AtomicUsize,
    workload_completed: AtomicU64,
    workload_peak_p99_us: AtomicU64,
    workload_inflections: AtomicUsize,
    batch_retries: AtomicUsize,
    batch_failures: AtomicUsize,
    checkpoints_written: AtomicUsize,
    degraded: std::sync::atomic::AtomicBool,
    workers_connected: AtomicUsize,
    workers_lost: AtomicUsize,
    shards_assigned: AtomicUsize,
    shards_reassigned: AtomicUsize,
    events_forwarded: AtomicUsize,
    journal_flushes: AtomicUsize,
    /// Per-worker attribution (forwarded events, lease state, loss
    /// reasons). A mutex, not atomics: observer calls may block briefly,
    /// they just must never perturb campaign results.
    workers: Mutex<BTreeMap<u32, WorkerProgress>>,
    /// Reason string of the most recent [`worker_lost`] event.
    ///
    /// [`worker_lost`]: CampaignObserver::worker_lost
    last_loss_reason: Mutex<Option<String>>,
}

/// Packs a budget pair into one `u64` word (`total` high, `spent` low).
fn pack_budget(spent: usize, total: usize) -> u64 {
    let spent = u64::try_from(spent)
        .unwrap_or(u64::MAX)
        .min(u32::MAX as u64);
    let total = u64::try_from(total)
        .unwrap_or(u64::MAX)
        .min(u32::MAX as u64);
    (total << 32) | spent
}

impl ProgressCollector {
    /// A fresh collector with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reason of the most recent [`worker_lost`](CampaignObserver::worker_lost)
    /// event, if any worker has been lost.
    pub fn last_loss_reason(&self) -> Option<String> {
        self.last_loss_reason
            .lock()
            .expect("loss reason poisoned")
            .clone()
    }

    /// Per-worker live state (sorted by worker id), accumulated from the
    /// daemon lifecycle events and forwarded worker events.
    pub fn worker_progress(&self) -> Vec<(u32, WorkerProgress)> {
        self.workers
            .lock()
            .expect("worker table poisoned")
            .iter()
            .map(|(&w, p)| (w, p.clone()))
            .collect()
    }

    fn with_worker(&self, worker: u32, f: impl FnOnce(&mut WorkerProgress)) {
        let mut table = self.workers.lock().expect("worker table poisoned");
        f(table.entry(worker).or_default());
    }

    /// Current counter values.
    pub fn snapshot(&self) -> ProgressSnapshot {
        let budget = self.budget.load(Ordering::Relaxed);
        ProgressSnapshot {
            stages_finished: self.stages_finished.load(Ordering::Relaxed),
            phases_finished: self.phases_finished.load(Ordering::Relaxed),
            experiments: self.experiments.load(Ordering::Relaxed),
            edges: self.edges.load(Ordering::Relaxed),
            cycles: self.cycles.load(Ordering::Relaxed),
            budget_spent: (budget & u32::MAX as u64) as usize,
            budget_total: (budget >> 32) as usize,
            trace_cache_hits: self.trace_cache_hits.load(Ordering::Relaxed),
            trace_cache_misses: self.trace_cache_misses.load(Ordering::Relaxed),
            clustering_peak_vectors: self.clustering_peak_vectors.load(Ordering::Relaxed),
            clustering_peak_matrix_bytes: self.clustering_peak_matrix_bytes.load(Ordering::Relaxed),
            clustering_peak_sparse_bytes: self.clustering_peak_sparse_bytes.load(Ordering::Relaxed),
            workload_summaries: self.workload_summaries.load(Ordering::Relaxed),
            workload_completed: self.workload_completed.load(Ordering::Relaxed),
            workload_peak_p99_us: self.workload_peak_p99_us.load(Ordering::Relaxed),
            workload_inflections: self.workload_inflections.load(Ordering::Relaxed),
            batch_retries: self.batch_retries.load(Ordering::Relaxed),
            batch_failures: self.batch_failures.load(Ordering::Relaxed),
            checkpoints_written: self.checkpoints_written.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            workers_connected: self.workers_connected.load(Ordering::Relaxed),
            workers_lost: self.workers_lost.load(Ordering::Relaxed),
            shards_assigned: self.shards_assigned.load(Ordering::Relaxed),
            shards_reassigned: self.shards_reassigned.load(Ordering::Relaxed),
            events_forwarded: self.events_forwarded.load(Ordering::Relaxed),
            journal_flushes: self.journal_flushes.load(Ordering::Relaxed),
        }
    }
}

impl CampaignObserver for ProgressCollector {
    fn stage_finished(&self, _stage: Stage) {
        self.stages_finished.fetch_add(1, Ordering::Relaxed);
    }

    fn phase_finished(&self, _phase: u8, _executed: usize) {
        self.phases_finished.fetch_add(1, Ordering::Relaxed);
    }

    fn experiment_completed(&self, _outcome: &ExperimentOutcome) {
        self.experiments.fetch_add(1, Ordering::Relaxed);
    }

    fn edge_emitted(&self, _edge: &CausalEdge) {
        self.edges.fetch_add(1, Ordering::Relaxed);
    }

    fn cycle_found(&self, _cycle: &Cycle) {
        self.cycles.fetch_add(1, Ordering::Relaxed);
    }

    fn budget_spent(&self, spent: usize, total: usize) {
        // One store for the pair: a concurrent snapshot() sees either the
        // previous pair or this one, never a spent/total mix of the two.
        self.budget
            .store(pack_budget(spent, total), Ordering::Relaxed);
    }

    fn trace_cache(&self, hits: usize, misses: usize) {
        self.trace_cache_hits.store(hits, Ordering::Relaxed);
        self.trace_cache_misses.store(misses, Ordering::Relaxed);
    }

    fn clustering(&self, stats: &ClusterStats) {
        self.clustering_peak_vectors
            .fetch_max(stats.vectors, Ordering::Relaxed);
        self.clustering_peak_matrix_bytes
            .fetch_max(stats.matrix_bytes, Ordering::Relaxed);
        self.clustering_peak_sparse_bytes
            .fetch_max(stats.sparse_graph_bytes, Ordering::Relaxed);
    }

    fn workload_summary(&self, summary: &WorkloadSummary) {
        self.workload_summaries.fetch_add(1, Ordering::Relaxed);
        self.workload_completed
            .fetch_add(summary.completed, Ordering::Relaxed);
        self.workload_peak_p99_us
            .fetch_max(summary.p99_us, Ordering::Relaxed);
        if summary.p99_inflection_milli().is_some() {
            self.workload_inflections.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn batch_retried(&self, _batch: usize, _failed_jobs: usize, _attempt: u32, _backoff_ms: u64) {
        self.batch_retries.fetch_add(1, Ordering::Relaxed);
    }

    fn batch_failed(&self, _batch: usize, _f: FaultId, _t: TestId, _phase: u8, _reason: &str) {
        self.batch_failures.fetch_add(1, Ordering::Relaxed);
    }

    fn checkpoint_written(&self, _path: &Path, _phase: u8, _executed_in_phase: usize) {
        self.checkpoints_written.fetch_add(1, Ordering::Relaxed);
    }

    fn degraded(&self, _missing: &[(FaultId, TestId, u8)]) {
        self.degraded.store(true, Ordering::Relaxed);
    }

    fn worker_connected(&self, worker: u32) {
        self.workers_connected.fetch_add(1, Ordering::Relaxed);
        self.with_worker(worker, |p| {
            p.connected = true;
            p.lost_reason = None;
        });
    }

    fn worker_lost(&self, worker: u32, reason: &str) {
        self.workers_lost.fetch_add(1, Ordering::Relaxed);
        *self.last_loss_reason.lock().expect("loss reason poisoned") = Some(reason.to_string());
        self.with_worker(worker, |p| {
            p.connected = false;
            p.lost_reason = Some(reason.to_string());
            p.current_shard = None;
        });
    }

    fn shard_assigned(&self, shard: u32, worker: u32, _jobs: usize) {
        self.shards_assigned.fetch_add(1, Ordering::Relaxed);
        self.with_worker(worker, |p| {
            p.shards_assigned += 1;
            p.current_shard = Some(shard);
        });
    }

    fn shard_reassigned(&self, shard: u32, worker: u32, _attempt: u32) {
        self.shards_reassigned.fetch_add(1, Ordering::Relaxed);
        self.with_worker(worker, |p| {
            p.shards_assigned += 1;
            p.current_shard = Some(shard);
        });
    }

    fn event_forwarded(&self, worker: u32, event: &ForwardedEvent) {
        self.events_forwarded.fetch_add(1, Ordering::Relaxed);
        self.with_worker(worker, |p| match event {
            ForwardedEvent::ExperimentCompleted { edges, .. } => {
                p.experiments += 1;
                p.edges += edges;
            }
            ForwardedEvent::BatchRetried { .. } => p.retries += 1,
            ForwardedEvent::BatchFailed { .. } => p.failures += 1,
            ForwardedEvent::TraceCache { hits, misses } => {
                p.cache_hits = *hits;
                p.cache_misses = *misses;
            }
        });
    }

    fn journal_flushed(&self, _path: &Path, _records: usize) {
        self.journal_flushes.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::{CausalEdge, CompatState, EdgeKind};

    fn edge() -> CausalEdge {
        CausalEdge {
            cause: FaultId(1),
            effect: FaultId(2),
            kind: EdgeKind::EI,
            test: TestId(0),
            phase: 1,
            cause_state: CompatState::empty(),
            effect_state: CompatState::empty(),
        }
    }

    #[test]
    fn noop_observer_accepts_everything() {
        let o = NoopObserver;
        o.stage_started(Stage::Built);
        o.stage_finished(Stage::Profiled);
        o.phase_started(1, 10);
        o.phase_finished(1, 10);
        o.edge_emitted(&edge());
        o.cycle_found(&Cycle {
            edges: vec![0],
            score: 0.5,
        });
        o.budget_spent(1, 4);
    }

    #[test]
    fn progress_collector_counts_events() {
        let c = ProgressCollector::new();
        c.stage_finished(Stage::Profiled);
        c.phase_finished(1, 3);
        c.phase_finished(2, 4);
        for _ in 0..5 {
            c.edge_emitted(&edge());
        }
        c.cycle_found(&Cycle {
            edges: vec![0],
            score: 0.5,
        });
        c.budget_spent(7, 24);
        let s = c.snapshot();
        assert_eq!(s.stages_finished, 1);
        assert_eq!(s.phases_finished, 2);
        assert_eq!(s.edges, 5);
        assert_eq!(s.cycles, 1);
        assert_eq!(s.budget_spent, 7);
        assert_eq!(s.budget_total, 24);
    }

    #[test]
    fn progress_collector_counts_supervisor_events() {
        let c = ProgressCollector::new();
        c.batch_retried(0, 3, 1, 10);
        c.batch_retried(0, 1, 2, 20);
        c.batch_failed(0, FaultId(1), TestId(2), 3, "chaos: boom");
        c.checkpoint_written(Path::new("/tmp/c.csnake"), 2, 8);
        let s = c.snapshot();
        assert_eq!(s.batch_retries, 2);
        assert_eq!(s.batch_failures, 1);
        assert_eq!(s.checkpoints_written, 1);
        assert!(!s.degraded);
        c.degraded(&[(FaultId(1), TestId(2), 3)]);
        assert!(c.snapshot().degraded);
    }

    #[test]
    fn progress_collector_counts_daemon_events() {
        let c = ProgressCollector::new();
        c.worker_connected(0);
        c.worker_connected(1);
        c.shard_assigned(0, 0, 12);
        c.shard_assigned(1, 1, 12);
        c.shard_assigned(2, 0, 11);
        c.worker_lost(1, "lease expired");
        c.shard_reassigned(1, 0, 1);
        let s = c.snapshot();
        assert_eq!(s.workers_connected, 2);
        assert_eq!(s.workers_lost, 1);
        assert_eq!(s.shards_assigned, 3);
        assert_eq!(s.shards_reassigned, 1);

        // Loss reasons survive as more than a counter.
        assert_eq!(c.last_loss_reason().as_deref(), Some("lease expired"));
        let workers = c.worker_progress();
        let w1 = &workers.iter().find(|(w, _)| *w == 1).expect("worker 1").1;
        assert!(!w1.connected);
        assert_eq!(w1.lost_reason.as_deref(), Some("lease expired"));
        let w0 = &workers.iter().find(|(w, _)| *w == 0).expect("worker 0").1;
        assert!(w0.connected);
        assert_eq!(w0.shards_assigned, 3); // two leases + one reassignment
        assert_eq!(w0.current_shard, Some(1));
    }

    #[test]
    fn budget_pair_is_never_torn() {
        // The packed store means a snapshot between two budget events sees
        // a consistent (spent, total) pair even under a concurrent writer.
        let c = std::sync::Arc::new(ProgressCollector::new());
        c.budget_spent(0, 7);
        let writer = {
            let c = c.clone();
            std::thread::spawn(move || {
                for spent in 0..=1000usize {
                    // Total moves with spent so a torn read is detectable.
                    c.budget_spent(spent, spent + 7);
                }
            })
        };
        for _ in 0..1000 {
            let s = c.snapshot();
            assert_eq!(
                s.budget_total,
                s.budget_spent + 7,
                "snapshot observed a torn budget pair"
            );
        }
        writer.join().expect("writer thread");
    }

    #[test]
    fn forwarded_events_attribute_per_worker_without_touching_totals() {
        let c = ProgressCollector::new();
        c.event_forwarded(
            2,
            &ForwardedEvent::ExperimentCompleted {
                fault: FaultId(1),
                test: TestId(0),
                edges: 3,
            },
        );
        c.event_forwarded(
            2,
            &ForwardedEvent::BatchRetried {
                failed_jobs: 1,
                attempt: 1,
                backoff_ms: 5,
            },
        );
        c.event_forwarded(2, &ForwardedEvent::TraceCache { hits: 4, misses: 9 });
        let s = c.snapshot();
        // The deterministic campaign totals stay untouched: forwarding is
        // attribution, not accounting.
        assert_eq!(s.experiments, 0);
        assert_eq!(s.edges, 0);
        assert_eq!(s.batch_retries, 0);
        assert_eq!(s.trace_cache_hits, 0);
        assert_eq!(s.events_forwarded, 3);
        let workers = c.worker_progress();
        let w2 = &workers.iter().find(|(w, _)| *w == 2).expect("worker 2").1;
        assert_eq!(w2.experiments, 1);
        assert_eq!(w2.edges, 3);
        assert_eq!(w2.retries, 1);
        assert_eq!((w2.cache_hits, w2.cache_misses), (4, 9));
    }

    #[test]
    fn fanout_delivers_every_event_to_every_sink() {
        let a = std::sync::Arc::new(ProgressCollector::new());
        let b = std::sync::Arc::new(ProgressCollector::new());
        let fan = FanoutObserver::new(vec![a.clone(), b.clone()]);
        fan.stage_finished(Stage::Profiled);
        fan.edge_emitted(&edge());
        fan.budget_spent(3, 9);
        fan.worker_lost(0, "gone");
        fan.journal_flushed(Path::new("/tmp/j.jsonl"), 12);
        for c in [&a, &b] {
            let s = c.snapshot();
            assert_eq!(s.stages_finished, 1);
            assert_eq!(s.edges, 1);
            assert_eq!((s.budget_spent, s.budget_total), (3, 9));
            assert_eq!(s.workers_lost, 1);
            assert_eq!(s.journal_flushes, 1);
        }
    }

    #[test]
    fn progress_collector_tracks_workload_summaries() {
        use crate::workload::{WorkloadSummary, WorkloadWindow};
        let window = |start_ms, p99_us| WorkloadWindow {
            start_ms,
            completed: 10,
            p50_us: p99_us / 2,
            p99_us,
        };
        let c = ProgressCollector::new();
        c.workload_summary(&WorkloadSummary {
            test: TestId(0),
            seed: 1,
            offered: 50,
            completed: 40,
            dropped: 10,
            p50_us: 100,
            p90_us: 200,
            p99_us: 9_000,
            max_us: 12_000,
            windows: vec![window(0, 150), window(100, 9_000)],
        });
        c.workload_summary(&WorkloadSummary {
            test: TestId(1),
            seed: 2,
            offered: 20,
            completed: 20,
            dropped: 0,
            p50_us: 90,
            p90_us: 120,
            p99_us: 140,
            max_us: 150,
            windows: vec![window(0, 130), window(100, 140)],
        });
        let s = c.snapshot();
        assert_eq!(s.workload_summaries, 2);
        assert_eq!(s.workload_completed, 60);
        assert_eq!(s.workload_peak_p99_us, 9_000);
        assert_eq!(s.workload_inflections, 1);
    }

    #[test]
    fn progress_collector_tracks_clustering_peaks() {
        let c = ProgressCollector::new();
        c.clustering(&ClusterStats {
            vectors: 100,
            matrix_bytes: 80_000,
            sparse_graph_bytes: 5_000,
            ..ClusterStats::default()
        });
        // A smaller later run must not lower the peaks.
        c.clustering(&ClusterStats {
            vectors: 10,
            matrix_bytes: 800,
            sparse_graph_bytes: 50,
            ..ClusterStats::default()
        });
        let s = c.snapshot();
        assert_eq!(s.clustering_peak_vectors, 100);
        assert_eq!(s.clustering_peak_matrix_bytes, 80_000);
        assert_eq!(s.clustering_peak_sparse_bytes, 5_000);
    }
}
