//! The campaign event layer: observe a detection session while it runs.
//!
//! A [`CampaignObserver`] receives the session's progress events — stage
//! transitions, 3PA phase boundaries, individual experiment completions,
//! causal edges as they enter the database, cycles as the stitcher reports
//! them, and budget consumption. The default implementation of every method
//! is a no-op, so observers implement only what they care about.
//!
//! Event vocabulary (all emitted on the session's coordinating thread, in
//! deterministic order — observers never affect campaign results):
//!
//! | event | emitted when |
//! |---|---|
//! | [`stage_started`] / [`stage_finished`] | a session stage begins / ends |
//! | [`phase_started`] / [`phase_finished`] | an allocation phase's planned batch begins / ends |
//! | [`experiment_completed`] | one `(fault, test)` experiment's FCA finished |
//! | [`edge_emitted`] | a *new* causal edge entered the database (sweep repeats are deduplicated first) |
//! | [`cycle_found`] | the stitcher reported a deduplicated cycle |
//! | [`budget_spent`] | the allocation strategy's spent/total counters moved |
//! | [`trace_cache`] | the driver's injection-run cache counters, after a campaign |
//! | [`clustering`] | the phase-one clustering ran (size counters, §5.2) |
//! | [`batch_retried`] | the supervisor quarantined failed jobs and scheduled a retry |
//! | [`batch_failed`] | a `(fault, test)` cell exhausted its retries and became a gap |
//! | [`checkpoint_written`] | a mid-phase checkpoint landed on disk (after the atomic rename) |
//! | [`degraded`] | the campaign completed with missing cells in its report |
//! | [`worker_connected`] / [`worker_lost`] | a daemon worker completed its handshake / missed its lease |
//! | [`shard_assigned`] / [`shard_reassigned`] | the daemon coordinator leased a shard / moved it off a dead worker |
//!
//! [`stage_started`]: CampaignObserver::stage_started
//! [`stage_finished`]: CampaignObserver::stage_finished
//! [`phase_started`]: CampaignObserver::phase_started
//! [`phase_finished`]: CampaignObserver::phase_finished
//! [`experiment_completed`]: CampaignObserver::experiment_completed
//! [`edge_emitted`]: CampaignObserver::edge_emitted
//! [`cycle_found`]: CampaignObserver::cycle_found
//! [`budget_spent`]: CampaignObserver::budget_spent
//! [`trace_cache`]: CampaignObserver::trace_cache
//! [`clustering`]: CampaignObserver::clustering
//! [`batch_retried`]: CampaignObserver::batch_retried
//! [`batch_failed`]: CampaignObserver::batch_failed
//! [`checkpoint_written`]: CampaignObserver::checkpoint_written
//! [`degraded`]: CampaignObserver::degraded
//! [`worker_connected`]: CampaignObserver::worker_connected
//! [`worker_lost`]: CampaignObserver::worker_lost
//! [`shard_assigned`]: CampaignObserver::shard_assigned
//! [`shard_reassigned`]: CampaignObserver::shard_reassigned

use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use csnake_inject::{FaultId, TestId};

use crate::beam::Cycle;
use crate::cluster::ClusterStats;
use crate::edge::CausalEdge;
use crate::fca::ExperimentOutcome;
use crate::session::Stage;

/// Receives progress events from a running detection session.
///
/// All methods have no-op defaults. Implementations must be `Send + Sync`:
/// the session itself calls them from one thread at a time, but sessions
/// (and their observers) may be driven from worker threads.
pub trait CampaignObserver: Send + Sync {
    /// A session stage ([`Stage`]) started executing.
    fn stage_started(&self, stage: Stage) {
        let _ = stage;
    }

    /// A session stage finished executing.
    fn stage_finished(&self, stage: Stage) {
        let _ = stage;
    }

    /// An allocation phase is about to execute its planned batch.
    /// `phase` is the strategy's phase label (3PA: 1–3; baselines: 0),
    /// `planned` the number of experiments in the batch.
    fn phase_started(&self, phase: u8, planned: usize) {
        let _ = (phase, planned);
    }

    /// An allocation phase executed its batch; `executed` experiments ran.
    fn phase_finished(&self, phase: u8, executed: usize) {
        let _ = (phase, executed);
    }

    /// One `(fault, test)` experiment completed fault-causality analysis.
    fn experiment_completed(&self, outcome: &ExperimentOutcome) {
        let _ = outcome;
    }

    /// A new causal edge was accepted into the campaign database.
    fn edge_emitted(&self, edge: &CausalEdge) {
        let _ = edge;
    }

    /// The stitcher reported a (deduplicated) causal cycle.
    fn cycle_found(&self, cycle: &Cycle) {
        let _ = cycle;
    }

    /// The allocation strategy's budget counters moved.
    fn budget_spent(&self, spent: usize, total: usize) {
        let _ = (spent, total);
    }

    /// The driver's injection-run cache counters
    /// ([`DriverConfig::cache_injections`](crate::driver::DriverConfig::cache_injections)),
    /// emitted when an allocation stage finishes: `hits` experiments
    /// reused a recorded run set, `misses` simulated and indexed one.
    /// Both stay zero while the cache is disabled.
    fn trace_cache(&self, hits: usize, misses: usize) {
        let _ = (hits, misses);
    }

    /// The phase-one clustering ran; `stats` carries the sparse-run size
    /// counters (vectors, duplicate groups, candidate edges, and the
    /// matrix-vs-sparse-graph byte comparison). Emitted once per
    /// allocation stage, after the cluster cut.
    fn clustering(&self, stats: &ClusterStats) {
        let _ = stats;
    }

    /// The supervisor quarantined `failed_jobs` panicked/stalled jobs of
    /// experiment batch `batch` and scheduled retry attempt `attempt`
    /// (1-based) after a `backoff_ms` pause. The backoff paces wall-clock
    /// execution only; it never enters campaign results.
    fn batch_retried(&self, batch: usize, failed_jobs: usize, attempt: u32, backoff_ms: u64) {
        let _ = (batch, failed_jobs, attempt, backoff_ms);
    }

    /// A `(fault, test)` experiment exhausted its retry budget in batch
    /// `batch` and was recorded as a gap; `reason` is the final panic
    /// message. The campaign continues degraded — see
    /// [`degraded`](CampaignObserver::degraded).
    fn batch_failed(&self, batch: usize, fault: FaultId, test: TestId, phase: u8, reason: &str) {
        let _ = (batch, fault, test, phase, reason);
    }

    /// A mid-phase checkpoint reached disk: emitted *after* the atomic
    /// temp-file + rename completed, so by the time an observer sees the
    /// event the file at `path` is a complete, resumable snapshot covering
    /// `executed_in_phase` experiments of allocation phase `phase`.
    fn checkpoint_written(&self, path: &Path, phase: u8, executed_in_phase: usize) {
        let _ = (path, phase, executed_in_phase);
    }

    /// The campaign completed with permanently failed cells: `missing`
    /// enumerates every `(fault, test, phase)` whose experiment never
    /// produced an outcome. Emitted at most once, while the report stage
    /// assembles the annotated partial [`DetectionReport`](crate::DetectionReport).
    fn degraded(&self, missing: &[(FaultId, TestId, u8)]) {
        let _ = missing;
    }

    /// A daemon worker process completed its handshake and is ready for
    /// shard assignments. Operational telemetry only — worker membership
    /// never influences campaign results.
    fn worker_connected(&self, worker: u32) {
        let _ = worker;
    }

    /// A daemon worker's lease expired (stalled heartbeat) or its
    /// connection dropped; its unacknowledged shards will be reassigned.
    fn worker_lost(&self, worker: u32, reason: &str) {
        let _ = (worker, reason);
    }

    /// The daemon coordinator leased shard `shard` (`jobs` experiments) to
    /// `worker`.
    fn shard_assigned(&self, shard: u32, worker: u32, jobs: usize) {
        let _ = (shard, worker, jobs);
    }

    /// The daemon coordinator moved shard `shard` from a lost worker to
    /// `worker` (reassignment `attempt`, 1-based). Reassignment replays
    /// the identical jobs, so results are unaffected.
    fn shard_reassigned(&self, shard: u32, worker: u32, attempt: u32) {
        let _ = (shard, worker, attempt);
    }
}

/// The default observer: ignores every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl CampaignObserver for NoopObserver {}

/// Monotonic counters of campaign progress, filled in by a
/// [`ProgressCollector`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Stages finished so far.
    pub stages_finished: usize,
    /// Allocation phases finished so far.
    pub phases_finished: usize,
    /// Experiments completed.
    pub experiments: usize,
    /// Causal edges accepted into the database.
    pub edges: usize,
    /// Cycles reported by the stitcher.
    pub cycles: usize,
    /// Budget spent (last seen value).
    pub budget_spent: usize,
    /// Total budget (last seen value).
    pub budget_total: usize,
    /// Injection-run cache hits (last seen value).
    pub trace_cache_hits: usize,
    /// Injection-run cache misses (last seen value).
    pub trace_cache_misses: usize,
    /// Largest vector count any clustering run saw.
    pub clustering_peak_vectors: usize,
    /// Peak `8·n²` bytes a dense distance matrix would have needed
    /// (what the sparse formulation avoids allocating).
    pub clustering_peak_matrix_bytes: u64,
    /// Peak sparse-graph working-set bytes actually implied by the run
    /// counts (see [`crate::ClusterStats::sparse_graph_bytes`]).
    pub clustering_peak_sparse_bytes: u64,
    /// Retry rounds the supervisor scheduled.
    pub batch_retries: usize,
    /// `(fault, test)` cells that exhausted retries and became gaps.
    pub batch_failures: usize,
    /// Mid-phase checkpoints written to disk.
    pub checkpoints_written: usize,
    /// Whether a degraded completion was reported.
    pub degraded: bool,
    /// Daemon workers that completed their handshake.
    pub workers_connected: usize,
    /// Daemon workers lost to lease expiry or dropped connections.
    pub workers_lost: usize,
    /// Shards the daemon coordinator assigned (first leases only).
    pub shards_assigned: usize,
    /// Shards moved off dead workers.
    pub shards_reassigned: usize,
}

/// The bundled metrics observer: counts events with atomics so a monitoring
/// thread can poll [`ProgressCollector::snapshot`] while the campaign runs.
#[derive(Debug, Default)]
pub struct ProgressCollector {
    stages_finished: AtomicUsize,
    phases_finished: AtomicUsize,
    experiments: AtomicUsize,
    edges: AtomicUsize,
    cycles: AtomicUsize,
    budget_spent: AtomicUsize,
    budget_total: AtomicUsize,
    trace_cache_hits: AtomicUsize,
    trace_cache_misses: AtomicUsize,
    clustering_peak_vectors: AtomicUsize,
    clustering_peak_matrix_bytes: AtomicU64,
    clustering_peak_sparse_bytes: AtomicU64,
    batch_retries: AtomicUsize,
    batch_failures: AtomicUsize,
    checkpoints_written: AtomicUsize,
    degraded: std::sync::atomic::AtomicBool,
    workers_connected: AtomicUsize,
    workers_lost: AtomicUsize,
    shards_assigned: AtomicUsize,
    shards_reassigned: AtomicUsize,
}

impl ProgressCollector {
    /// A fresh collector with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current counter values.
    pub fn snapshot(&self) -> ProgressSnapshot {
        ProgressSnapshot {
            stages_finished: self.stages_finished.load(Ordering::Relaxed),
            phases_finished: self.phases_finished.load(Ordering::Relaxed),
            experiments: self.experiments.load(Ordering::Relaxed),
            edges: self.edges.load(Ordering::Relaxed),
            cycles: self.cycles.load(Ordering::Relaxed),
            budget_spent: self.budget_spent.load(Ordering::Relaxed),
            budget_total: self.budget_total.load(Ordering::Relaxed),
            trace_cache_hits: self.trace_cache_hits.load(Ordering::Relaxed),
            trace_cache_misses: self.trace_cache_misses.load(Ordering::Relaxed),
            clustering_peak_vectors: self.clustering_peak_vectors.load(Ordering::Relaxed),
            clustering_peak_matrix_bytes: self.clustering_peak_matrix_bytes.load(Ordering::Relaxed),
            clustering_peak_sparse_bytes: self.clustering_peak_sparse_bytes.load(Ordering::Relaxed),
            batch_retries: self.batch_retries.load(Ordering::Relaxed),
            batch_failures: self.batch_failures.load(Ordering::Relaxed),
            checkpoints_written: self.checkpoints_written.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            workers_connected: self.workers_connected.load(Ordering::Relaxed),
            workers_lost: self.workers_lost.load(Ordering::Relaxed),
            shards_assigned: self.shards_assigned.load(Ordering::Relaxed),
            shards_reassigned: self.shards_reassigned.load(Ordering::Relaxed),
        }
    }
}

impl CampaignObserver for ProgressCollector {
    fn stage_finished(&self, _stage: Stage) {
        self.stages_finished.fetch_add(1, Ordering::Relaxed);
    }

    fn phase_finished(&self, _phase: u8, _executed: usize) {
        self.phases_finished.fetch_add(1, Ordering::Relaxed);
    }

    fn experiment_completed(&self, _outcome: &ExperimentOutcome) {
        self.experiments.fetch_add(1, Ordering::Relaxed);
    }

    fn edge_emitted(&self, _edge: &CausalEdge) {
        self.edges.fetch_add(1, Ordering::Relaxed);
    }

    fn cycle_found(&self, _cycle: &Cycle) {
        self.cycles.fetch_add(1, Ordering::Relaxed);
    }

    fn budget_spent(&self, spent: usize, total: usize) {
        self.budget_spent.store(spent, Ordering::Relaxed);
        self.budget_total.store(total, Ordering::Relaxed);
    }

    fn trace_cache(&self, hits: usize, misses: usize) {
        self.trace_cache_hits.store(hits, Ordering::Relaxed);
        self.trace_cache_misses.store(misses, Ordering::Relaxed);
    }

    fn clustering(&self, stats: &ClusterStats) {
        self.clustering_peak_vectors
            .fetch_max(stats.vectors, Ordering::Relaxed);
        self.clustering_peak_matrix_bytes
            .fetch_max(stats.matrix_bytes, Ordering::Relaxed);
        self.clustering_peak_sparse_bytes
            .fetch_max(stats.sparse_graph_bytes, Ordering::Relaxed);
    }

    fn batch_retried(&self, _batch: usize, _failed_jobs: usize, _attempt: u32, _backoff_ms: u64) {
        self.batch_retries.fetch_add(1, Ordering::Relaxed);
    }

    fn batch_failed(&self, _batch: usize, _f: FaultId, _t: TestId, _phase: u8, _reason: &str) {
        self.batch_failures.fetch_add(1, Ordering::Relaxed);
    }

    fn checkpoint_written(&self, _path: &Path, _phase: u8, _executed_in_phase: usize) {
        self.checkpoints_written.fetch_add(1, Ordering::Relaxed);
    }

    fn degraded(&self, _missing: &[(FaultId, TestId, u8)]) {
        self.degraded.store(true, Ordering::Relaxed);
    }

    fn worker_connected(&self, _worker: u32) {
        self.workers_connected.fetch_add(1, Ordering::Relaxed);
    }

    fn worker_lost(&self, _worker: u32, _reason: &str) {
        self.workers_lost.fetch_add(1, Ordering::Relaxed);
    }

    fn shard_assigned(&self, _shard: u32, _worker: u32, _jobs: usize) {
        self.shards_assigned.fetch_add(1, Ordering::Relaxed);
    }

    fn shard_reassigned(&self, _shard: u32, _worker: u32, _attempt: u32) {
        self.shards_reassigned.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::{CausalEdge, CompatState, EdgeKind};

    fn edge() -> CausalEdge {
        CausalEdge {
            cause: FaultId(1),
            effect: FaultId(2),
            kind: EdgeKind::EI,
            test: TestId(0),
            phase: 1,
            cause_state: CompatState::empty(),
            effect_state: CompatState::empty(),
        }
    }

    #[test]
    fn noop_observer_accepts_everything() {
        let o = NoopObserver;
        o.stage_started(Stage::Built);
        o.stage_finished(Stage::Profiled);
        o.phase_started(1, 10);
        o.phase_finished(1, 10);
        o.edge_emitted(&edge());
        o.cycle_found(&Cycle {
            edges: vec![0],
            score: 0.5,
        });
        o.budget_spent(1, 4);
    }

    #[test]
    fn progress_collector_counts_events() {
        let c = ProgressCollector::new();
        c.stage_finished(Stage::Profiled);
        c.phase_finished(1, 3);
        c.phase_finished(2, 4);
        for _ in 0..5 {
            c.edge_emitted(&edge());
        }
        c.cycle_found(&Cycle {
            edges: vec![0],
            score: 0.5,
        });
        c.budget_spent(7, 24);
        let s = c.snapshot();
        assert_eq!(s.stages_finished, 1);
        assert_eq!(s.phases_finished, 2);
        assert_eq!(s.edges, 5);
        assert_eq!(s.cycles, 1);
        assert_eq!(s.budget_spent, 7);
        assert_eq!(s.budget_total, 24);
    }

    #[test]
    fn progress_collector_counts_supervisor_events() {
        let c = ProgressCollector::new();
        c.batch_retried(0, 3, 1, 10);
        c.batch_retried(0, 1, 2, 20);
        c.batch_failed(0, FaultId(1), TestId(2), 3, "chaos: boom");
        c.checkpoint_written(Path::new("/tmp/c.csnake"), 2, 8);
        let s = c.snapshot();
        assert_eq!(s.batch_retries, 2);
        assert_eq!(s.batch_failures, 1);
        assert_eq!(s.checkpoints_written, 1);
        assert!(!s.degraded);
        c.degraded(&[(FaultId(1), TestId(2), 3)]);
        assert!(c.snapshot().degraded);
    }

    #[test]
    fn progress_collector_counts_daemon_events() {
        let c = ProgressCollector::new();
        c.worker_connected(0);
        c.worker_connected(1);
        c.shard_assigned(0, 0, 12);
        c.shard_assigned(1, 1, 12);
        c.shard_assigned(2, 0, 11);
        c.worker_lost(1, "lease expired");
        c.shard_reassigned(1, 0, 1);
        let s = c.snapshot();
        assert_eq!(s.workers_connected, 2);
        assert_eq!(s.workers_lost, 1);
        assert_eq!(s.shards_assigned, 3);
        assert_eq!(s.shards_reassigned, 1);
    }

    #[test]
    fn progress_collector_tracks_clustering_peaks() {
        let c = ProgressCollector::new();
        c.clustering(&ClusterStats {
            vectors: 100,
            matrix_bytes: 80_000,
            sparse_graph_bytes: 5_000,
            ..ClusterStats::default()
        });
        // A smaller later run must not lower the peaks.
        c.clustering(&ClusterStats {
            vectors: 10,
            matrix_bytes: 800,
            sparse_graph_bytes: 50,
            ..ClusterStats::default()
        });
        let s = c.snapshot();
        assert_eq!(s.clustering_peak_vectors, 100);
        assert_eq!(s.clustering_peak_matrix_bytes, 80_000);
        assert_eq!(s.clustering_peak_sparse_bytes, 5_000);
    }
}
