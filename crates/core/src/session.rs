//! The staged detection session: CSnake's primary public API.
//!
//! The paper's pipeline (Fig. 3) is inherently staged — profile runs →
//! static filtering → fault-injection campaign with FCA → causal stitching
//! → report — and [`Session`] exposes exactly those stages:
//!
//! ```ignore
//! use std::sync::Arc;
//! use csnake_core::{Session, ThreePhase, ProgressCollector, DetectConfig};
//!
//! let progress = Arc::new(ProgressCollector::new());
//! let mut session = Session::builder(&target)
//!     .config(DetectConfig::default())
//!     .observer(progress.clone())
//!     .build()?;
//!
//! let profiled = session.profile()?;                      // Fig. 3 steps 1–2
//! session.checkpoint("campaign.csnake")?;                 // durable boundary
//! let outcome = session.allocate(&ThreePhase::default())?; // 3PA + FCA
//! let stitched = session.stitch()?;                       // beam search
//! let report = session.report()?;                         // ground-truth match
//! ```
//!
//! Each stage returns a serializable artifact ([`Profiled`],
//! [`CampaignOutcome`], [`StitchedCycles`], [`DetectionReport`]); the heavy
//! intermediate state stays inside the session, reachable through accessors
//! ([`Session::allocation`], [`Session::stitched`], …).
//!
//! # Checkpoint / resume
//!
//! At any stage boundary the session can be written to a versioned
//! `.csnake` snapshot ([`Session::checkpoint`]) and later resumed
//! ([`Session::resume`]) against the same target. Snapshots store the
//! expensive simulator output (profile traces, allocation results, stitched
//! cycles) plus every seed; derived state is rebuilt deterministically, so
//! a resumed session produces *bit-identical* results to an uninterrupted
//! one — `tests/session_equivalence.rs` proves it at every boundary.
//!
//! # Strategies and observers
//!
//! The campaign stage is parameterised by an [`AllocationStrategy`] — the
//! paper's Three-Phase Allocation ([`crate::ThreePhase`]), the random
//! baseline ([`crate::alloc::RandomAllocation`]), or any external
//! policy over an [`ExperimentEngine`]
//! (`csnake_baselines` ships two more). Progress streams to the session's
//! [`CampaignObserver`] as it happens; see [`crate::observer`] for the
//! event vocabulary.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::Serialize;

use crate::alloc::{
    AllocationResult, AllocationStrategy, CheckpointSink, ExperimentEngine, MidPhaseState,
    RecoveryContext,
};
use crate::beam::{beam_search, cluster_cycles, Cycle, CycleCluster};
use crate::chaos::{ChaosConfig, ChaosInjector};
use crate::driver::Driver;
use crate::error::{CsnakeError, Result};
use crate::observer::{CampaignObserver, NoopObserver};
use crate::report::{build_report, DetectionReport};
use crate::snapshot::Snapshot;
use crate::target::TargetSystem;
use crate::{DetectConfig, Detection};

/// The session's position in the staged pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Built, nothing executed yet.
    Built,
    /// Profile runs executed, static filters applied.
    Profiled,
    /// The fault-injection campaign ran; the causal database is populated.
    Allocated,
    /// The beam search stitched and clustered the causal cycles.
    Stitched,
    /// The detection report was built.
    Reported,
}

impl Stage {
    /// Stable snapshot tag. [`Stage::Reported`] is never written: its only
    /// content beyond [`Stage::Stitched`] is the report, which is rebuilt
    /// deterministically on demand.
    pub(crate) fn tag(self) -> u8 {
        match self {
            Stage::Built => 0,
            Stage::Profiled => 1,
            Stage::Allocated => 2,
            Stage::Stitched | Stage::Reported => 3,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Result<Stage> {
        Ok(match tag {
            0 => Stage::Built,
            1 => Stage::Profiled,
            2 => Stage::Allocated,
            3 => Stage::Stitched,
            n => {
                return Err(CsnakeError::SnapshotCorrupt(format!("bad stage tag {n}")));
            }
        })
    }
}

/// Artifact of [`Session::profile`]: what profiling and static filtering
/// established about the target.
#[derive(Debug, Clone, Serialize)]
pub struct Profiled {
    /// Target system name.
    pub system: String,
    /// Number of integration-test workloads profiled.
    pub tests: usize,
    /// Profile runs executed (tests × repetitions).
    pub profile_runs: usize,
    /// Fault points eligible for injection after static filtering.
    pub injectable_faults: usize,
    /// Fault points removed by the static filters.
    pub filtered_faults: usize,
}

/// Artifact of [`Session::allocate`]: the campaign summary. The full
/// [`AllocationResult`] (causal database, per-experiment outcomes, fault
/// clusters) stays in the session, reachable via [`Session::allocation`].
#[derive(Debug, Clone, Serialize)]
pub struct CampaignOutcome {
    /// Name of the allocation strategy that ran.
    pub strategy: String,
    /// Experiments executed (≤ budget).
    pub experiments_run: usize,
    /// The configured experiment budget.
    pub budget: usize,
    /// Causal edges in the database.
    pub edges: usize,
    /// Fault clusters formed by the strategy.
    pub fault_clusters: usize,
    /// Total simulator runs executed so far (profile + injection).
    pub runs_executed: usize,
}

/// Artifact of [`Session::stitch`]: the reported causal cycles (deduplicated,
/// best score first) and their clusters.
#[derive(Debug, Clone, Serialize)]
pub struct StitchedCycles {
    /// All reported cycles.
    pub cycles: Vec<Cycle>,
    /// Cycle clusters (grouped by the fault clusters of injected faults).
    pub clusters: Vec<CycleCluster>,
}

/// Builder for [`Session`]; see [`Session::builder`].
pub struct SessionBuilder<'a> {
    target: &'a dyn TargetSystem,
    cfg: Option<DetectConfig>,
    observer: Arc<dyn CampaignObserver>,
    auto_checkpoint: Option<(PathBuf, usize)>,
}

impl<'a> SessionBuilder<'a> {
    /// Sets the detection configuration (default: [`DetectConfig::default`]).
    pub fn config(mut self, cfg: DetectConfig) -> Self {
        self.cfg = Some(cfg);
        self
    }

    /// Attaches a campaign observer (default: the no-op observer).
    pub fn observer(mut self, observer: Arc<dyn CampaignObserver>) -> Self {
        self.observer = observer;
        self
    }

    /// Streams mid-phase checkpoints of the allocation campaign to `path`:
    /// after every `cadence` experiments the supervisor atomically rewrites
    /// the file with a resumable snapshot of the 3PA runner's planning
    /// state ([`CampaignObserver::checkpoint_written`] fires per write).
    /// A session resumed from such a file continues *inside* the
    /// interrupted phase and produces a bit-identical campaign. `cadence`
    /// of zero checkpoints once per phase.
    pub fn auto_checkpoint(mut self, path: impl Into<PathBuf>, cadence: usize) -> Self {
        self.auto_checkpoint = Some((path.into(), cadence));
        self
    }

    /// Validates the target and builds an idle session.
    ///
    /// Fails with [`CsnakeError::InvalidTarget`] when the target cannot be
    /// driven (no workloads or no declared fault points) — the conditions
    /// that previously surfaced as panics or silently-empty campaigns deep
    /// inside the pipeline.
    pub fn build(self) -> Result<Session<'a>> {
        validate_target(self.target)?;
        Ok(Session {
            target: self.target,
            cfg: self.cfg.unwrap_or_default(),
            observer: self.observer,
            stage: Stage::Built,
            driver: None,
            strategy_name: None,
            alloc: None,
            stitched: None,
            report: None,
            auto_checkpoint: self.auto_checkpoint,
            pending_mid_phase: None,
        })
    }

    /// Builds the session by resuming a `.csnake` snapshot instead of
    /// starting idle. The builder's observer is kept; the configuration is
    /// taken from the snapshot (it carries every seed, which bit-identical
    /// resumption depends on), so combining `resume` with an explicit
    /// [`config`](Self::config) call is a [`CsnakeError::ConfigOverride`]
    /// rather than a silent pick between the two.
    pub fn resume(self, path: impl AsRef<Path>) -> Result<Session<'a>> {
        if self.cfg.is_some() {
            return Err(CsnakeError::ConfigOverride);
        }
        let snap = Snapshot::read_file(path)?;
        let mut session = Session::from_snapshot(self.target, snap, self.observer)?;
        session.auto_checkpoint = self.auto_checkpoint;
        Ok(session)
    }
}

/// Durability half of mid-phase checkpointing: assembles full snapshot
/// bytes from the pre-encoded profile block plus the fresh
/// [`MidPhaseState`], writes them atomically, and emits
/// [`CampaignObserver::checkpoint_written`] after the rename. Injected
/// snapshot-IO chaos is retried within the configured transient allowance;
/// a write that still fails is reported to the runner as a missed
/// checkpoint (`false`) and the campaign continues — resume is merely
/// coarser.
struct SessionCheckpointSink {
    encoder: crate::snapshot::MidPhaseCheckpointEncoder,
    path: PathBuf,
    observer: Arc<dyn CampaignObserver>,
    chaos: ChaosInjector,
    /// Checkpoint ordinal: the chaos identity key, so injected IO faults
    /// hit the same checkpoints on every run of a given seed.
    ordinal: AtomicU64,
}

impl CheckpointSink for SessionCheckpointSink {
    fn write(&self, state: &MidPhaseState) -> bool {
        let ordinal = self.ordinal.fetch_add(1, Ordering::Relaxed);
        let attempts = self.chaos.config().transient_attempts.saturating_add(1);
        let mut cleared = false;
        for _ in 0..attempts.max(1) {
            if self.chaos.snapshot_io_hook(ordinal).is_ok() {
                cleared = true;
                break;
            }
        }
        if !cleared {
            return false;
        }
        match crate::snapshot::write_file_bytes(&self.path, &self.encoder.encode(state)) {
            Ok(()) => {
                self.observer
                    .checkpoint_written(&self.path, state.phase, state.executed_in_phase);
                true
            }
            Err(_) => false,
        }
    }
}

fn validate_target(target: &dyn TargetSystem) -> Result<()> {
    if target.tests().is_empty() {
        return Err(CsnakeError::InvalidTarget(format!(
            "target {:?} ships no integration-test workloads",
            target.name()
        )));
    }
    if target.registry().points().is_empty() {
        return Err(CsnakeError::InvalidTarget(format!(
            "target {:?} declares no fault points",
            target.name()
        )));
    }
    Ok(())
}

/// A staged detection campaign over one target system.
///
/// See the [module docs](self) for the stage protocol, checkpointing and
/// the observer/strategy extension points.
pub struct Session<'a> {
    target: &'a dyn TargetSystem,
    cfg: DetectConfig,
    observer: Arc<dyn CampaignObserver>,
    stage: Stage,
    driver: Option<Driver<'a>>,
    strategy_name: Option<String>,
    alloc: Option<AllocationResult>,
    stitched: Option<StitchedCycles>,
    report: Option<DetectionReport>,
    /// Mid-phase checkpoint destination and cadence (see
    /// [`SessionBuilder::auto_checkpoint`]).
    auto_checkpoint: Option<(PathBuf, usize)>,
    /// Mid-phase state recovered from a v4 snapshot, consumed by the next
    /// [`allocate`](Session::allocate) call.
    pending_mid_phase: Option<MidPhaseState>,
}

impl<'a> Session<'a> {
    /// Starts building a session over a target.
    pub fn builder(target: &'a dyn TargetSystem) -> SessionBuilder<'a> {
        SessionBuilder {
            target,
            cfg: None,
            observer: Arc::new(NoopObserver),
            auto_checkpoint: None,
        }
    }

    /// Resumes a session from a `.csnake` snapshot with the no-op observer.
    pub fn resume(target: &'a dyn TargetSystem, path: impl AsRef<Path>) -> Result<Session<'a>> {
        Session::builder(target).resume(path)
    }

    /// Rebuilds a session from a decoded [`Snapshot`].
    ///
    /// Heavy state is restored verbatim; derived state (coverage, dynamic
    /// call graph, static filters, profile indexes, database indexes) is
    /// recomputed deterministically, so the resumed session behaves exactly
    /// like the one that wrote the snapshot.
    pub fn from_snapshot(
        target: &'a dyn TargetSystem,
        snap: Snapshot,
        observer: Arc<dyn CampaignObserver>,
    ) -> Result<Session<'a>> {
        if snap.target != target.name() {
            return Err(CsnakeError::TargetMismatch {
                snapshot: snap.target,
                actual: target.name().to_string(),
            });
        }
        validate_target(target)?;
        // Same name is not enough: a target whose fault-point inventory
        // changed since the checkpoint would silently reinterpret every
        // stored FaultId.
        let actual_fp = crate::snapshot::registry_fingerprint(&target.registry());
        if snap.registry_fp != actual_fp {
            return Err(CsnakeError::RegistryMismatch {
                snapshot: snap.registry_fp,
                actual: actual_fp,
            });
        }

        let mut session = Session {
            target,
            cfg: snap.cfg,
            observer,
            stage: Stage::Built,
            driver: None,
            strategy_name: None,
            alloc: None,
            stitched: None,
            report: None,
            auto_checkpoint: None,
            pending_mid_phase: None,
        };
        if let Some(profiles) = snap.profiles {
            session.driver = Some(Driver::from_profiles(
                target,
                session.cfg.driver.clone(),
                profiles,
                snap.runs_executed,
            ));
            session.stage = Stage::Profiled;
        }
        if let Some(alloc) = snap.alloc {
            if session.driver.is_none() {
                return Err(CsnakeError::SnapshotCorrupt(
                    "allocation section without a profile section".into(),
                ));
            }
            session.alloc = Some(alloc);
            session.strategy_name = snap.strategy;
            session.stage = Stage::Allocated;
        }
        if let Some(stitched) = snap.stitched {
            if session.alloc.is_none() {
                return Err(CsnakeError::SnapshotCorrupt(
                    "stitch section without an allocation section".into(),
                ));
            }
            session.stitched = Some(stitched);
            session.stage = Stage::Stitched;
        }
        if let Some(mid) = snap.mid_phase {
            if session.driver.is_none() {
                return Err(CsnakeError::SnapshotCorrupt(
                    "mid-phase section without a profile section".into(),
                ));
            }
            if session.alloc.is_some() {
                return Err(CsnakeError::SnapshotCorrupt(
                    "mid-phase section alongside a completed allocation".into(),
                ));
            }
            session.pending_mid_phase = Some(mid);
        }
        if session.stage != snap.stage {
            return Err(CsnakeError::SnapshotCorrupt(format!(
                "stage tag {:?} does not match populated sections ({:?})",
                snap.stage, session.stage
            )));
        }
        Ok(session)
    }

    fn expect_stage(&self, expected: Stage) -> Result<()> {
        if self.stage == expected {
            Ok(())
        } else {
            Err(CsnakeError::StageOrder {
                expected,
                found: self.stage,
            })
        }
    }

    /// Current stage.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// The session's detection configuration.
    pub fn config(&self) -> &DetectConfig {
        &self.cfg
    }

    /// The target under detection. Returns the session-lifetime borrow
    /// (not one tied to `&self`), so it can coexist with
    /// [`engine_mut`](Self::engine_mut) — the daemon's coordinator needs
    /// both at once.
    pub fn target(&self) -> &'a dyn TargetSystem {
        self.target
    }

    /// Static-analysis result (available from [`Stage::Profiled`]).
    pub fn analysis(&self) -> Option<&csnake_analyzer::Analysis> {
        self.driver.as_ref().map(|d| &d.analysis)
    }

    /// Full allocation result (available from [`Stage::Allocated`]).
    pub fn allocation(&self) -> Option<&AllocationResult> {
        self.alloc.as_ref()
    }

    /// Stitched cycles and clusters (available from [`Stage::Stitched`]).
    pub fn stitched(&self) -> Option<&StitchedCycles> {
        self.stitched.as_ref()
    }

    /// The detection report (available from [`Stage::Reported`]).
    pub fn detection_report(&self) -> Option<&DetectionReport> {
        self.report.as_ref()
    }

    /// Total simulator runs executed so far.
    pub fn runs_executed(&self) -> usize {
        self.driver.as_ref().map(|d| d.runs_executed).unwrap_or(0)
    }

    /// The profiled experiment engine (available from [`Stage::Profiled`]).
    ///
    /// Comparison harnesses — `gen_eval`'s random-allocation baseline, an
    /// external [`AllocationStrategy`] study — can run additional
    /// engine-level campaigns over the same profile runs (and, with
    /// [`DriverConfig::cache_injections`](crate::driver::DriverConfig::cache_injections),
    /// the same recorded injection runs) without re-profiling the target.
    /// Stage artifacts the session has already captured are unaffected.
    pub fn engine_mut(&mut self) -> Option<&mut Driver<'a>> {
        self.driver.as_mut()
    }

    /// Stage 1–2 (Fig. 3): profile every workload, derive coverage and the
    /// dynamic call graph, and apply the static filters.
    pub fn profile(&mut self) -> Result<Profiled> {
        self.expect_stage(Stage::Built)?;
        self.observer.stage_started(Stage::Profiled);
        let driver = Driver::new(self.target, self.cfg.driver.clone());
        let artifact = Profiled {
            system: self.target.name().to_string(),
            tests: self.target.tests().len(),
            profile_runs: driver.runs_executed,
            injectable_faults: driver.analysis.injectable.len(),
            filtered_faults: driver.analysis.filtered.len(),
        };
        self.driver = Some(driver);
        self.stage = Stage::Profiled;
        self.observer.stage_finished(Stage::Profiled);
        Ok(artifact)
    }

    /// Stage 3 (Fig. 3): run the fault-injection campaign under an
    /// allocation strategy, populating the causal database.
    ///
    /// Runs under the campaign supervisor: experiment jobs that panic or
    /// stall are quarantined and retried per
    /// [`RetryConfig`](crate::driver::RetryConfig); cells that fail
    /// permanently become enumerated gaps rather than aborting the
    /// campaign (the observer sees [`CampaignObserver::degraded`]). With
    /// [`auto_checkpoint`](SessionBuilder::auto_checkpoint) configured,
    /// mid-phase checkpoints stream to disk as the campaign progresses; a
    /// session resumed from one continues inside the interrupted phase.
    pub fn allocate(&mut self, strategy: &dyn AllocationStrategy) -> Result<CampaignOutcome> {
        self.expect_stage(Stage::Profiled)?;
        self.observer.stage_started(Stage::Allocated);
        let resume = self.pending_mid_phase.take();
        let sink = self.auto_checkpoint.as_ref().map(|(path, _)| {
            let driver = self.driver.as_ref().expect("profiled session has a driver");
            SessionCheckpointSink {
                encoder: crate::snapshot::MidPhaseCheckpointEncoder::new(
                    self.target.name(),
                    crate::snapshot::registry_fingerprint(&self.target.registry()),
                    &self.cfg,
                    driver.profiles(),
                    strategy.name(),
                ),
                path: path.clone(),
                observer: self.observer.clone(),
                chaos: ChaosInjector::new(
                    ChaosConfig::from_env().unwrap_or_else(|| self.cfg.driver.chaos.clone()),
                ),
                ordinal: AtomicU64::new(0),
            }
        });
        let cadence = self.auto_checkpoint.as_ref().map(|&(_, c)| c).unwrap_or(0);
        let driver = self.driver.as_mut().expect("profiled session has a driver");
        driver.set_observer(self.observer.clone());
        let recovery = RecoveryContext {
            sink: sink.as_ref().map(|s| s as &dyn CheckpointSink),
            cadence,
            resume,
        };
        let alloc = strategy.run_with_recovery(driver, &*self.observer, recovery);
        let (cache_hits, cache_misses) = driver.trace_cache_stats();
        self.observer.trace_cache(cache_hits, cache_misses);
        if !alloc.gaps.is_empty() {
            self.observer.degraded(&alloc.gaps);
        }
        let artifact = CampaignOutcome {
            strategy: strategy.name().to_string(),
            experiments_run: alloc.experiments_run,
            budget: alloc.budget,
            edges: alloc.db.len(),
            fault_clusters: alloc.clusters.len(),
            runs_executed: driver.runs_executed,
        };
        self.strategy_name = Some(strategy.name().to_string());
        self.alloc = Some(alloc);
        self.stage = Stage::Allocated;
        self.observer.stage_finished(Stage::Allocated);
        Ok(artifact)
    }

    /// Stage 3 on an *external* engine: like [`allocate`](Self::allocate),
    /// but the experiments run through `engine` instead of the session's
    /// own profiled [`Driver`].
    ///
    /// This is the seam the daemon's coordinator uses: the session profiles
    /// locally (so the 3PA plan tables, static filters and final report
    /// derive from the coordinator's own traces), while the engine fans the
    /// planned batches out to worker processes and merges their results by
    /// batch index. Everything else — checkpoint sink, mid-phase resume,
    /// observer wiring, gap/degraded accounting — behaves exactly as in
    /// [`allocate`](Self::allocate); the engine's executed-run counter is
    /// folded into the session's accounting afterwards. With an engine that
    /// reproduces [`Driver`] outcomes (same plans, same seeds), the
    /// resulting report is bit-identical to a single-process run.
    pub fn allocate_with_engine(
        &mut self,
        strategy: &dyn AllocationStrategy,
        engine: &mut dyn ExperimentEngine,
    ) -> Result<CampaignOutcome> {
        self.expect_stage(Stage::Profiled)?;
        self.observer.stage_started(Stage::Allocated);
        let resume = self.pending_mid_phase.take();
        let sink = self.auto_checkpoint.as_ref().map(|(path, _)| {
            let driver = self.driver.as_ref().expect("profiled session has a driver");
            SessionCheckpointSink {
                encoder: crate::snapshot::MidPhaseCheckpointEncoder::new(
                    self.target.name(),
                    crate::snapshot::registry_fingerprint(&self.target.registry()),
                    &self.cfg,
                    driver.profiles(),
                    strategy.name(),
                ),
                path: path.clone(),
                observer: self.observer.clone(),
                chaos: ChaosInjector::new(
                    ChaosConfig::from_env().unwrap_or_else(|| self.cfg.driver.chaos.clone()),
                ),
                ordinal: AtomicU64::new(0),
            }
        });
        let cadence = self.auto_checkpoint.as_ref().map(|&(_, c)| c).unwrap_or(0);
        engine.attach_observer(self.observer.clone());
        let recovery = RecoveryContext {
            sink: sink.as_ref().map(|s| s as &dyn CheckpointSink),
            cadence,
            resume,
        };
        let alloc = strategy.run_with_recovery(engine, &*self.observer, recovery);
        let (cache_hits, cache_misses) = engine.trace_cache_stats();
        self.observer.trace_cache(cache_hits, cache_misses);
        let engine_runs = engine.runs_executed();
        let driver = self.driver.as_mut().expect("profiled session has a driver");
        driver.runs_executed += engine_runs;
        if !alloc.gaps.is_empty() {
            self.observer.degraded(&alloc.gaps);
        }
        let artifact = CampaignOutcome {
            strategy: strategy.name().to_string(),
            experiments_run: alloc.experiments_run,
            budget: alloc.budget,
            edges: alloc.db.len(),
            fault_clusters: alloc.clusters.len(),
            runs_executed: driver.runs_executed,
        };
        self.strategy_name = Some(strategy.name().to_string());
        self.alloc = Some(alloc);
        self.stage = Stage::Allocated;
        self.observer.stage_finished(Stage::Allocated);
        Ok(artifact)
    }

    /// Stage 4 (Fig. 3): stitch the causal database into cycles with the
    /// parallel beam search and cluster the reported cycles.
    pub fn stitch(&mut self) -> Result<&StitchedCycles> {
        self.expect_stage(Stage::Allocated)?;
        self.observer.stage_started(Stage::Stitched);
        let alloc = self.alloc.as_ref().expect("allocated session has a result");
        let sim_of = |f| alloc.sim_score_of(f);
        let cycles = beam_search(&alloc.db, &sim_of, &self.cfg.beam);
        for cycle in &cycles {
            self.observer.cycle_found(cycle);
        }
        let clusters = cluster_cycles(&cycles, &alloc.db, &alloc.cluster_of);
        self.stitched = Some(StitchedCycles { cycles, clusters });
        self.stage = Stage::Stitched;
        self.observer.stage_finished(Stage::Stitched);
        Ok(self.stitched.as_ref().expect("just set"))
    }

    /// Stage 5: match cycles against ground truth and classify clusters.
    pub fn report(&mut self) -> Result<&DetectionReport> {
        self.expect_stage(Stage::Stitched)?;
        self.observer.stage_started(Stage::Reported);
        let alloc = self.alloc.as_ref().expect("allocated session has a result");
        let stitched = self.stitched.as_ref().expect("stitched session has cycles");
        let report = build_report(
            self.target,
            alloc,
            stitched.cycles.clone(),
            stitched.clusters.clone(),
        );
        self.report = Some(report);
        self.stage = Stage::Reported;
        self.observer.stage_finished(Stage::Reported);
        Ok(self.report.as_ref().expect("just set"))
    }

    /// Drives every remaining stage in order and returns the final report.
    pub fn run_to_report(&mut self, strategy: &dyn AllocationStrategy) -> Result<&DetectionReport> {
        if self.stage == Stage::Built {
            self.profile()?;
        }
        if self.stage == Stage::Profiled {
            self.allocate(strategy)?;
        }
        if self.stage == Stage::Allocated {
            self.stitch()?;
        }
        if self.stage == Stage::Stitched {
            self.report()?;
        }
        self.report.as_ref().ok_or(CsnakeError::StageOrder {
            expected: Stage::Stitched,
            found: self.stage,
        })
    }

    /// Serializes the session's current stage boundary into an owned
    /// [`Snapshot`] (clones the heavy sections — use
    /// [`checkpoint`](Self::checkpoint) to write straight to disk without
    /// the copies).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            target: self.target.name().to_string(),
            registry_fp: crate::snapshot::registry_fingerprint(&self.target.registry()),
            cfg: self.cfg.clone(),
            stage: Stage::from_tag(self.stage.tag()).expect("own tag is valid"),
            runs_executed: self.runs_executed(),
            profiles: self.driver.as_ref().map(|d| d.profiles().clone()),
            strategy: self.strategy_name.clone(),
            alloc: self.alloc.clone(),
            stitched: self.stitched.clone(),
            mid_phase: self.pending_mid_phase.clone(),
        }
    }

    /// Writes the current stage boundary to a versioned `.csnake` file,
    /// encoding directly from borrowed session state (the profile traces
    /// and allocation result dominate session memory; checkpointing must
    /// not transiently double it).
    pub fn checkpoint(&self, path: impl AsRef<Path>) -> Result<()> {
        let bytes = crate::snapshot::SnapshotFields {
            target: self.target.name(),
            registry_fp: crate::snapshot::registry_fingerprint(&self.target.registry()),
            cfg: &self.cfg,
            stage: self.stage,
            runs_executed: self.runs_executed(),
            profiles: self.driver.as_ref().map(|d| d.profiles()),
            strategy: self.strategy_name.as_ref(),
            alloc: self.alloc.as_ref(),
            stitched: self.stitched.as_ref(),
            mid_phase: self.pending_mid_phase.as_ref(),
        }
        .to_bytes();
        crate::snapshot::write_file_bytes(path.as_ref(), &bytes)
    }

    /// Consumes a reported session into the legacy [`Detection`] bundle.
    pub fn into_detection(mut self) -> Result<Detection> {
        self.expect_stage(Stage::Reported)?;
        let driver = self.driver.take().expect("reported session has a driver");
        Ok(Detection {
            analysis: driver.analysis.clone(),
            runs_executed: driver.runs_executed,
            alloc: self.alloc.take().expect("reported session has a result"),
            report: self.report.take().expect("reported session has a report"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::ThreePhase;
    use crate::observer::ProgressCollector;
    use csnake_inject::{InjectionPlan, Registry, RegistryBuilder, RunTrace, TestId};
    use std::sync::Arc as StdArc;

    /// A target with no workloads: construction must fail typed, not panic.
    struct NoTests(StdArc<Registry>);

    impl TargetSystem for NoTests {
        fn name(&self) -> &'static str {
            "no-tests"
        }
        fn registry(&self) -> StdArc<Registry> {
            self.0.clone()
        }
        fn tests(&self) -> Vec<crate::target::TestCase> {
            Vec::new()
        }
        fn run(&self, _t: TestId, _p: Option<InjectionPlan>, _s: u64) -> RunTrace {
            RunTrace::default()
        }
    }

    #[test]
    fn building_an_undrivable_target_is_a_typed_error() {
        let mut b = RegistryBuilder::new("no-tests");
        let f = b.func("X.f");
        b.workload_loop(f, 1, false, "lp");
        let target = NoTests(StdArc::new(b.build()));
        match Session::builder(&target).build() {
            Err(CsnakeError::InvalidTarget(why)) => assert!(why.contains("workloads"), "{why}"),
            other => panic!("expected InvalidTarget, got {:?}", other.map(|_| ())),
        }
    }

    /// Minimal drivable target: one no-op workload over a given registry.
    struct OneTest(StdArc<Registry>);

    impl TargetSystem for OneTest {
        fn name(&self) -> &'static str {
            "one-test"
        }
        fn registry(&self) -> StdArc<Registry> {
            self.0.clone()
        }
        fn tests(&self) -> Vec<crate::target::TestCase> {
            vec![crate::target::TestCase {
                id: TestId(0),
                name: "t0",
                description: "noop",
            }]
        }
        fn run(&self, _t: TestId, _p: Option<InjectionPlan>, _s: u64) -> RunTrace {
            RunTrace::default()
        }
    }

    fn one_test_target(loop_label: &'static str) -> OneTest {
        let mut b = RegistryBuilder::new("t");
        let f = b.func("X.f");
        b.workload_loop(f, 1, false, loop_label);
        OneTest(StdArc::new(b.build()))
    }

    #[test]
    fn stage_order_is_enforced() {
        let target = one_test_target("lp");
        let mut s = Session::builder(&target).build().unwrap();
        assert_eq!(s.stage(), Stage::Built);

        // stitch() before profile()/allocate() is a typed stage error.
        match s.stitch() {
            Err(CsnakeError::StageOrder { expected, found }) => {
                assert_eq!(expected, Stage::Allocated);
                assert_eq!(found, Stage::Built);
            }
            other => panic!("expected StageOrder, got {:?}", other.map(|_| ())),
        }

        // The full staged run works and the observer sees all four stages.
        let progress = StdArc::new(ProgressCollector::new());
        let mut s = Session::builder(&target)
            .observer(progress.clone())
            .build()
            .unwrap();
        s.profile().unwrap();
        s.allocate(&ThreePhase::default()).unwrap();
        s.stitch().unwrap();
        s.report().unwrap();
        assert_eq!(s.stage(), Stage::Reported);
        assert_eq!(progress.snapshot().stages_finished, 4);

        // Re-running a finished stage is also a typed error.
        assert!(matches!(s.profile(), Err(CsnakeError::StageOrder { .. })));
    }

    #[test]
    fn registry_drift_is_rejected_on_resume() {
        // Checkpoint against one inventory, resume against a same-named
        // target whose fault points changed: typed RegistryMismatch.
        let original = one_test_target("lp");
        let mut s = Session::builder(&original).build().unwrap();
        s.profile().unwrap();
        let snap = s.snapshot();
        let bytes = snap.to_bytes();

        let drifted = one_test_target("lp_renamed");
        let reread = crate::snapshot::Snapshot::from_bytes(&bytes).unwrap();
        match Session::from_snapshot(&drifted, reread, StdArc::new(crate::observer::NoopObserver)) {
            Err(CsnakeError::RegistryMismatch { snapshot, actual }) => {
                assert_ne!(snapshot, actual);
            }
            other => panic!(
                "expected RegistryMismatch, got {:?}",
                other.map(|s| s.stage())
            ),
        }

        // The unchanged target still resumes fine.
        let reread = crate::snapshot::Snapshot::from_bytes(&bytes).unwrap();
        let resumed = Session::from_snapshot(
            &original,
            reread,
            StdArc::new(crate::observer::NoopObserver),
        )
        .expect("same inventory resumes");
        assert_eq!(resumed.stage(), Stage::Profiled);
    }

    #[test]
    fn resume_with_explicit_config_is_rejected() {
        let target = one_test_target("lp");
        match Session::builder(&target)
            .config(crate::DetectConfig::default())
            .resume("/nonexistent.csnake")
        {
            Err(CsnakeError::ConfigOverride) => {}
            other => panic!(
                "expected ConfigOverride, got {:?}",
                other.map(|s| s.stage())
            ),
        }
    }

    #[test]
    fn checkpoint_writes_the_same_bytes_as_the_owned_snapshot() {
        let target = one_test_target("lp");
        let mut s = Session::builder(&target).build().unwrap();
        s.profile().unwrap();
        s.allocate(&ThreePhase::default()).unwrap();
        let path = std::env::temp_dir().join(format!(
            "csnake-session-checkpoint-{}.csnake",
            std::process::id()
        ));
        s.checkpoint(&path).unwrap();
        let on_disk = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(
            on_disk,
            s.snapshot().to_bytes(),
            "borrowed and owned encoders must agree byte for byte"
        );
    }
}
