//! The target-system abstraction the detection pipeline drives.

use std::sync::Arc;

use csnake_inject::{InjectionPlan, Registry, RunTrace, TestId};
use serde::Serialize;

/// One integration-test workload shipped with a target system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TestCase {
    /// Dense id within the target.
    pub id: TestId,
    /// Test name (mirrors the Java test-method naming of the originals).
    pub name: &'static str,
    /// What the workload exercises / how it is configured.
    pub description: &'static str,
}

/// Ground-truth record of a seeded self-sustaining cascading failure.
///
/// `labels` is the set of fault-point labels that participate in the bug's
/// propagation cycle; a reported cycle matches when it touches all of them.
/// Ground truth is used only for evaluation (TP/FP accounting), never by the
/// detector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct KnownBug {
    /// Short stable id, e.g. `"hdfs2-ibr-throttle"`.
    pub id: &'static str,
    /// Upstream issue-tracker reference from the paper's Table 3.
    pub jira: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Fault-point labels that must all appear in a matching cycle.
    pub labels: Vec<&'static str>,
}

/// A system under test: registry + workloads + a way to run them.
///
/// Implementations live in `csnake-targets`. `run` must be deterministic
/// given `(test, plan, seed)` and safe to call from multiple threads.
pub trait TargetSystem: Send + Sync {
    /// System name (e.g. `"mini-hdfs2"`).
    fn name(&self) -> &'static str;

    /// The instrumentation inventory.
    fn registry(&self) -> Arc<Registry>;

    /// The shipped integration-test workloads.
    fn tests(&self) -> Vec<TestCase>;

    /// Executes one workload, optionally with a fault injected, and returns
    /// the recorded trace.
    fn run(&self, test: TestId, plan: Option<InjectionPlan>, seed: u64) -> RunTrace;

    /// Ground-truth seeded bugs (evaluation only).
    fn known_bugs(&self) -> Vec<KnownBug> {
        Vec::new()
    }

    /// Labels of loops whose mutual contention is *expected* behaviour
    /// (§8.4.2: e.g. HDFS client read/write contention). Cycles composed
    /// purely of such delays count as false positives.
    fn expected_contention_labels(&self) -> Vec<&'static str> {
        Vec::new()
    }

    /// Takes (and clears) the latency summaries buffered by runs since the
    /// last drain. Only open-loop workload targets (`csnake-workload`)
    /// produce any; the default is empty, so ordinary targets pay nothing.
    ///
    /// The [`Driver`](crate::Driver) drains after each experiment batch and
    /// re-emits the summaries through
    /// [`CampaignObserver::workload_summary`](crate::CampaignObserver::workload_summary)
    /// sorted by `(test, seed)`, so the stream is deterministic regardless
    /// of worker-pool interleaving.
    fn drain_workload_summaries(&self) -> Vec<crate::workload::WorkloadSummary> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_bug_is_plain_data() {
        let b = KnownBug {
            id: "x",
            jira: "ABC-1",
            summary: "s",
            labels: vec!["a", "b"],
        };
        let b2 = b.clone();
        assert_eq!(b, b2);
    }
}
