//! Parallel beam search for self-sustaining cascading failures (§6.3, Alg. 1)
//! and clustering of the reported cycles.
//!
//! Chains of causal edges are grown level by level; before appending an edge,
//! the local compatibility check (§6.2) runs between the chain's last edge
//! and the candidate. At each level only the `B` best chains survive, ranked
//! by the average intra-cluster interference-similarity score of the injected
//! faults — *lower* is better, favouring chains built from faults with
//! conditional (diverse) causal consequences. A chain that cycles back to its
//! first edge is reported as a potential self-sustaining cascading failure.
//!
//! [`beam_search`] runs on the prepared [`StitchIndex`](crate::stitch) —
//! all pairwise compatibility work is hoisted out of the search loop into a
//! precomputed successor table, chains live in a parent-pointer arena, and
//! the beam cut is an O(n) selection. [`beam_search_reference`] retains the
//! straightforward clone-per-extension implementation as the executable
//! specification; `tests/beam_equivalence.rs` checks the two agree exactly.

use std::collections::{BTreeMap, BTreeSet};

use csnake_inject::FaultId;
use serde::{Deserialize, Serialize};

use crate::compat::compatible;
use crate::edge::{CausalDb, CausalEdge};
use crate::stitch::StitchIndex;

/// Beam-search knobs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BeamConfig {
    /// Number of active chains kept per level (paper: 5 million; this
    /// reproduction's search spaces are far smaller).
    pub beam_size: usize,
    /// Safety cap on chain length (compatibility bounds growth in practice).
    pub max_len: usize,
    /// Upper bound on delay injections per chain (Table 4 compares
    /// unlimited vs. 1); `None` = unlimited.
    pub max_delay_injections: Option<usize>,
    /// Worker threads for the per-level expansion.
    pub threads: usize,
    /// Ablation knob: when `false`, stitching skips the §6.2 local
    /// compatibility check and links on fault identity alone (the unsound
    /// baseline the paper's check exists to prevent).
    pub compatibility_check: bool,
}

impl Default for BeamConfig {
    fn default() -> Self {
        BeamConfig {
            beam_size: 100_000,
            max_len: 5,
            max_delay_injections: None,
            threads: 4,
            compatibility_check: true,
        }
    }
}

/// A reported cycle: edge indices into the [`CausalDb`], plus its rank score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cycle {
    /// Edge indices, in propagation order.
    pub edges: Vec<usize>,
    /// Chain score (mean SimScore of injected faults; lower = more
    /// conditional).
    pub score: f64,
}

impl Cycle {
    /// The injected (cause) faults of the cycle's injection edges.
    pub fn injected_faults<'a>(&'a self, db: &'a CausalDb) -> impl Iterator<Item = FaultId> + 'a {
        self.edges
            .iter()
            .map(|&i| db.edge(i))
            .filter(|e| e.kind.is_injection())
            .map(|e| e.cause)
    }

    /// All faults touched by the cycle (causes and effects).
    pub fn all_faults(&self, db: &CausalDb) -> BTreeSet<FaultId> {
        let mut s = BTreeSet::new();
        for &i in &self.edges {
            let e = db.edge(i);
            s.insert(e.cause);
            s.insert(e.effect);
        }
        s
    }
}

/// A finished chain before structural cycle deduplication.
#[derive(Debug, Clone)]
pub(crate) struct RawChain {
    /// Edge indices in propagation order.
    pub edges: Vec<usize>,
    /// Sum of edge SimScores (score = sum / len).
    pub score_sum: f64,
}

/// Deduplicates cycles structurally (same relationship multiset = same
/// cycle, regardless of rotation or which test each edge came from) and
/// sorts by ascending score, then length. `triple_of` maps an edge index to
/// its structural `(cause, effect, kind)` triple.
pub(crate) fn finalize_cycles(
    raw: Vec<RawChain>,
    triple_of: impl Fn(usize) -> (FaultId, FaultId, u8),
) -> Vec<Cycle> {
    let mut seen: BTreeSet<Vec<(FaultId, FaultId, u8)>> = BTreeSet::new();
    let mut out: Vec<Cycle> = Vec::new();
    for c in raw {
        let mut key: Vec<(FaultId, FaultId, u8)> = c.edges.iter().map(|&i| triple_of(i)).collect();
        key.sort_unstable();
        if seen.insert(key) {
            out.push(Cycle {
                score: c.score_sum / c.edges.len() as f64,
                edges: c.edges,
            });
        }
    }
    out.sort_by(|a, b| {
        a.score
            .total_cmp(&b.score)
            .then(a.edges.len().cmp(&b.edges.len()))
    });
    out
}

/// The `match` predicate of Algorithm 1: edge2 continues edge1 if its cause
/// is edge1's interference *and* their local states are compatible.
pub fn edges_match(e1: &CausalEdge, e2: &CausalEdge) -> bool {
    e1.effect == e2.cause && compatible(&e1.effect_state, &e2.cause_state)
}

/// Runs the beam search over all discovered causal relationships.
///
/// `sim_of` maps a fault to the SimScore of its cluster (§5.2); it drives
/// both the beam ranking and the final cycle scores. Returned cycles are
/// deduplicated up to rotation and sorted by ascending score.
///
/// Compiles a [`StitchIndex`] from the database and searches on it; to run
/// several searches (e.g. ablation sweeps) over one database, build the
/// index once and call [`StitchIndex::search`] directly.
pub fn beam_search(
    db: &CausalDb,
    sim_of: &(dyn Fn(FaultId) -> f64 + Sync),
    cfg: &BeamConfig,
) -> Vec<Cycle> {
    StitchIndex::build(db, cfg.threads).search(sim_of, cfg)
}

// ---------------------------------------------------------------------------
// Reference implementation (the executable specification)
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct Chain {
    edges: Vec<usize>,
    score_sum: f64,
    delay_injections: usize,
}

impl Chain {
    fn score(&self) -> f64 {
        self.score_sum / self.edges.len() as f64
    }
}

fn matches_under(cfg: &BeamConfig, e1: &CausalEdge, e2: &CausalEdge) -> bool {
    if cfg.compatibility_check {
        edges_match(e1, e2)
    } else {
        e1.effect == e2.cause
    }
}

fn is_cycle(db: &CausalDb, cfg: &BeamConfig, chain: &Chain) -> bool {
    let first = db.edge(chain.edges[0]);
    let last = db.edge(*chain.edges.last().expect("chains are non-empty"));
    matches_under(cfg, last, first)
}

fn edge_sim_score(e: &CausalEdge, sim_of: &dyn Fn(FaultId) -> f64) -> f64 {
    if e.kind.is_injection() {
        sim_of(e.cause)
    } else {
        0.0
    }
}

fn delay_weight(e: &CausalEdge) -> usize {
    usize::from(e.kind.is_injection() && e.kind.cause_is_delay())
}

/// Expands one chain by all matching edges; pushes cycles and live chains.
fn expand(
    db: &CausalDb,
    sim_of: &(dyn Fn(FaultId) -> f64 + Sync),
    cfg: &BeamConfig,
    chain: &Chain,
    out_next: &mut Vec<Chain>,
    out_cycles: &mut Vec<Chain>,
) {
    let last = db.edge(*chain.edges.last().expect("non-empty"));
    for &ei in db.edges_from(last.effect) {
        if chain.edges.contains(&ei) {
            continue;
        }
        let e = db.edge(ei);
        if !matches_under(cfg, last, e) {
            continue;
        }
        let delays = chain.delay_injections + delay_weight(e);
        if let Some(cap) = cfg.max_delay_injections {
            if delays > cap {
                continue;
            }
        }
        let mut new = chain.clone();
        new.edges.push(ei);
        new.score_sum += edge_sim_score(e, sim_of);
        new.delay_injections = delays;
        if is_cycle(db, cfg, &new) {
            out_cycles.push(new);
        } else if new.edges.len() < cfg.max_len {
            out_next.push(new);
        }
    }
}

/// The retained straightforward beam search: clone-per-extension chains,
/// per-candidate compatibility checks, full frontier sort.
///
/// This is the executable specification the optimised
/// [`beam_search`] / [`StitchIndex::search`] path is tested against
/// (`tests/beam_equivalence.rs`); it is O(n log n) sorting plus O(s²)
/// state scans per level and should not be used on large databases.
pub fn beam_search_reference(
    db: &CausalDb,
    sim_of: &(dyn Fn(FaultId) -> f64 + Sync),
    cfg: &BeamConfig,
) -> Vec<Cycle> {
    let mut cycles: Vec<Chain> = Vec::new();
    // Level 1: every edge is a chain (Alg. 1 line 2). Self-edges whose state
    // is self-compatible are already cycles.
    let mut queue: Vec<Chain> = Vec::new();
    for (i, e) in db.edges().iter().enumerate() {
        let delays = delay_weight(e);
        if cfg.max_delay_injections.is_some_and(|cap| delays > cap) {
            continue;
        }
        let c = Chain {
            edges: vec![i],
            score_sum: edge_sim_score(e, sim_of),
            delay_injections: delays,
        };
        if is_cycle(db, cfg, &c) {
            cycles.push(c);
        } else {
            queue.push(c);
        }
    }

    while !queue.is_empty() {
        let threads = cfg.threads.max(1).min(queue.len());
        let chunk = queue.len().div_ceil(threads);
        let results: Vec<(Vec<Chain>, Vec<Chain>)> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for part in queue.chunks(chunk) {
                handles.push(scope.spawn(move || {
                    let mut next = Vec::new();
                    let mut cyc = Vec::new();
                    for chain in part {
                        expand(db, sim_of, cfg, chain, &mut next, &mut cyc);
                    }
                    (next, cyc)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("beam worker"))
                .collect()
        });
        let mut next: Vec<Chain> = Vec::new();
        for (n, c) in results {
            next.extend(n);
            cycles.extend(c);
        }
        // Keep the B best (lowest-score) chains, deduplicating chains that
        // are structurally identical (same relationships observed in
        // different tests) — the compatibility states already matched, so
        // one representative suffices.
        next.sort_by(|a, b| a.score().total_cmp(&b.score()));
        type ChainKey = (u64, Vec<(FaultId, FaultId, u8)>);
        let mut seen_chains: BTreeSet<ChainKey> = BTreeSet::new();
        next.retain(|c| {
            let key: Vec<(FaultId, FaultId, u8)> = c
                .edges
                .iter()
                .map(|&i| {
                    let e = db.edge(i);
                    (e.cause, e.effect, e.kind as u8)
                })
                .collect();
            let first = db.edge(c.edges[0]).cause.0 as u64;
            seen_chains.insert((first, key))
        });
        next.truncate(cfg.beam_size);
        queue = next;
    }

    finalize_cycles(
        cycles
            .into_iter()
            .map(|c| RawChain {
                score_sum: c.score_sum,
                edges: c.edges,
            })
            .collect(),
        |i| {
            let e = db.edge(i);
            (e.cause, e.effect, e.kind as u8)
        },
    )
}

/// A group of reported cycles involving the same fault clusters (§6.3
/// "Clustering Reported Cycles").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CycleCluster {
    /// Sorted fault-cluster ids of the injected faults.
    pub key: Vec<usize>,
    /// Indices into the reported cycle list, best score first.
    pub cycle_idxs: Vec<usize>,
}

/// Groups cycles by the fault clusters of their injected faults: two cycles
/// built from causally-equivalent faults are likely the same bug.
pub fn cluster_cycles(
    cycles: &[Cycle],
    db: &CausalDb,
    cluster_of: &BTreeMap<FaultId, usize>,
) -> Vec<CycleCluster> {
    let mut by_key: BTreeMap<Vec<usize>, Vec<usize>> = BTreeMap::new();
    for (i, c) in cycles.iter().enumerate() {
        let mut key: Vec<usize> = c
            .injected_faults(db)
            .map(|f| cluster_of.get(&f).copied().unwrap_or(usize::MAX))
            .collect();
        key.sort_unstable();
        key.dedup();
        by_key.entry(key).or_default().push(i);
    }
    by_key
        .into_iter()
        .map(|(key, cycle_idxs)| CycleCluster { key, cycle_idxs })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::{CompatState, EdgeKind};
    use csnake_inject::{FnId, Occurrence, TestId};

    /// Occurrence-style state with one signature derived from `tag`.
    fn state(tag: u32) -> CompatState {
        CompatState::Occurrences(vec![Occurrence::new([Some(FnId(tag)), None], vec![])])
    }

    fn edge(cause: u32, effect: u32, kind: EdgeKind, cs: u32, es: u32) -> CausalEdge {
        CausalEdge {
            cause: FaultId(cause),
            effect: FaultId(effect),
            kind,
            test: TestId(0),
            phase: 1,
            cause_state: state(cs),
            effect_state: state(es),
        }
    }

    fn uniform(_f: FaultId) -> f64 {
        0.5
    }

    fn run(db: &CausalDb) -> Vec<Cycle> {
        beam_search(db, &uniform, &BeamConfig::default())
    }

    /// Both implementations, asserting they agree on the way out.
    fn run_both(db: &CausalDb, cfg: &BeamConfig) -> Vec<Cycle> {
        let fast = beam_search(db, &uniform, cfg);
        let reference = beam_search_reference(db, &uniform, cfg);
        assert_eq!(fast.len(), reference.len());
        for (f, r) in fast.iter().zip(&reference) {
            assert_eq!(f.edges, r.edges);
            assert_eq!(f.score.to_bits(), r.score.to_bits());
        }
        fast
    }

    #[test]
    fn finds_two_edge_cycle() {
        // f1 → f2 (state of f2: 7) and f2 → f1 (state of f1: 3); the
        // connecting states match pairwise.
        let db = CausalDb::from_edges(vec![
            edge(1, 2, EdgeKind::EI, 3, 7),
            edge(2, 1, EdgeKind::EI, 7, 3),
        ]);
        let cycles = run_both(&db, &BeamConfig::default());
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].edges.len(), 2);
    }

    #[test]
    fn incompatible_states_block_the_cycle() {
        // Same fault ids, but f2's state differs between the tests (7 vs 8).
        let db = CausalDb::from_edges(vec![
            edge(1, 2, EdgeKind::EI, 3, 7),
            edge(2, 1, EdgeKind::EI, 8, 3),
        ]);
        assert!(run(&db).is_empty());
    }

    #[test]
    fn finds_three_edge_cycle_and_dedups_rotations() {
        let db = CausalDb::from_edges(vec![
            edge(1, 2, EdgeKind::EI, 1, 2),
            edge(2, 3, EdgeKind::EI, 2, 3),
            edge(3, 1, EdgeKind::EI, 3, 1),
        ]);
        let cycles = run_both(&db, &BeamConfig::default());
        // One cycle, not three rotations.
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].edges.len(), 3);
    }

    #[test]
    fn self_edge_is_a_length_one_cycle() {
        let db = CausalDb::from_edges(vec![edge(1, 1, EdgeKind::EI, 5, 5)]);
        let cycles = run(&db);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].edges.len(), 1);
    }

    #[test]
    fn non_cyclic_chain_reports_nothing() {
        let db = CausalDb::from_edges(vec![
            edge(1, 2, EdgeKind::EI, 1, 2),
            edge(2, 3, EdgeKind::EI, 2, 3),
        ]);
        assert!(run(&db).is_empty());
    }

    #[test]
    fn delay_cap_filters_delay_heavy_cycles() {
        // Cycle with two delay injections (ED + SD).
        let db = CausalDb::from_edges(vec![
            edge(1, 2, EdgeKind::ED, 1, 2),
            edge(2, 1, EdgeKind::SD, 2, 1),
        ]);
        let mut cfg = BeamConfig::default();
        assert_eq!(beam_search(&db, &uniform, &cfg).len(), 1);
        cfg.max_delay_injections = Some(1);
        assert!(beam_search(&db, &uniform, &cfg).is_empty());
        cfg.max_delay_injections = Some(2);
        assert_eq!(run_both(&db, &cfg).len(), 1);
    }

    #[test]
    fn structural_edges_do_not_count_against_delay_cap() {
        // E(I) → ICFG → back; the ICFG edge is structural, not an injection.
        // Build loop-style states so Loop↔Loop comparisons work.
        use csnake_inject::LoopState;
        let lstate = |sig: u64| {
            let mut st = LoopState::default();
            st.entry_stacks.insert([None, None]);
            st.iter_sigs.insert(sig);
            CompatState::Loop(st)
        };
        let mk = |cause: u32, effect: u32, kind, cs: &CompatState, es: &CompatState| CausalEdge {
            cause: FaultId(cause),
            effect: FaultId(effect),
            kind,
            test: TestId(0),
            phase: 1,
            cause_state: cs.clone(),
            effect_state: es.clone(),
        };
        let s_np = state(1);
        let s_l2 = lstate(10);
        let s_l1 = lstate(20);
        let db = CausalDb::from_edges(vec![
            // negation → inner loop delay (S+(I))
            mk(1, 2, EdgeKind::SI, &s_np, &s_l2),
            // inner loop → parent loop (ICFG)
            mk(2, 3, EdgeKind::Icfg, &s_l2, &s_l1),
            // parent delay injection → negation (E(D))
            mk(3, 1, EdgeKind::ED, &s_l1, &s_np),
        ]);
        let cfg = BeamConfig {
            max_delay_injections: Some(1),
            ..BeamConfig::default()
        };
        let cycles = run_both(&db, &cfg);
        assert_eq!(cycles.len(), 1, "ICFG must not count as a delay injection");
        assert_eq!(cycles[0].edges.len(), 3);
    }

    #[test]
    fn beam_bound_prunes_low_priority_chains() {
        // Star: fault 0 causes 1..=20, each causing 21..=40, none cycling.
        let mut edges = Vec::new();
        for i in 1..=20u32 {
            edges.push(edge(0, i, EdgeKind::EI, 0, i));
            edges.push(edge(i, 20 + i, EdgeKind::EI, i, 100 + i));
        }
        let db = CausalDb::from_edges(edges);
        let cfg = BeamConfig {
            beam_size: 3, // heavy pruning must not panic or cycle-spam
            ..BeamConfig::default()
        };
        let cycles = run_both(&db, &cfg);
        assert!(cycles.is_empty());
    }

    #[test]
    fn lower_sim_score_chains_survive_pruning() {
        // Two parallel 2-cycles; fault 1/2 have low sim score (conditional),
        // 5/6 high. With beam 1, only the low-score pair survives level 1
        // expansion ordering.
        let db = CausalDb::from_edges(vec![
            edge(1, 2, EdgeKind::EI, 1, 2),
            edge(2, 1, EdgeKind::EI, 2, 1),
            edge(5, 6, EdgeKind::EI, 5, 6),
            edge(6, 5, EdgeKind::EI, 6, 5),
        ]);
        let sim = |f: FaultId| if f.0 <= 2 { 0.1 } else { 0.9 };
        let cfg = BeamConfig {
            beam_size: 4,
            ..BeamConfig::default()
        };
        let cycles = beam_search(&db, &sim, &cfg);
        assert_eq!(cycles.len(), 2);
        // Best-ranked cycle is the conditional one.
        let best = &cycles[0];
        let faults: Vec<FaultId> = best.injected_faults(&db).collect();
        assert!(faults.contains(&FaultId(1)));
        assert!((best.score - 0.1).abs() < 1e-9);
    }

    #[test]
    fn cycle_clustering_groups_equivalent_cycles() {
        // Cycles (1→2→1) and (3→2→3) where faults 1 and 3 are in the same
        // cluster → one cycle cluster. (A third, longer 1→2→3→2→1 cycle
        // also exists and lands in the same cluster.)
        let db = CausalDb::from_edges(vec![
            edge(1, 2, EdgeKind::EI, 1, 2),
            edge(2, 1, EdgeKind::EI, 2, 1),
            edge(3, 2, EdgeKind::EI, 3, 2),
            edge(2, 3, EdgeKind::EI, 2, 3),
        ]);
        let cycles = run_both(&db, &BeamConfig::default());
        assert_eq!(cycles.len(), 3);
        let mut cluster_of = BTreeMap::new();
        cluster_of.insert(FaultId(1), 0);
        cluster_of.insert(FaultId(3), 0);
        cluster_of.insert(FaultId(2), 1);
        let clusters = cluster_cycles(&cycles, &db, &cluster_of);
        assert_eq!(clusters.len(), 1);
        assert_eq!(clusters[0].cycle_idxs.len(), 3);
        assert_eq!(clusters[0].key, vec![0, 1]);
    }

    #[test]
    fn max_len_caps_chain_growth() {
        // A long path that only cycles back after 5 edges; with max_len 3 the
        // search cannot reach it.
        let mut edges = Vec::new();
        for i in 0..5u32 {
            edges.push(edge(i, (i + 1) % 5, EdgeKind::EI, i, (i + 1) % 5));
        }
        let db = CausalDb::from_edges(edges);
        let mut cfg = BeamConfig {
            max_len: 3,
            ..BeamConfig::default()
        };
        assert!(beam_search(&db, &uniform, &cfg).is_empty());
        cfg.max_len = 8;
        assert_eq!(run_both(&db, &cfg).len(), 1);
    }
}
