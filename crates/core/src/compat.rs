//! The local compatibility check (§6.2).
//!
//! Before stitching `f1 → f2` (from test `t1`) with `f2 → f3` (from `t2`),
//! CSnake approximates the satisfiability of the conjoined path conditions by
//! checking that the *local* state of the shared fault `f2` matches across
//! the two tests:
//!
//! 1. **Call stack** — the closest two call-stack levels must match
//!    (2-call-site sensitivity);
//! 2. **Execution trace** — the branch trace in the fault's enclosing loop
//!    iteration or function must match.
//!
//! For loop (delay) faults, whose injection covers *every* iteration, the
//! check conservatively accepts if *any* iteration signature matches
//! between the two tests.

use std::cmp::Ordering;

use csnake_inject::Occurrence;

use crate::edge::CompatState;

/// `true` when the slice is sorted by precomputed signature — the invariant
/// the FCA constructors maintain so intersection runs as a linear merge.
fn sorted_by_sig(occs: &[Occurrence]) -> bool {
    occs.windows(2).all(|w| w[0].sig <= w[1].sig)
}

/// Signature-set intersection test over two occurrence lists.
///
/// FCA stores occurrence lists sorted by signature, so the common path is a
/// linear merge (O(n + m)); hand-built unsorted states (tests, external
/// callers) fall back to the pairwise scan.
fn occurrence_sigs_intersect(xs: &[Occurrence], ys: &[Occurrence]) -> bool {
    if sorted_by_sig(xs) && sorted_by_sig(ys) {
        let (mut i, mut j) = (0, 0);
        while i < xs.len() && j < ys.len() {
            match xs[i].sig.cmp(&ys[j].sig) {
                Ordering::Less => i += 1,
                Ordering::Greater => j += 1,
                Ordering::Equal => return true,
            }
        }
        false
    } else {
        xs.iter().any(|x| ys.iter().any(|y| x.sig == y.sig))
    }
}

/// Linear merge intersection test over two sorted iterators (`BTreeSet`
/// iteration is sorted).
fn sorted_iters_intersect<T: Ord>(
    mut a: impl Iterator<Item = T>,
    mut b: impl Iterator<Item = T>,
) -> bool {
    let (mut x, mut y) = (a.next(), b.next());
    while let (Some(ref xv), Some(ref yv)) = (&x, &y) {
        match xv.cmp(yv) {
            Ordering::Less => x = a.next(),
            Ordering::Greater => y = b.next(),
            Ordering::Equal => return true,
        }
    }
    false
}

/// Checks whether two compatibility states of the same fault, observed in
/// two different tests, are compatible for stitching.
pub fn compatible(a: &CompatState, b: &CompatState) -> bool {
    match (a, b) {
        (CompatState::Occurrences(xs), CompatState::Occurrences(ys)) => {
            // Any occurrence pair with identical signature (signature covers
            // both the 2-level stack and the local branch trace).
            occurrence_sigs_intersect(xs, ys)
        }
        (CompatState::Loop(x), CompatState::Loop(y)) => {
            let stacks_meet = sorted_iters_intersect(x.entry_stacks.iter(), y.entry_stacks.iter());
            // "Conservatively checks for matching traces in any loop
            // iteration between tests."
            let iters_meet = sorted_iters_intersect(x.iter_sigs.iter(), y.iter_sigs.iter())
                || (x.iter_sigs.is_empty() && y.iter_sigs.is_empty());
            stacks_meet && iters_meet
        }
        // A fault cannot be a loop in one test and an exception in another;
        // mismatched state shapes mean the match is structurally invalid.
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csnake_inject::{BranchId, FnId, LoopState, Occurrence};

    fn occ(stack: [Option<FnId>; 2], trace: &[(u32, bool)]) -> Occurrence {
        Occurrence::new(
            stack,
            trace.iter().map(|(b, o)| (BranchId(*b), *o)).collect(),
        )
    }

    #[test]
    fn matching_occurrences_are_compatible() {
        let a = CompatState::Occurrences(vec![occ([Some(FnId(1)), None], &[(0, true)])]);
        let b = CompatState::Occurrences(vec![
            occ([Some(FnId(2)), None], &[(0, true)]),
            occ([Some(FnId(1)), None], &[(0, true)]),
        ]);
        assert!(compatible(&a, &b));
    }

    #[test]
    fn different_call_stacks_are_incompatible() {
        // Same local trace, different caller — the paper's "error at a
        // different call site represents a different request type" case.
        let a = CompatState::Occurrences(vec![occ([Some(FnId(1)), None], &[(0, true)])]);
        let b = CompatState::Occurrences(vec![occ([Some(FnId(2)), None], &[(0, true)])]);
        assert!(!compatible(&a, &b));
    }

    #[test]
    fn different_branch_outcomes_are_incompatible() {
        let a = CompatState::Occurrences(vec![occ([Some(FnId(1)), None], &[(0, true)])]);
        let b = CompatState::Occurrences(vec![occ([Some(FnId(1)), None], &[(0, false)])]);
        assert!(!compatible(&a, &b));
    }

    #[test]
    fn empty_occurrence_sets_are_incompatible() {
        let a = CompatState::Occurrences(vec![]);
        let b = CompatState::Occurrences(vec![occ([None, None], &[])]);
        assert!(!compatible(&a, &b));
        assert!(!compatible(&a, &a.clone()));
    }

    fn loop_state(stacks: &[[Option<FnId>; 2]], sigs: &[u64]) -> CompatState {
        let mut st = LoopState::default();
        for s in stacks {
            st.entry_stacks.insert(*s);
        }
        for s in sigs {
            st.iter_sigs.insert(*s);
        }
        CompatState::Loop(st)
    }

    #[test]
    fn loop_states_match_on_any_iteration_signature() {
        let a = loop_state(&[[Some(FnId(1)), None]], &[10, 20, 30]);
        let b = loop_state(&[[Some(FnId(1)), None]], &[30, 40]);
        assert!(compatible(&a, &b));
        let c = loop_state(&[[Some(FnId(1)), None]], &[40, 50]);
        assert!(!compatible(&a, &c));
    }

    #[test]
    fn loop_states_require_stack_intersection() {
        let a = loop_state(&[[Some(FnId(1)), None]], &[10]);
        let b = loop_state(&[[Some(FnId(2)), None]], &[10]);
        assert!(!compatible(&a, &b));
        let c = loop_state(&[[Some(FnId(2)), None], [Some(FnId(1)), None]], &[10]);
        assert!(compatible(&a, &c));
    }

    #[test]
    fn empty_iteration_sets_match_if_both_empty() {
        let a = loop_state(&[[None, None]], &[]);
        let b = loop_state(&[[None, None]], &[]);
        assert!(compatible(&a, &b));
        let c = loop_state(&[[None, None]], &[7]);
        assert!(!compatible(&a, &c));
    }

    #[test]
    fn sorted_and_unsorted_occurrence_lists_agree() {
        // The same signature sets must be judged identically whether the
        // lists arrive sorted (FCA invariant → merge path) or not
        // (fallback path).
        let mk = |tags: &[u32]| -> Vec<Occurrence> {
            tags.iter()
                .map(|&t| occ([Some(FnId(t)), None], &[]))
                .collect()
        };
        let sort = |mut v: Vec<Occurrence>| {
            v.sort_unstable_by_key(|o| o.sig);
            v
        };
        for (xs, ys, expect) in [
            (mk(&[3, 1, 2]), mk(&[9, 2, 8]), true),
            (mk(&[3, 1, 2]), mk(&[9, 7, 8]), false),
            (mk(&[5]), mk(&[5]), true),
        ] {
            let unsorted = compatible(
                &CompatState::Occurrences(xs.clone()),
                &CompatState::Occurrences(ys.clone()),
            );
            let sorted = compatible(
                &CompatState::Occurrences(sort(xs)),
                &CompatState::Occurrences(sort(ys)),
            );
            assert_eq!(unsorted, expect);
            assert_eq!(sorted, expect);
        }
    }

    #[test]
    fn merge_intersection_handles_disjoint_and_overlapping_loops() {
        let a = loop_state(&[[Some(FnId(1)), None], [Some(FnId(3)), None]], &[1, 5, 9]);
        let b = loop_state(&[[Some(FnId(2)), None], [Some(FnId(3)), None]], &[2, 5]);
        assert!(compatible(&a, &b));
        let c = loop_state(&[[Some(FnId(9)), None]], &[5]);
        assert!(!compatible(&a, &c));
    }

    #[test]
    fn mixed_shapes_are_incompatible() {
        let occs = CompatState::Occurrences(vec![occ([None, None], &[])]);
        let lp = loop_state(&[[None, None]], &[1]);
        assert!(!compatible(&occs, &lp));
        assert!(!compatible(&lp, &occs));
    }
}
