//! The local compatibility check (§6.2).
//!
//! Before stitching `f1 → f2` (from test `t1`) with `f2 → f3` (from `t2`),
//! CSnake approximates the satisfiability of the conjoined path conditions by
//! checking that the *local* state of the shared fault `f2` matches across
//! the two tests:
//!
//! 1. **Call stack** — the closest two call-stack levels must match
//!    (2-call-site sensitivity);
//! 2. **Execution trace** — the branch trace in the fault's enclosing loop
//!    iteration or function must match.
//!
//! For loop (delay) faults, whose injection covers *every* iteration, the
//! check conservatively accepts if *any* iteration signature matches
//! between the two tests.

use crate::edge::CompatState;

/// Checks whether two compatibility states of the same fault, observed in
/// two different tests, are compatible for stitching.
pub fn compatible(a: &CompatState, b: &CompatState) -> bool {
    match (a, b) {
        (CompatState::Occurrences(xs), CompatState::Occurrences(ys)) => {
            // Any occurrence pair with identical signature (signature covers
            // both the 2-level stack and the local branch trace).
            xs.iter().any(|x| ys.iter().any(|y| x.sig == y.sig))
        }
        (CompatState::Loop(x), CompatState::Loop(y)) => {
            let stacks_meet = x.entry_stacks.iter().any(|s| y.entry_stacks.contains(s));
            // "Conservatively checks for matching traces in any loop
            // iteration between tests."
            let iters_meet = x.iter_sigs.iter().any(|s| y.iter_sigs.contains(s))
                || (x.iter_sigs.is_empty() && y.iter_sigs.is_empty());
            stacks_meet && iters_meet
        }
        // A fault cannot be a loop in one test and an exception in another;
        // mismatched state shapes mean the match is structurally invalid.
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csnake_inject::{BranchId, FnId, LoopState, Occurrence};

    fn occ(stack: [Option<FnId>; 2], trace: &[(u32, bool)]) -> Occurrence {
        Occurrence::new(
            stack,
            trace.iter().map(|(b, o)| (BranchId(*b), *o)).collect(),
        )
    }

    #[test]
    fn matching_occurrences_are_compatible() {
        let a = CompatState::Occurrences(vec![occ([Some(FnId(1)), None], &[(0, true)])]);
        let b = CompatState::Occurrences(vec![
            occ([Some(FnId(2)), None], &[(0, true)]),
            occ([Some(FnId(1)), None], &[(0, true)]),
        ]);
        assert!(compatible(&a, &b));
    }

    #[test]
    fn different_call_stacks_are_incompatible() {
        // Same local trace, different caller — the paper's "error at a
        // different call site represents a different request type" case.
        let a = CompatState::Occurrences(vec![occ([Some(FnId(1)), None], &[(0, true)])]);
        let b = CompatState::Occurrences(vec![occ([Some(FnId(2)), None], &[(0, true)])]);
        assert!(!compatible(&a, &b));
    }

    #[test]
    fn different_branch_outcomes_are_incompatible() {
        let a = CompatState::Occurrences(vec![occ([Some(FnId(1)), None], &[(0, true)])]);
        let b = CompatState::Occurrences(vec![occ([Some(FnId(1)), None], &[(0, false)])]);
        assert!(!compatible(&a, &b));
    }

    #[test]
    fn empty_occurrence_sets_are_incompatible() {
        let a = CompatState::Occurrences(vec![]);
        let b = CompatState::Occurrences(vec![occ([None, None], &[])]);
        assert!(!compatible(&a, &b));
        assert!(!compatible(&a, &a.clone()));
    }

    fn loop_state(stacks: &[[Option<FnId>; 2]], sigs: &[u64]) -> CompatState {
        let mut st = LoopState::default();
        for s in stacks {
            st.entry_stacks.insert(*s);
        }
        for s in sigs {
            st.iter_sigs.insert(*s);
        }
        CompatState::Loop(st)
    }

    #[test]
    fn loop_states_match_on_any_iteration_signature() {
        let a = loop_state(&[[Some(FnId(1)), None]], &[10, 20, 30]);
        let b = loop_state(&[[Some(FnId(1)), None]], &[30, 40]);
        assert!(compatible(&a, &b));
        let c = loop_state(&[[Some(FnId(1)), None]], &[40, 50]);
        assert!(!compatible(&a, &c));
    }

    #[test]
    fn loop_states_require_stack_intersection() {
        let a = loop_state(&[[Some(FnId(1)), None]], &[10]);
        let b = loop_state(&[[Some(FnId(2)), None]], &[10]);
        assert!(!compatible(&a, &b));
        let c = loop_state(&[[Some(FnId(2)), None], [Some(FnId(1)), None]], &[10]);
        assert!(compatible(&a, &c));
    }

    #[test]
    fn empty_iteration_sets_match_if_both_empty() {
        let a = loop_state(&[[None, None]], &[]);
        let b = loop_state(&[[None, None]], &[]);
        assert!(compatible(&a, &b));
        let c = loop_state(&[[None, None]], &[7]);
        assert!(!compatible(&a, &c));
    }

    #[test]
    fn mixed_shapes_are_incompatible() {
        let occs = CompatState::Occurrences(vec![occ([None, None], &[])]);
        let lp = loop_state(&[[None, None]], &[1]);
        assert!(!compatible(&occs, &lp));
        assert!(!compatible(&lp, &occs));
    }
}
