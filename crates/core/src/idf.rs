//! IDF vectorization of fault interference lists (§5.2, §A.1).
//!
//! Each injection experiment yields an interference list `I(f_i, t_j)` — the
//! set of additional faults triggered. To compare experiments, CSnake
//! vectorizes the lists with inverse document frequency weights
//! (Eq. 3: `IDF(f) = log((1+N)/(1+N_f))`), L2-normalizes (Eq. 4), and
//! measures cosine distance (Eq. 5). Faults triggered by almost every
//! injection (utility-function faults — the "stop words") get weight ≈ 0.

use std::collections::{BTreeMap, BTreeSet};

use csnake_inject::FaultId;
use serde::{Deserialize, Serialize};

/// A sparse, L2-normalized interference vector with its Euclidean norm
/// cached at construction.
///
/// The norm is fixed the moment the vector is built ([`IdfVectorizer::
/// vectorize`] normalizes, so it stores exactly `1.0` for non-zero
/// vectors; [`SparseVec::from_weights`] computes it), which keeps
/// [`SparseVec::norm`] and [`cosine_distance`] free of per-call `O(k)`
/// norm recomputation — both FCA's similarity scoring and clustering's
/// candidate generation call them in tight pair loops.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SparseVec {
    components: BTreeMap<FaultId, f64>,
    norm: f64,
}

impl SparseVec {
    /// Builds a vector from raw (un-normalized) weights, caching the norm.
    /// Zero weights are dropped so `is_zero` stays exact.
    pub fn from_weights(weights: BTreeMap<FaultId, f64>) -> SparseVec {
        let mut components = weights;
        components.retain(|_, w| *w != 0.0);
        let norm = components.values().map(|v| v * v).sum::<f64>().sqrt();
        SparseVec { components, norm }
    }

    /// Internal constructor for vectors already known to be unit-norm.
    fn unit(components: BTreeMap<FaultId, f64>) -> SparseVec {
        let norm = if components.is_empty() { 0.0 } else { 1.0 };
        SparseVec { components, norm }
    }

    /// The raw component map.
    pub fn components(&self) -> &BTreeMap<FaultId, f64> {
        &self.components
    }

    /// `true` if all components are zero (empty interference).
    pub fn is_zero(&self) -> bool {
        self.components.is_empty()
    }

    /// Euclidean norm, cached at construction (`1.0` for non-zero vectors
    /// built by [`IdfVectorizer::vectorize`], which normalizes).
    pub fn norm(&self) -> f64 {
        self.norm
    }

    /// Dot product with another sparse vector.
    pub fn dot(&self, other: &SparseVec) -> f64 {
        // Iterate over the smaller map.
        let (small, large) = if self.components.len() <= other.components.len() {
            (&self.components, &other.components)
        } else {
            (&other.components, &self.components)
        };
        small
            .iter()
            .filter_map(|(k, v)| large.get(k).map(|w| v * w))
            .sum()
    }
}

/// Cosine distance between two sparse vectors, in `[0, 1]` (all IDF
/// components are non-negative). Uses the norms cached at construction —
/// no per-pair norm recomputation.
///
/// Degenerate cases: two zero vectors are identical (distance 0); a zero
/// vector against a non-zero one is maximally distant (distance 1).
pub fn cosine_distance(a: &SparseVec, b: &SparseVec) -> f64 {
    match (a.is_zero(), b.is_zero()) {
        (true, true) => 0.0,
        (true, false) | (false, true) => 1.0,
        (false, false) => (1.0 - a.dot(b) / (a.norm * b.norm)).clamp(0.0, 1.0),
    }
}

/// An IDF model fitted over a corpus of interference lists.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IdfVectorizer {
    n_docs: usize,
    doc_freq: BTreeMap<FaultId, usize>,
}

impl IdfVectorizer {
    /// Fits the model: `N` = number of experiments, `N_f` = number of
    /// experiments whose interference list contains `f`.
    pub fn fit<'a>(corpus: impl IntoIterator<Item = &'a BTreeSet<FaultId>>) -> Self {
        let mut n_docs = 0;
        let mut doc_freq: BTreeMap<FaultId, usize> = BTreeMap::new();
        for doc in corpus {
            n_docs += 1;
            for f in doc {
                *doc_freq.entry(*f).or_insert(0) += 1;
            }
        }
        IdfVectorizer { n_docs, doc_freq }
    }

    /// Number of documents (experiments) the model was fitted on.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// IDF weight of a fault: `log((1+N)/(1+N_f))` (Eq. 3).
    pub fn idf(&self, f: FaultId) -> f64 {
        let nf = self.doc_freq.get(&f).copied().unwrap_or(0);
        (((1 + self.n_docs) as f64) / ((1 + nf) as f64)).ln()
    }

    /// Vectorizes an interference list: each triggered fault is replaced by
    /// its IDF value and the vector is L2-normalized (Eq. 4).
    pub fn vectorize(&self, interference: &BTreeSet<FaultId>) -> SparseVec {
        let mut v: BTreeMap<FaultId, f64> = BTreeMap::new();
        for f in interference {
            let w = self.idf(*f);
            if w > 0.0 {
                v.insert(*f, w);
            }
        }
        let norm = v.values().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 0.0 {
            for val in v.values_mut() {
                *val /= norm;
            }
        } else {
            v.clear();
        }
        // Normalized here, so the cached norm is 1.0 by construction
        // (0.0 for the empty vector).
        SparseVec::unit(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FaultId {
        FaultId(i)
    }

    fn set(ids: &[u32]) -> BTreeSet<FaultId> {
        ids.iter().map(|i| f(*i)).collect()
    }

    #[test]
    fn idf_weights_follow_frequency() {
        // f1 in all 4 docs, f2 in 1 doc.
        let docs = vec![set(&[1, 2]), set(&[1]), set(&[1]), set(&[1])];
        let m = IdfVectorizer::fit(&docs);
        assert_eq!(m.n_docs(), 4);
        assert!((m.idf(f(1)) - (5.0_f64 / 5.0).ln()).abs() < 1e-12);
        assert!((m.idf(f(2)) - (5.0_f64 / 2.0).ln()).abs() < 1e-12);
        // Unseen fault gets the maximum weight.
        assert!((m.idf(f(9)) - 5.0_f64.ln()).abs() < 1e-12);
        // Ubiquitous fault weight is exactly zero — the "stop word" effect.
        assert_eq!(m.idf(f(1)), 0.0);
    }

    #[test]
    fn vectors_are_normalized() {
        let docs = vec![set(&[1, 2, 3]), set(&[2]), set(&[3])];
        let m = IdfVectorizer::fit(&docs);
        let v = m.vectorize(&set(&[2, 3]));
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert!(!v.is_zero());
    }

    #[test]
    fn ubiquitous_only_interference_vectorizes_to_zero() {
        let docs = vec![set(&[1]), set(&[1]), set(&[1])];
        let m = IdfVectorizer::fit(&docs);
        let v = m.vectorize(&set(&[1]));
        assert!(v.is_zero());
    }

    #[test]
    fn cosine_distance_range_and_extremes() {
        let docs = vec![set(&[1, 2]), set(&[3, 4]), set(&[1, 3])];
        let m = IdfVectorizer::fit(&docs);
        let a = m.vectorize(&set(&[1, 2]));
        let b = m.vectorize(&set(&[3, 4]));
        let a2 = m.vectorize(&set(&[1, 2]));
        assert!((cosine_distance(&a, &a2)).abs() < 1e-12, "identical → 0");
        assert!(
            (cosine_distance(&a, &b) - 1.0).abs() < 1e-12,
            "disjoint → 1"
        );
        let mixed = m.vectorize(&set(&[1, 3]));
        let d = cosine_distance(&a, &mixed);
        assert!(d > 0.0 && d < 1.0, "partial overlap strictly between: {d}");
    }

    #[test]
    fn cosine_distance_zero_vector_conventions() {
        let z = SparseVec::default();
        let docs = vec![set(&[1]), set(&[2])];
        let m = IdfVectorizer::fit(&docs);
        let v = m.vectorize(&set(&[1]));
        assert_eq!(cosine_distance(&z, &z), 0.0);
        assert_eq!(cosine_distance(&z, &v), 1.0);
        assert_eq!(cosine_distance(&v, &z), 1.0);
    }

    #[test]
    fn cosine_distance_is_symmetric() {
        let docs = vec![set(&[1, 2]), set(&[2, 3]), set(&[3, 4])];
        let m = IdfVectorizer::fit(&docs);
        let a = m.vectorize(&set(&[1, 2, 3]));
        let b = m.vectorize(&set(&[2, 4]));
        assert!((cosine_distance(&a, &b) - cosine_distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn norm_is_cached_at_construction() {
        let v = SparseVec::from_weights([(f(1), 3.0), (f(2), 4.0)].into_iter().collect());
        assert_eq!(v.norm(), 5.0);
        // Zero weights are dropped so `is_zero` stays exact.
        let z = SparseVec::from_weights([(f(1), 0.0)].into_iter().collect());
        assert!(z.is_zero());
        assert_eq!(z.norm(), 0.0);
        // Cosine over un-normalized vectors divides by the cached norms.
        let a = SparseVec::from_weights([(f(1), 2.0)].into_iter().collect());
        let b = SparseVec::from_weights([(f(1), 7.0)].into_iter().collect());
        assert!(cosine_distance(&a, &b).abs() < 1e-12);
    }

    #[test]
    fn dot_product_handles_asymmetric_sizes() {
        let docs = vec![set(&[1]), set(&[2]), set(&[3]), set(&[4])];
        let m = IdfVectorizer::fit(&docs);
        let small = m.vectorize(&set(&[1]));
        let large = m.vectorize(&set(&[1, 2, 3, 4]));
        let d1 = small.dot(&large);
        let d2 = large.dot(&small);
        assert!((d1 - d2).abs() < 1e-12);
        assert!(d1 > 0.0);
    }
}
