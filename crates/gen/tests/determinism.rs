//! Property: generation is a pure function of `(seed, config)`.
//!
//! For 400 random seeds: the generated spec pretty-prints, reparses and
//! compiles; two independent generations from the same seed produce the
//! identical canonical text, identical ground truth, and — after
//! compilation — the identical registry fingerprint. Nothing in the
//! generator may depend on wall-clock time, thread counts or map
//! iteration order, and this property is the proof.

use csnake_core::{registry_fingerprint, TargetSystem};
use csnake_gen::{generate, planted_truth, GenConfig};
use csnake_scenario::{compile, parse_str, print};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn generate_print_parse_compile_is_deterministic(seed in 0u64..u64::MAX) {
        // Exercise multi-cycle generation on a share of the seeds.
        let cfg = GenConfig {
            planted: 1 + (seed % 3 == 0) as usize,
            ..GenConfig::default()
        };
        let a = generate(seed, &cfg);
        let b = generate(seed, &cfg);

        // Same seed → same canonical text and same ground truth.
        let text_a = print(&a.spec);
        prop_assert_eq!(&text_a, &print(&b.spec), "seed {}: text differs", seed);
        prop_assert_eq!(&a.truth, &b.truth, "seed {}: ground truth differs", seed);

        // The text round-trips to the generated AST…
        let reparsed = parse_str(&text_a)
            .unwrap_or_else(|e| panic!("seed {seed}: generated spec does not reparse: {e}\n{text_a}"));
        prop_assert_eq!(&reparsed, &a.spec, "seed {}: round-trip changed the spec", seed);
        // …and the sidecars carry the full ground truth through the text.
        prop_assert_eq!(&planted_truth(&reparsed), &a.truth, "seed {}: sidecar truth differs", seed);

        // Both generations compile to the identical registry.
        let sys_a = compile(&reparsed)
            .unwrap_or_else(|e| panic!("seed {seed}: generated spec does not compile: {e}"));
        let sys_b = compile(&b.spec).expect("second generation compiles");
        prop_assert_eq!(
            registry_fingerprint(&sys_a.registry()),
            registry_fingerprint(&sys_b.registry()),
            "seed {}: registry fingerprints diverge", seed
        );
    }
}
