//! Deterministic name pools.
//!
//! Generated specs should read like the hand-written corpus — components
//! called `HintReplayer`, queues called `fetches` — while staying unique
//! within a spec whatever the topology. [`NamePool`] draws from themed
//! word lists with the spec's RNG and deduplicates by appending a numeric
//! suffix, so name choice is a pure function of the draw sequence.

use std::collections::HashSet;

use csnake_sim::SimRng;

/// Server-ish components hosting a planted work loop.
pub const SERVERS: &[&str] = &[
    "JobServer",
    "ReplicaFetcher",
    "HintReplayer",
    "LeaseKeeper",
    "SegmentFlusher",
    "CompactionRunner",
    "WalSyncer",
    "BlockReporter",
];

/// Worker/processor components (the cross-family throw site).
pub const WORKERS: &[&str] = &[
    "ShardWorker",
    "RegionMover",
    "ChunkDecoder",
    "DigestMerger",
    "BatchApplier",
];

/// Relay/buffer components on the retry path.
pub const RELAYS: &[&str] = &[
    "RetryRelay",
    "ReplayBuffer",
    "BackoffSpool",
    "RequeueBridge",
];

/// Monitor components hosting detector negations.
pub const MONITORS: &[&str] = &["HealthMonitor", "IsrMonitor", "LagDetector", "QuotaWatcher"];

/// Decoy components: periodic housekeeping with filtered instrumentation.
pub const DECOYS: &[&str] = &[
    "MetricsRegistry",
    "AuditLogger",
    "ConfigWatcher",
    "GcInspector",
    "TokenRenewer",
    "SnapshotJanitor",
];

/// Work-queue names.
pub const QUEUES: &[&str] = &[
    "jobs", "fetches", "hints", "pings", "batches", "deltas", "leases", "segments",
];

/// Exception classes for planted (system-category) throws.
pub const THROW_CLASSES: &[&str] = &[
    "IOException",
    "SocketTimeoutException",
    "TimeoutException",
    "EOFException",
];

/// Unique-name dispenser over the pools above.
pub struct NamePool {
    used: HashSet<String>,
}

impl Default for NamePool {
    fn default() -> Self {
        NamePool::new()
    }
}

impl NamePool {
    pub fn new() -> NamePool {
        NamePool {
            used: HashSet::new(),
        }
    }

    /// Draws a pool word with `rng` and makes it unique in this spec by
    /// suffixing the first free ordinal.
    pub fn pick(&mut self, rng: &mut SimRng, pool: &[&str]) -> String {
        let base = pool[rng.pick(pool.len())];
        self.reserve(base)
    }

    /// Reserves an explicit base name, suffixing to keep it unique.
    pub fn reserve(&mut self, base: &str) -> String {
        if self.used.insert(base.to_string()) {
            return base.to_string();
        }
        for i in 2.. {
            let candidate = format!("{base}{i}");
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
        unreachable!("suffix search always terminates");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collisions_get_ordinal_suffixes() {
        let mut pool = NamePool::new();
        assert_eq!(pool.reserve("jobs"), "jobs");
        assert_eq!(pool.reserve("jobs"), "jobs2");
        assert_eq!(pool.reserve("jobs"), "jobs3");
        assert_eq!(pool.reserve("jobs2"), "jobs22");
    }

    #[test]
    fn picks_are_seed_deterministic() {
        let mut a = (NamePool::new(), SimRng::new(9));
        let mut b = (NamePool::new(), SimRng::new(9));
        for _ in 0..32 {
            assert_eq!(a.0.pick(&mut a.1, SERVERS), b.0.pick(&mut b.1, SERVERS));
        }
    }
}
