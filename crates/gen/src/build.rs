//! Seed → [`ScenarioSpec`] expansion.
//!
//! The builder grows one spec item-by-item exactly like a hand-written
//! file would be laid out: components, interned functions, the
//! instrumentation inventory, handlers, then workloads and ground truth.
//! All randomness flows through one [`SimRng`] stream seeded from the
//! spec seed, and every name is drawn through a single [`NamePool`], so
//! the construction is a pure function of `(seed, config)` — no clocks,
//! no thread counts, no iteration-order hazards.
//!
//! Each planted cycle instantiates a propagation pattern proven
//! end-to-end by the hand-written corpus (the toy delay/retry storm, the
//! kafka-isr delay+negation monitor) inside randomized topology and
//! parameters, and contributes:
//!
//! * its component cluster (server, and per shape a retry buffer, a
//!   relay chain, or a monitor function),
//! * a *volume* workload that exposes the delay→failure propagation and
//!   a *recovery* workload that exposes the failure→load amplification —
//!   never both in one workload, which is exactly what causal stitching
//!   exists to overcome,
//! * a `bug … labels […] shape <family>` ground-truth declaration.
//!
//! Decoy components are periodic housekeeping nodes whose
//! instrumentation the static filters should remove (constant-bound
//! loops, JDK/config booleans) or whose injections propagate nowhere.

use csnake_scenario::ast::*;
use csnake_sim::SimRng;

use crate::names::{NamePool, DECOYS, MONITORS, QUEUES, RELAYS, SERVERS, THROW_CLASSES, WORKERS};
use crate::{GenConfig, GeneratedScenario, Planted, Shape};

// ---------------------------------------------------------------- helpers

fn id(s: &str) -> Ident {
    Ident::new(s)
}

fn int(n: i64) -> Expr {
    Expr::Int(n, Mark::default())
}

fn dur_ms(ms: u64) -> Expr {
    Expr::Dur(ms * 1_000, Mark::default())
}

fn dur_s(s: u64) -> Expr {
    Expr::Dur(s * 1_000_000, Mark::default())
}

fn var(name: &str) -> Expr {
    Expr::Var(id(name))
}

fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
    Expr::Bin {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
    }
}

fn not(e: Expr) -> Expr {
    Expr::Not(Box::new(e))
}

fn empty(q: &str) -> Expr {
    Expr::Empty(id(q))
}

fn sched(event: &str, after: Expr) -> Stmt {
    Stmt::Sched {
        event: id(event),
        after,
    }
}

/// Values of one workload variable across the three workload roles.
struct VarVals {
    name: String,
    volume: Expr,
    recovery: Expr,
    background: Expr,
}

/// One planted cycle's contribution to the spec-wide workload set.
struct CyclePlan {
    /// Unique tag (the work-queue name) used in workload names.
    tag: String,
    vars: Vec<VarVals>,
    /// Horizon of the cycle's volume/recovery workloads, in seconds.
    horizon_s: u64,
    truth: Planted,
}

/// Setup statements templated into *every* workload (all cycles and all
/// decoys run in every workload; only the `$var` bindings differ).
enum SetupTpl {
    Spawn {
        event: String,
        count_var: String,
        every_var: String,
    },
    Sched {
        event: String,
        after_ms: u64,
    },
}

struct Build {
    rng: SimRng,
    pool: NamePool,
    components: Vec<Component>,
    fns: Vec<FnDecl>,
    points: Vec<PointDecl>,
    branches: Vec<BranchDecl>,
    handlers: Vec<Handler>,
    bugs: Vec<BugDecl>,
    setup: Vec<SetupTpl>,
    line: u32,
}

impl Build {
    fn new(seed: u64) -> Build {
        // Decorrelate neighbouring seeds without losing determinism.
        let mixed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x6765_6E21); // "gen!"
        Build {
            rng: SimRng::new(mixed),
            pool: NamePool::new(),
            components: Vec::new(),
            fns: Vec::new(),
            points: Vec::new(),
            branches: Vec::new(),
            handlers: Vec::new(),
            bugs: Vec::new(),
            setup: Vec::new(),
            line: 0,
        }
    }

    /// Inclusive range sample.
    fn sample(&mut self, (lo, hi): (u64, u64)) -> u64 {
        let hi = hi.max(lo);
        lo + self.rng.range(0, hi - lo + 1)
    }

    /// The next conceptual source line (decl order keeps ids dense).
    fn next_line(&mut self) -> u32 {
        self.line += 10;
        self.line
    }

    fn component(&mut self, name: &str, queues: Vec<String>) -> String {
        let name = self.pool.reserve(name);
        self.components.push(Component {
            name: id(&name),
            queues: queues.iter().map(|q| id(q)).collect(),
        });
        name
    }

    /// Draws a component name from a themed pool and declares it.
    fn pick_component(&mut self, pool: &[&str], queues: Vec<String>) -> String {
        let base = pool[self.rng.pick(pool.len())];
        self.component(base, queues)
    }

    fn queue_name(&mut self) -> String {
        self.pool.pick(&mut self.rng, QUEUES)
    }

    /// Declares `fn <alias> = "<class>.<method>"` and returns the alias.
    fn func(&mut self, class: &str, method: &str) -> String {
        let alias = self.pool.reserve(method);
        self.fns.push(FnDecl {
            alias: id(&alias),
            path: format!("{class}.{method}"),
        });
        alias
    }

    fn work_loop(&mut self, label: &str, func: &str) -> String {
        let label = self.pool.reserve(label);
        let line = self.next_line();
        self.points.push(PointDecl {
            label: id(&label),
            func: id(func),
            line,
            kind: PointKind::Loop {
                io: true,
                parent: None,
                sibling: None,
            },
        });
        label
    }

    fn const_loop(&mut self, label: &str, func: &str, bound: u32) -> String {
        let label = self.pool.reserve(label);
        let line = self.next_line();
        self.points.push(PointDecl {
            label: id(&label),
            func: id(func),
            line,
            kind: PointKind::ConstLoop { bound },
        });
        label
    }

    fn system_throw(&mut self, label: &str, func: &str) -> String {
        let label = self.pool.reserve(label);
        let line = self.next_line();
        let class = THROW_CLASSES[self.rng.pick(THROW_CLASSES.len())];
        self.points.push(PointDecl {
            label: id(&label),
            func: id(func),
            line,
            kind: PointKind::Throw {
                class: class.to_string(),
                category: ThrowCategory::System,
                test_only: false,
            },
        });
        label
    }

    fn negation(&mut self, label: &str, func: &str, error_when: bool, source: NegSource) -> String {
        let label = self.pool.reserve(label);
        let line = self.next_line();
        self.points.push(PointDecl {
            label: id(&label),
            func: id(func),
            line,
            kind: PointKind::Negation { error_when, source },
        });
        label
    }

    fn branch_point(&mut self, label: &str, func: &str) -> String {
        let label = self.pool.reserve(label);
        let line = self.next_line();
        self.branches.push(BranchDecl {
            label: id(&label),
            func: id(func),
            line,
        });
        label
    }

    fn handler(&mut self, event: &str, component: Option<&str>, func: &str, body: Vec<Stmt>) {
        self.handlers.push(Handler {
            event: id(event),
            component: component.map(id),
            func: id(func),
            body,
        });
    }

    // ------------------------------------------------------ planted cycles

    /// The drain-the-work-queue statement shared by the queue, retry and
    /// cross families: items past `deadline_s` throw at the guard; the
    /// failure handler speculatively re-executes `$fanout` copies into
    /// `retry_target` while the per-item retry budget lasts.
    #[allow(clippy::too_many_arguments)]
    fn drain_with_retries(
        &mut self,
        work_loop: &str,
        queue: &str,
        proc_fn: &str,
        ioe: &str,
        deadline_s: u64,
        advance_ms: u64,
        fanout_var: &str,
        maxr_var: &str,
        retry_target: &str,
    ) -> Stmt {
        Stmt::DrainLoop {
            point: id(work_loop),
            queue: id(queue),
            body: vec![Stmt::Try {
                body: vec![Stmt::Frame {
                    func: id(proc_fn),
                    body: vec![
                        Stmt::Advance(dur_ms(advance_ms)),
                        Stmt::Guard(id(ioe)),
                        Stmt::ThrowIf {
                            point: id(ioe),
                            cond: bin(BinOp::Gt, Expr::AgeItem(Mark::default()), dur_s(deadline_s)),
                        },
                    ],
                }],
                onerr: vec![Stmt::If {
                    cond: bin(
                        BinOp::And,
                        bin(BinOp::Gt, var(fanout_var), int(0)),
                        bin(BinOp::Lt, Expr::RetriesItem(Mark::default()), var(maxr_var)),
                    ),
                    then: vec![Stmt::Repeat {
                        count: var(fanout_var),
                        body: vec![Stmt::Requeue(id(retry_target))],
                    }],
                    els: vec![],
                }],
            }],
        }
    }

    /// `if (submitted(q) < $n) or (not empty(q)) { sched E busy } else
    /// { sched E idle }` — the corpus' self-rescheduling tick pattern.
    fn resched(&self, event: &str, queue: &str, n_var: &str, busy_ms: u64, idle_ms: u64) -> Stmt {
        Stmt::If {
            cond: bin(
                BinOp::Or,
                bin(BinOp::Lt, Expr::Submitted(id(queue)), var(n_var)),
                not(empty(queue)),
            ),
            then: vec![sched(event, dur_ms(busy_ms))],
            els: vec![sched(event, dur_ms(idle_ms))],
        }
    }

    /// Common front matter of a server tick: optional constant-bound
    /// warmup loop and optional batch branch monitor.
    fn tick_prelude(&mut self, tag: &str, tick_fn: &str, queue: &str) -> Vec<Stmt> {
        let mut body = Vec::new();
        if self.rng.chance(0.8) {
            let bound = self.sample((2, 4)) as u32;
            let warm = self.const_loop(&format!("{tag}_warm"), tick_fn, bound);
            body.push(Stmt::ConstLoop {
                point: id(&warm),
                body: vec![],
            });
        }
        if self.rng.chance(0.8) {
            let br = self.branch_point(&format!("{tag}_nonempty"), tick_fn);
            body.push(Stmt::Branch {
                point: id(&br),
                cond: not(empty(queue)),
            });
        }
        body
    }

    /// Optional health monitor on the work queue: an injectable detector
    /// negation whose natural threshold is never reached (an injectable
    /// decoy, exactly like the toy target's `queue_healthy`).
    fn health_monitor(&mut self, tag: &str, comp: &str, queue: &str) {
        if !self.rng.chance(0.7) {
            return;
        }
        let mon_class = self.pool.pick(&mut self.rng, MONITORS);
        let mon_fn = self.func(&mon_class, "check");
        let healthy = self.negation(
            &format!("{tag}_healthy"),
            &mon_fn,
            false,
            NegSource::Detector,
        );
        let event = self.pool.reserve("Health");
        self.handler(
            &event,
            Some(comp),
            &mon_fn,
            vec![
                Stmt::Check {
                    point: id(&healthy),
                    value: bin(BinOp::Lt, Expr::Len(id(queue)), int(500)),
                    onerr: vec![Stmt::Flag(format!("{tag}_unhealthy"))],
                },
                sched(&event, dur_s(1)),
            ],
        );
        self.setup.push(SetupTpl::Sched {
            event,
            after_ms: 1_000,
        });
    }

    /// Open-loop arrival handler + the spawn/sched setup entries every
    /// workload shares. Returns the `(n, ival)` variable names.
    fn arrivals(&mut self, comp: &str, queue: &str, tick_event: &str) -> (String, String) {
        let submit_fn = self.func(&format!("{comp}Client"), "submit");
        let submit_event = self.pool.reserve("Submit");
        let n_var = self.pool.reserve(&format!("{queue}_n"));
        let ival_var = self.pool.reserve(&format!("{queue}_ival"));
        self.handler(
            &submit_event,
            Some(comp),
            &submit_fn,
            vec![Stmt::Submit {
                queue: id(queue),
                every: var(&ival_var),
            }],
        );
        self.setup.push(SetupTpl::Spawn {
            event: submit_event,
            count_var: n_var.clone(),
            every_var: ival_var.clone(),
        });
        self.setup.push(SetupTpl::Sched {
            event: tick_event.to_string(),
            after_ms: 100,
        });
        (n_var, ival_var)
    }

    /// Standard volume/recovery/background values for the arrival vars.
    fn arrival_vals(&mut self, n_var: &str, ival_var: &str) -> [VarVals; 2] {
        let n = VarVals {
            name: n_var.to_string(),
            volume: int(self.sample((100, 180)) as i64),
            recovery: int(self.sample((20, 40)) as i64),
            background: int(self.sample((3, 6)) as i64),
        };
        let ival = VarVals {
            name: ival_var.to_string(),
            volume: dur_ms(self.sample((10, 30))),
            recovery: dur_ms(self.sample((40, 80))),
            background: dur_ms(self.sample((150, 300))),
        };
        [n, ival]
    }

    fn bug(
        &mut self,
        tag: &str,
        seed: u64,
        summary: &str,
        labels: &[&str],
        shape: Shape,
    ) -> Planted {
        let bug_id = self.pool.reserve(&format!("gen-{tag}-storm"));
        self.bugs.push(BugDecl {
            id: id(&bug_id),
            jira: format!("GEN-{seed}"),
            summary: summary.to_string(),
            labels: labels.iter().map(|l| id(l)).collect(),
            shape: Some(id(shape.family())),
        });
        Planted {
            bug_id,
            shape,
            labels: labels.iter().map(|l| l.to_string()).collect(),
        }
    }

    fn plant(&mut self, shape: Shape, cfg: &GenConfig, seed: u64) -> CyclePlan {
        match shape {
            Shape::Queue => self.plant_queue(cfg, seed),
            Shape::Retry => self.plant_retry(cfg, seed),
            Shape::Timer => self.plant_timer(cfg, seed),
            Shape::Cross => self.plant_cross(cfg, seed),
        }
    }

    /// Queue family: the toy shape. Delay on the work loop ages items
    /// past the deadline (volume workload); timeouts re-load the same
    /// queue through speculative retries (recovery workload).
    fn plant_queue(&mut self, cfg: &GenConfig, seed: u64) -> CyclePlan {
        let q = self.queue_name();
        let comp = self.pick_component(SERVERS, vec![q.clone()]);
        let tick_fn = self.func(&comp, "tick");
        let proc_fn = self.func(&comp, "processItem");

        let tick_event = self.pool.reserve("Tick");
        let mut body = self.tick_prelude(&q, &tick_fn, &q);
        let work_loop = self.work_loop(&format!("{q}_loop"), &tick_fn);
        let ioe = self.system_throw(&format!("{q}_ioe"), &proc_fn);
        let fanout_var = self.pool.reserve(&format!("{q}_fanout"));
        let maxr_var = self.pool.reserve(&format!("{q}_maxr"));
        let deadline_s = self.sample((8, 16));
        let advance_ms = self.sample((1, 3));
        let busy_ms = self.sample((5, 15)) * 10;
        body.push(self.drain_with_retries(
            &work_loop,
            &q,
            &proc_fn,
            &ioe,
            deadline_s,
            advance_ms,
            &fanout_var,
            &maxr_var,
            &q,
        ));
        let (n_var, ival_var) = self.arrivals(&comp, &q, &tick_event);
        body.push(self.resched(&tick_event, &q, &n_var, busy_ms, 1_000));
        self.handler(&tick_event, Some(&comp), &tick_fn, body);
        self.health_monitor(&q, &comp, &q);

        let [n, ival] = self.arrival_vals(&n_var, &ival_var);
        let fanout = VarVals {
            name: fanout_var,
            volume: int(0),
            recovery: int(self.sample(cfg.fanout) as i64),
            background: int(0),
        };
        let maxr = VarVals {
            name: maxr_var,
            volume: int(0),
            recovery: int(self.sample((1, 3)) as i64),
            background: int(0),
        };
        let truth = self.bug(
            &q,
            seed,
            &format!("{work_loop} delay times out items whose speculative retries re-load {q}"),
            &[&work_loop, &ioe],
            Shape::Queue,
        );
        CyclePlan {
            tag: q,
            vars: vec![n, ival, fanout, maxr],
            horizon_s: self.sample((12, 15)) * 60,
            truth,
        }
    }

    /// Retry family: the retry storm flows through a dedicated retry
    /// buffer whose replay loop feeds the work queue back — the buffer's
    /// own loop is injectable but propagates nothing (it only ever holds
    /// items while the planted cycle is active).
    fn plant_retry(&mut self, cfg: &GenConfig, seed: u64) -> CyclePlan {
        let q = self.queue_name();
        let retry_q = self.pool.reserve(&format!("{q}_retries"));
        let comp = self.pick_component(SERVERS, vec![q.clone(), retry_q.clone()]);
        let tick_fn = self.func(&comp, "tick");
        let proc_fn = self.func(&comp, "processItem");
        let replay_fn = self.func(&comp, "replayRetries");

        let tick_event = self.pool.reserve("Tick");
        let mut body = self.tick_prelude(&q, &tick_fn, &q);
        let work_loop = self.work_loop(&format!("{q}_loop"), &tick_fn);
        let ioe = self.system_throw(&format!("{q}_ioe"), &proc_fn);
        let fanout_var = self.pool.reserve(&format!("{q}_fanout"));
        let maxr_var = self.pool.reserve(&format!("{q}_maxr"));
        let deadline_s = self.sample((8, 16));
        let advance_ms = self.sample((1, 3));
        body.push(self.drain_with_retries(
            &work_loop,
            &q,
            &proc_fn,
            &ioe,
            deadline_s,
            advance_ms,
            &fanout_var,
            &maxr_var,
            &retry_q,
        ));
        let (n_var, ival_var) = self.arrivals(&comp, &q, &tick_event);
        let busy_ms = self.sample((5, 15)) * 10;
        body.push(self.resched(&tick_event, &q, &n_var, busy_ms, 1_000));
        self.handler(&tick_event, Some(&comp), &tick_fn, body);

        // The replay loop: drains the buffer back into the work queue.
        let replay_event = self.pool.reserve("Replay");
        let replay_loop = self.work_loop(&format!("{q}_replay_loop"), &replay_fn);
        self.handler(
            &replay_event,
            Some(&comp),
            &replay_fn,
            vec![
                Stmt::DrainLoop {
                    point: id(&replay_loop),
                    queue: id(&retry_q),
                    body: vec![Stmt::Advance(dur_ms(1)), Stmt::Requeue(id(&q))],
                },
                Stmt::If {
                    cond: not(empty(&retry_q)),
                    then: vec![sched(&replay_event, dur_ms(100))],
                    els: vec![sched(&replay_event, dur_ms(500))],
                },
            ],
        );
        self.setup.push(SetupTpl::Sched {
            event: replay_event,
            after_ms: 150,
        });
        self.health_monitor(&q, &comp, &q);

        let [n, ival] = self.arrival_vals(&n_var, &ival_var);
        let fanout = VarVals {
            name: fanout_var,
            volume: int(0),
            recovery: int(self.sample(cfg.fanout) as i64),
            background: int(0),
        };
        let maxr = VarVals {
            name: maxr_var,
            volume: int(0),
            recovery: int(self.sample((2, 4)) as i64),
            background: int(0),
        };
        let truth = self.bug(
            &q,
            seed,
            &format!(
                "{work_loop} delay times out items whose retry storm replays through {retry_q}"
            ),
            &[&work_loop, &ioe],
            Shape::Retry,
        );
        CyclePlan {
            tag: q,
            vars: vec![n, ival, fanout, maxr],
            horizon_s: self.sample((12, 15)) * 60,
            truth,
        }
    }

    /// Timer family: the kafka-isr shape. A monitor samples the backlog
    /// at tick start; a delayed loop backs the queue up past the lag
    /// threshold (volume workload), and a tripped detector fans recovery
    /// work back into the loop (recovery workload).
    fn plant_timer(&mut self, cfg: &GenConfig, seed: u64) -> CyclePlan {
        let q = self.queue_name();
        let comp = self.pick_component(SERVERS, vec![q.clone()]);
        let tick_fn = self.func(&comp, "tick");
        let mon_class = self.pool.pick(&mut self.rng, MONITORS);
        let mon_fn = self.func(&mon_class, "sampleLag");

        let tick_event = self.pool.reserve("Tick");
        let mut body = self.tick_prelude(&q, &tick_fn, &q);
        let work_loop = self.work_loop(&format!("{q}_loop"), &tick_fn);
        let in_sync = self.negation(&format!("{q}_in_sync"), &mon_fn, false, NegSource::Detector);
        // An injectable throw rides along (like kafka's fetch_ioe): its
        // deadline is effectively unreachable and its failures are
        // swallowed, so it never participates in the planted cycle.
        let ioe = self.system_throw(&format!("{q}_ioe"), &tick_fn);
        let lag_var = self.pool.reserve(&format!("{q}_lag"));
        let refetch_var = self.pool.reserve(&format!("{q}_refetch"));
        let advance_ms = self.sample((1, 3));

        // Monitor first: the backlog that piled up while the previous
        // drain ran is exactly the lag signal.
        body.push(Stmt::Frame {
            func: id(&mon_fn),
            body: vec![Stmt::Check {
                point: id(&in_sync),
                value: bin(BinOp::Lt, Expr::Len(id(&q)), var(&lag_var)),
                onerr: vec![
                    Stmt::Flag(format!("{q}_shrunk")),
                    Stmt::Repeat {
                        count: var(&refetch_var),
                        body: vec![Stmt::Push(id(&q))],
                    },
                ],
            }],
        });
        body.push(Stmt::DrainLoop {
            point: id(&work_loop),
            queue: id(&q),
            body: vec![Stmt::Try {
                body: vec![
                    Stmt::Advance(dur_ms(advance_ms)),
                    Stmt::Guard(id(&ioe)),
                    Stmt::ThrowIf {
                        point: id(&ioe),
                        cond: bin(BinOp::Gt, Expr::AgeItem(Mark::default()), dur_s(120)),
                    },
                ],
                onerr: vec![],
            }],
        });
        let (n_var, ival_var) = self.arrivals(&comp, &q, &tick_event);
        // Unconditional cadence: the monitor must keep sampling.
        body.push(sched(&tick_event, dur_ms(100)));
        self.handler(&tick_event, Some(&comp), &tick_fn, body);

        let [n, ival] = self.arrival_vals(&n_var, &ival_var);
        let lag = {
            let v = int(self.sample((30, 50)) as i64);
            VarVals {
                name: lag_var,
                volume: v.clone(),
                recovery: v.clone(),
                background: v,
            }
        };
        let refetch = VarVals {
            name: refetch_var,
            volume: int(0),
            recovery: int(self.sample(cfg.fanout) as i64),
            background: int(0),
        };
        let truth = self.bug(
            &q,
            seed,
            &format!("a slow {work_loop} trips the {in_sync} detector whose recovery fan-out re-loads it"),
            &[&work_loop, &in_sync],
            Shape::Timer,
        );
        CyclePlan {
            tag: q,
            vars: vec![n, ival, lag, refetch],
            horizon_s: self.sample((12, 15)) * 60,
            truth,
        }
    }

    /// Cross family: dispatcher and worker live in different components;
    /// retries hop through a relay chain of configurable depth before
    /// re-loading the dispatcher queue.
    fn plant_cross(&mut self, cfg: &GenConfig, seed: u64) -> CyclePlan {
        let q = self.queue_name();
        let comp = self.pick_component(SERVERS, vec![q.clone()]);
        let worker_comp = self.pick_component(WORKERS, vec![]);
        let tick_fn = self.func(&comp, "dispatch");
        let proc_fn = self.func(&worker_comp, "process");

        // Relay chain: item retries travel r1 → … → rd → q.
        let depth = self.sample(cfg.depth).max(1) as usize;
        let mut relay_queues = Vec::with_capacity(depth);
        let mut relay_comps = Vec::with_capacity(depth);
        for _ in 0..depth {
            let rq = self.pool.reserve(&format!("{q}_relay"));
            let rc = self.pick_component(RELAYS, vec![rq.clone()]);
            relay_queues.push(rq);
            relay_comps.push(rc);
        }

        let tick_event = self.pool.reserve("Dispatch");
        let mut body = self.tick_prelude(&q, &tick_fn, &q);
        let work_loop = self.work_loop(&format!("{q}_loop"), &tick_fn);
        let ioe = self.system_throw(&format!("{q}_ioe"), &proc_fn);
        let fanout_var = self.pool.reserve(&format!("{q}_fanout"));
        let maxr_var = self.pool.reserve(&format!("{q}_maxr"));
        let deadline_s = self.sample((8, 16));
        let advance_ms = self.sample((1, 3));
        body.push(self.drain_with_retries(
            &work_loop,
            &q,
            &proc_fn,
            &ioe,
            deadline_s,
            advance_ms,
            &fanout_var,
            &maxr_var,
            &relay_queues[0],
        ));
        let (n_var, ival_var) = self.arrivals(&comp, &q, &tick_event);
        let busy_ms = self.sample((5, 15)) * 10;
        body.push(self.resched(&tick_event, &q, &n_var, busy_ms, 1_000));
        self.handler(&tick_event, Some(&comp), &tick_fn, body);

        // One forwarding handler per relay hop.
        for i in 0..depth {
            let next = if i + 1 < depth {
                relay_queues[i + 1].clone()
            } else {
                q.clone()
            };
            let forward_fn = self.func(&relay_comps[i], "forward");
            let relay_loop = self.work_loop(&format!("{}_loop", relay_queues[i]), &forward_fn);
            let relay_event = self.pool.reserve("Relay");
            self.handler(
                &relay_event,
                Some(&relay_comps[i]),
                &forward_fn,
                vec![
                    Stmt::DrainLoop {
                        point: id(&relay_loop),
                        queue: id(&relay_queues[i]),
                        body: vec![Stmt::Advance(dur_ms(1)), Stmt::Requeue(id(&next))],
                    },
                    Stmt::If {
                        cond: not(empty(&relay_queues[i])),
                        then: vec![sched(&relay_event, dur_ms(100))],
                        els: vec![sched(&relay_event, dur_ms(500))],
                    },
                ],
            );
            self.setup.push(SetupTpl::Sched {
                event: relay_event,
                after_ms: 150,
            });
        }
        self.health_monitor(&q, &comp, &q);

        let [n, ival] = self.arrival_vals(&n_var, &ival_var);
        let fanout = VarVals {
            name: fanout_var,
            volume: int(0),
            recovery: int(self.sample(cfg.fanout) as i64),
            background: int(0),
        };
        let maxr = VarVals {
            name: maxr_var,
            volume: int(0),
            recovery: int(self.sample((2, 4)) as i64 + depth as i64),
            background: int(0),
        };
        let truth = self.bug(
            &q,
            seed,
            &format!(
                "{work_loop} delay times out {worker_comp} calls whose retries relay back into {q}"
            ),
            &[&work_loop, &ioe],
            Shape::Cross,
        );
        CyclePlan {
            tag: q,
            vars: vec![n, ival, fanout, maxr],
            horizon_s: self.sample((12, 15)) * 60,
            truth,
        }
    }

    // -------------------------------------------------------------- decoys

    /// A periodic housekeeping component: filtered instrumentation, slow
    /// self-contained queue traffic, no edges into any planted cycle.
    fn decoy_component(&mut self) {
        let has_queue = self.rng.chance(0.7);
        let dq = has_queue.then(|| self.queue_name());
        let comp = self.pick_component(DECOYS, dq.iter().cloned().collect());
        let tick_fn = self.func(&comp, "tick");
        let event = self.pool.reserve("Housekeep");

        let mut body = Vec::new();
        let bound = self.sample((2, 4)) as u32;
        let warm = self.const_loop(&format!("{}_warm", lower(&comp)), &tick_fn, bound);
        body.push(Stmt::ConstLoop {
            point: id(&warm),
            body: vec![],
        });
        if let Some(dq) = &dq {
            if self.rng.chance(0.5) {
                let br = self.branch_point(&format!("{}_pending", lower(&comp)), &tick_fn);
                body.push(Stmt::Branch {
                    point: id(&br),
                    cond: not(empty(dq)),
                });
            }
            body.push(Stmt::Submit {
                queue: id(dq),
                every: dur_ms(self.sample((300, 600))),
            });
            // Occasionally injectable (io) — a delay here backs up only
            // this decoy's private queue, so no causal edges appear.
            let io = self.rng.chance(0.3);
            let label = self.pool.reserve(&format!("{}_loop", lower(&comp)));
            let line = self.next_line();
            self.points.push(PointDecl {
                label: id(&label),
                func: id(&tick_fn),
                line,
                kind: PointKind::Loop {
                    io,
                    parent: None,
                    sibling: None,
                },
            });
            body.push(Stmt::DrainLoop {
                point: id(&label),
                queue: id(dq),
                body: vec![Stmt::Advance(dur_ms(1))],
            });
        }
        if self.rng.chance(0.6) {
            let source =
                [NegSource::Jdk, NegSource::Config, NegSource::Primitive][self.rng.pick(3)];
            let error_when = self.rng.chance(0.5);
            let neg = self.negation(
                &format!("{}_ok", lower(&comp)),
                &tick_fn,
                error_when,
                source,
            );
            let value = match &dq {
                Some(dq) => empty(dq),
                None => Expr::Bool(true, Mark::default()),
            };
            body.push(Stmt::Check {
                point: id(&neg),
                value,
                onerr: vec![],
            });
        }
        body.push(sched(&event, dur_ms(self.sample((500, 1_000)))));
        self.handler(&event, Some(&comp), &tick_fn, body);
        self.setup.push(SetupTpl::Sched {
            event,
            after_ms: 1_000,
        });
    }

    /// Declaration-only decoy points: inventory for the static filters
    /// (and the coverage gate) to remove, never exercised by a handler.
    fn decoy_declarations(&mut self, count: u64) {
        let util_fn = self.func("AdminUtils", "describe");
        for _ in 0..count {
            match self.rng.pick(5) {
                0 => {
                    let label = self.pool.reserve("refl_throw");
                    let line = self.next_line();
                    self.points.push(PointDecl {
                        label: id(&label),
                        func: id(&util_fn),
                        line,
                        kind: PointKind::Throw {
                            class: "InvocationTargetException".to_string(),
                            category: ThrowCategory::Reflection,
                            test_only: false,
                        },
                    });
                }
                1 => {
                    let label = self.pool.reserve("sec_throw");
                    let line = self.next_line();
                    self.points.push(PointDecl {
                        label: id(&label),
                        func: id(&util_fn),
                        line,
                        kind: PointKind::Throw {
                            class: "SecurityException".to_string(),
                            category: ThrowCategory::Security,
                            test_only: false,
                        },
                    });
                }
                2 => {
                    let label = self.pool.reserve("test_throw");
                    let line = self.next_line();
                    self.points.push(PointDecl {
                        label: id(&label),
                        func: id(&util_fn),
                        line,
                        kind: PointKind::Throw {
                            class: "AssertionError".to_string(),
                            category: ThrowCategory::Runtime,
                            test_only: true,
                        },
                    });
                }
                3 => {
                    let label = self.pool.reserve("lib_call");
                    let line = self.next_line();
                    self.points.push(PointDecl {
                        label: id(&label),
                        func: id(&util_fn),
                        line,
                        kind: PointKind::LibCall {
                            class: "SocketException".to_string(),
                        },
                    });
                }
                _ => {
                    let source = [NegSource::Constant, NegSource::Config][self.rng.pick(2)];
                    let error_when = self.rng.chance(0.5);
                    let label = self.pool.reserve("cfg_flag");
                    let line = self.next_line();
                    self.points.push(PointDecl {
                        label: id(&label),
                        func: id(&util_fn),
                        line,
                        kind: PointKind::Negation { error_when, source },
                    });
                }
            }
        }
    }

    // ------------------------------------------------------------ assembly

    fn workload_setup(&self) -> Vec<SetupStmt> {
        self.setup
            .iter()
            .map(|s| match s {
                SetupTpl::Spawn {
                    event,
                    count_var,
                    every_var,
                } => SetupStmt::Spawn {
                    event: id(event),
                    count: var(count_var),
                    every: var(every_var),
                },
                SetupTpl::Sched { event, after_ms } => SetupStmt::Sched {
                    event: id(event),
                    after: dur_ms(*after_ms),
                },
            })
            .collect()
    }

    /// Assembles the workload set: per planted cycle a volume + recovery
    /// pair (the cycle's own values; every other cycle idles in the
    /// background), plus one near-idle probe workload.
    fn finish(self, seed: u64, shape: Shape, plans: Vec<CyclePlan>) -> GeneratedScenario {
        let mut workloads = Vec::new();
        let lets_for = |plans: &[CyclePlan], featured: usize, recovery: bool| {
            let mut lets = Vec::new();
            for (k, plan) in plans.iter().enumerate() {
                for v in &plan.vars {
                    let value = if k != featured {
                        v.background.clone()
                    } else if recovery {
                        v.recovery.clone()
                    } else {
                        v.volume.clone()
                    };
                    lets.push((id(&v.name), value));
                }
            }
            lets
        };
        for (k, plan) in plans.iter().enumerate() {
            workloads.push(Workload {
                name: id(&format!("volume_{}", plan.tag)),
                description: format!(
                    "high-volume {} traffic, retries disabled — exposes the delay propagation",
                    plan.tag
                ),
                lets: lets_for(&plans, k, false),
                horizon: dur_s(plan.horizon_s),
                setup: self.workload_setup(),
            });
            workloads.push(Workload {
                name: id(&format!("recovery_{}", plan.tag)),
                description: format!(
                    "light {} traffic with recovery fan-out — exposes the amplification",
                    plan.tag
                ),
                lets: lets_for(&plans, k, true),
                horizon: dur_s(plan.horizon_s),
                setup: self.workload_setup(),
            });
        }
        workloads.push(Workload {
            name: id("idle_probe"),
            description: "near-idle probe dominated by periodic housekeeping".to_string(),
            lets: lets_for(&plans, usize::MAX, false),
            horizon: dur_s(60),
            setup: self.workload_setup(),
        });

        let truth: Vec<Planted> = plans.into_iter().map(|p| p.truth).collect();
        let spec = ScenarioSpec {
            name: id(&format!("gen-{}-{seed}", shape.family())),
            components: self.components,
            fns: self.fns,
            points: self.points,
            branches: self.branches,
            handlers: self.handlers,
            workloads,
            bugs: self.bugs,
            expected_contention: Vec::new(),
        };
        GeneratedScenario {
            seed,
            shape,
            spec,
            truth,
        }
    }
}

fn lower(s: &str) -> String {
    s.to_ascii_lowercase()
}

pub(crate) fn generate(seed: u64, cfg: &GenConfig) -> GeneratedScenario {
    let shape = cfg.shape.unwrap_or_else(|| Shape::for_seed(seed));
    let mut b = Build::new(seed);
    let mut plans = Vec::new();
    for k in 0..cfg.planted.max(1) {
        let s = if k == 0 {
            shape
        } else {
            Shape::ALL[b.rng.pick(Shape::ALL.len())]
        };
        plans.push(b.plant(s, cfg, seed));
    }
    let n_decoys = b.sample(cfg.decoy_components);
    for _ in 0..n_decoys {
        b.decoy_component();
    }
    let n_points = b.sample(cfg.decoy_points);
    b.decoy_declarations(n_points);
    b.finish(seed, shape, plans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csnake_scenario::{compile, parse_str, print};

    #[test]
    fn every_shape_generates_a_compilable_spec() {
        for (i, shape) in Shape::ALL.into_iter().enumerate() {
            let cfg = GenConfig {
                shape: Some(shape),
                ..GenConfig::default()
            };
            let g = generate(1000 + i as u64, &cfg);
            let text = print(&g.spec);
            let reparsed = parse_str(&text)
                .unwrap_or_else(|e| panic!("{shape}: generated spec does not parse: {e}\n{text}"));
            assert_eq!(reparsed, g.spec, "{shape}: round-trip changed the spec");
            let system = compile(&reparsed)
                .unwrap_or_else(|e| panic!("{shape}: generated spec does not compile: {e}"));
            assert_eq!(system.bug_shape(&g.truth[0].bug_id), Some(shape.family()));
            for label in &g.truth[0].labels {
                assert!(
                    system.point_by_label(label).is_some(),
                    "{shape}: ground-truth label {label} missing from registry"
                );
            }
        }
    }

    #[test]
    fn multiple_planted_cycles_coexist() {
        let cfg = GenConfig {
            planted: 2,
            ..GenConfig::default()
        };
        let g = generate(77, &cfg);
        assert_eq!(g.truth.len(), 2);
        let system = compile(&g.spec).expect("two-cycle spec compiles");
        // 2 volume + 2 recovery + idle.
        assert_eq!(csnake_core::TargetSystem::tests(&system).len(), 5);
        assert_ne!(g.truth[0].bug_id, g.truth[1].bug_id);
    }
}
