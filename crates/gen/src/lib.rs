//! `csnake-gen`: a seeded scenario synthesizer.
//!
//! The `scenarios/` corpus is six hand-written specs; this crate turns the
//! scenario language into an **unbounded evaluation set**. [`generate`]
//! deterministically expands a 64-bit seed into a random
//! [`ScenarioSpec`]: a random component graph (queue/timer/retry-fanout
//! architecture with configurable decoy-node count, fanout and chain
//! depth), one or more *planted* self-sustaining cycles of a known
//! [`Shape`], and a decoy inventory (constant-bound loops, config/JDK/
//! primitive booleans, reflection/security/test-only throws) for the
//! static filters to chew on.
//!
//! Ground truth travels **inside the spec**: every planted cycle is a
//! `bug … labels […] shape <family>` declaration, so an evaluation
//! harness recovers the planted shape from the (re)parsed text alone —
//! nothing has to be re-derived from generator internals. The
//! `gen_eval` binary in `csnake-bench` builds on exactly that to score
//! end-to-end recall per shape family over arbitrary seed ranges.
//!
//! Generated specs are ordinary scenario-language values: emit them
//! through the canonical pretty-printer ([`csnake_scenario::print`]) and
//! the result is parseable, lintable, diffable text — the determinism
//! property (`tests/determinism.rs`) proves that the same seed yields the
//! same text and the same compiled registry fingerprint on every run.
//!
//! # Generate and inspect a scenario
//!
//! ```
//! use csnake_gen::{generate, GenConfig, Shape};
//! use csnake_scenario::{compile, parse_str, print};
//!
//! // Seed 42 with the default configuration; force the timer family.
//! let cfg = GenConfig { shape: Some(Shape::Timer), ..GenConfig::default() };
//! let g = generate(42, &cfg);
//!
//! // The planted ground truth rides in the spec itself.
//! assert_eq!(g.truth.len(), 1);
//! assert_eq!(g.truth[0].shape, Shape::Timer);
//!
//! // Canonical text round-trips through the parser…
//! let text = print(&g.spec);
//! let reparsed = parse_str(&text).expect("generated specs always parse");
//! assert_eq!(reparsed, g.spec);
//!
//! // …and compiles into a runnable target system.
//! let system = compile(&reparsed).expect("generated specs always compile");
//! assert_eq!(system.bug_shape(&g.truth[0].bug_id), Some("timer"));
//! ```
//!
//! Compiled systems plug into the staged `csnake_core::Session` pipeline
//! unchanged; `table4 --target gen:<seed>` and the `scenario_lint --gen`
//! batch mode resolve generated targets by seed via [`by_name`].

mod build;
mod names;

use csnake_core::{CsnakeError, TargetSystem};
use csnake_scenario::ast::ScenarioSpec;
use csnake_scenario::{compile, ScenarioSystem};

/// The planted self-sustaining cycle families the synthesizer knows.
///
/// Every family follows a propagation pattern proven end-to-end on the
/// hand-written corpus, embedded in a randomized topology:
///
/// * [`Queue`](Shape::Queue) — *delay amplification* (the toy-target
///   shape): a delayed work loop ages queued items past their deadline;
///   the timeouts' speculative retries re-load the same loop.
/// * [`Retry`](Shape::Retry) — *retry storm*: timeouts fan out into a
///   dedicated retry buffer whose replay loop feeds the work queue back.
/// * [`Timer`](Shape::Timer) — *negation cycle* (the kafka-isr shape): a
///   periodic monitor trips a backlog detector whose recovery fan-out
///   re-loads the loop that caused the backlog.
/// * [`Cross`](Shape::Cross) — *cross-component chain*: the delayed
///   dispatcher loop and the throwing worker live in different
///   components, with retries hopping through a relay chain of
///   configurable depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Shape {
    /// Delay-amplification cycle inside one component (queue family).
    Queue,
    /// Retry-storm cycle through a retry buffer (retry family).
    Retry,
    /// Negation cycle driven by a periodic backlog monitor (timer family).
    Timer,
    /// Cross-component chain with a relay hop per depth unit.
    Cross,
}

impl Shape {
    /// All families, in the order `for_seed` cycles through them.
    pub const ALL: [Shape; 4] = [Shape::Queue, Shape::Retry, Shape::Timer, Shape::Cross];

    /// The stable family name recorded in the spec's `shape` sidecar.
    pub fn family(self) -> &'static str {
        match self {
            Shape::Queue => "queue",
            Shape::Retry => "retry",
            Shape::Timer => "timer",
            Shape::Cross => "cross",
        }
    }

    /// Parses a family name back into a shape.
    pub fn from_family(name: &str) -> Option<Shape> {
        Shape::ALL.into_iter().find(|s| s.family() == name)
    }

    /// The family a bare seed maps to (round-robin over [`Shape::ALL`]),
    /// used when [`GenConfig::shape`] is `None` — so a plain seed sweep
    /// covers every family evenly.
    pub fn for_seed(seed: u64) -> Shape {
        Shape::ALL[(seed % Shape::ALL.len() as u64) as usize]
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.family())
    }
}

/// Synthesizer knobs. Every range is inclusive and sampled per spec from
/// the seed, so two generations with the same `(seed, config)` are
/// identical.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Planted cycle family; `None` derives it from the seed
    /// ([`Shape::for_seed`]).
    pub shape: Option<Shape>,
    /// Number of planted cycles. Each gets its own component cluster,
    /// workload pair and `bug … shape` declaration. Campaigns over
    /// multi-cycle specs should scale the experiment budget with the
    /// workload count: with two cycles the `(fault, test)` space is
    /// `5·|F|`, so the paper's minimum `4·|F|` budget no longer covers
    /// it (6·|F| does — see `tests/gen_detection.rs`).
    pub planted: usize,
    /// Decoy components (each a timer-driven node with its own queue
    /// and filtered instrumentation), sampled from this range.
    pub decoy_components: (u64, u64),
    /// Declaration-only decoy fault points (reflection/security/test-only
    /// throws, libcalls, config/constant booleans), sampled per spec.
    pub decoy_points: (u64, u64),
    /// Retry/refetch fan-out of the planted amplification edge.
    pub fanout: (u64, u64),
    /// Relay-chain depth of the [`Shape::Cross`] family.
    pub depth: (u64, u64),
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            shape: None,
            planted: 1,
            decoy_components: (1, 2),
            decoy_points: (2, 5),
            fanout: (4, 8),
            depth: (1, 2),
        }
    }
}

/// One planted cycle's ground truth, mirrored from the spec's `bug`
/// declaration (the spec remains the source of truth).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Planted {
    /// The `bug` declaration id.
    pub bug_id: String,
    /// The planted family.
    pub shape: Shape,
    /// Fault-point labels forming the cycle.
    pub labels: Vec<String>,
}

/// A generated scenario: the spec plus convenience ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedScenario {
    /// The seed it was expanded from.
    pub seed: u64,
    /// The primary planted family.
    pub shape: Shape,
    /// The generated spec (print it with [`csnake_scenario::print`]).
    pub spec: ScenarioSpec,
    /// Ground truth per planted cycle, in `spec.bugs` order.
    pub truth: Vec<Planted>,
}

/// Deterministically expands a seed into a scenario with planted,
/// ground-truthed self-sustaining cycles. Same `(seed, cfg)` → identical
/// spec, identical canonical text, identical compiled registry.
pub fn generate(seed: u64, cfg: &GenConfig) -> GeneratedScenario {
    build::generate(seed, cfg)
}

/// Reads the planted ground truth back out of a spec's `bug … shape`
/// sidecars — the inverse of what [`generate`] plants, usable on reparsed
/// text. Bugs without a recognized shape sidecar are skipped.
pub fn planted_truth(spec: &ScenarioSpec) -> Vec<Planted> {
    spec.bugs
        .iter()
        .filter_map(|b| {
            let shape = Shape::from_family(&b.shape.as_ref()?.name)?;
            Some(Planted {
                bug_id: b.id.name.clone(),
                shape,
                labels: b.labels.iter().map(|l| l.name.clone()).collect(),
            })
        })
        .collect()
}

/// The pseudo-target prefix accepted by [`by_name`]: `gen:<seed>`.
pub const GEN_TARGET_PREFIX: &str = "gen:";

/// Compiles the generated spec for `gen:<seed>` with the default
/// configuration.
pub fn generated_system(seed: u64) -> Result<ScenarioSystem, CsnakeError> {
    let g = generate(seed, &GenConfig::default());
    compile(&g.spec)
        .map_err(|e| CsnakeError::InvalidTarget(format!("generated spec gen:{seed}: {e}")))
}

/// Generator-aware target resolution: `gen:<seed>` pseudo-names expand a
/// generated scenario on the fly; everything else goes through
/// [`csnake_scenario::by_name`] (builtins, then the scenario corpus).
/// Unknown names get the scenario resolver's sorted known-target list
/// with the `gen:<seed>` convention documented alongside.
pub fn by_name(name: &str) -> Result<Box<dyn TargetSystem>, CsnakeError> {
    if let Some(rest) = name.strip_prefix(GEN_TARGET_PREFIX) {
        let seed: u64 = rest.parse().map_err(|_| {
            CsnakeError::InvalidTarget(format!(
                "invalid generated-target name {name:?}: expected gen:<seed> \
                 with a decimal 64-bit seed (e.g. gen:42)"
            ))
        })?;
        return Ok(Box::new(generated_system(seed)?));
    }
    csnake_scenario::by_name(name).map_err(|e| match e {
        CsnakeError::InvalidTarget(msg) if msg.starts_with("unknown target") => {
            CsnakeError::InvalidTarget(format!(
                "{msg}, or gen:<seed> for a generated scenario (e.g. gen:42)"
            ))
        }
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_cycle_through_every_family() {
        let fams: Vec<&str> = (0..4).map(|s| Shape::for_seed(s).family()).collect();
        assert_eq!(fams, vec!["queue", "retry", "timer", "cross"]);
        assert_eq!(Shape::from_family("timer"), Some(Shape::Timer));
        assert_eq!(Shape::from_family("nope"), None);
    }

    #[test]
    fn truth_is_recoverable_from_the_spec_alone() {
        let g = generate(7, &GenConfig::default());
        assert!(!g.truth.is_empty());
        assert_eq!(planted_truth(&g.spec), g.truth);
    }

    #[test]
    fn gen_pseudo_targets_resolve_and_bad_seeds_are_typed() {
        let t = by_name("gen:5").expect("gen:5 resolves");
        assert!(t.name().starts_with("gen-"));
        let msg = match by_name("gen:not-a-seed") {
            Err(e) => e.to_string(),
            Ok(t) => panic!("unexpectedly resolved {:?}", t.name()),
        };
        assert!(msg.contains("gen:<seed>"), "{msg}");
    }

    #[test]
    fn unknown_targets_document_the_gen_convention_in_sorted_order() {
        let msg = match by_name("no-such-system") {
            Err(e) => e.to_string(),
            Ok(t) => panic!("unexpectedly resolved {:?}", t.name()),
        };
        assert!(msg.contains("gen:<seed>"), "{msg}");
        // The known-name list is sorted (satellite of the same PR: the
        // scenario resolver's list is deterministic, not directory-order).
        let list = msg
            .split("known targets: ")
            .nth(1)
            .and_then(|rest| rest.split(", or gen:").next())
            .expect("message lists known targets");
        let names: Vec<&str> = list.split(", ").collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "{msg}");
    }
}
