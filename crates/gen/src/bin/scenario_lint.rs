//! Lints the scenario corpus (and generated batches), and optionally
//! smoke-runs one campaign.
//!
//! ```sh
//! scenario_lint [--dir <scenarios-dir>]        # parse + validate all specs
//! scenario_lint --campaign <name>              # + run a small staged campaign
//! scenario_lint --gen <seed> [--count <n>]     # + round-trip a generated batch
//! ```
//!
//! Linting parses every `*.csnake-scn` file, runs full registry
//! validation (compilation), and checks the pretty-printer round-trip —
//! the same invariant the property tests rely on. The `--gen` mode runs
//! the identical checks over `--count` specs synthesized from consecutive
//! seeds (`csnake_gen::generate`), so CI exercises the generator's
//! print → parse → compile contract alongside the hand-written corpus.
//! The campaign mode resolves a target through the generator-aware
//! [`csnake_gen::by_name`] (builtins, corpus, `gen:<seed>`) and drives
//! the staged `Session` pipeline end to end with a reduced configuration,
//! requiring every declared ground-truth bug to be detected.
//!
//! The bin lives in `csnake-gen` (it grew out of `csnake-scenario`)
//! because the generator depends on the scenario crate, not the other
//! way around.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use csnake_core::{DetectConfig, ProgressCollector, Session, TargetSystem, ThreePhase};
use csnake_gen::{by_name, generate, GenConfig};
use csnake_scenario::{compile, corpus_dir, loader, parse_str, print};

fn lint(dir: &Path) -> Result<(), String> {
    let specs = loader::corpus_specs_in(dir).map_err(|e| e.to_string())?;
    if specs.is_empty() {
        return Err(format!("no *.csnake-scn files under {}", dir.display()));
    }
    println!("| scenario | points | branches | handlers | workloads | bugs |");
    println!("|---|---|---|---|---|---|");
    for (name, (path, spec)) in &specs {
        let system = compile(spec).map_err(|e| e.clone_with(path).to_string())?;
        // Canonical round-trip: print -> reparse must be the identical spec.
        let printed = print(spec);
        let reparsed = parse_str(&printed)
            .map_err(|e| format!("{}: reprint does not reparse: {e}", path.display()))?;
        if &reparsed != spec {
            return Err(format!(
                "{}: pretty-print round-trip changed the spec",
                path.display()
            ));
        }
        let reg = system.registry();
        println!(
            "| {name} | {} | {} | {} | {} | {} |",
            reg.points().len(),
            reg.branches().len(),
            spec.handlers.len(),
            spec.workloads.len(),
            spec.bugs.len(),
        );
    }
    println!("{} scenario spec(s) OK", specs.len());
    Ok(())
}

/// Round-trips `count` generated specs from consecutive seeds through the
/// same print → parse → compile pipeline the corpus lint runs.
fn lint_generated(seed: u64, count: u64) -> Result<(), String> {
    let cfg = GenConfig::default();
    for s in seed..seed.saturating_add(count) {
        let g = generate(s, &cfg);
        let printed = print(&g.spec);
        let reparsed = parse_str(&printed)
            .map_err(|e| format!("gen:{s}: generated spec does not reparse: {e}"))?;
        if reparsed != g.spec {
            return Err(format!("gen:{s}: pretty-print round-trip changed the spec"));
        }
        let system =
            compile(&reparsed).map_err(|e| format!("gen:{s}: generated spec rejected: {e}"))?;
        for planted in &g.truth {
            if system.bug_shape(&planted.bug_id) != Some(planted.shape.family()) {
                return Err(format!(
                    "gen:{s}: ground-truth shape sidecar lost for {}",
                    planted.bug_id
                ));
            }
        }
        println!(
            "gen:{s} [{}] OK — {} points, {} workloads, {} planted cycle(s)",
            g.shape,
            system.registry().points().len(),
            g.spec.workloads.len(),
            g.truth.len(),
        );
    }
    println!(
        "{count} generated spec(s) OK (seeds {seed}..{})",
        seed.saturating_add(count)
    );
    Ok(())
}

/// Reduced-size end-to-end campaign used by CI smoke runs.
fn smoke_campaign(name: &str) -> Result<(), String> {
    let target = by_name(name).map_err(|e| e.to_string())?;
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    let progress = Arc::new(ProgressCollector::new());
    let mut session = Session::builder(&*target)
        .config(cfg.clone())
        .observer(progress.clone())
        .build()
        .map_err(|e| e.to_string())?;
    let report = session
        .run_to_report(&ThreePhase::new(cfg.alloc.clone()))
        .map_err(|e| e.to_string())?;
    println!(
        "[{name}] {} cycles, {} clusters, {} TP; {} experiments",
        report.cycles.len(),
        report.clusters.len(),
        report.tp_clusters(),
        report.experiments_run,
    );
    if !report.undetected.is_empty() {
        return Err(format!(
            "[{name}] seeded bugs undetected: {:?}",
            report.undetected.iter().map(|b| b.id).collect::<Vec<_>>()
        ));
    }
    let seen = progress.snapshot();
    println!(
        "[{name}] observer: {} experiments, {} edges, {} cycles",
        seen.experiments, seen.edges, seen.cycles
    );
    Ok(())
}

trait CloneWith {
    fn clone_with(self, path: &std::path::Path) -> Self;
}

impl CloneWith for csnake_scenario::ScenarioError {
    fn clone_with(self, path: &std::path::Path) -> Self {
        if self.path.is_some() {
            self
        } else {
            self.with_path(path)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dir = corpus_dir();
    let mut campaign: Option<String> = None;
    let mut gen_seed: Option<u64> = None;
    let mut gen_count: u64 = 4;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dir" => {
                i += 1;
                dir = PathBuf::from(args.get(i).expect("--dir needs a path"));
            }
            "--campaign" => {
                i += 1;
                campaign = Some(args.get(i).expect("--campaign needs a name").clone());
            }
            "--gen" => {
                i += 1;
                let seed = args.get(i).expect("--gen needs a seed");
                gen_seed = Some(seed.parse().expect("--gen seed must be a u64"));
            }
            "--count" => {
                i += 1;
                let n = args.get(i).expect("--count needs a number");
                gen_count = n.parse().expect("--count must be a u64");
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    if let Err(e) = lint(&dir) {
        eprintln!("scenario lint failed: {e}");
        return ExitCode::FAILURE;
    }
    if let Some(seed) = gen_seed {
        if let Err(e) = lint_generated(seed, gen_count) {
            eprintln!("generated-spec lint failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(name) = campaign {
        if let Err(e) = smoke_campaign(&name) {
            eprintln!("scenario smoke campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
