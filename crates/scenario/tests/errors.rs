//! Error-span assertions for malformed scenario inputs.
//!
//! Every diagnostic must carry the line/column of the offending token or
//! name — these tests pin both the message and the exact span for the
//! representative failure classes (lexical, syntactic, structural,
//! semantic, include resolution).

use csnake_scenario::{compile, load_file, parse_str, Span};

/// Asserts the input fails with a message containing `needle` at `span`.
fn assert_error(src: &str, needle: &str, line: u32, col: u32) {
    let err = match parse_str(src) {
        Err(e) => e,
        Ok(spec) => match compile(&spec) {
            Err(e) => e,
            Ok(_) => panic!("input unexpectedly valid:\n{src}"),
        },
    };
    assert!(
        err.message.contains(needle),
        "expected message containing {needle:?}, got: {err}"
    );
    assert_eq!(
        err.span,
        Some(Span { line, col }),
        "wrong span for {needle:?}: {err}"
    );
}

/// A valid scaffold the semantic cases mutate. Line numbers are part of
/// the test contract: `scenario` is line 1, each subsequent non-empty
/// line as numbered in the raw string below.
const OK: &str = "\
scenario demo
component S { queue q }
fn f = \"X.f\"
loop l at f:1 io
throw t at f:2 class \"IOE\" category system
negation n at f:3 error_when true source detector
branchpoint br at f:4
handler T in S fn f {
  loop l drain q { guard t }
  sched T after 1s
}
workload w \"d\" {
  let x = 1
  horizon 10s
  sched T after 1ms
}
bug b-1 jira \"J\" summary \"s\" labels [l, t]
";

#[test]
fn baseline_scaffold_is_valid() {
    compile(&parse_str(OK).unwrap()).unwrap();
}

// --- lexical ---------------------------------------------------------------

#[test]
fn unknown_duration_suffix() {
    let src = OK.replace("horizon 10s", "horizon 10min");
    assert_error(&src, "unknown duration suffix `min`", 14, 11);
}

#[test]
fn string_hitting_a_line_break() {
    let src = OK.replace("fn f = \"X.f\"", "fn f = \"X.f");
    assert_error(&src, "string literal spans a line break", 3, 8);
}

#[test]
fn unterminated_string_at_eof() {
    let src = format!("{}expected_contention [l] # tail\nfn g = \"dangling", OK);
    assert_error(&src, "unterminated string", 19, 8);
}

#[test]
fn duration_literal_overflow() {
    let src = OK.replace("horizon 10s", "horizon 99999999999999999s");
    assert_error(
        &src,
        "duration literal `99999999999999999` overflows",
        14,
        11,
    );
}

#[test]
fn run_state_in_workload_scope() {
    let src = OK.replace("horizon 10s", "horizon now + 10s");
    assert_error(&src, "`now` is not available in workload scope", 14, 11);
}

#[test]
fn queue_state_in_workload_scope() {
    let src = OK.replace("sched T after 1ms", "spawn T count len(q) every 1ms");
    // The span anchors on the queue argument inside `len(q)`.
    assert_error(&src, "`len` is not available in workload scope", 15, 21);
}

#[test]
fn unexpected_character() {
    let src = OK.replace("let x = 1", "let x = @");
    assert_error(&src, "unexpected character `@`", 13, 11);
}

// --- syntactic -------------------------------------------------------------

#[test]
fn unknown_statement_keyword() {
    let src = OK.replace("  sched T after 1s", "  yield T");
    assert_error(&src, "unknown statement `yield`", 10, 3);
}

#[test]
fn missing_workload_horizon() {
    let src = OK.replace("  horizon 10s\n", "");
    assert_error(&src, "declares no horizon", 12, 10);
}

#[test]
fn workload_let_requires_a_literal() {
    let src = OK.replace("let x = 1", "let x = len(q)");
    assert_error(&src, "integer or duration literal", 13, 3);
}

// --- structural ------------------------------------------------------------

#[test]
fn missing_workload_section() {
    let src = "scenario empty-demo\nfn f = \"X.f\"\nloop l at f:1\nhandler T fn f { }\n";
    assert_error(src, "declares no workloads", 1, 10);
}

#[test]
fn duplicate_point_id() {
    let src = OK.replace(
        "negation n at f:3 error_when true source detector",
        "negation t at f:3 error_when true source detector",
    );
    assert_error(&src, "duplicate point id `t`", 6, 10);
}

#[test]
fn duplicate_queue_across_components() {
    let src = OK.replace(
        "component S { queue q }",
        "component S { queue q }\ncomponent R { queue q }",
    );
    assert_error(&src, "duplicate queue `q`", 3, 21);
}

// --- name resolution -------------------------------------------------------

#[test]
fn unknown_component_in_handler() {
    let src = OK.replace("handler T in S fn f {", "handler T in Missing fn f {");
    assert_error(&src, "unknown component `Missing`", 8, 14);
}

#[test]
fn unknown_queue_in_drain() {
    let src = OK.replace("loop l drain q {", "loop l drain ghosts {");
    assert_error(&src, "unknown queue `ghosts`", 9, 16);
}

#[test]
fn unknown_fault_point_in_bug_labels() {
    let src = OK.replace("labels [l, t]", "labels [l, vanished]");
    assert_error(&src, "unknown fault point `vanished`", 17, 41);
}

#[test]
fn unknown_event_in_sched() {
    let src = OK.replace("  sched T after 1s", "  sched Ghost after 1s");
    assert_error(&src, "unknown event `Ghost`", 10, 9);
}

#[test]
fn unbound_variable() {
    let src = OK.replace("guard t", "repeat $ghost { }");
    assert_error(&src, "unknown variable `$ghost`", 9, 27);
}

// --- kind and type checking ------------------------------------------------

#[test]
fn guard_requires_a_throw_point() {
    let src = OK.replace("guard t", "guard n");
    assert_error(&src, "requires a throw/libcall point", 9, 26);
}

#[test]
fn item_context_is_enforced() {
    let src = OK.replace("  sched T after 1s", "  advance age(item)");
    assert_error(&src, "only available inside a drain loop", 10, 11);
}

#[test]
fn type_mismatch_has_a_span() {
    let src = OK.replace("sched T after 1s", "sched T after 5");
    assert_error(&src, "expected dur, found int", 10, 17);
}

// --- include resolution ----------------------------------------------------

#[test]
fn cyclic_include_is_rejected_with_the_chain() {
    let dir = std::env::temp_dir().join(format!("csnake-errors-cycle-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("self.csnake-scn"),
        "scenario s\ninclude \"self.csnake-scn\"\n",
    )
    .unwrap();
    let err = load_file(dir.join("self.csnake-scn"))
        .map(|_| ())
        .unwrap_err();
    assert!(err.message.contains("cyclic include"), "{err}");
    assert!(err.message.contains("self.csnake-scn"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
