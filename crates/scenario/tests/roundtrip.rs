//! Property: pretty-print → reparse is the identity on the AST.
//!
//! Specs are generated structurally from a seed — random instrumentation
//! inventories, random statement/expression trees (the parser does not
//! validate semantics, so the generator exercises the full grammar
//! surface, including shapes the compiler would reject), random
//! workloads, strings with escapes. For every generated spec,
//! `parse_str(&print(spec))` must return an identical spec, and printing
//! must be a fixed point.

use csnake_scenario::ast::*;
use csnake_scenario::{parse_str, print};
use proptest::prelude::*;

/// Small deterministic generator state (split from the proptest seed so
/// the spec construction can draw as many values as it needs).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn range(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.range(100) < percent
    }
}

fn ident(prefix: &str, i: u64) -> Ident {
    Ident::new(format!("{prefix}{i}"))
}

const STRINGS: &[&str] = &[
    "plain",
    "with space and punctuation!",
    "quo\"ted",
    "back\\slash",
    "unicode — héllo",
    "",
];

fn string(g: &mut Gen) -> String {
    STRINGS[g.range(STRINGS.len() as u64) as usize].to_string()
}

fn duration(g: &mut Gen) -> u64 {
    match g.range(4) {
        0 => g.range(1_000),             // sub-millisecond
        1 => g.range(1_000) * 1_000,     // whole milliseconds
        2 => g.range(1_000) * 1_000_000, // whole seconds
        _ => g.range(1_000_000_000_000), // arbitrary micros
    }
}

fn expr(g: &mut Gen, depth: u64) -> Expr {
    let leaf = depth == 0 || g.chance(40);
    if leaf {
        match g.range(9) {
            0 => Expr::Int(g.range(10_000) as i64 - 5_000, Mark::default()),
            1 => Expr::Dur(duration(g), Mark::default()),
            2 => Expr::Bool(g.chance(50), Mark::default()),
            3 => Expr::Var(ident("v", g.range(3))),
            4 => Expr::Len(ident("q", g.range(3))),
            5 => Expr::Empty(ident("q", g.range(3))),
            6 => Expr::Submitted(ident("q", g.range(3))),
            7 => Expr::AgeItem(Mark::default()),
            _ => Expr::Now(Mark::default()),
        }
    } else {
        match g.range(13) {
            0 => Expr::Not(Box::new(expr(g, depth - 1))),
            1 => Expr::RetriesItem(Mark::default()),
            n => {
                let op = [
                    BinOp::Or,
                    BinOp::And,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Gt,
                    BinOp::Ge,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                ][(n - 2) as usize];
                Expr::Bin {
                    op,
                    lhs: Box::new(expr(g, depth - 1)),
                    rhs: Box::new(expr(g, depth - 1)),
                }
            }
        }
    }
}

fn block(g: &mut Gen, depth: u64) -> Vec<Stmt> {
    let n = if depth == 0 { 0 } else { g.range(4) };
    (0..n).map(|_| stmt(g, depth)).collect()
}

fn stmt(g: &mut Gen, depth: u64) -> Stmt {
    match g.range(16) {
        0 => Stmt::Advance(expr(g, 1)),
        1 => Stmt::Frame {
            func: ident("f", g.range(3)),
            body: block(g, depth - 1),
        },
        2 => Stmt::Branch {
            point: ident("br", g.range(3)),
            cond: expr(g, 2),
        },
        3 => Stmt::Guard(ident("tp", g.range(3))),
        4 => Stmt::ThrowIf {
            point: ident("tp", g.range(3)),
            cond: expr(g, 2),
        },
        5 => Stmt::Check {
            point: ident("np", g.range(3)),
            value: expr(g, 2),
            onerr: block(g, depth - 1),
        },
        6 => Stmt::Flag(string(g)),
        7 => Stmt::ConstLoop {
            point: ident("cl", g.range(2)),
            body: block(g, depth - 1),
        },
        8 => Stmt::DrainLoop {
            point: ident("lp", g.range(3)),
            queue: ident("q", g.range(3)),
            body: block(g, depth - 1),
        },
        9 => Stmt::Submit {
            queue: ident("q", g.range(3)),
            every: expr(g, 1),
        },
        10 => Stmt::Push(ident("q", g.range(3))),
        11 => Stmt::Requeue(ident("q", g.range(3))),
        12 => Stmt::Repeat {
            count: expr(g, 1),
            body: block(g, depth - 1),
        },
        13 => Stmt::If {
            cond: expr(g, 2),
            then: block(g, depth - 1),
            els: block(g, depth - 1),
        },
        14 => Stmt::Try {
            body: block(g, depth - 1),
            onerr: block(g, depth - 1),
        },
        _ => Stmt::Sched {
            event: ident("H", g.range(3)),
            after: expr(g, 1),
        },
    }
}

fn point(g: &mut Gen, i: u64) -> PointDecl {
    let kind = match g.range(5) {
        0 => PointKind::Loop {
            io: g.chance(50),
            parent: g.chance(30).then(|| ident("lp", g.range(3))),
            sibling: g.chance(30).then(|| ident("lp", g.range(3))),
        },
        1 => PointKind::ConstLoop {
            bound: g.range(9) as u32 + 1,
        },
        2 => PointKind::Throw {
            class: string(g),
            category: [
                ThrowCategory::System,
                ThrowCategory::Runtime,
                ThrowCategory::Reflection,
                ThrowCategory::Security,
            ][g.range(4) as usize],
            test_only: g.chance(25),
        },
        3 => PointKind::LibCall { class: string(g) },
        _ => PointKind::Negation {
            error_when: g.chance(50),
            source: [
                NegSource::Detector,
                NegSource::Jdk,
                NegSource::Config,
                NegSource::Constant,
                NegSource::Primitive,
            ][g.range(5) as usize],
        },
    };
    let prefix = match kind {
        PointKind::Loop { .. } => "lp",
        PointKind::ConstLoop { .. } => "cl",
        PointKind::Throw { .. } | PointKind::LibCall { .. } => "tp",
        PointKind::Negation { .. } => "np",
    };
    PointDecl {
        label: ident(prefix, i),
        func: ident("f", g.range(3)),
        line: g.range(5_000) as u32,
        kind,
    }
}

fn workload(g: &mut Gen, i: u64) -> Workload {
    let lets = (0..g.range(4))
        .map(|j| {
            let value = if g.chance(50) {
                Expr::Int(g.range(500) as i64, Mark::default())
            } else {
                Expr::Dur(duration(g), Mark::default())
            };
            (ident("v", j), value)
        })
        .collect();
    let setup = (0..g.range(3))
        .map(|_| match g.range(3) {
            0 => SetupStmt::Spawn {
                event: ident("H", g.range(3)),
                count: expr(g, 1),
                every: expr(g, 1),
            },
            1 => SetupStmt::Sched {
                event: ident("H", g.range(3)),
                after: expr(g, 1),
            },
            _ => SetupStmt::Arrive {
                event: ident("H", g.range(3)),
                process: match g.range(3) {
                    0 => ArrivalSpec::Poisson { rate: expr(g, 1) },
                    1 => ArrivalSpec::Bursty {
                        rate: expr(g, 1),
                        on: expr(g, 1),
                        off: expr(g, 1),
                    },
                    _ => ArrivalSpec::Diurnal {
                        low: expr(g, 1),
                        high: expr(g, 1),
                        period: expr(g, 1),
                    },
                },
                count: expr(g, 1),
            },
        })
        .collect();
    Workload {
        name: ident("w", i),
        description: string(g),
        lets,
        horizon: expr(g, 1),
        setup,
    }
}

fn spec_from_seed(seed: u64) -> ScenarioSpec {
    let mut g = Gen(seed | 1);
    let components = (0..1 + g.range(2))
        .map(|i| Component {
            name: ident("Comp", i),
            queues: (0..g.range(3)).map(|j| ident("q", i * 10 + j)).collect(),
        })
        .collect();
    let fns = (0..1 + g.range(3))
        .map(|i| FnDecl {
            alias: ident("f", i),
            path: format!("Class{i}.method{}", g.range(9)),
        })
        .collect();
    let points = (0..1 + g.range(6)).map(|i| point(&mut g, i)).collect();
    let branches = (0..g.range(3))
        .map(|i| BranchDecl {
            label: ident("br", i),
            func: ident("f", g.range(3)),
            line: g.range(5_000) as u32,
        })
        .collect();
    let handlers = (0..1 + g.range(3))
        .map(|i| Handler {
            event: ident("H", i),
            component: g.chance(50).then(|| ident("Comp", g.range(2))),
            func: ident("f", g.range(3)),
            body: block(&mut g, 3),
        })
        .collect();
    let workloads = (0..1 + g.range(3)).map(|i| workload(&mut g, i)).collect();
    let bugs = (0..g.range(3))
        .map(|i| BugDecl {
            id: ident("bug-", i),
            jira: string(&mut g),
            summary: string(&mut g),
            labels: (0..1 + g.range(3)).map(|j| ident("lp", j)).collect(),
            shape: g.chance(50).then(|| ident("shape", g.range(4))),
        })
        .collect();
    let expected_contention = (0..g.range(3)).map(|j| ident("lp", j)).collect();
    ScenarioSpec {
        name: Ident::new(format!("gen-{}", seed % 1_000)),
        components,
        fns,
        points,
        branches,
        handlers,
        workloads,
        bugs,
        expected_contention,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn print_then_parse_is_identity(seed in 0u64..u64::MAX) {
        let spec = spec_from_seed(seed);
        let printed = print(&spec);
        let reparsed = parse_str(&printed)
            .unwrap_or_else(|e| panic!("seed {seed}: reparse failed: {e}\n{printed}"));
        prop_assert_eq!(&reparsed, &spec, "seed {}:\n{}", seed, printed);
        // Printing the reparsed spec is a fixed point.
        prop_assert_eq!(print(&reparsed), printed);
    }
}
