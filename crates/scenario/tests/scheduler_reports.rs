//! Campaign-level scheduler equivalence: the event wheel must be a
//! drop-in replacement for the retained heap scheduler, end to end.
//!
//! The sim crate proves wheel ≡ heap on random timer programs
//! (`scheduler_equivalence.rs`); this test proves it where it matters —
//! every scenario in the bundled corpus runs a full detection campaign
//! under each scheduler and the `DetectionReport`s must be
//! Debug-identical.
//!
//! One `#[test]` on purpose: the scheduler default is a process-global
//! switch, so the two campaigns per target must run sequentially in a
//! binary nothing else shares.

use csnake_core::{DetectConfig, Session, ThreePhase};
use csnake_scenario::{by_name, corpus_specs};
use csnake_sim::scheduler::{self, SchedulerKind};

/// Small-but-real campaign config (the chaos-smoke settings).
fn fast_config() -> DetectConfig {
    let mut cfg = DetectConfig::default();
    cfg.driver.reps = 3;
    cfg.driver.delay_values_ms = vec![800];
    cfg.driver.retry.backoff_base_ms = 1;
    cfg
}

fn campaign_report(name: &str, kind: SchedulerKind) -> String {
    scheduler::set_default(kind);
    let target = by_name(name).expect("corpus target resolves");
    let mut session = Session::builder(target.as_ref())
        .config(fast_config())
        .build()
        .expect("session builds");
    let report = format!(
        "{:?}",
        session
            .run_to_report(&ThreePhase::default())
            .unwrap_or_else(|e| panic!("{name} campaign under {kind:?}: {e}"))
    );
    scheduler::set_default(SchedulerKind::Wheel);
    report
}

#[test]
fn corpus_campaign_reports_identical_under_wheel_and_heap() {
    let names: Vec<String> = corpus_specs()
        .expect("corpus parses")
        .keys()
        .cloned()
        .collect();
    assert!(
        names.len() >= 4,
        "corpus unexpectedly small: {names:?} — equivalence sweep would be vacuous"
    );
    for name in &names {
        let wheel = campaign_report(name, SchedulerKind::Wheel);
        let heap = campaign_report(name, SchedulerKind::Heap);
        assert_eq!(
            wheel, heap,
            "{name}: DetectionReport diverges between wheel and heap schedulers"
        );
    }
}
