//! Recursive-descent parser for the scenario language.
//!
//! Produces the [`crate::ast`] types with a span on every name. Keywords
//! are contextual: the lexer only knows identifiers, so `loop` begins a
//! point declaration at top level and a drain-loop statement inside a
//! handler body.

use crate::ast::*;
use crate::lexer::{lex, Tok, Token};
use crate::ScenarioError;

/// Parses a source string into its top-level items (including `include`
/// directives, which the loader resolves). Most callers want
/// [`crate::parse_str`] or [`crate::load_file`] instead.
pub fn parse_items(src: &str) -> Result<Vec<Item>, ScenarioError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut items = Vec::new();
    while !p.at_eof() {
        items.push(p.item()?);
    }
    Ok(items)
}

/// Assembles a flattened item stream into a [`ScenarioSpec`].
///
/// The stream must start with exactly one `scenario <name>` header;
/// everything else may appear in any order (declaration order is
/// preserved per section, which fixes the dense id assignment).
pub fn assemble(items: Vec<Item>) -> Result<ScenarioSpec, ScenarioError> {
    let mut items = items.into_iter();
    let name = match items.next() {
        Some(Item::Name(n)) => n,
        Some(_) | None => {
            return Err(ScenarioError::at(
                Span { line: 1, col: 1 },
                "a scenario file must start with `scenario <name>`",
            ))
        }
    };
    let mut spec = ScenarioSpec {
        name,
        components: Vec::new(),
        fns: Vec::new(),
        points: Vec::new(),
        branches: Vec::new(),
        handlers: Vec::new(),
        workloads: Vec::new(),
        bugs: Vec::new(),
        expected_contention: Vec::new(),
    };
    for item in items {
        match item {
            Item::Name(n) => {
                return Err(ScenarioError::at(
                    n.span,
                    "duplicate `scenario` header (included fragments must not declare one)",
                ))
            }
            Item::Include { span, .. } => {
                return Err(ScenarioError::at(
                    span,
                    "unresolved include (use load_file; parse_str does not read other files)",
                ))
            }
            Item::Component(c) => spec.components.push(c),
            Item::Fn(f) => spec.fns.push(f),
            Item::Point(p) => spec.points.push(p),
            Item::Branch(b) => spec.branches.push(b),
            Item::Handler(h) => spec.handlers.push(h),
            Item::Workload(w) => spec.workloads.push(w),
            Item::Bug(b) => spec.bugs.push(b),
            Item::ExpectedContention(mut l) => spec.expected_contention.append(&mut l),
        }
    }
    Ok(spec)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek().tok, Tok::Eof)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err_here(&self, msg: impl Into<String>) -> ScenarioError {
        ScenarioError::at(self.peek().span, msg)
    }

    /// `true` and consume if the next token is the given word.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(&self.peek().tok, Tok::Ident(w) if w == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<Span, ScenarioError> {
        let span = self.peek().span;
        if self.eat_kw(kw) {
            Ok(span)
        } else {
            Err(self.err_here(format!("expected `{kw}`, found {}", self.peek().tok)))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<Ident, ScenarioError> {
        let span = self.peek().span;
        match self.bump().tok {
            Tok::Ident(name) => Ok(Ident { name, span }),
            other => Err(ScenarioError::at(
                span,
                format!("expected {what}, found {other}"),
            )),
        }
    }

    fn expect_str(&mut self, what: &str) -> Result<String, ScenarioError> {
        let span = self.peek().span;
        match self.bump().tok {
            Tok::Str(s) => Ok(s),
            other => Err(ScenarioError::at(
                span,
                format!("expected {what} (a \"string\"), found {other}"),
            )),
        }
    }

    fn expect_int(&mut self, what: &str) -> Result<(i64, Span), ScenarioError> {
        let span = self.peek().span;
        match self.bump().tok {
            Tok::Int(n) => Ok((n, span)),
            other => Err(ScenarioError::at(
                span,
                format!("expected {what} (an integer), found {other}"),
            )),
        }
    }

    fn expect_tok(&mut self, tok: Tok, what: &str) -> Result<Span, ScenarioError> {
        let span = self.peek().span;
        if self.peek().tok == tok {
            self.bump();
            Ok(span)
        } else {
            Err(ScenarioError::at(
                span,
                format!("expected {what}, found {}", self.peek().tok),
            ))
        }
    }

    /// `at <fn>:<line>` — shared by every point declaration.
    fn at_site(&mut self) -> Result<(Ident, u32), ScenarioError> {
        self.expect_kw("at")?;
        let func = self.expect_ident("a function alias")?;
        self.expect_tok(Tok::Colon, "`:`")?;
        let (line, span) = self.expect_int("a source line")?;
        if line < 0 || line > u32::MAX as i64 {
            return Err(ScenarioError::at(span, "source line out of range"));
        }
        Ok((func, line as u32))
    }

    fn ident_list(&mut self) -> Result<Vec<Ident>, ScenarioError> {
        self.expect_tok(Tok::LBracket, "`[`")?;
        let mut out = Vec::new();
        if self.peek().tok != Tok::RBracket {
            loop {
                out.push(self.expect_ident("a label")?);
                if self.peek().tok == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect_tok(Tok::RBracket, "`]`")?;
        Ok(out)
    }

    fn item(&mut self) -> Result<Item, ScenarioError> {
        let span = self.peek().span;
        let word = match &self.peek().tok {
            Tok::Ident(w) => w.clone(),
            other => {
                return Err(ScenarioError::at(
                    span,
                    format!("expected a declaration, found {other}"),
                ))
            }
        };
        match word.as_str() {
            "scenario" => {
                self.bump();
                Ok(Item::Name(self.expect_ident("a scenario name")?))
            }
            "include" => {
                self.bump();
                let path = self.expect_str("an include path")?;
                Ok(Item::Include { path, span })
            }
            "component" => {
                self.bump();
                let name = self.expect_ident("a component name")?;
                self.expect_tok(Tok::LBrace, "`{`")?;
                let mut queues = Vec::new();
                while !self.eat_tok(Tok::RBrace) {
                    self.expect_kw("queue")?;
                    queues.push(self.expect_ident("a queue name")?);
                }
                Ok(Item::Component(Component { name, queues }))
            }
            "fn" => {
                self.bump();
                let alias = self.expect_ident("a function alias")?;
                self.expect_tok(Tok::Assign, "`=`")?;
                let path = self.expect_str("a function path")?;
                Ok(Item::Fn(FnDecl { alias, path }))
            }
            "loop" => {
                self.bump();
                let label = self.expect_ident("a loop label")?;
                let (func, line) = self.at_site()?;
                let io = self.eat_kw("io");
                let parent = if self.eat_kw("parent") {
                    Some(self.expect_ident("a parent loop label")?)
                } else {
                    None
                };
                let sibling = if self.eat_kw("sibling") {
                    Some(self.expect_ident("a sibling loop label")?)
                } else {
                    None
                };
                Ok(Item::Point(PointDecl {
                    label,
                    func,
                    line,
                    kind: PointKind::Loop {
                        io,
                        parent,
                        sibling,
                    },
                }))
            }
            "constloop" => {
                self.bump();
                let label = self.expect_ident("a loop label")?;
                let (func, line) = self.at_site()?;
                self.expect_kw("bound")?;
                let (bound, bspan) = self.expect_int("a loop bound")?;
                if bound <= 0 || bound > u32::MAX as i64 {
                    return Err(ScenarioError::at(bspan, "loop bound must be positive"));
                }
                Ok(Item::Point(PointDecl {
                    label,
                    func,
                    line,
                    kind: PointKind::ConstLoop {
                        bound: bound as u32,
                    },
                }))
            }
            "throw" => {
                self.bump();
                let label = self.expect_ident("a throw label")?;
                let (func, line) = self.at_site()?;
                self.expect_kw("class")?;
                let class = self.expect_str("an exception class")?;
                self.expect_kw("category")?;
                let cat = self.expect_ident("a category")?;
                let category = match cat.name.as_str() {
                    "system" => ThrowCategory::System,
                    "runtime" => ThrowCategory::Runtime,
                    "reflection" => ThrowCategory::Reflection,
                    "security" => ThrowCategory::Security,
                    other => {
                        return Err(ScenarioError::at(
                            cat.span,
                            format!(
                                "unknown category `{other}` \
                                 (expected system/runtime/reflection/security)"
                            ),
                        ))
                    }
                };
                let test_only = self.eat_kw("test_only");
                Ok(Item::Point(PointDecl {
                    label,
                    func,
                    line,
                    kind: PointKind::Throw {
                        class,
                        category,
                        test_only,
                    },
                }))
            }
            "libcall" => {
                self.bump();
                let label = self.expect_ident("a libcall label")?;
                let (func, line) = self.at_site()?;
                self.expect_kw("class")?;
                let class = self.expect_str("an exception class")?;
                Ok(Item::Point(PointDecl {
                    label,
                    func,
                    line,
                    kind: PointKind::LibCall { class },
                }))
            }
            "negation" => {
                self.bump();
                let label = self.expect_ident("a negation label")?;
                let (func, line) = self.at_site()?;
                self.expect_kw("error_when")?;
                let error_when = self.expect_bool()?;
                self.expect_kw("source")?;
                let src = self.expect_ident("a source")?;
                let source = match src.name.as_str() {
                    "detector" => NegSource::Detector,
                    "jdk" => NegSource::Jdk,
                    "config" => NegSource::Config,
                    "constant" => NegSource::Constant,
                    "primitive" => NegSource::Primitive,
                    other => {
                        return Err(ScenarioError::at(
                            src.span,
                            format!(
                                "unknown source `{other}` \
                                 (expected detector/jdk/config/constant/primitive)"
                            ),
                        ))
                    }
                };
                Ok(Item::Point(PointDecl {
                    label,
                    func,
                    line,
                    kind: PointKind::Negation { error_when, source },
                }))
            }
            "branchpoint" => {
                self.bump();
                let label = self.expect_ident("a branch label")?;
                let (func, line) = self.at_site()?;
                Ok(Item::Branch(BranchDecl { label, func, line }))
            }
            "handler" => {
                self.bump();
                let event = self.expect_ident("an event name")?;
                let component = if self.eat_kw("in") {
                    Some(self.expect_ident("a component name")?)
                } else {
                    None
                };
                self.expect_kw("fn")?;
                let func = self.expect_ident("a function alias")?;
                let body = self.block()?;
                Ok(Item::Handler(Handler {
                    event,
                    component,
                    func,
                    body,
                }))
            }
            "workload" => {
                self.bump();
                let name = self.expect_ident("a workload name")?;
                let description = self.expect_str("a workload description")?;
                self.expect_tok(Tok::LBrace, "`{`")?;
                let mut lets = Vec::new();
                let mut horizon = None;
                let mut setup = Vec::new();
                while !self.eat_tok(Tok::RBrace) {
                    let span = self.peek().span;
                    if self.eat_kw("let") {
                        let var = self.expect_ident("a variable name")?;
                        self.expect_tok(Tok::Assign, "`=`")?;
                        let value = match self.bump().tok {
                            Tok::Int(n) => Expr::Int(n, Mark(span)),
                            Tok::Dur(us) => Expr::Dur(us, Mark(span)),
                            other => {
                                return Err(ScenarioError::at(
                                    span,
                                    format!(
                                        "workload `let` takes an integer or duration \
                                         literal, found {other}"
                                    ),
                                ))
                            }
                        };
                        lets.push((var, value));
                    } else if self.eat_kw("horizon") {
                        if horizon.is_some() {
                            return Err(ScenarioError::at(span, "duplicate `horizon`"));
                        }
                        horizon = Some(self.expr()?);
                    } else if self.eat_kw("spawn") {
                        let event = self.expect_ident("an event name")?;
                        self.expect_kw("count")?;
                        let count = self.expr()?;
                        self.expect_kw("every")?;
                        let every = self.expr()?;
                        setup.push(SetupStmt::Spawn {
                            event,
                            count,
                            every,
                        });
                    } else if self.eat_kw("sched") {
                        let event = self.expect_ident("an event name")?;
                        self.expect_kw("after")?;
                        let after = self.expr()?;
                        setup.push(SetupStmt::Sched { event, after });
                    } else if self.eat_kw("arrive") {
                        let event = self.expect_ident("an event name")?;
                        let process = if self.eat_kw("poisson") {
                            self.expect_kw("rate")?;
                            ArrivalSpec::Poisson { rate: self.expr()? }
                        } else if self.eat_kw("bursty") {
                            self.expect_kw("rate")?;
                            let rate = self.expr()?;
                            self.expect_kw("on")?;
                            let on = self.expr()?;
                            self.expect_kw("off")?;
                            let off = self.expr()?;
                            ArrivalSpec::Bursty { rate, on, off }
                        } else if self.eat_kw("diurnal") {
                            self.expect_kw("low")?;
                            let low = self.expr()?;
                            self.expect_kw("high")?;
                            let high = self.expr()?;
                            self.expect_kw("period")?;
                            let period = self.expr()?;
                            ArrivalSpec::Diurnal { low, high, period }
                        } else {
                            return Err(self.err_here(format!(
                                "expected poisson/bursty/diurnal after `arrive {event}`, \
                                 found {}",
                                self.peek().tok
                            )));
                        };
                        self.expect_kw("count")?;
                        let count = self.expr()?;
                        setup.push(SetupStmt::Arrive {
                            event,
                            process,
                            count,
                        });
                    } else {
                        return Err(self.err_here(format!(
                            "expected let/horizon/spawn/sched/arrive in workload, found {}",
                            self.peek().tok
                        )));
                    }
                }
                let horizon = horizon.ok_or_else(|| {
                    ScenarioError::at(name.span, format!("workload `{name}` declares no horizon"))
                })?;
                Ok(Item::Workload(Workload {
                    name,
                    description,
                    lets,
                    horizon,
                    setup,
                }))
            }
            "bug" => {
                self.bump();
                let id = self.expect_ident("a bug id")?;
                self.expect_kw("jira")?;
                let jira = self.expect_str("a tracker reference")?;
                self.expect_kw("summary")?;
                let summary = self.expect_str("a summary")?;
                self.expect_kw("labels")?;
                let labels = self.ident_list()?;
                let shape = if self.eat_kw("shape") {
                    Some(self.expect_ident("a shape family name")?)
                } else {
                    None
                };
                Ok(Item::Bug(BugDecl {
                    id,
                    jira,
                    summary,
                    labels,
                    shape,
                }))
            }
            "expected_contention" => {
                self.bump();
                Ok(Item::ExpectedContention(self.ident_list()?))
            }
            other => Err(ScenarioError::at(
                span,
                format!("unknown declaration `{other}`"),
            )),
        }
    }

    fn eat_tok(&mut self, tok: Tok) -> bool {
        if self.peek().tok == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_bool(&mut self) -> Result<bool, ScenarioError> {
        let span = self.peek().span;
        match self.bump().tok {
            Tok::Ident(w) if w == "true" => Ok(true),
            Tok::Ident(w) if w == "false" => Ok(false),
            other => Err(ScenarioError::at(
                span,
                format!("expected true/false, found {other}"),
            )),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ScenarioError> {
        self.expect_tok(Tok::LBrace, "`{`")?;
        let mut out = Vec::new();
        while !self.eat_tok(Tok::RBrace) {
            out.push(self.stmt()?);
        }
        Ok(out)
    }

    fn stmt(&mut self) -> Result<Stmt, ScenarioError> {
        let span = self.peek().span;
        let word = match &self.peek().tok {
            Tok::Ident(w) => w.clone(),
            other => {
                return Err(ScenarioError::at(
                    span,
                    format!("expected a statement, found {other}"),
                ))
            }
        };
        match word.as_str() {
            "advance" => {
                self.bump();
                Ok(Stmt::Advance(self.expr()?))
            }
            "frame" => {
                self.bump();
                let func = self.expect_ident("a function alias")?;
                Ok(Stmt::Frame {
                    func,
                    body: self.block()?,
                })
            }
            "branch" => {
                self.bump();
                let point = self.expect_ident("a branch label")?;
                Ok(Stmt::Branch {
                    point,
                    cond: self.expr()?,
                })
            }
            "guard" => {
                self.bump();
                Ok(Stmt::Guard(self.expect_ident("a throw label")?))
            }
            "throwif" => {
                self.bump();
                let point = self.expect_ident("a throw label")?;
                Ok(Stmt::ThrowIf {
                    point,
                    cond: self.expr()?,
                })
            }
            "check" => {
                self.bump();
                let point = self.expect_ident("a negation label")?;
                self.expect_kw("ok")?;
                let value = self.expr()?;
                let onerr = if self.eat_kw("onerr") {
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::Check {
                    point,
                    value,
                    onerr,
                })
            }
            "flag" => {
                self.bump();
                Ok(Stmt::Flag(self.expect_str("a flag name")?))
            }
            "constloop" => {
                self.bump();
                let point = self.expect_ident("a const-loop label")?;
                Ok(Stmt::ConstLoop {
                    point,
                    body: self.block()?,
                })
            }
            "loop" => {
                self.bump();
                let point = self.expect_ident("a loop label")?;
                self.expect_kw("drain")?;
                let queue = self.expect_ident("a queue name")?;
                Ok(Stmt::DrainLoop {
                    point,
                    queue,
                    body: self.block()?,
                })
            }
            "submit" => {
                self.bump();
                let queue = self.expect_ident("a queue name")?;
                self.expect_kw("every")?;
                Ok(Stmt::Submit {
                    queue,
                    every: self.expr()?,
                })
            }
            "push" => {
                self.bump();
                Ok(Stmt::Push(self.expect_ident("a queue name")?))
            }
            "requeue" => {
                self.bump();
                Ok(Stmt::Requeue(self.expect_ident("a queue name")?))
            }
            "repeat" => {
                self.bump();
                let count = self.expr()?;
                Ok(Stmt::Repeat {
                    count,
                    body: self.block()?,
                })
            }
            "if" => {
                self.bump();
                let cond = self.expr()?;
                let then = self.block()?;
                let els = if self.eat_kw("else") {
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If { cond, then, els })
            }
            "try" => {
                self.bump();
                let body = self.block()?;
                self.expect_kw("onerr")?;
                let onerr = self.block()?;
                Ok(Stmt::Try { body, onerr })
            }
            "sched" => {
                self.bump();
                let event = self.expect_ident("an event name")?;
                self.expect_kw("after")?;
                Ok(Stmt::Sched {
                    event,
                    after: self.expr()?,
                })
            }
            other => Err(ScenarioError::at(
                span,
                format!("unknown statement `{other}`"),
            )),
        }
    }

    // -- expressions --------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ScenarioError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ScenarioError> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::Bin {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ScenarioError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_kw("and") {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ScenarioError> {
        let lhs = self.add_expr()?;
        let op = match self.peek().tok {
            Tok::Lt => BinOp::Lt,
            Tok::Le => BinOp::Le,
            Tok::Gt => BinOp::Gt,
            Tok::Ge => BinOp::Ge,
            Tok::EqEq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn add_expr(&mut self) -> Result<Expr, ScenarioError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().tok {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ScenarioError> {
        let mut lhs = self.unary_expr()?;
        while self.eat_tok(Tok::Star) {
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin {
                op: BinOp::Mul,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ScenarioError> {
        if self.eat_kw("not") {
            Ok(Expr::Not(Box::new(self.unary_expr()?)))
        } else {
            self.primary_expr()
        }
    }

    fn queue_arg(&mut self) -> Result<Ident, ScenarioError> {
        self.expect_tok(Tok::LParen, "`(`")?;
        let q = self.expect_ident("a queue name")?;
        self.expect_tok(Tok::RParen, "`)`")?;
        Ok(q)
    }

    fn item_arg(&mut self) -> Result<(), ScenarioError> {
        self.expect_tok(Tok::LParen, "`(`")?;
        self.expect_kw("item")?;
        self.expect_tok(Tok::RParen, "`)`")?;
        Ok(())
    }

    fn primary_expr(&mut self) -> Result<Expr, ScenarioError> {
        let span = self.peek().span;
        match self.peek().tok.clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Expr::Int(n, Mark(span)))
            }
            Tok::Dur(us) => {
                self.bump();
                Ok(Expr::Dur(us, Mark(span)))
            }
            Tok::Var(name) => {
                self.bump();
                Ok(Expr::Var(Ident { name, span }))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect_tok(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(w) => match w.as_str() {
                "true" => {
                    self.bump();
                    Ok(Expr::Bool(true, Mark(span)))
                }
                "false" => {
                    self.bump();
                    Ok(Expr::Bool(false, Mark(span)))
                }
                "now" => {
                    self.bump();
                    Ok(Expr::Now(Mark(span)))
                }
                "len" => {
                    self.bump();
                    Ok(Expr::Len(self.queue_arg()?))
                }
                "empty" => {
                    self.bump();
                    Ok(Expr::Empty(self.queue_arg()?))
                }
                "submitted" => {
                    self.bump();
                    Ok(Expr::Submitted(self.queue_arg()?))
                }
                "age" => {
                    self.bump();
                    self.item_arg()?;
                    Ok(Expr::AgeItem(Mark(span)))
                }
                "retries" => {
                    self.bump();
                    self.item_arg()?;
                    Ok(Expr::RetriesItem(Mark(span)))
                }
                other => Err(ScenarioError::at(
                    span,
                    format!("expected an expression, found `{other}`"),
                )),
            },
            other => Err(ScenarioError::at(
                span,
                format!("expected an expression, found {other}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(src: &str) -> ScenarioSpec {
        assemble(parse_items(src).unwrap()).unwrap()
    }

    #[test]
    fn minimal_scenario_parses() {
        let s = spec(
            r#"
            scenario demo
            component S { queue q }
            fn f = "X.f"
            loop l at f:1 io
            handler Tick in S fn f {
              loop l drain q { advance 1ms }
              sched Tick after 1s
            }
            workload w "basic" {
              let n = 5
              horizon 10s
              sched Tick after 100ms
            }
            bug b-1 jira "J-1" summary "s" labels [l]
            "#,
        );
        assert_eq!(s.name.name, "demo");
        assert_eq!(s.components.len(), 1);
        assert_eq!(s.points.len(), 1);
        assert_eq!(s.handlers.len(), 1);
        assert_eq!(s.workloads.len(), 1);
        assert_eq!(s.bugs[0].labels, vec![Ident::new("l")]);
    }

    #[test]
    fn expressions_respect_precedence() {
        let s = spec(
            r#"
            scenario demo
            component S { queue q }
            fn f = "X.f"
            loop l at f:1
            handler T fn f {
              if len(q) < 2 + 3 * 4 and not empty(q) { push q }
            }
            workload w "d" { horizon 1s sched T after 1ms }
            "#,
        );
        let Stmt::If { cond, .. } = &s.handlers[0].body[0] else {
            panic!("expected if");
        };
        // and(lt(len, add(2, mul(3,4))), not(empty))
        let Expr::Bin {
            op: BinOp::And,
            lhs,
            ..
        } = cond
        else {
            panic!("expected and at the top: {cond:?}");
        };
        let Expr::Bin {
            op: BinOp::Lt, rhs, ..
        } = lhs.as_ref()
        else {
            panic!("expected lt under and: {lhs:?}");
        };
        let Expr::Bin {
            op: BinOp::Add,
            rhs: mul,
            ..
        } = rhs.as_ref()
        else {
            panic!("expected add: {rhs:?}");
        };
        assert!(matches!(mul.as_ref(), Expr::Bin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn missing_horizon_is_span_reported() {
        let err = parse_items("scenario d\nworkload w \"x\" { let a = 1 }").unwrap_err();
        assert!(err.message.contains("horizon"), "{err}");
        assert_eq!(err.span.unwrap(), Span { line: 2, col: 10 });
    }

    #[test]
    fn header_must_come_first() {
        let err = assemble(parse_items("fn f = \"X.f\"").unwrap())
            .map(|_| ())
            .unwrap_err();
        assert!(err.message.contains("scenario <name>"), "{err}");
    }
}
